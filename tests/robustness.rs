//! Robustness-layer acceptance tests: deadlines, cancellation, result
//! budgets, graceful build degradation, duplicate-id rejection, and the
//! constructibility of every [`SkqError`] variant from a public entry
//! point. (The `Internal` variant only arises from injected fail
//! points; `tests/chaos.rs` covers it under `--features failpoints`.)

use std::time::Duration;

use structured_keyword_search::core::batch::{run_batch_isolated, BatchQuery, ShardOutcome};
use structured_keyword_search::core::dynamic::DynamicOrpKw;
use structured_keyword_search::core::planner::{BuildTier, Plan, PlannedOrpKw};
use structured_keyword_search::core::suite::OrpKwSuite;
use structured_keyword_search::prelude::*;

fn grid_dataset(n: usize) -> Dataset {
    // A deterministic 2-D grid where every point carries both query
    // keywords plus a spreader tag, so OUT is large and controllable.
    Dataset::from_parts(
        (0..n)
            .map(|i| {
                let x = (i % 64) as f64;
                let y = (i / 64) as f64;
                (Point::new2(x, y), vec![0u32, 1, 2 + (i % 5) as u32])
            })
            .collect(),
    )
}

fn counter(name: &'static str) -> u64 {
    structured_keyword_search::obs::global()
        .counter(name, &[])
        .get()
}

#[test]
fn deadline_returns_partial_results_with_reason() {
    let d = grid_dataset(4000);
    let index = OrpKwIndex::build(&d, 2);
    let q = Rect::full(2);
    let full = index.query(&q, &[0, 1]);
    assert_eq!(full.len(), 4000);

    let before = counter("skq_query_deadline_exceeded");
    // An already-expired deadline: the guard trips at the first
    // emission check, so the partial result is a (strict) prefix of
    // the full answer and the stats carry the reason.
    let guard = QueryGuard::new().with_deadline(Duration::ZERO);
    std::thread::sleep(Duration::from_millis(2));
    let mut sink = GuardedSink::new(Vec::new(), &guard);
    let mut stats = QueryStats::new();
    let _ = index.query_sink(&q, &[0, 1], &mut sink, &mut stats);
    assert_eq!(
        sink.truncated_reason(),
        Some(TruncatedReason::DeadlineExceeded)
    );
    let partial = sink.into_inner();
    assert!(partial.len() < full.len());
    assert!(partial.iter().all(|i| full.contains(i)));
    assert_eq!(counter("skq_query_deadline_exceeded"), before + 1);

    // A generous deadline leaves the answer untouched.
    let guard = QueryGuard::new().with_deadline(Duration::from_secs(600));
    let mut sink = GuardedSink::new(Vec::new(), &guard);
    let mut stats = QueryStats::new();
    let _ = index.query_sink(&q, &[0, 1], &mut sink, &mut stats);
    assert_eq!(sink.truncated_reason(), None);
    assert_eq!(sink.into_inner().len(), full.len());
}

#[test]
fn cancellation_stops_the_query_and_counts() {
    let d = grid_dataset(2000);
    let index = OrpKwIndex::build(&d, 2);
    let before = counter("skq_query_cancelled");
    let token = CancelToken::new();
    token.cancel();
    let guard = QueryGuard::new().with_cancel(token);
    assert_eq!(guard.check(), Err(SkqError::Cancelled));
    let mut sink = GuardedSink::new(Vec::new(), &guard);
    let mut stats = QueryStats::new();
    let _ = index.query_sink(&Rect::full(2), &[0, 1], &mut sink, &mut stats);
    assert_eq!(sink.truncated_reason(), Some(TruncatedReason::Cancelled));
    assert_eq!(counter("skq_query_cancelled"), before + 1);
}

#[test]
fn result_budget_caps_suite_and_dynamic_paths() {
    let d = grid_dataset(3000);
    let guard = QueryGuard::new().with_max_results(7);

    let suite = OrpKwSuite::build(&d, 2);
    let (got, stats) = suite.query_guarded(&Rect::full(2), &[0, 1], &guard);
    assert_eq!(got.len(), 7);
    assert_eq!(stats.truncated_reason, Some(TruncatedReason::Limit));

    let mut dynamic = DynamicOrpKw::new(2, 2);
    for i in 0..1000u32 {
        dynamic.insert(Point::new2((i % 50) as f64, (i / 50) as f64), vec![0, 1]);
    }
    let (got, stats) = dynamic.query_guarded(&Rect::full(2), &[0, 1], &guard);
    assert_eq!(got.len(), 7);
    assert_eq!(stats.truncated_reason, Some(TruncatedReason::Limit));
}

#[test]
fn tiny_budget_degrades_builds_but_not_answers() {
    let d = grid_dataset(2000);
    let q = Rect::new(&[3.0, 3.0], &[40.0, 20.0]);
    let kws = [0u32, 1u32];

    let full = PlannedOrpKw::try_build(&d, 2).unwrap();
    assert_eq!(full.tier(), BuildTier::Framework);
    let expected = full.query_with_plan(&q, &kws, Plan::Framework);
    assert!(!expected.is_empty());

    // Between the LC and ORP footprints → the linear tier; one word →
    // nothing is admitted and the naive engines serve.
    let orp_words = OrpKwIndex::build(&d, 2).space_words();
    let lc_words = LcKwIndex::build(&d, 2).space_words();
    assert!(lc_words < orp_words, "lc={lc_words} orp={orp_words}");
    let mid = (lc_words + orp_words) / 2;
    for (budget, tier) in [(mid, BuildTier::Linear), (1, BuildTier::Naive)] {
        let before = structured_keyword_search::obs::global()
            .counter("skq_planner_build_tier_total", &[("tier", tier.label())])
            .get();
        let planner = PlannedOrpKw::try_build_with_budget(&d, 2, Some(budget)).unwrap();
        assert_eq!(planner.tier(), tier);
        assert_eq!(
            structured_keyword_search::obs::global()
                .counter("skq_planner_build_tier_total", &[("tier", tier.label())])
                .get(),
            before + 1,
            "build tier must be visible in telemetry"
        );
        assert_eq!(planner.query_with_plan(&q, &kws, Plan::Framework), expected);
        let (got, _, stats) = planner.query_guarded(&q, &kws, &QueryGuard::new());
        assert_eq!(got, expected);
        assert_eq!(stats.truncated_reason, None);
    }

    // The degraded tier is stamped into the query log's plan label
    // whenever the framework plan runs on a fallback engine.
    let planner = PlannedOrpKw::try_build_with_budget(&d, 2, Some(mid)).unwrap();
    // Full-space + omnipresent keywords: the framework plan wins.
    let (_, plan) = planner.query(&Rect::full(2), &kws);
    if plan == Plan::Framework {
        let recent = structured_keyword_search::obs::query_log().recent(1);
        assert_eq!(recent[0].plan, Some("framework@linear"));
    }
}

#[test]
fn duplicate_id_insertion_is_rejected() {
    let mut idx = DynamicOrpKw::new(2, 2);
    let a = idx
        .try_insert_with_id(3, Point::new2(1.0, 1.0), vec![0, 1])
        .unwrap();
    let err = idx
        .try_insert_with_id(3, Point::new2(2.0, 2.0), vec![0, 1])
        .unwrap_err();
    assert!(matches!(err, SkqError::InvalidQuery(_)), "{err}");
    assert!(err.to_string().contains("duplicate object id 3"), "{err}");
    // The failed insert is a no-op: the index still holds exactly one
    // object and answers correctly.
    assert_eq!(idx.len(), 1);
    assert_eq!(idx.query(&Rect::full(2), &[0, 1]), vec![a]);
}

#[test]
fn every_error_variant_is_reachable_from_public_api() {
    // InvalidDataset — a NaN coordinate is rejected at construction.
    let err = Dataset::try_from_parts(vec![(Point::new2(f64::NAN, 0.0), vec![0u32])]).unwrap_err();
    assert!(matches!(err, SkqError::InvalidDataset(_)), "{err}");
    assert_eq!(err.kind(), "invalid_dataset");

    // InvalidQuery — duplicate query keywords.
    let d = grid_dataset(64);
    let index = OrpKwIndex::try_build(&d, 2).unwrap();
    let err = index
        .try_query_into(&Rect::full(2), &[0, 0], &mut Vec::new())
        .unwrap_err();
    assert!(matches!(err, SkqError::InvalidQuery(_)), "{err}");

    // BuildBudgetExceeded — a one-word space budget.
    let err = match OrpKwIndex::try_build_with_budget(&d, 2, Some(1)) {
        Err(e) => e,
        Ok(_) => panic!("a one-word budget must not admit the index"),
    };
    assert!(
        matches!(err, SkqError::BuildBudgetExceeded { budget: 1, .. }),
        "{err}"
    );

    // DeadlineExceeded / Cancelled — guard checks.
    let guard = QueryGuard::new().with_deadline(Duration::ZERO);
    std::thread::sleep(Duration::from_millis(2));
    assert_eq!(guard.check(), Err(SkqError::DeadlineExceeded));
    let token = CancelToken::new();
    token.cancel();
    let guard = QueryGuard::new().with_cancel(token);
    assert_eq!(guard.check(), Err(SkqError::Cancelled));

    // ShardPanicked — a malformed per-shard query (wrong keyword arity
    // panics inside the worker) survives isolation as a Failed shard
    // and surfaces as a typed error from into_results().
    let queries: Vec<BatchQuery> = (0..8)
        .map(|_| BatchQuery {
            rect: Rect::full(2),
            keywords: vec![0, 1],
        })
        .chain(std::iter::once(BatchQuery {
            rect: Rect::full(2),
            keywords: vec![0, 1, 2], // arity 3 against a k=2 index
        }))
        .collect();
    let report = run_batch_isolated(&index, &queries, 3, &QueryGuard::new());
    assert!(!report.is_complete());
    assert!(report.outcomes.contains(&ShardOutcome::Failed));
    let err = report.into_results().unwrap_err();
    assert!(matches!(err, SkqError::ShardPanicked { .. }), "{err}");
    assert_eq!(err.kind(), "shard_panicked");

    // Internal — only constructible via fail-point injection; covered
    // by tests/chaos.rs under `--features failpoints`.
}
