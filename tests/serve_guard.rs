//! Guard semantics under serving load (DESIGN.md §14): deadlines,
//! cancellation, and result budgets flowing through [`Server`]'s
//! admission control; queue-full shedding as typed
//! [`SkqError::Overloaded`]; and — with `--features failpoints` —
//! poisoned-worker isolation and respawn.
//!
//! Counter assertions use *deltas with `>=`*: the `skq-obs` registry
//! is process-global and the test harness runs files in parallel.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use structured_keyword_search::core::suite::OrpKwSuite;
use structured_keyword_search::prelude::*;
use structured_keyword_search::serve::{Request, Server, ServerConfig};

fn suite(n: usize) -> OrpKwSuite {
    let dataset = Dataset::from_parts(
        (0..n)
            .map(|i| {
                let x = (i % 20) as f64;
                let y = (i / 20) as f64;
                (Point::new2(x, y), vec![0u32, 1])
            })
            .collect(),
    );
    OrpKwSuite::build(&dataset, 2)
}

fn counter(name: &str) -> u64 {
    skq_obs::global().counter(name, &[]).get()
}

/// An already-lapsed deadline is shed by admission control with the
/// typed error, and the dedicated deadline counter fires.
#[test]
fn lapsed_deadline_is_shed_with_typed_error() {
    let server = Server::start(suite(200), ServerConfig::default());
    let before = counter("skq_query_deadline_exceeded");
    let mut shed = 0;
    for _ in 0..8 {
        let mut req = Request::new(Rect::full(2), vec![0, 1]);
        req.deadline = Some(Duration::ZERO);
        match server.query(req) {
            Err(SkqError::DeadlineExceeded) => shed += 1,
            other => panic!("expected DeadlineExceeded, got {other:?}"),
        }
    }
    assert_eq!(shed, 8);
    assert!(
        counter("skq_query_deadline_exceeded") >= before + 8,
        "deadline counter must fire for every shed request"
    );
    // The pool is unharmed: a request with headroom still succeeds.
    let reply = server
        .query(Request::new(Rect::full(2), vec![0, 1]))
        .unwrap();
    assert_eq!(reply.ids.len(), 200);
    server.shutdown();
}

/// A server-wide default deadline applies to requests that carry none.
#[test]
fn default_deadline_applies_to_bare_requests() {
    let server = Server::start(
        suite(100),
        ServerConfig {
            default_deadline: Some(Duration::ZERO),
            ..ServerConfig::default()
        },
    );
    let err = server
        .query(Request::new(Rect::full(2), vec![0, 1]))
        .unwrap_err();
    assert!(matches!(err, SkqError::DeadlineExceeded), "{err}");
    // A per-request deadline overrides the hopeless default.
    let mut req = Request::new(Rect::full(2), vec![0, 1]);
    req.deadline = Some(Duration::from_secs(30));
    assert_eq!(server.query(req).unwrap().ids.len(), 100);
    server.shutdown();
}

/// A pre-cancelled token sheds deterministically with `Cancelled`.
#[test]
fn cancelled_token_sheds_with_typed_error() {
    let server = Server::start(suite(100), ServerConfig::default());
    let before = counter("skq_query_cancelled");
    let token = CancelToken::new();
    token.cancel();
    let mut req = Request::new(Rect::full(2), vec![0, 1]);
    req.cancel = Some(token);
    let err = server.query(req).unwrap_err();
    assert!(matches!(err, SkqError::Cancelled), "{err}");
    assert!(counter("skq_query_cancelled") > before);
    server.shutdown();
}

/// A result budget truncates successfully — the client asked for at
/// most that many — rather than erroring.
#[test]
fn result_budget_truncates_without_error() {
    let server = Server::start(suite(200), ServerConfig::default());
    let mut req = Request::new(Rect::full(2), vec![0, 1]);
    req.max_results = Some(25);
    let reply = server.query(req).unwrap();
    assert_eq!(reply.ids.len(), 25);
    assert_eq!(reply.stats.truncated_reason, Some(TruncatedReason::Limit));
    server.shutdown();
}

/// A zero-capacity queue rejects every submission with the typed
/// overload error before any worker is involved.
#[test]
fn saturated_queue_sheds_with_overloaded() {
    let server = Server::start(
        suite(100),
        ServerConfig {
            workers: 1,
            queue_capacity: 0,
            ..ServerConfig::default()
        },
    );
    let shed = skq_obs::global().counter("skq_serve_shed_total", &[("reason", "overloaded")]);
    let before_shed = shed.get();
    for _ in 0..5 {
        let err = server
            .submit(Request::new(Rect::full(2), vec![0, 1]))
            .unwrap_err();
        assert!(
            matches!(err, SkqError::Overloaded { queue_depth: 0 }),
            "{err}"
        );
    }
    assert!(shed.get() >= before_shed + 5);
    server.shutdown();
}

/// Saturating a tiny pool with deadline-carrying work: everything
/// resolves (success, deadline, or overload — never a hang or a
/// panic), and the pool still serves cleanly afterwards.
#[test]
fn pool_saturation_resolves_every_request() {
    let server = Arc::new(Server::start(
        suite(400),
        ServerConfig {
            workers: 2,
            queue_capacity: 16,
            ..ServerConfig::default()
        },
    ));
    let resolved = Arc::new(AtomicUsize::new(0));
    let clients: Vec<_> = (0..4)
        .map(|_| {
            let server = Arc::clone(&server);
            let resolved = Arc::clone(&resolved);
            std::thread::spawn(move || {
                for i in 0..50 {
                    let mut req = Request::new(Rect::full(2), vec![0, 1]);
                    // A mix of hopeless, tight, and generous deadlines.
                    req.deadline = Some(match i % 3 {
                        0 => Duration::ZERO,
                        1 => Duration::from_micros(200),
                        _ => Duration::from_secs(30),
                    });
                    match server.query(req) {
                        Ok(reply) => assert_eq!(reply.ids.len(), 400),
                        Err(
                            SkqError::DeadlineExceeded
                            | SkqError::Cancelled
                            | SkqError::Overloaded { .. },
                        ) => {}
                        Err(other) => panic!("unexpected failure under load: {other}"),
                    }
                    resolved.fetch_add(1, Ordering::Relaxed);
                }
            })
        })
        .collect();
    for c in clients {
        c.join().unwrap();
    }
    assert_eq!(resolved.load(Ordering::Relaxed), 200);
    let reply = server
        .query(Request::new(Rect::full(2), vec![0, 1]))
        .unwrap();
    assert_eq!(reply.ids.len(), 400);
    server.shutdown();
}

/// Malformed requests come back typed, not as panics, even under a
/// worker pool.
#[test]
fn invalid_queries_stay_typed_under_load() {
    let server = Server::start(suite(50), ServerConfig::default());
    for wrong_dim in [1usize, 3, 5] {
        let err = server
            .query(Request::new(Rect::full(wrong_dim), vec![0, 1]))
            .unwrap_err();
        assert!(matches!(err, SkqError::InvalidQuery(_)), "{err}");
    }
    server.shutdown();
}

/// Fail-point battery: worker poisoning and request-level injections.
/// Serialized on a local mutex — the fail-point registry is
/// process-global — and cleared on entry and exit.
#[cfg(feature = "failpoints")]
mod failpoint_battery {
    use super::*;
    use std::sync::Mutex;
    use structured_keyword_search::core::failpoints::{self, FailAction};

    static FAILPOINT_LOCK: Mutex<()> = Mutex::new(());

    struct FpGuard<'a>(#[allow(dead_code)] std::sync::MutexGuard<'a, ()>);

    impl<'a> FpGuard<'a> {
        fn acquire() -> Self {
            let guard = FAILPOINT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
            failpoints::clear();
            Self(guard)
        }
    }

    impl Drop for FpGuard<'_> {
        fn drop(&mut self) {
            failpoints::clear();
        }
    }

    /// A poisoned worker (panic between pop and reply) loses exactly
    /// the jobs it was holding, is respawned, and the pool keeps
    /// serving.
    #[test]
    fn poisoned_worker_is_isolated_and_respawned() {
        let _fp = FpGuard::acquire();
        let server = Server::start(
            suite(100),
            ServerConfig {
                workers: 2,
                queue_capacity: 32,
                ..ServerConfig::default()
            },
        );
        let respawns_before = counter("skq_serve_worker_respawns_total");

        failpoints::inject("serve::worker", FailAction::Panic, Some(3));
        let mut lost = 0;
        let mut served = 0;
        for _ in 0..12 {
            match server.query(Request::new(Rect::full(2), vec![0, 1])) {
                Ok(reply) => {
                    assert_eq!(reply.ids.len(), 100);
                    served += 1;
                }
                Err(SkqError::Internal(msg)) => {
                    assert!(msg.contains("worker lost"), "{msg}");
                    lost += 1;
                }
                Err(other) => panic!("unexpected error: {other}"),
            }
        }
        assert_eq!(lost, 3, "exactly the injected panics lose their job");
        assert_eq!(served, 9);
        assert!(
            counter("skq_serve_worker_respawns_total") >= respawns_before + 3,
            "every poisoned worker must be respawned"
        );

        // Disarmed, the pool serves at full strength.
        failpoints::clear();
        for _ in 0..4 {
            let reply = server
                .query(Request::new(Rect::full(2), vec![0, 1]))
                .unwrap();
            assert_eq!(reply.ids.len(), 100);
        }
        server.shutdown();
    }

    /// A request-level injected `Err` surfaces typed and leaves the
    /// worker alive (no respawn, no panic counter).
    #[test]
    fn injected_request_error_spares_the_worker() {
        let _fp = FpGuard::acquire();
        let server = Server::start(
            suite(100),
            ServerConfig {
                workers: 1,
                queue_capacity: 32,
                ..ServerConfig::default()
            },
        );
        let respawns_before = counter("skq_serve_worker_respawns_total");

        failpoints::inject("serve::request", FailAction::Err, Some(2));
        for _ in 0..2 {
            let err = server
                .query(Request::new(Rect::full(2), vec![0, 1]))
                .unwrap_err();
            assert!(matches!(err, SkqError::Internal(_)), "{err}");
            assert!(err.to_string().contains("serve::request"), "{err}");
        }
        // The single worker survived: it still answers, with no
        // respawn recorded.
        let reply = server
            .query(Request::new(Rect::full(2), vec![0, 1]))
            .unwrap();
        assert_eq!(reply.ids.len(), 100);
        assert_eq!(
            counter("skq_serve_worker_respawns_total"),
            respawns_before,
            "an injected Err must not kill the worker"
        );
        server.shutdown();
    }

    /// A request-level injected *panic* is contained by the per-request
    /// isolation: the caller gets a typed error, the panic counter
    /// fires, and the same worker keeps serving (no respawn).
    #[test]
    fn injected_request_panic_is_contained() {
        let _fp = FpGuard::acquire();
        let server = Server::start(
            suite(100),
            ServerConfig {
                workers: 1,
                queue_capacity: 32,
                ..ServerConfig::default()
            },
        );
        let panics_before = counter("skq_serve_worker_panics_total");
        let respawns_before = counter("skq_serve_worker_respawns_total");

        failpoints::inject("serve::request", FailAction::Panic, Some(1));
        let err = server
            .query(Request::new(Rect::full(2), vec![0, 1]))
            .unwrap_err();
        assert!(matches!(err, SkqError::Internal(_)), "{err}");
        assert!(counter("skq_serve_worker_panics_total") > panics_before);
        assert_eq!(counter("skq_serve_worker_respawns_total"), respawns_before);

        let reply = server
            .query(Request::new(Rect::full(2), vec![0, 1]))
            .unwrap();
        assert_eq!(reply.ids.len(), 100);
        server.shutdown();
    }
}
