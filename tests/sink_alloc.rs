//! Allocation accounting for the streaming query paths.
//!
//! The acceptance criterion for the sink layer: counting and threshold
//! (limit) queries must not materialize a result vector. A counting
//! `#[global_allocator]` wrapper measures bytes requested during each
//! query mode on a dataset where the full answer is 4096 ids (16 KiB of
//! result data) — the streaming paths must stay orders of magnitude
//! below that.
//!
//! This file deliberately contains a single `#[test]`: the allocation
//! counters are process-global, and a second concurrently running test
//! would pollute the measurements.

// The counting wrapper must implement the inherently-unsafe
// `GlobalAlloc` trait; this is the one sanctioned exception to the
// workspace-wide `unsafe_code = "deny"`.
#![allow(unsafe_code)] // skq-lint: allow(L07) GlobalAlloc impls are unavoidably unsafe

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use structured_keyword_search::prelude::*;

struct CountingAlloc;

static BYTES: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates verbatim to `System`; the only addition is relaxed
// counter bookkeeping, which cannot violate allocator invariants.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Bytes requested from the allocator while `f` runs.
fn bytes_allocated_by(f: impl FnOnce()) -> u64 {
    let before = BYTES.load(Ordering::SeqCst);
    f();
    BYTES.load(Ordering::SeqCst) - before
}

#[test]
fn counting_and_threshold_queries_do_not_materialize_results() {
    // A 64×64 grid where every object matches both keywords: the
    // full-space query reports 4096 ids.
    let n: usize = 4096;
    let dataset = Dataset::from_parts(
        (0..n)
            .map(|i| {
                (
                    Point::new2((i % 64) as f64, (i / 64) as f64),
                    vec![0u32, 1u32],
                )
            })
            .collect(),
    );
    let index = OrpKwIndex::build(&dataset, 2);
    let q = Rect::full(2);

    // Warm up lazily initialized global state (metrics series, log
    // buffers) so it is not charged to the measured paths.
    assert_eq!(index.query(&q, &[0, 1]).len(), n);

    let collect_bytes = bytes_allocated_by(|| {
        assert_eq!(index.query(&q, &[0, 1]).len(), n);
    });
    assert!(
        collect_bytes >= (n * 4) as u64,
        "collecting must pay for the result vector, got {collect_bytes} B"
    );

    let count_bytes = bytes_allocated_by(|| {
        let mut sink = CountSink::new();
        let mut stats = QueryStats::new();
        let _ = index.query_sink(&q, &[0, 1], &mut sink, &mut stats);
        assert_eq!(sink.count(), n as u64);
    });
    assert!(
        count_bytes < 4096,
        "CountSink query allocated {count_bytes} B (result would be {} B)",
        n * 4
    );

    // The threshold probe (the shape behind the NN-L∞ radius binary
    // search and `count_at_least`): a LimitSink over a CountSink.
    let probe_bytes = bytes_allocated_by(|| {
        assert!(index.count_at_least(&q, &[0, 1], 100));
        assert!(!index.count_at_least(&q, &[0, 1], n + 1));
    });
    assert!(
        probe_bytes < 4096,
        "threshold probes allocated {probe_bytes} B"
    );

    // Limited reporting into a caller-provided, pre-sized vector: only
    // bookkeeping may allocate, never a shadow result set.
    let mut out = Vec::with_capacity(8);
    let limited_bytes = bytes_allocated_by(|| {
        let mut stats = QueryStats::new();
        index.query_limited(&q, &[0, 1], 8, &mut out, &mut stats);
        assert_eq!(out.len(), 8);
        assert!(stats.truncated);
    });
    assert!(
        limited_bytes < 4096,
        "limited query allocated {limited_bytes} B"
    );

    // End-to-end: the L∞-NN binary search runs ~log N threshold probes;
    // none of them may materialize candidates. Only the two final
    // collection passes (a handful of near neighbours here) allocate.
    let nn = LinfNnIndex::build(&dataset, 2);
    let _ = nn.query(&Point::new2(0.0, 0.0), 5, &[0, 1]); // warm-up
    let nn_bytes = bytes_allocated_by(|| {
        assert_eq!(nn.query(&Point::new2(0.0, 0.0), 5, &[0, 1]).len(), 5);
    });
    assert!(
        nn_bytes < (n * 4 / 2) as u64,
        "NN probes allocated {nn_bytes} B — a probe is materializing results"
    );
}
