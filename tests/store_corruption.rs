//! Corruption battery: a snapshot mangled any way — truncated at every
//! prefix length, any single bit flipped, wrong magic, a future schema
//! version — must load as a typed [`SkqError`], never a panic and never
//! a structurally broken index. When `debug-invariants` is on, every
//! *successful* load is additionally deep-validated.

use structured_keyword_search::core::suite::OrpKwSuite;
use structured_keyword_search::prelude::*;
use structured_keyword_search::store::Persist;

fn dataset() -> Dataset {
    Dataset::from_parts(
        (0..96)
            .map(|i| {
                let x = f64::from(i % 12);
                let y = f64::from(i / 12);
                (Point::new2(x, y), vec![0u32, 1, 2 + (i % 3)])
            })
            .collect(),
    )
}

fn snapshot() -> Vec<u8> {
    OrpKwSuite::build(&dataset(), 3)
        .to_bytes()
        .expect("encoding a valid suite")
}

/// Loads possibly-mangled bytes; panics (failing the test) only if the
/// decoder itself panics or a load succeeds with a broken structure.
fn try_load_mangled(bytes: &[u8], what: &str) {
    match OrpKwSuite::try_load(bytes) {
        Err(SkqError::Corrupted { .. }) | Err(SkqError::Store { .. }) => {}
        Err(other) => panic!("{what}: unexpected error kind: {other}"),
        Ok(suite) => {
            // A mangled snapshot may still decode if the damage hit
            // dead bytes; the result must then behave like a real
            // index (try_load already deep-validated it under
            // debug-invariants). Exercise a query to be sure.
            let _ = suite.query(&Rect::full(2), &[0, 1]);
        }
    }
}

#[test]
fn truncation_at_every_length_is_a_typed_error() {
    let bytes = snapshot();
    // Every prefix below the file header, then a spread of longer ones
    // (all strictly shorter than the full file): each must fail with a
    // typed error — short data can never decode into something valid.
    let mut cuts: Vec<usize> = (0..32.min(bytes.len())).collect();
    let step = (bytes.len() / 61).max(1);
    cuts.extend((32..bytes.len()).step_by(step));
    cuts.push(bytes.len() - 1);
    for cut in cuts {
        let err = OrpKwSuite::try_load(&bytes[..cut])
            .err()
            .unwrap_or_else(|| panic!("truncated at {cut}: load succeeded"));
        assert!(
            matches!(err, SkqError::Corrupted { .. } | SkqError::Store { .. }),
            "truncated at {cut}: {err}"
        );
    }
}

#[test]
fn any_flipped_bit_never_panics() {
    let bytes = snapshot();
    // Flip one bit per stride position across the whole file (every
    // byte would take minutes in debug builds; a prime stride hits all
    // sections — headers, payloads, checksums).
    let stride = 97;
    for pos in (0..bytes.len()).step_by(stride) {
        for bit in [0u8, 3, 7] {
            let mut mangled = bytes.clone();
            mangled[pos] ^= 1 << bit;
            try_load_mangled(&mangled, &format!("bit {bit} of byte {pos}"));
        }
    }
}

#[test]
fn wrong_magic_is_rejected() {
    let mut bytes = snapshot();
    bytes[0] = b'X';
    let err = OrpKwSuite::try_load(&bytes).err().expect("must fail");
    assert!(matches!(err, SkqError::Corrupted { .. }), "{err}");
    assert!(err.to_string().contains("magic"), "{err}");
}

#[test]
fn future_schema_version_is_rejected_with_versions_named() {
    use structured_keyword_search::store::SCHEMA_VERSION;
    let mut bytes = snapshot();
    // Bump the schema field (bytes 8..10, little-endian) and re-stamp
    // the header checksum so the version check itself is what fires.
    let future = SCHEMA_VERSION + 1;
    bytes[8..10].copy_from_slice(&future.to_le_bytes());
    let digest = fnv64(&bytes[..16]);
    bytes[16..24].copy_from_slice(&digest.to_le_bytes());
    let err = OrpKwSuite::try_load(&bytes).err().expect("must fail");
    assert!(matches!(err, SkqError::Corrupted { .. }), "{err}");
    let msg = err.to_string();
    assert!(msg.contains(&future.to_string()), "{msg}");
    assert!(msg.contains(&SCHEMA_VERSION.to_string()), "{msg}");
}

#[test]
fn unrelated_bytes_are_rejected() {
    for junk in [
        &b""[..],
        &b"\0"[..],
        &b"not a snapshot at all, definitely long enough to look at"[..],
        &[0xffu8; 64][..],
    ] {
        let err = OrpKwSuite::try_load(junk).err().expect("must fail");
        assert!(
            matches!(err, SkqError::Corrupted { .. } | SkqError::Store { .. }),
            "{err}"
        );
    }
}

#[test]
fn page_swap_is_rejected() {
    // Swapping two whole pages keeps every per-page checksum valid but
    // breaks the section order the decoders expect: the page-index /
    // kind checks must catch it.
    let bytes = snapshot();
    let suite_head_len = 24 + 24 + 1; // file header + first page header + k_max varint
    let mut swapped = Vec::with_capacity(bytes.len());
    swapped.extend_from_slice(&bytes[..24]);
    swapped.extend_from_slice(&bytes[suite_head_len..]);
    swapped.extend_from_slice(&bytes[24..suite_head_len]);
    let err = OrpKwSuite::try_load(&swapped).err().expect("must fail");
    assert!(matches!(err, SkqError::Corrupted { .. }), "{err}");
}

// ---------------------------------------------------------------------
// WAL corruption battery (DESIGN §16): a segment mangled any way must
// decode to a clean valid prefix plus a typed `Corrupted` error —
// never a panic, and replay must stop at the first damaged byte.

mod wal_battery {
    use structured_keyword_search::prelude::{Point, SkqError};
    use structured_keyword_search::store::wal::{decode_segment, encode_record, WalOp};

    /// A small multi-record log with both op kinds.
    fn log_bytes() -> (Vec<u8>, Vec<usize>) {
        let mut bytes = Vec::new();
        let mut boundaries = vec![0usize];
        for i in 0..6u64 {
            let op = if i % 3 == 2 {
                WalOp::Delete { id: i / 3 }
            } else {
                WalOp::Insert {
                    id: i,
                    point: Point::new2(i as f64, 2.0 * i as f64),
                    keywords: vec![1, 5, 9],
                }
            };
            bytes.extend_from_slice(&encode_record(i + 1, &op));
            boundaries.push(bytes.len());
        }
        (bytes, boundaries)
    }

    #[test]
    fn truncation_at_every_byte_prefix_keeps_whole_records() {
        let (bytes, boundaries) = log_bytes();
        for cut in 0..bytes.len() {
            let scan = decode_segment(&bytes[..cut]);
            // The valid prefix is exactly the whole records that fit.
            let expect_records = boundaries.iter().filter(|&&b| b > 0 && b <= cut).count();
            assert_eq!(
                scan.records.len(),
                expect_records,
                "cut at {cut}: wrong record count"
            );
            assert_eq!(scan.valid_len as usize, boundaries[expect_records]);
            if cut == boundaries[expect_records] {
                assert!(scan.error.is_none(), "cut at {cut}: clean boundary");
            } else {
                let err = scan.error.expect("torn tail must report an error");
                assert!(
                    matches!(err, SkqError::Corrupted { .. }),
                    "cut at {cut}: {err}"
                );
            }
        }
    }

    #[test]
    fn any_flipped_bit_in_any_record_is_typed_never_panics() {
        let (bytes, boundaries) = log_bytes();
        for pos in 0..bytes.len() {
            for bit in [0u8, 4, 7] {
                let mut mangled = bytes.clone();
                mangled[pos] ^= 1 << bit;
                let scan = decode_segment(&mangled);
                // Replay stops cleanly: every surviving record is one
                // of the originals from before the damaged byte.
                let record_of_pos = boundaries.iter().filter(|&&b| b <= pos).count() - 1;
                assert!(
                    scan.records.len() <= record_of_pos,
                    "bit {bit} of byte {pos}: a damaged record decoded"
                );
                if let Some(err) = scan.error {
                    assert!(
                        matches!(err, SkqError::Corrupted { .. }),
                        "bit {bit} of byte {pos}: {err}"
                    );
                }
            }
        }
    }

    #[test]
    fn junk_and_empty_segments_scan_cleanly() {
        assert!(decode_segment(&[]).error.is_none());
        for junk in [&b"\0"[..], &b"SKWRxxxx"[..], &[0xffu8; 40][..]] {
            let scan = decode_segment(junk);
            assert!(scan.records.is_empty());
            let err = scan.error.expect("junk must not scan clean");
            assert!(matches!(err, SkqError::Corrupted { .. }), "{err}");
        }
    }
}

/// FNV-1a 64 — mirrors the file-header digest so the schema-bump test
/// can re-stamp a "valid" header.
fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}
