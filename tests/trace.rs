//! Integration tests for the trace capture (`skq_obs::trace`) and the
//! benchmark trajectory (`skq_bench::trajectory`).
//!
//! The tracer is process-global, so every test that toggles it runs
//! under one mutex. This file is its own test binary (own process), so
//! the serialization does not interact with the other suites.

use std::sync::{Mutex, MutexGuard, OnceLock};

use skq_bench::json::Json;
use skq_bench::trajectory::{self, BenchOptions, Scale};
use skq_obs::{trace, Span};
use structured_keyword_search::prelude::*;

/// Serializes tracer-toggling tests and resets the tracer afterwards.
fn tracer_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    let guard = match LOCK.get_or_init(|| Mutex::new(())).lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    };
    trace::disable();
    guard
}

/// Chrome-trace events as `(name, phase, tid, args)` tuples.
fn exported_events(text: &str) -> Vec<(String, String, i64, Json)> {
    let doc = Json::parse(text).expect("exported trace must be valid JSON");
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .expect("traceEvents array");
    events
        .iter()
        .filter(|e| {
            // Skip the process-name metadata record.
            e.get("ph").and_then(Json::as_str) != Some("M")
        })
        .map(|e| {
            (
                e.get("name")
                    .and_then(Json::as_str)
                    .unwrap_or("")
                    .to_string(),
                e.get("ph").and_then(Json::as_str).unwrap_or("").to_string(),
                e.get("tid").and_then(Json::as_f64).unwrap_or(-1.0) as i64,
                e.get("args").cloned().unwrap_or_else(Json::obj),
            )
        })
        .collect()
}

/// Runs one tiny traced CLI-style query so the capture holds a real
/// build span nested under a query span with telemetry attributes.
fn run_traced_query() {
    let mut parts = Vec::new();
    let mut dict = Dictionary::new();
    let a = dict.intern("a");
    let b = dict.intern("b");
    for i in 0..32 {
        parts.push((Point::new(&[i as f64, (i % 7) as f64]), vec![a, b]));
    }
    let dataset = Dataset::from_parts(parts);
    let root = Span::enter("orp.suite_query");
    let index = OrpKwIndex::build(&dataset, 2);
    let mut sink = CountSink::new();
    let mut stats = QueryStats::new();
    let q = Rect::new(&[0.0, 0.0], &[40.0, 7.0]);
    let _ = index.query_sink(&q, &[a, b], &mut sink, &mut stats);
    skq_core::telemetry::record_query(
        "trace_itest",
        2,
        &stats,
        std::time::Duration::from_micros(5),
    );
    drop(root);
}

#[test]
fn export_is_valid_json_with_balanced_spans() {
    let _guard = tracer_lock();
    trace::enable();
    run_traced_query();
    let handle = std::thread::spawn(run_traced_query);
    handle.join().expect("traced thread");
    trace::disable();
    let text = trace::export_chrome();

    let events = exported_events(&text);
    assert!(!events.is_empty());
    // Per-thread begin/end events must pair up like brackets, with
    // matching names (Perfetto rejects captures violating this).
    let mut tids: Vec<i64> = events.iter().map(|e| e.2).collect();
    tids.sort_unstable();
    tids.dedup();
    assert!(tids.len() >= 2, "two threads must get distinct tids");
    for tid in tids {
        let mut stack: Vec<&str> = Vec::new();
        for (name, phase, etid, _) in &events {
            if *etid != tid {
                continue;
            }
            match phase.as_str() {
                "B" => stack.push(name),
                "E" => {
                    assert_eq!(stack.pop(), Some(name.as_str()), "E without matching B");
                }
                other => panic!("unexpected phase {other:?}"),
            }
        }
        assert!(stack.is_empty(), "unclosed spans on tid {tid}");
    }
    // The build span nests under the query span and telemetry
    // attributes ride on the query span's end event.
    let names: Vec<&str> = events.iter().map(|e| e.0.as_str()).collect();
    assert!(names.contains(&"orp.suite_query"));
    assert!(names.contains(&"orp.build"));
    let query_end = events
        .iter()
        .find(|(name, phase, _, _)| name == "orp.suite_query" && phase == "E")
        .expect("query end event");
    let args = &query_end.3;
    assert_eq!(args.get("kind").and_then(Json::as_str), Some("trace_itest"));
    assert!(args.get("nodes_visited").and_then(Json::as_f64).is_some());
    assert!(args
        .get("postings_scanned")
        .and_then(Json::as_f64)
        .is_some());
}

#[test]
fn attributes_round_trip_through_export() {
    let _guard = tracer_lock();
    trace::enable();
    {
        let _span = Span::enter("orp.suite_query");
        trace::attach_u64("answer", 42);
        trace::attach_f64("ratio", 1.5);
        trace::attach_str("label", "planted \"quote\"");
        trace::attach("flag", trace::AttrValue::Bool(true));
    }
    trace::disable();
    let events = exported_events(&trace::export_chrome());
    let (_, _, _, args) = events
        .iter()
        .find(|(name, phase, _, _)| name == "orp.suite_query" && phase == "E")
        .expect("span end event");
    assert_eq!(args.get("answer").and_then(Json::as_f64), Some(42.0));
    assert_eq!(args.get("ratio").and_then(Json::as_f64), Some(1.5));
    assert_eq!(
        args.get("label").and_then(Json::as_str),
        Some("planted \"quote\"")
    );
    assert_eq!(args.get("flag"), Some(&Json::Bool(true)));
}

#[test]
fn disabled_tracer_records_nothing() {
    let _guard = tracer_lock();
    trace::enable();
    trace::disable();
    run_traced_query();
    assert_eq!(trace::event_count(), 0);
    assert_eq!(trace::current_trace_id(), None);
}

#[test]
fn bench_smoke_produces_schema_valid_document() {
    let _guard = tracer_lock();
    let zero_probe = || (0u64, 0u64);
    let opts = BenchOptions {
        scale: Scale::Smoke,
        ..BenchOptions::default()
    };
    let doc = trajectory::run(opts, &zero_probe);
    trajectory::validate(&doc).expect("smoke document must satisfy its own schema");
    assert_eq!(
        doc.get("format").and_then(Json::as_str),
        Some(trajectory::FORMAT)
    );
    assert_eq!(doc.get("deterministic"), Some(&Json::Bool(true)));
    // Deterministic documents must render identically across runs.
    let again = trajectory::run(
        BenchOptions {
            scale: Scale::Smoke,
            ..BenchOptions::default()
        },
        &zero_probe,
    );
    assert_eq!(doc.render_pretty(2), again.render_pretty(2));
    // And self-diff reports no movement at all.
    let report = trajectory::diff(&doc, &again, 10.0).expect("diff");
    assert_eq!(report.regressions, 0);
    assert_eq!(report.improvements, 0);
    assert!(report.incomparable.is_empty());
}
