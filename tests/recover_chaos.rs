//! Chaos recovery battery (`cargo test --features failpoints`):
//! injected failures at every WAL append / fsync / checkpoint site,
//! followed by an unclean shutdown and recovery, must yield exactly
//! the acknowledged state — and indexes built from it must answer
//! rect / ball / NN queries identically to a brute-force oracle over
//! the acknowledged prefix, with replay bounded by the checkpoint
//! cadence. The process-abort variant of the same property runs in
//! CI's `crash-smoke` job via the `skq-crash` driver.

#![cfg(feature = "failpoints")]

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::Mutex;

use structured_keyword_search::core::dynamic::ObjectHandle;
use structured_keyword_search::core::failpoints::{self, FailAction};
use structured_keyword_search::core::suite::OrpKwSuite;
use structured_keyword_search::prelude::*;
use structured_keyword_search::store::{
    CheckpointPolicy, DurabilityConfig, DurableDynamic, SyncPolicy, WalConfig,
};

/// The fail-point registry is process-global; serialize the battery and
/// leave the registry clean even when a test fails.
static CHAOS_LOCK: Mutex<()> = Mutex::new(());

struct ChaosGuard<'a>(#[allow(dead_code)] std::sync::MutexGuard<'a, ()>);

impl ChaosGuard<'_> {
    fn acquire() -> ChaosGuard<'static> {
        let guard = CHAOS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        failpoints::clear();
        ChaosGuard(guard)
    }
}

impl Drop for ChaosGuard<'_> {
    fn drop(&mut self) {
        failpoints::clear();
    }
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("skq-rchaos-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create tmpdir");
    dir
}

/// Real-durability cadence: fsync every append, tiny segments, a
/// checkpoint every `every_ops` acknowledged ops.
fn config(every_ops: u64) -> DurabilityConfig {
    DurabilityConfig {
        wal: WalConfig {
            sync: SyncPolicy::Always,
            segment_bytes: 4096,
        },
        checkpoint: CheckpointPolicy {
            every_ops,
            every_bytes: u64::MAX,
        },
    }
}

/// Tiny deterministic generator (xorshift64).
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

/// The acknowledged state: `(id, point, keywords)` per live object.
type Live = Vec<(u64, Point, Vec<Keyword>)>;

/// Drives `ops` seeded inserts/deletes against `durable`. When `site`
/// is set, a one-shot `FailAction::Err` is armed at that site before
/// every `inject_every`-th op. Returns the oracle of the *acknowledged*
/// state: an op that came back `Err` must leave no trace.
fn drive(
    durable: &mut DurableDynamic,
    seed: u64,
    ops: u64,
    site: Option<&str>,
    inject_every: u64,
) -> Live {
    let mut rng = Rng(seed | 1);
    let mut acked: Live = Vec::new();
    let mut handles: HashMap<u64, ObjectHandle> = HashMap::new();
    let mut failures = 0u64;
    for step in 0..ops {
        if let Some(site) = site {
            if step % inject_every == inject_every - 1 {
                failpoints::inject(site, FailAction::Err, Some(1));
            }
        }
        if rng.below(100) < 75 || acked.is_empty() {
            let p = Point::new2(rng.below(64) as f64, rng.below(64) as f64);
            let kws = vec![rng.below(5) as Keyword, 5 + rng.below(3) as Keyword];
            match durable.insert(p, kws.clone()) {
                Ok(h) => {
                    handles.insert(h.id(), h);
                    acked.push((h.id(), p, kws));
                }
                Err(e) => {
                    failures += 1;
                    assert!(
                        matches!(e, SkqError::Internal(_) | SkqError::Store { .. }),
                        "insert failure must be typed: {e}"
                    );
                }
            }
        } else {
            let victim = rng.below(acked.len() as u64) as usize;
            let id = acked[victim].0;
            match durable.delete(handles[&id]) {
                Ok(was_live) => {
                    assert!(was_live, "oracle said id {id} was live");
                    acked.remove(victim);
                }
                Err(e) => {
                    failures += 1;
                    assert!(
                        matches!(e, SkqError::Internal(_) | SkqError::Store { .. }),
                        "delete failure must be typed: {e}"
                    );
                }
            }
        }
    }
    // Checkpoint-site injections fire inside the (swallowed) checkpoint
    // path, so only append/fsync sites surface op failures.
    if matches!(site, Some("store::wal_append" | "store::fsync")) {
        assert!(failures > 0, "{site:?}: injections never fired");
    }
    // A leftover one-shot injection must not leak into recovery.
    failpoints::clear();
    acked
}

fn assert_recovered_equals(acked: &Live, durable: &DurableDynamic) {
    let mut want = acked.to_vec();
    want.sort_by_key(|(id, _, _)| *id);
    let mut got = durable.index().live_objects();
    got.sort_by_key(|(id, _, _)| *id);
    assert_eq!(
        got.len(),
        want.len(),
        "recovered live-set size differs from acknowledged"
    );
    for ((gid, gp, gkw), (wid, wp, wkw)) in got.iter().zip(&want) {
        assert_eq!(gid, wid);
        assert_eq!(gp.coords(), wp.coords());
        assert_eq!(gkw, wkw);
    }
}

/// Builds the full query surface from the acknowledged oracle and
/// cross-checks rect / ball / NN answers against brute force.
fn assert_queries_match_oracle(acked: &Live, seed: u64) {
    if acked.is_empty() {
        return;
    }
    let mut live = acked.to_vec();
    live.sort_by_key(|(id, _, _)| *id);
    let dataset = Dataset::from_parts(live.iter().map(|(_, p, kw)| (*p, kw.clone())).collect());
    let suite = OrpKwSuite::try_build(&dataset, 2).expect("suite from recovered objects");
    let srp = SrpKwIndex::try_build(&dataset, 2).expect("srp from recovered objects");
    let nn = LinfNnIndex::try_build(&dataset, 2).expect("nn from recovered objects");
    let mut rng = Rng((seed ^ 0xdead_beef_cafe_f00d) | 1);
    for round in 0..20 {
        let kws = vec![rng.below(5) as Keyword, 5 + rng.below(3) as Keyword];
        let matches_kw = |okw: &Vec<Keyword>| kws.iter().all(|k| okw.contains(k));

        // Rect with half-integer bounds: no boundary ties on the grid.
        let lo = (rng.below(64) as f64 - 0.5, rng.below(64) as f64 - 0.5);
        let span = (rng.below(32) as f64 + 1.0, rng.below(32) as f64 + 1.0);
        let rect = Rect::new(&[lo.0, lo.1], &[lo.0 + span.0, lo.1 + span.1]);
        let mut got = suite.query(&rect, &kws);
        got.sort_unstable();
        let mut want: Vec<u32> = live
            .iter()
            .enumerate()
            .filter(|(_, (_, p, okw))| {
                matches_kw(okw) && (0..2).all(|d| rect.lo(d) <= p.get(d) && p.get(d) <= rect.hi(d))
            })
            .map(|(i, _)| i as u32)
            .collect();
        want.sort_unstable();
        assert_eq!(got, want, "rect mismatch in round {round}");

        // Ball with half-integer radius: grid distances² are integers,
        // so no boundary ties.
        let center = Point::new2(rng.below(64) as f64, rng.below(64) as f64);
        let radius = rng.below(20) as f64 + 0.5;
        let mut got = srp.query(&Ball::new(center, radius), &kws);
        got.sort_unstable();
        let mut want: Vec<u32> = live
            .iter()
            .enumerate()
            .filter(|(_, (_, p, okw))| matches_kw(okw) && p.l2_sq(&center) <= radius * radius)
            .map(|(i, _)| i as u32)
            .collect();
        want.sort_unstable();
        assert_eq!(got, want, "ball mismatch in round {round}");

        // NN: L∞ ties are possible on the grid — compare the sorted
        // distance profile, not the id set.
        let t = 1 + rng.below(4) as usize;
        let mut got: Vec<f64> = nn
            .query(&center, t, &kws)
            .iter()
            .map(|&i| live[i as usize].1.linf(&center))
            .collect();
        got.sort_by(f64::total_cmp);
        let mut want: Vec<f64> = live
            .iter()
            .filter(|(_, _, okw)| matches_kw(okw))
            .map(|(_, p, _)| p.linf(&center))
            .collect();
        want.sort_by(f64::total_cmp);
        want.truncate(t);
        assert_eq!(got, want, "NN distance profile mismatch in round {round}");
    }
}

#[test]
fn injected_failures_at_every_durability_site_never_lose_acked_ops() {
    let _guard = ChaosGuard::acquire();
    for (i, site) in ["store::wal_append", "store::fsync", "store::checkpoint"]
        .iter()
        .enumerate()
    {
        let dir = tmpdir(&format!("site{i}"));
        let acked = {
            let (mut durable, _) = DurableDynamic::open(&dir, 2, 2, config(32)).expect("open");
            drive(&mut durable, 0x5eed + i as u64, 300, Some(site), 9)
            // Unclean shutdown: dropped mid-stream with a live WAL
            // tail, no final checkpoint.
        };
        let (durable, report) = DurableDynamic::open(&dir, 2, 2, config(32)).expect("recover");
        assert_eq!(report.skipped, 0, "{site}: no record is poisoned");
        assert!(
            report.replayed <= 2 * 32,
            "{site}: replayed {} > checkpoint budget",
            report.replayed
        );
        assert_recovered_equals(&acked, &durable);
        assert_queries_match_oracle(&acked, 0x5eed + i as u64);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn persistent_checkpoint_failure_costs_replay_not_data() {
    let _guard = ChaosGuard::acquire();
    let dir = tmpdir("ckpt-down");
    let acked = {
        let (mut durable, _) = DurableDynamic::open(&dir, 2, 2, config(16)).expect("open");
        // Every checkpoint attempt fails for the whole run.
        failpoints::inject("store::checkpoint", FailAction::Err, None);
        drive(&mut durable, 0xabcd, 200, None, u64::MAX)
    };
    let (durable, report) = DurableDynamic::open(&dir, 2, 2, config(16)).expect("recover");
    // No checkpoint ever landed: recovery replays the whole log —
    // slow, but not lossy. (The end-of-open checkpoint then repairs
    // the cadence for next time.)
    assert_eq!(report.checkpoint_lsn, 0);
    assert_eq!(report.replayed, 200);
    assert_recovered_equals(&acked, &durable);
    drop(durable);
    let (durable, report) = DurableDynamic::open(&dir, 2, 2, config(16)).expect("re-recover");
    assert!(
        report.replayed <= 2 * 16,
        "after a healthy open, replay is back under budget (got {})",
        report.replayed
    );
    assert_recovered_equals(&acked, &durable);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn torn_wal_tail_after_injected_failures_recovers_a_valid_prefix() {
    let _guard = ChaosGuard::acquire();
    let dir = tmpdir("torn");
    let acked = {
        let (mut durable, _) = DurableDynamic::open(&dir, 2, 2, config(64)).expect("open");
        drive(&mut durable, 0x7777, 150, Some("store::wal_append"), 13)
    };
    // Tear a few bytes off the newest WAL segment — the on-disk state a
    // mid-write power cut leaves behind. Rolled-back ops left no record,
    // so the tear damages exactly the last *acknowledged* record.
    let wal_dir = dir.join("wal");
    let mut segs: Vec<PathBuf> = std::fs::read_dir(&wal_dir)
        .expect("wal dir")
        .map(|e| e.expect("entry").path())
        .collect();
    segs.sort();
    let last = segs.last().expect("a segment");
    let bytes = std::fs::read(last).expect("read segment");
    assert!(bytes.len() > 5, "active segment must hold records");
    std::fs::write(last, &bytes[..bytes.len() - 5]).expect("tear");

    let (durable, report) = DurableDynamic::open(&dir, 2, 2, config(64)).expect("recover");
    assert!(report.torn_tail, "the tear must be detected");
    assert_eq!(report.skipped, 0);
    // Exactly one record (an insert or a delete) was lost with the
    // tear, so the recovered live set differs from the fully-acked
    // oracle by at most one object — and is still internally valid.
    let survived = durable.index().live_objects().len() as i64;
    assert!(
        (survived - acked.len() as i64).abs() <= 1,
        "tear lost more than the final record: {survived} live vs {} acked",
        acked.len()
    );
    let _ = std::fs::remove_dir_all(&dir);
}
