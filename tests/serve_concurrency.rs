//! Concurrency battery for the serving layer's snapshot rotation
//! (DESIGN.md §14): N writer threads publish freshly built suites
//! while M reader threads continuously read and query, proving that
//!
//! 1. rotation never yields a **torn read** — every snapshot a reader
//!    clones answers queries exactly as one complete generation does
//!    (value and generation tag always pair up);
//! 2. reads are never **stale beyond one epoch** — a read that starts
//!    after `epoch()` returned `e` observes `generation >= e`, and any
//!    observed generation is at most one ahead of a subsequently
//!    loaded epoch;
//! 3. per-thread generations are **monotone** (a reader never travels
//!    back in time);
//! 4. with `debug-invariants`, every published snapshot passes the
//!    deep structural validator *while rotation is live*.
//!
//! Interleaving schedules are seeded through the vendored proptest
//! substrate, so a failing schedule reproduces from its printed seed.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use structured_keyword_search::core::suite::OrpKwSuite;
use structured_keyword_search::prelude::*;
use structured_keyword_search::serve::{Request, Server, ServerConfig, SnapshotCell};

/// Builds a suite whose full-range 2-keyword answer has exactly `n`
/// hits — the per-generation fingerprint the readers verify.
fn fingerprint_suite(n: usize) -> OrpKwSuite {
    let dataset = Dataset::from_parts(
        (0..n)
            .map(|i| {
                let x = (i % 10) as f64;
                let y = (i / 10) as f64;
                (Point::new2(x, y), vec![0u32, 1])
            })
            .collect(),
    );
    OrpKwSuite::build(&dataset, 2)
}

/// Full-range guarded query against a snapshot; returns the hit count.
fn count_hits(suite: &OrpKwSuite) -> usize {
    let (ids, _) = suite.query_guarded(&Rect::full(2), &[0, 1], &QueryGuard::new());
    ids.len()
}

/// The writer/reader stress at one seeded schedule. Writers publish
/// suites with distinct fingerprints and record generation → expected
/// count under a mutex held across the publish, so readers can always
/// resolve what a generation must answer.
fn rotation_stress(seed: u64, writers: usize, publishes: usize, readers: usize, reads: usize) {
    let cell = Arc::new(SnapshotCell::new(fingerprint_suite(10)));
    let expected = Arc::new(Mutex::new(HashMap::from([(1u64, 10usize)])));
    let done = Arc::new(AtomicBool::new(false));

    let reader_handles: Vec<_> = (0..readers)
        .map(|r| {
            let cell = Arc::clone(&cell);
            let expected = Arc::clone(&expected);
            let done = Arc::clone(&done);
            std::thread::spawn(move || {
                let mut last_generation = 0u64;
                let mut performed = 0usize;
                while performed < reads && !(done.load(Ordering::Acquire) && performed > 0) {
                    let e0 = cell.epoch();
                    let snap = cell.current();
                    let e1 = cell.epoch();
                    // Bounded staleness, both directions.
                    assert!(
                        snap.generation >= e0,
                        "reader {r}: read starting at epoch {e0} got stale generation {}",
                        snap.generation
                    );
                    assert!(
                        snap.generation <= e1 + 1,
                        "reader {r}: generation {} is ahead of epoch {e1} by more than the \
                         in-flight rotation",
                        snap.generation
                    );
                    // Monotonicity per reader.
                    assert!(
                        snap.generation >= last_generation,
                        "reader {r}: generation went backwards ({last_generation} -> {})",
                        snap.generation
                    );
                    last_generation = snap.generation;
                    // Torn-read check: the snapshot must answer exactly
                    // as the generation it claims to be.
                    let want = *expected
                        .lock()
                        .unwrap()
                        .get(&snap.generation)
                        .unwrap_or_else(|| panic!("generation {} never recorded", snap.generation));
                    assert_eq!(
                        count_hits(&snap.value),
                        want,
                        "reader {r}: torn read at generation {}",
                        snap.generation
                    );
                    // Deep structural validation of the served snapshot
                    // (every 8th read: it walks the whole index).
                    #[cfg(feature = "debug-invariants")]
                    if performed.is_multiple_of(8) {
                        snap.value
                            .validate()
                            .unwrap_or_else(|v| panic!("served snapshot corrupt: {v}"));
                    }
                    performed += 1;
                }
            })
        })
        .collect();

    let writer_handles: Vec<_> = (0..writers)
        .map(|w| {
            let cell = Arc::clone(&cell);
            let expected = Arc::clone(&expected);
            let mut rng = StdRng::seed_from_u64(seed ^ (w as u64).wrapping_mul(0x9e37_79b9));
            std::thread::spawn(move || {
                for _ in 0..publishes {
                    let n = 10 + rng.gen_range(0..8) * 10;
                    let suite = fingerprint_suite(n);
                    // Holding the map lock across the publish makes the
                    // generation → fingerprint record visible before
                    // any reader can observe the new snapshot.
                    let mut map = expected.lock().unwrap();
                    let generation = cell.publish(suite);
                    map.insert(generation, n);
                    drop(map);
                    if rng.gen_bool(0.3) {
                        std::thread::yield_now();
                    }
                }
            })
        })
        .collect();

    for h in writer_handles {
        h.join().unwrap();
    }
    done.store(true, Ordering::Release);
    for h in reader_handles {
        h.join().unwrap();
    }

    // Quiescent end state: epoch covers every publish, and the final
    // snapshot matches its record.
    let final_epoch = cell.epoch();
    assert_eq!(final_epoch as usize, 1 + writers * publishes);
    let snap = cell.current();
    assert_eq!(snap.generation, final_epoch);
    assert_eq!(
        count_hits(&snap.value),
        expected.lock().unwrap()[&final_epoch]
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Seeded interleaving schedules for the N-writer/M-reader stress.
    #[test]
    fn rotation_never_tears_or_goes_stale(seed in 0u64..u64::MAX) {
        rotation_stress(seed, 2, 5, 4, 120);
    }
}

/// One fixed schedule that always runs, independent of the proptest
/// sweep (and cheap enough for the 100-consecutive-runs criterion).
#[test]
fn rotation_stress_fixed_schedule() {
    rotation_stress(0xC0FF_EE00, 3, 4, 3, 100);
}

/// The same contract end-to-end through a [`Server`]: queries running
/// while a publisher rotates snapshots always see one complete
/// generation, and replies tag the generation that served them.
#[test]
fn server_rotation_under_live_queries() {
    let expected = Arc::new(Mutex::new(HashMap::from([(1u64, 10usize)])));
    let server = Arc::new(Server::start(
        fingerprint_suite(10),
        ServerConfig {
            workers: 4,
            queue_capacity: 256,
            ..ServerConfig::default()
        },
    ));

    let publisher = {
        let expected = Arc::clone(&expected);
        let server = Arc::clone(&server);
        std::thread::spawn(move || {
            for g in 0..8usize {
                let n = 10 + (g % 5) * 10;
                let suite = fingerprint_suite(n);
                let mut map = expected.lock().unwrap();
                let generation = server.publish(suite);
                map.insert(generation, n);
                drop(map);
                std::thread::yield_now();
            }
        })
    };

    let clients: Vec<_> = (0..3)
        .map(|_| {
            let expected = Arc::clone(&expected);
            let server = Arc::clone(&server);
            std::thread::spawn(move || {
                for _ in 0..60 {
                    let reply = server
                        .query(Request::new(Rect::full(2), vec![0, 1]))
                        .expect("rotation must never fail a query");
                    let want = *expected
                        .lock()
                        .unwrap()
                        .get(&reply.generation)
                        .unwrap_or_else(|| {
                            panic!("reply from unrecorded generation {}", reply.generation)
                        });
                    assert_eq!(
                        reply.ids.len(),
                        want,
                        "torn reply at generation {}",
                        reply.generation
                    );
                }
            })
        })
        .collect();

    publisher.join().unwrap();
    for c in clients {
        c.join().unwrap();
    }
    assert_eq!(server.epoch(), 9);
    // The post-rotation server still serves the newest generation.
    let reply = server
        .query(Request::new(Rect::full(2), vec![0, 1]))
        .unwrap();
    assert_eq!(reply.generation, 9);
    server.shutdown();
}

/// Old generations stay fully usable while new ones are being served:
/// a long-running request's snapshot is never invalidated mid-flight.
#[test]
fn inflight_snapshot_survives_rotation() {
    let cell = SnapshotCell::new(fingerprint_suite(30));
    let held = cell.current();
    for g in 0..5usize {
        cell.publish(fingerprint_suite(10 + g));
    }
    assert_eq!(held.generation, 1);
    assert_eq!(count_hits(&held.value), 30);
    assert_eq!(cell.epoch(), 6);
}
