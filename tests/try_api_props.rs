//! Property tests for the fallible API surface: on valid inputs,
//! `try_build` + `try_query_into` must be observationally identical to
//! the legacy panicking `build` + `query` — the robustness layer adds
//! error reporting, never different answers.

use proptest::prelude::*;
use structured_keyword_search::prelude::*;

const VOCAB: u32 = 7;

/// Dataset strategy: `n` points on a small integer grid (forcing ties),
/// docs of 1–4 keywords from a small vocabulary (forcing dense
/// co-occurrence).
fn dataset_strategy(dim: usize, n: core::ops::Range<usize>) -> impl Strategy<Value = Dataset> {
    prop::collection::vec(
        (
            prop::collection::vec(-8i32..8, dim),
            prop::collection::vec(0u32..VOCAB, 1..4),
        ),
        n,
    )
    .prop_map(|raw| {
        Dataset::from_parts(
            raw.into_iter()
                .map(|(coords, kws)| {
                    let coords: Vec<f64> = coords.into_iter().map(f64::from).collect();
                    (Point::new(&coords), kws)
                })
                .collect(),
        )
    })
}

/// Rectangle dataset for RR-KW: integer corner + extent per axis.
fn rect_dataset_strategy(
    n: core::ops::Range<usize>,
) -> impl Strategy<Value = Vec<(Rect, Vec<Keyword>)>> {
    prop::collection::vec(
        (
            prop::collection::vec((-8i32..8, 0i32..6), 2),
            prop::collection::vec(0u32..VOCAB, 1..4),
        ),
        n,
    )
    .prop_map(|raw| {
        raw.into_iter()
            .map(|(iv, kws)| {
                let lo: Vec<f64> = iv.iter().map(|&(a, _)| f64::from(a)).collect();
                let hi: Vec<f64> = iv.iter().map(|&(a, l)| f64::from(a + l)).collect();
                (Rect::new(&lo, &hi), kws)
            })
            .collect()
    })
}

/// Two distinct keywords.
fn two_keywords() -> impl Strategy<Value = Vec<Keyword>> {
    (0u32..VOCAB, 1u32..VOCAB).prop_map(|(a, d)| vec![a, (a + d) % VOCAB])
}

fn rect_strategy(dim: usize) -> impl Strategy<Value = Rect> {
    prop::collection::vec((-10i32..10, 0i32..12), dim).prop_map(|iv| {
        let lo: Vec<f64> = iv.iter().map(|&(a, _)| f64::from(a)).collect();
        let hi: Vec<f64> = iv.iter().map(|&(a, l)| f64::from(a + l)).collect();
        Rect::new(&lo, &hi)
    })
}

fn sorted(mut v: Vec<u32>) -> Vec<u32> {
    v.sort_unstable();
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn orp_try_surface_equals_legacy(
        d in dataset_strategy(2, 4..60),
        q in rect_strategy(2),
        kws in two_keywords(),
    ) {
        let legacy = OrpKwIndex::build(&d, 2);
        let fallible = OrpKwIndex::try_build(&d, 2).expect("valid dataset must build");
        let mut out = Vec::new();
        let stats = fallible.try_query_into(&q, &kws, &mut out).expect("valid query");
        prop_assert_eq!(sorted(out.clone()), sorted(legacy.query(&q, &kws)));
        prop_assert_eq!(stats.emitted, out.len() as u64);
        prop_assert!(stats.truncated_reason.is_none());
    }

    #[test]
    fn rr_try_surface_equals_legacy(
        rects in rect_dataset_strategy(4..40),
        q in rect_strategy(2),
        kws in two_keywords(),
    ) {
        let legacy = RrKwIndex::build(&rects, 2);
        let fallible = RrKwIndex::try_build(&rects, 2).expect("valid rectangles must build");
        let mut out = Vec::new();
        fallible.try_query_into(&q, &kws, &mut out).expect("valid query");
        prop_assert_eq!(sorted(out), sorted(legacy.query(&q, &kws)));
    }

    #[test]
    fn nn_linf_try_surface_equals_legacy(
        d in dataset_strategy(2, 4..60),
        at in prop::collection::vec(-9i32..9, 2),
        t in 1usize..6,
        kws in two_keywords(),
    ) {
        let at = Point::new(&at.into_iter().map(f64::from).collect::<Vec<_>>());
        let legacy = LinfNnIndex::build(&d, 2);
        let fallible = LinfNnIndex::try_build(&d, 2).expect("valid dataset must build");
        let mut out = Vec::new();
        fallible.try_query_into(&at, t, &kws, &mut out).expect("valid query");
        prop_assert_eq!(sorted(out), sorted(legacy.query(&at, t, &kws)));
    }
}
