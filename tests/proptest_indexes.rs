//! Property tests: every index agrees with the full-scan oracle on
//! arbitrary datasets and queries.
//!
//! These are the repository's main correctness artillery: each strategy
//! generates a dataset (with deliberate coordinate collisions to
//! exercise the rank-space / tie-breaking paths), a query, and a
//! keyword tuple, and asserts the index answer equals a brute-force
//! scan.

use proptest::prelude::*;
use structured_keyword_search::prelude::*;

const VOCAB: u32 = 7;

/// Dataset strategy: `n` points on a small integer grid (forcing ties),
/// docs of 1–4 keywords from a small vocabulary (forcing dense
/// co-occurrence).
fn dataset_strategy(dim: usize, n: core::ops::Range<usize>) -> impl Strategy<Value = Dataset> {
    prop::collection::vec(
        (
            prop::collection::vec(-8i32..8, dim),
            prop::collection::vec(0u32..VOCAB, 1..4),
        ),
        n,
    )
    .prop_map(|raw| {
        Dataset::from_parts(
            raw.into_iter()
                .map(|(coords, kws)| {
                    let coords: Vec<f64> = coords.into_iter().map(f64::from).collect();
                    (Point::new(&coords), kws)
                })
                .collect(),
        )
    })
}

/// Two distinct keywords.
fn two_keywords() -> impl Strategy<Value = Vec<Keyword>> {
    (0u32..VOCAB, 1u32..VOCAB).prop_map(|(a, d)| vec![a, (a + d) % VOCAB])
}

fn rect_strategy(dim: usize) -> impl Strategy<Value = Rect> {
    prop::collection::vec((-10i32..10, 0i32..12), dim).prop_map(|iv| {
        let lo: Vec<f64> = iv.iter().map(|&(a, _)| f64::from(a)).collect();
        let hi: Vec<f64> = iv.iter().map(|&(a, l)| f64::from(a + l)).collect();
        Rect::new(&lo, &hi)
    })
}

fn sorted(mut v: Vec<u32>) -> Vec<u32> {
    v.sort_unstable();
    v
}

/// Runs the `debug-invariants` deep validator on a freshly built index;
/// compiles to nothing under the default feature set, so the oracle
/// comparisons below are unchanged in ordinary CI.
macro_rules! deep_validate {
    ($index:expr) => {{
        #[cfg(feature = "debug-invariants")]
        $index
            .validate()
            .unwrap_or_else(|v| panic!("deep invariant violated: {v}"));
        #[cfg(not(feature = "debug-invariants"))]
        let _ = &$index;
    }};
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn orp_2d_equals_oracle(
        dataset in dataset_strategy(2, 1..120),
        q in rect_strategy(2),
        kws in two_keywords(),
    ) {
        let index = OrpKwIndex::build(&dataset, 2);
        index.check_invariants().unwrap();
        deep_validate!(index);
        let oracle = FullScan::new(&dataset);
        prop_assert_eq!(sorted(index.query(&q, &kws)), oracle.query_rect(&q, &kws));
    }

    #[test]
    fn orp_1d_equals_oracle(
        dataset in dataset_strategy(1, 1..120),
        q in rect_strategy(1),
        kws in two_keywords(),
    ) {
        let index = OrpKwIndex::build(&dataset, 2);
        deep_validate!(index);
        let oracle = FullScan::new(&dataset);
        prop_assert_eq!(sorted(index.query(&q, &kws)), oracle.query_rect(&q, &kws));
    }

    #[test]
    fn orp_3d_dimred_equals_oracle(
        dataset in dataset_strategy(3, 1..100),
        q in rect_strategy(3),
        kws in two_keywords(),
    ) {
        let index = OrpKwIndex::build(&dataset, 2);
        deep_validate!(index);
        let oracle = FullScan::new(&dataset);
        prop_assert_eq!(sorted(index.query(&q, &kws)), oracle.query_rect(&q, &kws));
    }

    #[test]
    fn orp_k3_equals_oracle(
        dataset in dataset_strategy(2, 1..120),
        q in rect_strategy(2),
        (a, d1, d2) in (0u32..VOCAB, 1u32..VOCAB - 1, 1u32..2),
    ) {
        let b = (a + d1) % VOCAB;
        let mut c = (b + d2) % VOCAB;
        if c == a { c = (c + 1) % VOCAB; }
        if c == b { c = (c + 1) % VOCAB; }
        if c == a { c = (c + 1) % VOCAB; }
        let kws = vec![a, b, c];
        let index = OrpKwIndex::build(&dataset, 3);
        deep_validate!(index);
        let oracle = FullScan::new(&dataset);
        prop_assert_eq!(sorted(index.query(&q, &kws)), oracle.query_rect(&q, &kws));
    }

    #[test]
    fn sp_willard_equals_oracle(
        dataset in dataset_strategy(2, 1..120),
        coeffs in prop::collection::vec((-4i32..4, -4i32..4, -20i32..20), 1..3),
        kws in two_keywords(),
    ) {
        let q = ConvexPolytope::new(
            coeffs
                .into_iter()
                .map(|(a, b, c)| Halfspace::new(&[f64::from(a), f64::from(b)], f64::from(c)))
                .collect(),
        );
        let index = SpKwIndex::build_with_strategy(&dataset, 2, SpStrategy::Willard);
        index.check_invariants().unwrap();
        deep_validate!(index);
        let oracle = FullScan::new(&dataset);
        prop_assert_eq!(sorted(index.query_polytope(&q, &kws)), oracle.query_polytope(&q, &kws));
    }

    #[test]
    fn sp_quad_equals_oracle(
        dataset in dataset_strategy(2, 1..120),
        coeffs in prop::collection::vec((-4i32..4, -4i32..4, -20i32..20), 1..3),
        kws in two_keywords(),
    ) {
        let q = ConvexPolytope::new(
            coeffs
                .into_iter()
                .map(|(a, b, c)| Halfspace::new(&[f64::from(a), f64::from(b)], f64::from(c)))
                .collect(),
        );
        let index = SpKwIndex::build_with_strategy(&dataset, 2, SpStrategy::Quad);
        index.check_invariants().unwrap();
        deep_validate!(index);
        let oracle = FullScan::new(&dataset);
        prop_assert_eq!(sorted(index.query_polytope(&q, &kws)), oracle.query_polytope(&q, &kws));
    }

    #[test]
    fn sp_kd_equals_oracle_3d(
        dataset in dataset_strategy(3, 1..100),
        coeffs in prop::collection::vec((-4i32..4, -4i32..4, -4i32..4, -20i32..20), 1..3),
        kws in two_keywords(),
    ) {
        let q = ConvexPolytope::new(
            coeffs
                .into_iter()
                .map(|(a, b, c, d)| {
                    Halfspace::new(&[f64::from(a), f64::from(b), f64::from(c)], f64::from(d))
                })
                .collect(),
        );
        let index = SpKwIndex::build_with_strategy(&dataset, 2, SpStrategy::Kd);
        deep_validate!(index);
        let oracle = FullScan::new(&dataset);
        prop_assert_eq!(sorted(index.query_polytope(&q, &kws)), oracle.query_polytope(&q, &kws));
    }

    #[test]
    fn srp_equals_oracle(
        dataset in dataset_strategy(2, 1..120),
        (cx, cy, r) in (-10i32..10, -10i32..10, 0i32..15),
        kws in two_keywords(),
    ) {
        let ball = Ball::new(Point::new2(f64::from(cx), f64::from(cy)), f64::from(r));
        let index = SrpKwIndex::build(&dataset, 2);
        deep_validate!(index);
        let oracle = FullScan::new(&dataset);
        prop_assert_eq!(sorted(index.query(&ball, &kws)), oracle.query_ball(&ball, &kws));
    }

    #[test]
    fn nn_linf_equals_oracle(
        dataset in dataset_strategy(2, 1..120),
        (qx, qy, t) in (-10i32..10, -10i32..10, 0usize..8),
        kws in two_keywords(),
    ) {
        let q = Point::new2(f64::from(qx), f64::from(qy));
        let index = LinfNnIndex::build(&dataset, 2);
        deep_validate!(index);
        let oracle = FullScan::new(&dataset);
        prop_assert_eq!(index.query(&q, t, &kws), oracle.nn_linf(&q, t, &kws));
    }

    #[test]
    fn nn_l2_equals_oracle(
        dataset in dataset_strategy(2, 1..120),
        (qx, qy, t) in (-10i32..10, -10i32..10, 0usize..8),
        kws in two_keywords(),
    ) {
        let q = Point::new2(f64::from(qx), f64::from(qy));
        let index = L2NnIndex::build(&dataset, 2);
        deep_validate!(index);
        let oracle = FullScan::new(&dataset);
        prop_assert_eq!(index.query(&q, t, &kws), oracle.nn_l2(&q, t, &kws));
    }

    #[test]
    fn ksi_equals_inverted_index(
        docs in prop::collection::vec(prop::collection::vec(0u32..VOCAB, 1..5), 1..150),
        kws in two_keywords(),
    ) {
        let docs: Vec<Document> = docs.into_iter().map(Document::new).collect();
        let ksi = KsiIndex::build(&docs, 2);
        ksi.check_invariants().unwrap();
        deep_validate!(ksi);
        let inv = InvertedIndex::build(&docs);
        prop_assert_eq!(sorted(ksi.intersect(&kws)), inv.intersect(&kws));
        prop_assert_eq!(ksi.intersection_is_empty(&kws), inv.intersect(&kws).is_empty());
    }

    #[test]
    fn limited_queries_are_prefixes_of_matches(
        dataset in dataset_strategy(2, 1..120),
        q in rect_strategy(2),
        kws in two_keywords(),
        limit in 0usize..10,
    ) {
        let index = OrpKwIndex::build(&dataset, 2);
        deep_validate!(index);
        let oracle = FullScan::new(&dataset);
        let full = oracle.query_rect(&q, &kws);
        let mut out = Vec::new();
        let mut stats = QueryStats::new();
        index.query_limited(&q, &kws, limit, &mut out, &mut stats);
        // Limited output size is min(limit, total), and every id is a
        // genuine match.
        prop_assert_eq!(out.len(), limit.min(full.len()));
        for id in out {
            prop_assert!(full.contains(&id));
        }
    }
}
