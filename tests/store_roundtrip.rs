//! Snapshot round-trip properties: for every persistable index,
//! `save → load` must produce a structure that answers queries exactly
//! like the freshly built original, and encoding must be byte-stable
//! (saving twice yields identical bytes — no wall clock, no map
//! iteration order in the format).

use proptest::prelude::*;
use structured_keyword_search::core::suite::OrpKwSuite;
use structured_keyword_search::prelude::*;
use structured_keyword_search::store::Persist;

const VOCAB: u32 = 7;

/// Dataset strategy: points on a small integer grid (forcing rank-space
/// ties), docs of 1–4 keywords from a small vocabulary.
fn dataset_strategy(dim: usize, n: core::ops::Range<usize>) -> impl Strategy<Value = Dataset> {
    prop::collection::vec(
        (
            prop::collection::vec(-8i32..8, dim),
            prop::collection::vec(0u32..VOCAB, 1..4),
        ),
        n,
    )
    .prop_map(|raw| {
        Dataset::from_parts(
            raw.into_iter()
                .map(|(coords, kws)| {
                    let coords: Vec<f64> = coords.into_iter().map(f64::from).collect();
                    (Point::new(&coords), kws)
                })
                .collect(),
        )
    })
}

fn two_keywords() -> impl Strategy<Value = Vec<Keyword>> {
    (0u32..VOCAB, 1u32..VOCAB).prop_map(|(a, d)| vec![a, (a + d) % VOCAB])
}

fn rect_strategy(dim: usize) -> impl Strategy<Value = Rect> {
    prop::collection::vec((-10i32..10, 0i32..12), dim).prop_map(|iv| {
        let lo: Vec<f64> = iv.iter().map(|&(a, _)| f64::from(a)).collect();
        let hi: Vec<f64> = iv.iter().map(|&(a, l)| f64::from(a + l)).collect();
        Rect::new(&lo, &hi)
    })
}

fn sorted(mut v: Vec<u32>) -> Vec<u32> {
    v.sort_unstable();
    v
}

/// Round-trips `value` through bytes, asserting byte-stability on the
/// way, and returns the reloaded structure.
fn reload<T: Persist>(value: &T) -> T {
    let bytes = value.to_bytes().expect("save");
    let again = value.to_bytes().expect("save twice");
    assert_eq!(bytes, again, "encoding must be byte-stable");
    let back = T::try_from_bytes(&bytes).expect("load");
    let rebytes = back.to_bytes().expect("re-save");
    assert_eq!(
        bytes, rebytes,
        "loaded structure must re-encode identically"
    );
    back
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn orp_roundtrip_answers_identically(
        d in dataset_strategy(2, 12..80),
        q in rect_strategy(2),
        kws in two_keywords(),
    ) {
        let built = OrpKwIndex::build(&d, 2);
        let loaded = reload(&built);
        prop_assert_eq!(
            sorted(built.query(&q, &kws)),
            sorted(loaded.query(&q, &kws))
        );
        // The structural counters must agree too: the loaded index is
        // the same tree, not merely an equivalent one.
        let (_, sa) = built.query_with_stats(&q, &kws);
        let (_, sb) = loaded.query_with_stats(&q, &kws);
        prop_assert_eq!(sa.nodes_visited, sb.nodes_visited);
        prop_assert_eq!(sa.objects_examined(), sb.objects_examined());
    }

    #[test]
    fn rr_roundtrip_answers_identically(
        d in dataset_strategy(1, 12..60),
        q in rect_strategy(1),
        kws in two_keywords(),
    ) {
        // 1D intervals flatten to 2D points inside RR-KW, keeping the
        // inner ORP on the persistable Kd engine (2D boxes would lift
        // to 4D and select dimension reduction, which has no
        // encoding — covered by the unsupported-engine test below).
        let rects: Vec<(Rect, Vec<Keyword>)> = (0..d.len())
            .map(|i| {
                let lo = d.point(i).get(0);
                (Rect::new(&[lo], &[lo + 1.5]), d.doc(i).keywords().to_vec())
            })
            .collect();
        let built = RrKwIndex::build(&rects, 2);
        let loaded = reload(&built);
        prop_assert_eq!(
            sorted(built.query(&q, &kws)),
            sorted(loaded.query(&q, &kws))
        );
    }

    #[test]
    fn srp_roundtrip_answers_identically(
        d in dataset_strategy(2, 12..60),
        center in prop::collection::vec(-8i32..8, 2),
        radius in 1u32..8,
        kws in two_keywords(),
    ) {
        // 2D data lifts to a 3D Kd-strategy SP-KW inside SRP-KW — the
        // persistable configuration.
        let built = SrpKwIndex::build(&d, 2);
        let loaded = reload(&built);
        let c: Vec<f64> = center.into_iter().map(f64::from).collect();
        let ball = Ball::new(Point::new(&c), f64::from(radius));
        prop_assert_eq!(
            sorted(built.query(&ball, &kws)),
            sorted(loaded.query(&ball, &kws))
        );
    }

    #[test]
    fn nn_linf_roundtrip_answers_identically(
        d in dataset_strategy(2, 12..60),
        at in prop::collection::vec(-8i32..8, 2),
        t in 1usize..6,
        kws in two_keywords(),
    ) {
        let built = LinfNnIndex::build(&d, 2);
        let loaded = reload(&built);
        let p: Vec<f64> = at.into_iter().map(f64::from).collect();
        let p = Point::new(&p);
        prop_assert_eq!(built.query(&p, t, &kws), loaded.query(&p, t, &kws));
    }

    #[test]
    fn suite_roundtrip_every_route(
        d in dataset_strategy(2, 12..60),
        q in rect_strategy(2),
        kws in prop::collection::vec(0u32..VOCAB, 0..5),
    ) {
        let built = OrpKwSuite::build(&d, 3);
        let bytes = built.to_bytes().expect("save");
        prop_assert_eq!(&bytes, &built.to_bytes().expect("save twice"));
        let loaded = OrpKwSuite::try_load(&bytes).expect("load");
        // Any keyword count: exercises the range-scan, postings,
        // framework, and post-filter routes of the suite dispatcher.
        prop_assert_eq!(
            sorted(built.query(&q, &kws)),
            sorted(loaded.query(&q, &kws))
        );
    }
}

#[test]
fn unsupported_engines_save_as_typed_store_errors() {
    let d3 = Dataset::from_parts(
        (0..40)
            .map(|i| {
                let x = f64::from(i % 4);
                let y = f64::from((i / 4) % 4);
                let z = f64::from(i / 16);
                (Point::new(&[x, y, z]), vec![0u32, 1 + (i % 3)])
            })
            .collect(),
    );
    // d >= 3 selects the dimension-reduction ORP engine: no encoding.
    let orp3 = OrpKwIndex::build(&d3, 2);
    match orp3.to_bytes() {
        Err(SkqError::Store { backend, .. }) => assert_eq!(backend, "save"),
        other => panic!("expected Store error, got {:?}", other.map(|b| b.len())),
    }
    // The Willard SP-KW strategy has no encoding either.
    let d2 = Dataset::from_parts(
        (0..40)
            .map(|i| {
                let x = f64::from(i % 8);
                let y = f64::from(i / 8);
                (Point::new2(x, y), vec![0u32, 1 + (i % 3)])
            })
            .collect(),
    );
    let sp = SpKwIndex::build_with_strategy(&d2, 2, SpStrategy::Willard);
    match sp.to_bytes() {
        Err(SkqError::Store { backend, .. }) => assert_eq!(backend, "save"),
        other => panic!("expected Store error, got {:?}", other.map(|b| b.len())),
    }
}
