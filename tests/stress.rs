//! Large-scale end-to-end stress runs.
//!
//! Ignored by default (minutes of work); run with
//! `cargo test --release --test stress -- --ignored`.

use structured_keyword_search::prelude::*;
use structured_keyword_search::workload::scenarios;

fn sorted(mut v: Vec<u32>) -> Vec<u32> {
    v.sort_unstable();
    v
}

#[test]
#[ignore = "large-scale run; invoke explicitly with --ignored"]
fn city_200k_all_indexes_agree_with_baselines() {
    let city = scenarios::city(200_000, 42);
    let k = 2;
    let orp = OrpKwIndex::build(&city, k);
    let lc = LcKwIndex::build(&city, k);
    let srp = SrpKwIndex::build(&city, k);
    let nn = LinfNnIndex::build(&city, k);
    let kf = KeywordsFirst::build(&city);

    let mut gen = QueryGen::new(&city, 43);
    for trial in 0..100 {
        let band = (trial % 10) as f64 / 10.0;
        let Some(kws) = gen.keywords(k, band) else {
            continue;
        };

        let q = gen.rect(0.002 * ((trial % 7) + 1) as f64);
        let expected = sorted(kf.query_rect(&q, &kws));
        assert_eq!(sorted(orp.query(&q, &kws)), expected, "orp trial {trial}");
        assert_eq!(
            sorted(lc.query_rect(&q, &kws)),
            expected,
            "lc trial {trial}"
        );

        let center = gen.integer_point();
        let ball = Ball::new(center, 2_000.0 + 500.0 * (trial % 5) as f64);
        assert_eq!(
            sorted(srp.query(&ball, &kws)),
            sorted(kf.query_ball(&ball, &kws)),
            "srp trial {trial}"
        );

        let p = gen.point();
        let t = 1 + trial % 16;
        assert_eq!(
            nn.query(&p, t, &kws),
            kf.nn_linf(&p, t, &kws),
            "nn trial {trial}"
        );
    }
}

#[test]
#[ignore = "large-scale run; invoke explicitly with --ignored"]
fn sensor_net_100k_dimred_agrees() {
    let net = scenarios::sensor_net(100_000, 7);
    let orp = OrpKwIndex::build(&net, 2);
    let kf = KeywordsFirst::build(&net);
    let mut gen = QueryGen::new(&net, 8);
    for trial in 0..60 {
        let Some(kws) = gen.keywords(2, (trial % 4) as f64 / 4.0) else {
            continue;
        };
        let q = gen.rect(0.01 * ((trial % 9) + 1) as f64);
        assert_eq!(
            sorted(orp.query(&q, &kws)),
            sorted(kf.query_rect(&q, &kws)),
            "trial {trial}"
        );
    }
}

#[test]
#[ignore = "large-scale run; invoke explicitly with --ignored"]
fn dynamic_churn_500k_operations() {
    use rand::{rngs::StdRng, Rng, SeedableRng};
    use structured_keyword_search::core::dynamic::DynamicOrpKw;

    let mut rng = StdRng::seed_from_u64(11);
    let mut idx = DynamicOrpKw::new(2, 2);
    let mut live: Vec<_> = Vec::new();
    for step in 0..500_000u32 {
        match rng.gen_range(0..10) {
            0..=5 => {
                let p = Point::new2(rng.gen_range(0..1000) as f64, rng.gen_range(0..1000) as f64);
                let doc = vec![rng.gen_range(0..12), 12 + rng.gen_range(0..4)];
                live.push(idx.insert(p, doc));
            }
            6..=8 => {
                if !live.is_empty() {
                    let i = rng.gen_range(0..live.len());
                    assert!(idx.delete(live.swap_remove(i)));
                }
            }
            _ => {
                let x: f64 = rng.gen_range(0..1000) as f64;
                let y: f64 = rng.gen_range(0..1000) as f64;
                let q = Rect::new(&[x, y], &[x + 50.0, y + 50.0]);
                let w = rng.gen_range(0..12);
                let v = 12 + rng.gen_range(0..4);
                let hits = idx.query(&q, &[w, v]);
                // Spot-invariant: every reported handle is live.
                assert!(hits.len() <= idx.len(), "step {step}");
            }
        }
    }
    assert_eq!(idx.len(), live.len());
}
