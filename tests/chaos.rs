//! Chaos tests (`cargo test --features failpoints`): every registered
//! fail point, when armed, must surface as a typed `Err` (or an
//! isolated shard failure) — never an uncaught panic — and disarming it
//! must leave every index able to build and answer correctly.
//!
//! The fail-point registry is process-global, so these tests serialize
//! on a shared mutex instead of relying on distinct site names.

#![cfg(feature = "failpoints")]

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use structured_keyword_search::core::batch::{run_batch_isolated, BatchQuery, ShardOutcome};
use structured_keyword_search::core::dynamic::DynamicOrpKw;
use structured_keyword_search::core::failpoints::{self, FailAction};
use structured_keyword_search::core::guard::QueryGuard;
use structured_keyword_search::core::suite::OrpKwSuite;
use structured_keyword_search::prelude::*;
use structured_keyword_search::serve::{Request, Server, ServerConfig};
use structured_keyword_search::store::{CheckpointPolicy, DurabilityConfig, DurableDynamic};

static CHAOS_LOCK: Mutex<()> = Mutex::new(());

/// Runs the `debug-invariants` deep validator when both chaos and
/// invariant features are enabled — an injected failure must never
/// leave a structurally corrupt index behind. Compiles to nothing
/// without `debug-invariants`.
macro_rules! deep_validate {
    ($index:expr) => {{
        #[cfg(feature = "debug-invariants")]
        $index
            .validate()
            .unwrap_or_else(|v| panic!("deep invariant violated: {v}"));
        #[cfg(not(feature = "debug-invariants"))]
        let _ = &$index;
    }};
}

/// Serializes a chaos test and guarantees a clean registry on both
/// entry and (via `Drop`) exit, even if the test panics.
struct ChaosGuard<'a>(#[allow(dead_code)] std::sync::MutexGuard<'a, ()>);

impl<'a> ChaosGuard<'a> {
    fn acquire() -> Self {
        let guard = CHAOS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        failpoints::clear();
        Self(guard)
    }
}

impl Drop for ChaosGuard<'_> {
    fn drop(&mut self) {
        failpoints::clear();
    }
}

fn dataset() -> Dataset {
    // Integer coordinates so every problem module (including L2NN-KW's
    // integer-coordinate requirement) accepts the same data.
    Dataset::from_parts(
        (0..256)
            .map(|i| {
                let x = (i % 16) as f64;
                let y = (i / 16) as f64;
                (Point::new2(x, y), vec![0u32, 1, 2 + (i % 3) as u32])
            })
            .collect(),
    )
}

/// Drives the public build entry point matching a fail-point site.
/// Returns the build outcome as `Result<(), SkqError>`.
fn drive(site: &str, d: &Dataset) -> Result<(), SkqError> {
    let rects: Vec<(Rect, Vec<Keyword>)> = (0..64)
        .map(|i| {
            let x = (i % 8) as f64;
            (
                Rect::new(&[x, x], &[x + 1.0, x + 2.0]),
                vec![0u32, 1, 2 + (i % 3) as u32],
            )
        })
        .collect();
    let docs: Vec<Document> = (0..64)
        .map(|i| Document::new(vec![0u32, 1, 2 + (i % 3) as u32]))
        .collect();
    match site {
        "orp::build" | "framework::build" => OrpKwIndex::try_build(d, 2).map(|_| ()),
        "rr::build" => RrKwIndex::try_build(&rects, 2).map(|_| ()),
        "nn_linf::build" => LinfNnIndex::try_build(d, 2).map(|_| ()),
        "nn_l2::build" => L2NnIndex::try_build(d, 2).map(|_| ()),
        "lc::build" => LcKwIndex::try_build(d, 2).map(|_| ()),
        "sp::build" => SpKwIndex::try_build(d, 2).map(|_| ()),
        "srp::build" => SrpKwIndex::try_build(d, 2).map(|_| ()),
        "ksi::build" => KsiIndex::try_build(&docs, 2).map(|_| ()),
        "dynamic::build_block" => {
            let mut dynamic = DynamicOrpKw::new(2, 2);
            // 128 inserts fill the buffer; the 128th triggers the first
            // block build, which hits the armed fail point.
            for i in 0..128u32 {
                dynamic.try_insert(Point::new2((i % 16) as f64, (i / 16) as f64), vec![0, 1])?;
            }
            Ok(())
        }
        "batch::shard" => {
            let index = OrpKwIndex::build(d, 2);
            let queries = vec![
                BatchQuery {
                    rect: Rect::full(2),
                    keywords: vec![0, 1],
                };
                4
            ];
            run_batch_isolated(&index, &queries, 2, &QueryGuard::new())
                .into_results()
                .map(|_| ())
        }
        "store::wal_append" | "store::fsync" | "store::checkpoint" => {
            // The durability sites fire inside a `DurableDynamic`'s op
            // path: the default `SyncPolicy::Always` makes the first
            // insert hit both the append and its fsync, and the
            // explicit cut hits the checkpoint site. A fresh directory
            // per call keeps the disarmed recovery re-run clean.
            static NEXT_DIR: AtomicUsize = AtomicUsize::new(0);
            let dir = std::env::temp_dir().join(format!(
                "skq-chaos-durable-{}-{}",
                std::process::id(),
                NEXT_DIR.fetch_add(1, Ordering::Relaxed)
            ));
            let config = DurabilityConfig {
                checkpoint: CheckpointPolicy {
                    every_ops: u64::MAX,
                    every_bytes: u64::MAX,
                },
                ..DurabilityConfig::default()
            };
            let result = (|| {
                let (mut durable, _report) = DurableDynamic::open(&dir, 2, 2, config)?;
                for i in 0..4u32 {
                    durable.insert(Point::new2(i as f64, 0.0), vec![0, 1])?;
                }
                durable.checkpoint()
            })();
            let _ = std::fs::remove_dir_all(&dir);
            result
        }
        "store::read_page" => {
            // The site fires in the page-walk decoder: encode a small
            // suite, then load it back through the armed reader.
            use structured_keyword_search::store::Persist;
            let suite = OrpKwSuite::build(d, 2);
            let bytes = suite.to_bytes()?;
            OrpKwSuite::try_load(&bytes).map(|_| ())
        }
        "serve::request" | "serve::worker" => {
            let server = Server::start(
                OrpKwSuite::build(d, 2),
                ServerConfig {
                    workers: 1,
                    queue_capacity: 8,
                    ..ServerConfig::default()
                },
            );
            let result = server
                .query(Request::new(Rect::full(2), vec![0, 1]))
                .map(|_| ());
            server.shutdown();
            result
        }
        other => panic!("no driver for fail-point site {other}"),
    }
}

#[test]
fn every_site_surfaces_as_typed_error_and_recovers() {
    let _guard = ChaosGuard::acquire();
    let d = dataset();
    for &site in failpoints::SITES {
        failpoints::inject(site, FailAction::Err, None);
        let err = match drive(site, &d) {
            Err(e) => e,
            Ok(()) => panic!("site {site}: armed fail point did not surface"),
        };
        // Build sites return the injected Internal error verbatim; the
        // batch site funnels the shard panic into ShardPanicked.
        match site {
            "batch::shard" => {
                assert!(
                    matches!(err, SkqError::ShardPanicked { .. }),
                    "{site}: {err}"
                )
            }
            // The worker-level fail point becomes a panic between pop
            // and reply: the job dies with the unwind (the supervisor
            // respawns the worker), so the caller sees the
            // worker-lost error rather than the site name.
            "serve::worker" => {
                assert!(matches!(err, SkqError::Internal(_)), "{site}: {err}");
                assert!(err.to_string().contains("worker lost"), "{site}: {err}");
            }
            _ => {
                assert!(matches!(err, SkqError::Internal(_)), "{site}: {err}");
                assert!(err.to_string().contains(site), "{site}: {err}");
            }
        }
        failpoints::clear();
        drive(site, &d).unwrap_or_else(|e| panic!("site {site} did not recover: {e}"));
    }
}

#[test]
fn injected_failure_does_not_poison_a_dynamic_index() {
    let _guard = ChaosGuard::acquire();
    let mut dynamic = DynamicOrpKw::new(2, 2);
    let mut expected = Vec::new();
    for i in 0..127u32 {
        let h = dynamic.insert(Point::new2((i % 16) as f64, (i / 16) as f64), vec![0, 1]);
        expected.push(h);
    }
    // The 128th insert triggers the first block build — inject there.
    failpoints::inject("dynamic::build_block", FailAction::Err, None);
    let err = dynamic
        .try_insert(Point::new2(0.0, 0.0), vec![0, 1])
        .unwrap_err();
    assert!(matches!(err, SkqError::Internal(_)), "{err}");
    // The failed insert rolled back: the index still answers exactly
    // the pre-failure contents, and its bookkeeping is intact.
    deep_validate!(dynamic);
    let mut got = dynamic.query(&Rect::full(2), &[0, 1]);
    got.sort();
    assert_eq!(got, expected);
    // Disarmed, the same insert succeeds and the index stays correct.
    failpoints::clear();
    let h = dynamic
        .try_insert(Point::new2(0.0, 0.0), vec![0, 1])
        .unwrap();
    expected.push(h);
    deep_validate!(dynamic);
    let mut got = dynamic.query(&Rect::full(2), &[0, 1]);
    got.sort();
    assert_eq!(got, expected);
}

#[test]
fn batch_shards_retry_and_isolate_injected_panics() {
    let _guard = ChaosGuard::acquire();
    let d = dataset();
    let index = OrpKwIndex::build(&d, 2);
    let queries = vec![
        BatchQuery {
            rect: Rect::full(2),
            keywords: vec![0, 1],
        };
        8
    ];
    let expected = index.query(&Rect::full(2), &[0, 1]).len();

    // One injected panic: the first shard attempt dies, the bounded
    // retry succeeds, and the batch completes.
    failpoints::inject("batch::shard", FailAction::Panic, Some(1));
    let report = run_batch_isolated(&index, &queries, 2, &QueryGuard::new());
    assert!(report.is_complete());
    assert!(report.outcomes.contains(&ShardOutcome::Retried));
    for r in report.into_results().unwrap() {
        assert_eq!(r.len(), expected);
    }

    // A persistent panic exhausts the retry: the shard fails but the
    // others still complete, and nothing escapes as a panic.
    failpoints::inject("batch::shard", FailAction::Panic, None);
    let report = run_batch_isolated(&index, &queries, 2, &QueryGuard::new());
    assert!(!report.is_complete());
    assert!(report.outcomes.iter().all(|o| *o == ShardOutcome::Failed));

    // Disarmed, the same index and queries run clean — the injected
    // panics poisoned nothing, structurally included.
    failpoints::clear();
    deep_validate!(index);
    let report = run_batch_isolated(&index, &queries, 2, &QueryGuard::new());
    assert!(report.is_complete());
    for r in report.into_results().unwrap() {
        assert_eq!(r.len(), expected);
    }
}
