//! The paper's reductions, executed end-to-end.
//!
//! §1.2 and the appendices prove the problems interreducible; these
//! tests *run* each reduction and check both sides agree, which
//! exercises exactly the constructions the hardness results rely on.

use rand::{rngs::StdRng, Rng, SeedableRng};
use structured_keyword_search::prelude::*;

/// §1.2, forward direction: pure keyword search *is* k-SI. Build an
/// ORP-KW instance from sets (each element placed at an arbitrary
/// point), query with the full-space rectangle, and compare with a
/// direct intersection.
#[test]
fn ksi_solved_by_orp_kw_with_full_rectangle() {
    let mut rng = StdRng::seed_from_u64(1);
    let m = 6usize; // sets
    let n = 400usize; // elements
    let sets: Vec<Vec<u32>> = (0..m)
        .map(|_| {
            let mut s: Vec<u32> = (0..n as u32).filter(|_| rng.gen_bool(0.4)).collect();
            if s.is_empty() {
                s.push(rng.gen_range(0..n as u32));
            }
            s
        })
        .collect();

    // e.Doc := {i | e ∈ S_i}; place each element at an arbitrary point.
    let mut docs: Vec<Vec<Keyword>> = vec![Vec::new(); n];
    for (i, s) in sets.iter().enumerate() {
        for &e in s {
            docs[e as usize].push(i as Keyword);
        }
    }
    // Track which dataset row is which element (elements in no set are
    // dropped — they can never appear in any intersection).
    let mut parts: Vec<(Point, Vec<Keyword>)> = Vec::new();
    let mut element_of: Vec<u32> = Vec::new();
    for (e, d) in docs.into_iter().enumerate() {
        if !d.is_empty() {
            parts.push((
                Point::new2(rng.gen_range(-5.0..5.0), rng.gen_range(-5.0..5.0)),
                d,
            ));
            element_of.push(e as u32);
        }
    }
    let dataset = Dataset::from_parts(parts);

    let index = OrpKwIndex::build(&dataset, 2);
    for _ in 0..30 {
        let a = rng.gen_range(0..m as u32);
        let b = (a + 1 + rng.gen_range(0..m as u32 - 1)) % m as u32;
        let got: std::collections::BTreeSet<u32> = index
            .query(&Rect::full(2), &[a, b])
            .into_iter()
            .map(|row| element_of[row as usize])
            .collect();
        let expected: std::collections::BTreeSet<u32> = sets[a as usize]
            .iter()
            .filter(|e| sets[b as usize].contains(e))
            .copied()
            .collect();
        assert_eq!(got, expected, "sets {a},{b}");
    }
}

/// Appendix G: k-SI *reporting* via L∞NN-KW with doubling `t`. Issue
/// NN queries with t = 1, 2, 4, … until fewer than `t` objects come
/// back — at that point the entire `D(w₁, …, w_k)` has been reported.
#[test]
fn ksi_reporting_via_linf_nn_doubling() {
    let mut rng = StdRng::seed_from_u64(2);
    let dataset = Dataset::from_parts(
        (0..500)
            .map(|_| {
                let p = Point::new2(rng.gen_range(-50.0..50.0), rng.gen_range(-50.0..50.0));
                let doc: Vec<Keyword> = (0..rng.gen_range(1..5))
                    .map(|_| rng.gen_range(0..6))
                    .collect();
                (p, doc)
            })
            .collect(),
    );
    let nn = LinfNnIndex::build(&dataset, 2);
    let oracle = FullScan::new(&dataset);

    for (w1, w2) in [(0u32, 1u32), (2, 3), (4, 5), (0, 5)] {
        // The Appendix G loop.
        let q = Point::new2(0.0, 0.0); // arbitrary
        let mut t = 1usize;
        let result = loop {
            let r = nn.query(&q, t, &[w1, w2]);
            if r.len() < t {
                break r;
            }
            // r.len() == t: maybe more exist — double.
            if t >= dataset.len() {
                break r;
            }
            t *= 2;
        };
        let mut got = result;
        got.sort_unstable();
        let mut expected = oracle.query_rect(&Rect::full(2), &[w1, w2]);
        expected.sort_unstable();
        assert_eq!(got, expected, "keywords {w1},{w2}");
    }
}

/// Corollary 3's transform, checked directly: a data rectangle
/// intersects the query iff its flattened 2d-point lies in the derived
/// 2d-rectangle.
#[test]
fn rectangle_intersection_equals_flattened_point_membership() {
    let mut rng = StdRng::seed_from_u64(3);
    for _ in 0..500 {
        let (a, len_a) = (rng.gen_range(-10.0..10.0), rng.gen_range(0.0..5.0));
        let (x, len_x) = (rng.gen_range(-10.0..10.0), rng.gen_range(0.0..5.0));
        let data = Rect::new(&[a], &[a + len_a]);
        let query = Rect::new(&[x], &[x + len_x]);
        // Flatten: point (a, b); region (−∞, y] × [x, ∞).
        let p = Point::new2(a, a + len_a);
        let region = Rect::new(&[f64::NEG_INFINITY, x], &[x + len_x, f64::INFINITY]);
        assert_eq!(
            data.intersects(&query),
            region.contains(&p),
            "data {data:?} query {query:?}"
        );
    }
}

/// Corollary 6's reduction, checked against the public SRP index: SRP
/// answers equal an LC-KW query on the manually lifted dataset.
#[test]
fn srp_equals_lc_on_lifted_points() {
    let mut rng = StdRng::seed_from_u64(4);
    let dataset = Dataset::from_parts(
        (0..300)
            .map(|_| {
                let p = Point::new2(rng.gen_range(-30..30) as f64, rng.gen_range(-30..30) as f64);
                let doc: Vec<Keyword> = (0..rng.gen_range(1..4))
                    .map(|_| rng.gen_range(0..5))
                    .collect();
                (p, doc)
            })
            .collect(),
    );
    let srp = SrpKwIndex::build(&dataset, 2);
    // Manually lifted dataset + LC index.
    let lifted = dataset.map_points(|_, p| structured_keyword_search::geom::lift_point(p));
    let lc = LcKwIndex::build(&lifted, 2);

    for _ in 0..40 {
        let ball = Ball::new(
            Point::new2(rng.gen_range(-30..30) as f64, rng.gen_range(-30..30) as f64),
            rng.gen_range(0..40) as f64,
        );
        let hs = structured_keyword_search::geom::lift_ball(&ball);
        let w1 = rng.gen_range(0..5);
        let w2 = (w1 + 1 + rng.gen_range(0..4)) % 5;
        let mut a = srp.query(&ball, &[w1, w2]);
        let mut b = lc.query(&[hs], &[w1, w2]);
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }
}
