//! Structural invariants from the paper's analysis, checked on
//! realistic synthetic workloads.

use structured_keyword_search::prelude::*;

fn workload(n: usize, seed: u64) -> Dataset {
    SpatialKeywordConfig {
        num_objects: n,
        vocab: 200,
        doc_len: (2, 6),
        extent: 10_000.0,
        keywords: KeywordModel::Zipf(1.0),
        ..Default::default()
    }
    .generate(seed)
}

/// §3.2: at most `N_u^{1/k}` keywords are large at any node, child
/// weights halve, materialized lists stay below the threshold.
#[test]
fn framework_invariants_hold_on_zipf_workload() {
    for k in [2, 3] {
        let dataset = workload(5_000, 1);
        let index = OrpKwIndex::build(&dataset, k);
        index
            .check_invariants()
            .unwrap_or_else(|e| panic!("k={k}: {e}"));
    }
}

/// The kd framework tree has `O(log N)` height thanks to weighted
/// median splits (`|P_u| = O(N / 2^level)`).
#[test]
fn kd_tree_height_is_logarithmic() {
    let dataset = workload(8_000, 2);
    let index = OrpKwIndex::build(&dataset, 2);
    let summaries = index.kd_node_summaries().expect("2D uses the kd framework");
    let max_level = summaries.iter().map(|&(l, ..)| l).max().unwrap();
    let n = dataset.input_size() as f64;
    // Levels ≤ log2(N) + slack (leaf cap shifts it down in practice).
    assert!(
        (max_level as f64) <= n.log2() + 2.0,
        "height {max_level} vs log2(N) = {}",
        n.log2()
    );
    // Pivot sets are constant-size in rank space (a single boundary
    // object per internal node; leaves hold up to the leaf cap).
    for (level, weight, pivots, _) in &summaries {
        if *weight > 24 {
            assert!(
                *pivots <= 1,
                "internal node at level {level} has {pivots} pivots"
            );
        }
    }
}

/// §4 / Proposition 1: the dimension-reduction tree has
/// `O(log log N)` levels.
#[test]
fn dimred_levels_are_loglog() {
    let dataset = SpatialKeywordConfig {
        num_objects: 20_000,
        dim: 3,
        vocab: 100,
        doc_len: (2, 5),
        ..Default::default()
    }
    .generate(3);
    let tree = structured_keyword_search::core::dimred::DimRedTree::build(&dataset, 2);
    // N ≈ 70k ⇒ log log N ≈ 4.1; the doubly-exponential fanout makes
    // more than ~5 levels impossible.
    assert!(
        tree.num_levels() <= 6,
        "{} levels for N = {}",
        tree.num_levels(),
        dataset.input_size()
    );
}

/// Figure 2: at most two type-2 nodes per level of the
/// dimension-reduction tree for any query.
#[test]
fn dimred_type2_nodes_at_most_two_per_level() {
    let dataset = SpatialKeywordConfig {
        num_objects: 10_000,
        dim: 3,
        vocab: 60,
        doc_len: (2, 5),
        ..Default::default()
    }
    .generate(4);
    let index = OrpKwIndex::build(&dataset, 2);
    let mut gen = QueryGen::new(&dataset, 5);
    for _ in 0..50 {
        let q = gen.rect(0.2);
        let kws = gen.keywords(2, 0.2).unwrap();
        let (_, stats) = index.query_with_stats(&q, &kws);
        for (lvl, &c) in stats.type2_by_level.iter().enumerate() {
            assert!(c <= 2, "level {lvl}: {c} type-2 nodes");
        }
    }
}

/// Space stays linear in `N` for the Theorem-1 index: the per-`N` word
/// count must not grow with `N` (allowing generous constants).
#[test]
fn orp_space_scales_linearly() {
    let mut per_n: Vec<f64> = Vec::new();
    for (n, seed) in [(2_000, 10), (8_000, 11), (32_000, 12)] {
        let dataset = workload(n, seed);
        let index = OrpKwIndex::build(&dataset, 2);
        per_n.push(index.space_words() as f64 / dataset.input_size() as f64);
    }
    let first = per_n[0];
    let last = *per_n.last().unwrap();
    assert!(
        last <= first * 1.6,
        "space per N grew from {first:.1} to {last:.1} words — superlinear?"
    );
}

/// Lemma 9/10 flavour: for a *vertical line* query (degenerate
/// rectangle) the kd framework visits `O(√N)` nodes.
#[test]
fn vertical_line_crossing_nodes_are_sqrt() {
    let dataset = workload(20_000, 13);
    let index = OrpKwIndex::build(&dataset, 2);
    let mut gen = QueryGen::new(&dataset, 14);
    let kws = gen.top_keywords(2).unwrap();
    let n = dataset.input_size() as f64;
    for _ in 0..10 {
        let p = gen.point();
        // A vertical line: x fixed, y unbounded.
        let q = Rect::new(&[p.get(0), f64::NEG_INFINITY], &[p.get(0), f64::INFINITY]);
        let (_, stats) = index.query_with_stats(&q, &kws);
        assert!(
            (stats.crossing_nodes as f64) <= 12.0 * n.sqrt(),
            "crossing {} vs √N = {:.0}",
            stats.crossing_nodes,
            n.sqrt()
        );
    }
}

/// The two naive baselines and the three framework-based indexes all
/// agree on a common workload (end-to-end, all problems).
#[test]
fn all_solutions_agree_end_to_end() {
    let dataset = SpatialKeywordConfig {
        num_objects: 3_000,
        vocab: 60,
        extent: 1_000.0,
        integer_coords: true,
        keywords: KeywordModel::Zipf(0.8),
        ..Default::default()
    }
    .generate(21);
    let orp = OrpKwIndex::build(&dataset, 2);
    let lc = LcKwIndex::build(&dataset, 2);
    let srp = SrpKwIndex::build(&dataset, 2);
    let nn_inf = LinfNnIndex::build(&dataset, 2);
    let nn_2 = L2NnIndex::build(&dataset, 2);
    let kf = KeywordsFirst::build(&dataset);
    let sf = StructuredFirst::build(&dataset);
    let oracle = FullScan::new(&dataset);

    let mut gen = QueryGen::new(&dataset, 22);
    for band in [0.0, 0.5, 1.0] {
        let kws = gen.keywords(2, band).unwrap();
        let q = gen.rect(0.05);
        let expected = oracle.query_rect(&q, &kws);
        assert_eq!(sorted(orp.query(&q, &kws)), expected);
        assert_eq!(sorted(lc.query_rect(&q, &kws)), expected);
        assert_eq!(sorted(kf.query_rect(&q, &kws)), expected);
        assert_eq!(sorted(sf.query_rect(&q, &kws)), expected);

        let ball = gen.ball(0.02);
        let ball = Ball::new(
            Point::new2(ball.center().get(0).round(), ball.center().get(1).round()),
            ball.radius().round(),
        );
        let expected = oracle.query_ball(&ball, &kws);
        assert_eq!(sorted(srp.query(&ball, &kws)), expected);
        assert_eq!(sorted(kf.query_ball(&ball, &kws)), expected);
        assert_eq!(sorted(sf.query_ball(&ball, &kws)), expected);

        let p = gen.integer_point();
        for t in [1, 5] {
            assert_eq!(nn_inf.query(&p, t, &kws), oracle.nn_linf(&p, t, &kws));
            assert_eq!(nn_2.query(&p, t, &kws), oracle.nn_l2(&p, t, &kws));
        }
    }
}

fn sorted(mut v: Vec<u32>) -> Vec<u32> {
    v.sort_unstable();
    v
}
