//! Property tests for the substrate layers: geometric primitives,
//! inverted-index machinery, and the extension modules (dynamic index,
//! planner, suite).

use proptest::prelude::*;
use structured_keyword_search::core::dynamic::DynamicOrpKw;
use structured_keyword_search::core::planner::{Plan, PlannedOrpKw};
use structured_keyword_search::core::suite::OrpKwSuite;
use structured_keyword_search::prelude::*;

fn sorted(mut v: Vec<u32>) -> Vec<u32> {
    v.sort_unstable();
    v
}

/// Runs the `debug-invariants` deep validator; compiles to nothing
/// under the default feature set.
macro_rules! deep_validate {
    ($index:expr) => {{
        #[cfg(feature = "debug-invariants")]
        $index
            .validate()
            .unwrap_or_else(|v| panic!("deep invariant violated: {v}"));
        #[cfg(not(feature = "debug-invariants"))]
        let _ = &$index;
    }};
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Sutherland–Hodgman clipping: points inside the clipped polygon
    /// are exactly the points inside the original that satisfy the
    /// halfplane (sampled on a grid, away from boundary ambiguity).
    #[test]
    fn polygon_clip_semantics(
        (a, b, c) in (-5i32..5, -5i32..5, -40i32..40)
            .prop_filter("non-degenerate halfplane", |(a, b, _)| *a != 0 || *b != 0),
    ) {
        let poly = Polygon::rect(-10.0, -10.0, 10.0, 10.0);
        let clipped = poly.clip(f64::from(a), f64::from(b), f64::from(c) / 2.0);
        for x in -9..9 {
            for y in -9..9 {
                let (fx, fy) = (f64::from(x) + 0.31, f64::from(y) + 0.13);
                let side = f64::from(a) * fx + f64::from(b) * fy - f64::from(c) / 2.0;
                if side.abs() < 1e-6 {
                    continue;
                }
                let expected = poly.contains(fx, fy) && side < 0.0;
                prop_assert_eq!(clipped.contains(fx, fy), expected, "at ({}, {})", fx, fy);
            }
        }
    }

    /// A simplex equals the intersection of its facet halfspaces.
    #[test]
    fn simplex_facets_are_consistent(
        verts in prop::collection::vec((-20i32..20, -20i32..20), 3..4),
        probe in (-25i32..25, -25i32..25),
    ) {
        let pts: Vec<Point> = verts
            .iter()
            .map(|&(x, y)| Point::new2(f64::from(x), f64::from(y)))
            .collect();
        if let Some(simplex) = Simplex::new(pts) {
            let p = Point::new2(f64::from(probe.0) + 0.25, f64::from(probe.1) + 0.25);
            let by_facets = simplex.facets().iter().all(|h| h.contains(&p));
            prop_assert_eq!(simplex.contains(&p), by_facets);
        }
    }

    /// Rank space preserves rectangle-query semantics on tie-heavy data.
    #[test]
    fn rank_space_roundtrip(
        raw in prop::collection::vec((-4i32..4, -4i32..4), 1..80),
        q in ((-5i32..5, 0i32..6), (-5i32..5, 0i32..6)),
    ) {
        let points: Vec<Point> = raw
            .iter()
            .map(|&(x, y)| Point::new2(f64::from(x), f64::from(y)))
            .collect();
        let rs = RankSpace::build(&points);
        let rect = Rect::new(
            &[f64::from(q.0 .0), f64::from(q.1 .0)],
            &[f64::from(q.0 .0 + q.0 .1), f64::from(q.1 .0 + q.1 .1)],
        );
        match rs.rect(&rect) {
            Some(rq) => {
                for (i, p) in points.iter().enumerate() {
                    prop_assert_eq!(rect.contains(p), rq.contains(&rs.point(i)));
                }
            }
            None => {
                for p in &points {
                    prop_assert!(!rect.contains(p));
                }
            }
        }
    }

    /// The 2D range tree agrees with the kd-tree on every query.
    #[test]
    fn range_tree_equals_kd_tree(
        raw in prop::collection::vec((-10i32..10, -10i32..10), 1..100),
        q in ((-12i32..12, 0i32..10), (-12i32..12, 0i32..10)),
    ) {
        let points: Vec<Point> = raw
            .iter()
            .map(|&(x, y)| Point::new2(f64::from(x), f64::from(y)))
            .collect();
        let rt = RangeTree2D::build(points.clone());
        let kd = KdTree::build(points);
        let rect = Rect::new(
            &[f64::from(q.0 .0), f64::from(q.1 .0)],
            &[f64::from(q.0 .0 + q.0 .1), f64::from(q.1 .0 + q.1 .1)],
        );
        let mut a = rt.range_report(&rect);
        let mut b = kd.range_report(&rect);
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(a, b);
    }

    /// Dynamic index under arbitrary operation sequences ≡ a mirror map.
    #[test]
    fn dynamic_index_equals_mirror(
        ops in prop::collection::vec(
            prop_oneof![
                // Insert: point + 1-3 keywords.
                ((0i32..20, 0i32..20), prop::collection::vec(0u32..5, 1..4))
                    .prop_map(|(p, kws)| (0u8, p, kws)),
                // Delete: target selected by index modulo live handles.
                ((0i32..20, 0i32..20), prop::collection::vec(0u32..5, 1..2))
                    .prop_map(|(p, kws)| (1u8, p, kws)),
                // Query: rectangle from the point, keywords from the doc.
                ((0i32..20, 0i32..20), prop::collection::vec(0u32..5, 2..3))
                    .prop_map(|(p, kws)| (2u8, p, kws)),
            ],
            1..120,
        ),
    ) {
        let mut idx = DynamicOrpKw::new(2, 2);
        let mut mirror: Vec<(Option<()>, Point, Vec<Keyword>, _)> = Vec::new();
        for (op, (x, y), kws) in ops {
            let p = Point::new2(f64::from(x), f64::from(y));
            match op {
                0 => {
                    let h = idx.insert(p, kws.clone());
                    mirror.push((Some(()), p, kws, h));
                    // Every insert may trigger a carry/rebuild; the
                    // logarithmic-method bookkeeping must survive all
                    // of them.
                    deep_validate!(idx);
                }
                1 => {
                    if !mirror.is_empty() {
                        let i = (x as usize * 7 + y as usize) % mirror.len();
                        let was_live = mirror[i].0.take().is_some();
                        prop_assert_eq!(idx.delete(mirror[i].3), was_live);
                        // Deletions may trigger a compacting rebuild.
                        deep_validate!(idx);
                    }
                }
                _ => {
                    let mut ks = kws.clone();
                    ks.sort_unstable();
                    ks.dedup();
                    if ks.len() != 2 {
                        continue;
                    }
                    let q = Rect::new(
                        &[f64::from(x) - 5.0, f64::from(y) - 5.0],
                        &[f64::from(x) + 5.0, f64::from(y) + 5.0],
                    );
                    let mut got = idx.query(&q, &ks);
                    got.sort();
                    let mut expected: Vec<_> = mirror
                        .iter()
                        .filter(|(live, p, doc, _)| {
                            live.is_some()
                                && q.contains(p)
                                && ks.iter().all(|w| doc.contains(w))
                        })
                        .map(|&(_, _, _, h)| h)
                        .collect();
                    expected.sort();
                    prop_assert_eq!(got, expected);
                }
            }
        }
    }

    /// Every plan the planner can choose returns identical results.
    #[test]
    fn planner_plans_agree(
        raw in prop::collection::vec(((0i32..30, 0i32..30), prop::collection::vec(0u32..6, 1..4)), 2..60),
        q in ((0i32..30, 0i32..12), (0i32..30, 0i32..12)),
        (w1, d) in (0u32..6, 1u32..6),
    ) {
        let dataset = Dataset::from_parts(
            raw.into_iter()
                .map(|((x, y), kws)| (Point::new2(f64::from(x), f64::from(y)), kws))
                .collect(),
        );
        let planner = PlannedOrpKw::build(&dataset, 2);
        let rect = Rect::new(
            &[f64::from(q.0 .0), f64::from(q.1 .0)],
            &[f64::from(q.0 .0 + q.0 .1), f64::from(q.1 .0 + q.1 .1)],
        );
        let kws = [w1, (w1 + d) % 6];
        let a = planner.query_with_plan(&rect, &kws, Plan::KeywordsOnly);
        let b = planner.query_with_plan(&rect, &kws, Plan::StructuredOnly);
        let c = planner.query_with_plan(&rect, &kws, Plan::Framework);
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(&b, &c);
        let (d2, _) = planner.query(&rect, &kws);
        prop_assert_eq!(d2, c);
    }

    /// The multi-k suite answers any keyword count correctly.
    #[test]
    fn suite_handles_any_k(
        raw in prop::collection::vec(((0i32..25, 0i32..25), prop::collection::vec(0u32..7, 2..6)), 2..70),
        kws in prop::collection::vec(0u32..7, 0..6),
    ) {
        let dataset = Dataset::from_parts(
            raw.into_iter()
                .map(|((x, y), doc)| (Point::new2(f64::from(x), f64::from(y)), doc))
                .collect(),
        );
        let suite = OrpKwSuite::build(&dataset, 3);
        deep_validate!(suite);
        let q = Rect::new(&[5.0, 5.0], &[20.0, 20.0]);
        let got = sorted(suite.query(&q, &kws));
        let mut dedup = kws.clone();
        dedup.sort_unstable();
        dedup.dedup();
        let expected: Vec<u32> = (0..dataset.len() as u32)
            .filter(|&i| {
                dataset.doc(i as usize).contains_all(&dedup)
                    && q.contains(dataset.point(i as usize))
            })
            .collect();
        prop_assert_eq!(got, expected);
    }
}
