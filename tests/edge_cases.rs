//! Adversarial and degenerate inputs for every index.

use structured_keyword_search::prelude::*;

fn sorted(mut v: Vec<u32>) -> Vec<u32> {
    v.sort_unstable();
    v
}

/// All objects at the same point: splits cannot make progress, the
/// framework must fall back to a single leaf and still answer exactly.
#[test]
fn all_objects_identical_point() {
    let dataset = Dataset::from_parts(
        (0..200)
            .map(|i| (Point::new2(7.0, 7.0), vec![(i % 5) as Keyword, 5]))
            .collect(),
    );
    let orp = OrpKwIndex::build(&dataset, 2);
    let got = sorted(orp.query(&Rect::new(&[7.0, 7.0], &[7.0, 7.0]), &[0, 5]));
    let expected: Vec<u32> = (0..200u32).filter(|i| i % 5 == 0).collect();
    assert_eq!(got, expected);
    assert!(orp
        .query(&Rect::new(&[8.0, 8.0], &[9.0, 9.0]), &[0, 5])
        .is_empty());

    let sp = SpKwIndex::build(&dataset, 2);
    let got = sorted(sp.query_polytope(
        &ConvexPolytope::from_halfspace(Halfspace::new(&[1.0, 0.0], 10.0)),
        &[0, 5],
    ));
    assert_eq!(got, expected);
}

/// A single object.
#[test]
fn singleton_dataset() {
    let dataset = Dataset::from_parts(vec![(Point::new2(1.0, 2.0), vec![3, 4])]);
    let orp = OrpKwIndex::build(&dataset, 2);
    assert_eq!(orp.query(&Rect::full(2), &[3, 4]), vec![0]);
    assert!(orp.query(&Rect::full(2), &[3, 5]).is_empty());
    let nn = LinfNnIndex::build(&dataset, 2);
    assert_eq!(nn.query(&Point::new2(100.0, 100.0), 3, &[3, 4]), vec![0]);
}

/// Every object shares one giant document: all keywords maximally
/// frequent, the combo tables carry the whole query load.
#[test]
fn identical_large_documents() {
    let doc: Vec<Keyword> = (0..12).collect();
    let dataset = Dataset::from_parts(
        (0..300)
            .map(|i| (Point::new2(i as f64, (i * 7 % 300) as f64), doc.clone()))
            .collect(),
    );
    for k in [2usize, 3, 4] {
        let orp = OrpKwIndex::build(&dataset, k);
        orp.check_invariants().unwrap();
        let kws: Vec<Keyword> = (0..k as u32).collect();
        let q = Rect::new(&[50.0, 0.0], &[150.0, 300.0]);
        let got = sorted(orp.query(&q, &kws));
        let expected: Vec<u32> = (0..300u32).filter(|&i| (50..=150).contains(&i)).collect();
        assert_eq!(got, expected, "k={k}");
    }
}

/// Degenerate (zero-width) query rectangles and point-sized balls.
#[test]
fn degenerate_queries() {
    let dataset = Dataset::from_parts(
        (0..100)
            .map(|i| (Point::new2((i % 10) as f64, (i / 10) as f64), vec![0, 1]))
            .collect(),
    );
    let orp = OrpKwIndex::build(&dataset, 2);
    // A query that is a single point.
    let got = orp.query(&Rect::new(&[3.0, 4.0], &[3.0, 4.0]), &[0, 1]);
    assert_eq!(got, vec![43]);
    // A line (x = 3).
    let got = sorted(orp.query(&Rect::new(&[3.0, 0.0], &[3.0, 9.0]), &[0, 1]));
    assert_eq!(got, (0..10).map(|r| r * 10 + 3).collect::<Vec<u32>>());

    let srp = SrpKwIndex::build(&dataset, 2);
    let got = srp.query(&Ball::new(Point::new2(3.0, 4.0), 0.0), &[0, 1]);
    assert_eq!(got, vec![43]);
}

/// Extreme coordinates (large magnitudes, negatives) must survive the
/// rank-space transform and the geometric predicates.
#[test]
fn extreme_coordinates() {
    let dataset = Dataset::from_parts(vec![
        (Point::new2(-1e15, 1e15), vec![0, 1]),
        (Point::new2(1e-15, -1e-15), vec![0, 1]),
        (Point::new2(0.0, 0.0), vec![0, 1]),
        (Point::new2(1e15, -1e15), vec![0, 1]),
    ]);
    let orp = OrpKwIndex::build(&dataset, 2);
    let got = sorted(orp.query(&Rect::new(&[-1e16, -1e16], &[1e16, 1e16]), &[0, 1]));
    assert_eq!(got, vec![0, 1, 2, 3]);
    let got = sorted(orp.query(&Rect::new(&[-1.0, -1.0], &[1.0, 1.0]), &[0, 1]));
    assert_eq!(got, vec![1, 2]);
}

/// Maximum supported dimensionality (8) end to end.
#[test]
fn max_dimension_queries() {
    use rand::{rngs::StdRng, Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(9);
    let dataset = Dataset::from_parts(
        (0..150)
            .map(|_| {
                let coords: Vec<f64> = (0..8).map(|_| rng.gen_range(0..10) as f64).collect();
                (Point::new(&coords), vec![rng.gen_range(0..3), 3])
            })
            .collect(),
    );
    let orp = OrpKwIndex::build(&dataset, 2);
    let oracle = FullScan::new(&dataset);
    for _ in 0..20 {
        let lo: Vec<f64> = (0..8).map(|_| rng.gen_range(0..8) as f64).collect();
        let hi: Vec<f64> = lo.iter().map(|l| l + rng.gen_range(0..5) as f64).collect();
        let q = Rect::new(&lo, &hi);
        let w = rng.gen_range(0..3);
        assert_eq!(
            sorted(orp.query(&q, &[w, 3])),
            oracle.query_rect(&q, &[w, 3])
        );
    }
}

/// Huge documents (many keywords per object) stress the subset
/// enumeration at build time and the per-object membership tests.
#[test]
fn wide_documents() {
    use rand::{rngs::StdRng, Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(10);
    let dataset = Dataset::from_parts(
        (0..120)
            .map(|_| {
                let p = Point::new2(rng.gen_range(0..50) as f64, rng.gen_range(0..50) as f64);
                let doc: Vec<Keyword> = (0..30).map(|_| rng.gen_range(0..40)).collect();
                (p, doc)
            })
            .collect(),
    );
    let orp = OrpKwIndex::build(&dataset, 3);
    orp.check_invariants().unwrap();
    let oracle = FullScan::new(&dataset);
    for _ in 0..30 {
        let mut kws: Vec<Keyword> = Vec::new();
        while kws.len() < 3 {
            let w = rng.gen_range(0..40);
            if !kws.contains(&w) {
                kws.push(w);
            }
        }
        let x: f64 = rng.gen_range(0..50) as f64;
        let y: f64 = rng.gen_range(0..50) as f64;
        let q = Rect::new(&[x, y], &[x + 20.0, y + 20.0]);
        assert_eq!(sorted(orp.query(&q, &kws)), oracle.query_rect(&q, &kws));
    }
}

/// Indexes are `Sync`: concurrent queries from multiple threads see
/// consistent results (the structures are immutable after build).
#[test]
fn concurrent_queries_are_safe() {
    use rand::{rngs::StdRng, Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(11);
    let dataset = Dataset::from_parts(
        (0..2000)
            .map(|_| {
                let p = Point::new2(rng.gen_range(0..100) as f64, rng.gen_range(0..100) as f64);
                let doc: Vec<Keyword> = (0..rng.gen_range(1..5))
                    .map(|_| rng.gen_range(0..8))
                    .collect();
                (p, doc)
            })
            .collect(),
    );
    let orp = OrpKwIndex::build(&dataset, 2);
    let oracle = FullScan::new(&dataset);
    std::thread::scope(|s| {
        for thread in 0..4 {
            let orp = &orp;
            let oracle = &oracle;
            s.spawn(move || {
                let mut rng = StdRng::seed_from_u64(100 + thread);
                for _ in 0..50 {
                    let x: f64 = rng.gen_range(0..100) as f64;
                    let y: f64 = rng.gen_range(0..100) as f64;
                    let q = Rect::new(&[x, y], &[x + 30.0, y + 30.0]);
                    let w1 = rng.gen_range(0..8);
                    let w2 = (w1 + 1 + rng.gen_range(0..7)) % 8;
                    let mut got = orp.query(&q, &[w1, w2]);
                    got.sort_unstable();
                    assert_eq!(got, oracle.query_rect(&q, &[w1, w2]));
                }
            });
        }
    });
}

/// `Rect::full` queries across every index return exactly the keyword
/// matches — the geometric layer must vanish cleanly.
#[test]
fn full_space_equals_pure_keyword_search() {
    use rand::{rngs::StdRng, Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(12);
    let dataset = Dataset::from_parts(
        (0..400)
            .map(|_| {
                let p = Point::new2(rng.gen_range(-40..40) as f64, rng.gen_range(-40..40) as f64);
                let doc: Vec<Keyword> = (0..rng.gen_range(1..5))
                    .map(|_| rng.gen_range(0..6))
                    .collect();
                (p, doc)
            })
            .collect(),
    );
    let inv = InvertedIndex::build(dataset.docs());
    let orp = OrpKwIndex::build(&dataset, 2);
    let lc = LcKwIndex::build(&dataset, 2);
    let srp = SrpKwIndex::build(&dataset, 2);
    for (w1, w2) in [(0u32, 1u32), (2, 4), (3, 5)] {
        let expected = inv.intersect(&[w1, w2]);
        assert_eq!(sorted(orp.query(&Rect::full(2), &[w1, w2])), expected);
        assert_eq!(
            sorted(lc.query(&[], &[w1, w2])), // zero constraints = everything
            expected
        );
        // A ball big enough to cover the extent.
        let ball = Ball::new(Point::new2(0.0, 0.0), 1000.0);
        assert_eq!(sorted(srp.query(&ball, &[w1, w2])), expected);
    }
}
