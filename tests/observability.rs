//! Integration tests for the observability wiring: planner telemetry,
//! query-log records, and the Prometheus snapshot.
//!
//! The metrics registry is process-global and the test harness runs
//! tests in parallel, so every assertion here is on *deltas* of
//! counters with labels no other test uses, or on records this test
//! pushed itself.

use structured_keyword_search::core::planner::{Plan, PlannedOrpKw};
use structured_keyword_search::obs;
use structured_keyword_search::prelude::*;

fn dataset() -> Dataset {
    // Keyword 0 in every doc, keyword 1 in ~half: frequent enough that
    // a full-space query drives the planner to a real choice, and
    // deterministic so the test is stable.
    Dataset::from_parts(
        (0..600)
            .map(|i| {
                let x = (i % 30) as f64;
                let y = (i / 30) as f64;
                let mut doc = vec![0u32];
                if i % 2 == 0 {
                    doc.push(1);
                }
                doc.push(2 + (i % 7) as u32);
                (Point::new2(x, y), doc)
            })
            .collect(),
    )
}

#[test]
fn planned_query_increments_chosen_plan_counter() {
    let d = dataset();
    let planner = PlannedOrpKw::build(&d, 2);
    let q = Rect::full(2);

    let chosen_before = |plan: Plan| {
        obs::global()
            .counter_value("skq_planner_chosen_total", &[("plan", plan.label())])
            .unwrap_or(0)
    };
    let before: Vec<u64> = [Plan::KeywordsOnly, Plan::StructuredOnly, Plan::Framework]
        .iter()
        .map(|&p| chosen_before(p))
        .collect();

    let (hits, plan) = planner.query(&q, &[0, 1]);
    assert_eq!(hits.len(), 300);

    let after: Vec<u64> = [Plan::KeywordsOnly, Plan::StructuredOnly, Plan::Framework]
        .iter()
        .map(|&p| chosen_before(p))
        .collect();
    let idx = match plan {
        Plan::KeywordsOnly => 0,
        Plan::StructuredOnly => 1,
        Plan::Framework => 2,
    };
    assert_eq!(
        after[idx],
        before[idx] + 1,
        "chosen-plan counter for {plan:?} must increment"
    );
}

#[test]
fn planned_query_logs_predicted_and_actual_cost() {
    let d = dataset();
    let planner = PlannedOrpKw::build(&d, 2);
    let (hits, plan) = planner.query(&Rect::new(&[0.0, 0.0], &[10.0, 10.0]), &[0, 1]);

    // The query log is global; scan recent records for ours.
    let records = obs::query_log().recent(obs::QUERY_LOG_CAPACITY);
    let record = records
        .iter()
        .rev()
        .find(|r| r.kind == "orp_planned" && r.reported == hits.len() as u64)
        .expect("planned query must appear in the query log");
    assert_eq!(record.k, 2);
    assert_eq!(record.plan, Some(plan.label()));
    let predicted = record.predicted_cost.expect("predicted cost recorded");
    let actual = record.actual_cost.expect("actual cost recorded");
    assert!(predicted > 0.0 && predicted.is_finite());
    assert!(actual > 0.0 && actual.is_finite());
}

#[test]
fn index_build_populates_build_series() {
    let d = dataset();
    let reg = obs::global();
    let before = reg
        .counter_value("skq_build_total", &[("index", "orp_kw")])
        .unwrap_or(0);
    let _index = OrpKwIndex::build(&d, 2);
    let after = reg
        .counter_value("skq_build_total", &[("index", "orp_kw")])
        .unwrap_or(0);
    assert!(after > before, "build counter must increase");

    let rendered = reg.render_prometheus();
    assert!(rendered.contains("# TYPE skq_build_total counter"));
    assert!(rendered.contains("skq_build_nodes_total{index=\"orp_kw\"}"));
    assert!(rendered.contains("# TYPE skq_build_duration_microseconds histogram"));
}

#[test]
fn suite_query_routes_appear_in_query_log() {
    let d = dataset();
    let suite = structured_keyword_search::core::suite::OrpKwSuite::build(&d, 2);
    let n0 = suite.query(&Rect::full(2), &[]).len();
    assert_eq!(n0, 600);
    let records = obs::query_log().recent(obs::QUERY_LOG_CAPACITY);
    let record = records
        .iter()
        .rev()
        .find(|r| r.kind == "orp_suite" && r.reported == 600)
        .expect("suite query must be logged");
    assert_eq!(record.plan, Some("range_scan"));
}

#[test]
fn traced_query_bumps_span_counter_and_logs_trace_pointer() {
    let d = dataset();
    let reg = obs::global();
    let before = reg.counter_value("skq_trace_spans_total", &[]).unwrap_or(0);
    obs::trace::enable();
    let planner = PlannedOrpKw::build(&d, 2);
    let (hits, _plan) = planner.query(&Rect::new(&[0.0, 0.0], &[5.0, 5.0]), &[0, 1]);
    obs::trace::disable();
    let after = reg.counter_value("skq_trace_spans_total", &[]).unwrap_or(0);
    assert!(after > before, "enabled tracing must count recorded spans");

    // The query-log record points into the exported capture, and the
    // slowest-query tracker holds a record (it survives ring eviction).
    let records = obs::query_log().recent(obs::QUERY_LOG_CAPACITY);
    let record = records
        .iter()
        .rev()
        .find(|r| {
            r.kind == "orp_planned" && r.reported == hits.len() as u64 && r.trace_id.is_some()
        })
        .expect("traced planned query must log its trace_id");
    assert!(record.trace_id.unwrap_or(0) >= 1, "trace ids start at 1");
    assert!(obs::query_log().slowest().is_some());
}
