//! Property tests for the sink-based result-emission layer.
//!
//! The streaming `query_sink` entry points must be behaviorally
//! indistinguishable from the legacy collecting queries:
//!
//! * a collecting sink reproduces `query()` exactly (same id set);
//! * a counting sink reports exactly `|query()|`;
//! * a limit sink yields `min(t, OUT)` results, every one of which the
//!   full query also reports, with `truncated` set iff the traversal
//!   was actually cut short;
//! * L∞-NN answers are prefix-consistent in `t` (the binary-searched
//!   radius plus (distance, id) ranking is deterministic).

use proptest::prelude::*;
use structured_keyword_search::prelude::*;

const VOCAB: u32 = 7;

/// Points on a small integer grid (forcing ties), docs of 1–4 keywords
/// from a small vocabulary (forcing dense co-occurrence).
fn dataset_strategy(dim: usize, n: core::ops::Range<usize>) -> impl Strategy<Value = Dataset> {
    prop::collection::vec(
        (
            prop::collection::vec(-8i32..8, dim),
            prop::collection::vec(0u32..VOCAB, 1..4),
        ),
        n,
    )
    .prop_map(|raw| {
        Dataset::from_parts(
            raw.into_iter()
                .map(|(coords, kws)| {
                    let coords: Vec<f64> = coords.into_iter().map(f64::from).collect();
                    (Point::new(&coords), kws)
                })
                .collect(),
        )
    })
}

/// Two distinct keywords.
fn two_keywords() -> impl Strategy<Value = Vec<Keyword>> {
    (0u32..VOCAB, 1u32..VOCAB).prop_map(|(a, d)| vec![a, (a + d) % VOCAB])
}

fn rect_strategy(dim: usize) -> impl Strategy<Value = Rect> {
    prop::collection::vec((-10i32..10, 0i32..12), dim).prop_map(|iv| {
        let lo: Vec<f64> = iv.iter().map(|&(a, _)| f64::from(a)).collect();
        let hi: Vec<f64> = iv.iter().map(|&(a, l)| f64::from(a + l)).collect();
        Rect::new(&lo, &hi)
    })
}

/// 1-d rectangles (intervals) with keyword documents, for RR-KW.
fn rr_input_strategy(
    n: core::ops::Range<usize>,
) -> impl Strategy<Value = Vec<(Rect, Vec<Keyword>)>> {
    prop::collection::vec(
        (-8i32..8, 0i32..6, prop::collection::vec(0u32..VOCAB, 1..4)),
        n,
    )
    .prop_map(|raw| {
        raw.into_iter()
            .map(|(a, len, kws)| (Rect::new(&[f64::from(a)], &[f64::from(a + len)]), kws))
            .collect()
    })
}

fn sorted(mut v: Vec<u32>) -> Vec<u32> {
    v.sort_unstable();
    v
}

/// Asserts the limit-sink contract against the full result set.
fn check_limited(
    full: &[u32],
    got: &[u32],
    truncated: bool,
    t: usize,
) -> Result<(), TestCaseError> {
    prop_assert_eq!(got.len(), t.min(full.len()));
    // t == 0 is full *before* traversal: nothing is cut short, so
    // `truncated` legitimately stays false even when OUT > 0.
    if t > 0 && t < full.len() {
        prop_assert!(truncated, "t={} < OUT={} must truncate", t, full.len());
    }
    if full.len() < t {
        prop_assert!(!truncated, "t={} > OUT={} must not truncate", t, full.len());
    }
    for id in got {
        prop_assert!(full.contains(id), "{id} not in the full answer");
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn orp_collect_sink_equals_legacy_query(
        dataset in dataset_strategy(2, 1..100),
        q in rect_strategy(2),
        kws in two_keywords(),
    ) {
        let index = OrpKwIndex::build(&dataset, 2);
        let legacy = sorted(index.query(&q, &kws));
        let mut collected = CollectSink::new();
        let mut stats = QueryStats::new();
        let _ = index.query_sink(&q, &kws, &mut collected, &mut stats);
        prop_assert_eq!(stats.reported, legacy.len() as u64);
        prop_assert_eq!(sorted(collected.into_vec()), legacy);
    }

    #[test]
    fn orp_count_sink_matches_output_size(
        dataset in dataset_strategy(2, 1..100),
        q in rect_strategy(2),
        kws in two_keywords(),
    ) {
        let index = OrpKwIndex::build(&dataset, 2);
        let full = index.query(&q, &kws);
        let mut count = CountSink::new();
        let mut stats = QueryStats::new();
        let _ = index.query_sink(&q, &kws, &mut count, &mut stats);
        prop_assert_eq!(count.count(), full.len() as u64);
        prop_assert_eq!(index.count(&q, &kws), full.len() as u64);
    }

    #[test]
    fn orp_limit_sink_is_truncated_prefix_subset(
        dataset in dataset_strategy(2, 1..100),
        q in rect_strategy(2),
        kws in two_keywords(),
        t in 0usize..12,
    ) {
        let index = OrpKwIndex::build(&dataset, 2);
        let full = index.query(&q, &kws);
        let mut sink = LimitSink::new(Vec::new(), t);
        let mut stats = QueryStats::new();
        let _ = index.query_sink(&q, &kws, &mut sink, &mut stats);
        let truncated = sink.truncated();
        let got = sink.into_inner();
        check_limited(&full, &got, truncated, t)?;
        // The legacy limited entry point agrees with the raw sink.
        let mut out = Vec::new();
        let mut stats = QueryStats::new();
        index.query_limited(&q, &kws, t, &mut out, &mut stats);
        prop_assert_eq!(out, got);
        prop_assert_eq!(stats.emitted, t.min(full.len()) as u64);
    }

    #[test]
    fn rr_sinks_match_legacy_query(
        rects in rr_input_strategy(1..80),
        q in rect_strategy(1),
        kws in two_keywords(),
        t in 0usize..8,
    ) {
        let index = RrKwIndex::build(&rects, 2);
        let full = index.query(&q, &kws);
        let mut count = CountSink::new();
        let mut stats = QueryStats::new();
        let _ = index.query_sink(&q, &kws, &mut count, &mut stats);
        prop_assert_eq!(count.count(), full.len() as u64);
        let mut sink = LimitSink::new(Vec::new(), t);
        let mut stats = QueryStats::new();
        let _ = index.query_sink(&q, &kws, &mut sink, &mut stats);
        let truncated = sink.truncated();
        let got = sink.into_inner();
        check_limited(&full, &got, truncated, t)?;
    }

    #[test]
    fn nn_linf_is_prefix_consistent_in_t(
        dataset in dataset_strategy(2, 1..80),
        at in prop::collection::vec(-10i32..10, 2),
        kws in two_keywords(),
        t in 1usize..8,
    ) {
        let index = LinfNnIndex::build(&dataset, 2);
        let q = Point::new2(f64::from(at[0]), f64::from(at[1]));
        let all = index.query(&q, usize::MAX, &kws);
        let got = index.query(&q, t, &kws);
        prop_assert_eq!(&got[..], &all[..t.min(all.len())]);
    }
}
