//! A std-only, offline stand-in for the subset of `criterion` 0.5 this
//! workspace's benches use: `Criterion`, `benchmark_group`,
//! `bench_function`, `bench_with_input`, `BenchmarkId`, `Bencher::iter`,
//! and the `criterion_group!` / `criterion_main!` macros.
//!
//! Instead of criterion's statistical machinery it runs each benchmark
//! body a small number of times and prints the mean wall time — enough
//! to smoke-test the benches and get rough numbers without registry
//! access. Use the `skq-bench` harness binary for the paper's real
//! measurements.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::Instant;

/// Number of timed iterations per benchmark (after one warm-up).
const ITERS: u32 = 3;

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets the nominal sample size (recorded but unused in this
    /// stand-in).
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n;
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _parent: self,
        }
    }

    /// Runs a single free-standing benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, &mut f);
        self
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the nominal sample size for the group (unused here).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs a benchmark identified by `id` with a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, &mut |b| f(b, input));
        self
    }

    /// Runs a benchmark in this group by name.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let label = format!("{}/{}", self.name, name);
        run_one(&label, &mut f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group (function name + parameter).
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// A benchmark id from a function name and a displayable parameter.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        Self {
            function: function.into(),
            parameter: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.function, self.parameter)
    }
}

/// Passed to benchmark closures; `iter` times the routine.
pub struct Bencher {
    elapsed_ns: u128,
    iters: u32,
}

impl Bencher {
    /// Times `routine`, keeping its output alive so the call is not
    /// optimised away.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up draw, not timed.
        let _ = routine();
        let start = Instant::now();
        for _ in 0..ITERS {
            let out = routine();
            drop(out);
        }
        self.elapsed_ns += start.elapsed().as_nanos();
        self.iters += ITERS;
    }
}

fn run_one(label: &str, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        elapsed_ns: 0,
        iters: 0,
    };
    f(&mut b);
    let mean_us = if b.iters == 0 {
        0.0
    } else {
        b.elapsed_ns as f64 / b.iters as f64 / 1_000.0
    };
    println!("bench {label:<60} {mean_us:>12.1} us/iter (n={})", b.iters);
}

/// Groups benchmark functions, mirroring criterion's macro forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Generates `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_body() {
        let mut c = Criterion::default().sample_size(5);
        let mut count = 0u32;
        c.bench_function("smoke", |b| b.iter(|| count += 1));
        // one warm-up + ITERS timed calls
        assert_eq!(count, 1 + ITERS);
    }

    #[test]
    fn group_with_input_runs_body() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(10);
        let mut hits = 0u32;
        group.bench_with_input(BenchmarkId::new("f", 42), &7u32, |b, &x| {
            b.iter(|| hits += x)
        });
        group.finish();
        assert_eq!(hits, 7 * (1 + ITERS));
    }
}
