//! Collection strategies (`prop::collection::vec`).

use std::ops::Range;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Length specification for [`vec`]: an exact length or a half-open
/// range.
#[derive(Clone, Debug)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // exclusive
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { lo: n, hi: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        Self {
            lo: r.start,
            hi: r.end,
        }
    }
}

/// Generates `Vec`s whose length is drawn from `size` and whose
/// elements are drawn from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec`].
#[derive(Clone, Debug)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.hi - self.size.lo) as u64;
        let len = self.size.lo + (rng.next_u64() % span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_and_ranged_sizes() {
        let mut rng = TestRng::from_name("collection-tests");
        let exact = vec(0u32..5, 4usize);
        assert_eq!(exact.generate(&mut rng).len(), 4);
        let ranged = vec(0u32..5, 1..4);
        for _ in 0..100 {
            assert!((1..4).contains(&ranged.generate(&mut rng).len()));
        }
    }
}
