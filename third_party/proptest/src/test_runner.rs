//! Test configuration, case errors, and the deterministic RNG.

use std::fmt;

/// Per-test configuration (`proptest::test_runner::Config`).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self {
            cases: env_cases().unwrap_or(64),
        }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases. Like the default, an explicit
    /// count yields to `PROPTEST_CASES` — slow harnesses (Miri in CI)
    /// dial every suite down with one environment variable; this is a
    /// deliberate divergence from upstream proptest, where the variable
    /// only reaches `Config::default()`.
    pub fn with_cases(cases: u32) -> Self {
        Self {
            cases: env_cases().unwrap_or(cases),
        }
    }
}

/// The `PROPTEST_CASES` override, if set to a positive integer.
fn env_cases() -> Option<u32> {
    std::env::var("PROPTEST_CASES")
        .ok()?
        .trim()
        .parse()
        .ok()
        .filter(|&n| n > 0)
}

/// A failed property assertion (no shrinking in this stand-in).
#[derive(Clone, Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Builds a failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        Self(message.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Deterministic generator: xoshiro256++ seeded from the test name, so
/// every run of a given test explores the same cases.
#[derive(Clone, Debug)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Seeds from a test name (FNV-1a over the bytes, then SplitMix64).
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        let mut state = h;
        let mut split = || {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        Self {
            s: [split(), split(), split(), split()],
        }
    }

    /// The next uniform 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_override_parses_positive_integers_only() {
        // Direct parse-path checks; the test process may or may not have
        // the variable set, so exercise the filter logic via parse.
        for (raw, want) in [("12", Some(12u32)), (" 3 ", Some(3)), ("0", None), ("x", None)] {
            let got = raw.trim().parse().ok().filter(|&n: &u32| n > 0);
            assert_eq!(got, want, "{raw:?}");
        }
    }

    #[test]
    fn deterministic_per_name() {
        let mut a = TestRng::from_name("x");
        let mut b = TestRng::from_name("x");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::from_name("y");
        assert_ne!(TestRng::from_name("x").next_u64(), c.next_u64());
    }
}
