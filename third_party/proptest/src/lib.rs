//! A std-only, offline stand-in for the subset of `proptest` 1.x this
//! workspace uses: the `proptest!` macro, `prop_assert!` /
//! `prop_assert_eq!`, `prop_oneof!`, range and tuple strategies,
//! `prop::collection::vec`, `prop_map`, `prop_filter`, and
//! `ProptestConfig::with_cases`.
//!
//! It generates random cases from a per-test deterministic seed and
//! reports the first failing case. Unlike the real proptest it does
//! **not** shrink failures — the failing values are printed as-is —
//! which is an acceptable trade for an offline build environment with
//! no registry access.

#![forbid(unsafe_code)]

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// Common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Defines property tests: each `fn name(bindings in strategies) { … }`
/// becomes a `#[test]` running `config.cases` random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr; $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::from_name(stringify!($name));
                for case in 0..config.cases {
                    let ($($pat,)+) = (
                        $($crate::strategy::Strategy::generate(&($strat), &mut rng),)+
                    );
                    let result: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $body
                            Ok(())
                        })();
                    if let ::core::result::Result::Err(e) = result {
                        panic!("proptest {} failed at case {}/{}: {}",
                               stringify!($name), case + 1, config.cases, e);
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a `proptest!` body, failing the case
/// (with the generated inputs reported) instead of panicking outright.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), left, right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{} == {}` ({})\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), format!($($fmt)*), left, right
        );
    }};
}

/// Uniform choice among several strategies producing the same value
/// type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::one_of(vec![$(::std::boxed::Box::new($strat)),+])
    };
}
