//! Value-generation strategies.

use std::ops::Range;

use crate::test_runner::TestRng;

/// A recipe for generating values of one type.
///
/// Object-safe core (`generate`) plus `Sized` combinators, so
/// `Box<dyn Strategy<Value = T>>` works for `prop_oneof!`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Keeps only values satisfying `pred` (regenerating otherwise).
    fn prop_filter<F>(self, reason: impl Into<String>, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            reason: reason.into(),
            pred,
        }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Clone, Debug)]
pub struct Filter<S, F> {
    inner: S,
    reason: String,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1_000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter rejected 1000 candidates in a row: {}", self.reason);
    }
}

/// A constant strategy (`proptest::strategy::Just`).
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (self.start as i128 + v) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                let v = self.start as f64 + (self.end as f64 - self.start as f64) * unit;
                if v as $t >= self.end { self.start } else { v as $t }
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($name:ident),+);)*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A);
    (A, B);
    (A, B, C);
    (A, B, C, D);
    (A, B, C, D, E);
    (A, B, C, D, E, F);
}

/// Uniform choice among boxed strategies — the engine of
/// [`prop_oneof!`](crate::prop_oneof).
pub struct OneOf<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = (rng.next_u64() % self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
}

/// Builds a [`OneOf`] from boxed options (used by `prop_oneof!`).
///
/// # Panics
///
/// Panics if `options` is empty.
pub fn one_of<T>(options: Vec<Box<dyn Strategy<Value = T>>>) -> OneOf<T> {
    assert!(!options.is_empty(), "prop_oneof! needs at least one option");
    OneOf { options }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::from_name("strategy-tests")
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = rng();
        for _ in 0..1_000 {
            let v = (-8i32..8).generate(&mut r);
            assert!((-8..8).contains(&v));
            let f = (0.5f64..2.0).generate(&mut r);
            assert!((0.5..2.0).contains(&f));
        }
    }

    #[test]
    fn map_filter_tuple_vec_compose() {
        let mut r = rng();
        let strat = crate::collection::vec(
            (0i32..10, 0u32..5).prop_map(|(a, b)| a as u32 + b),
            3..6,
        )
        .prop_filter("nonempty", |v| !v.is_empty());
        for _ in 0..100 {
            let v = strat.generate(&mut r);
            assert!((3..6).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 14));
        }
    }

    #[test]
    fn one_of_hits_every_option() {
        let mut r = rng();
        let strat = crate::prop_oneof![0i32..1, 10i32..11, 20i32..21];
        let mut seen = [false; 3];
        for _ in 0..200 {
            match strat.generate(&mut r) {
                0 => seen[0] = true,
                10 => seen[1] = true,
                20 => seen[2] = true,
                other => panic!("unexpected {other}"),
            }
        }
        assert_eq!(seen, [true; 3]);
    }
}
