//! A std-only, offline stand-in for the subset of `rand` 0.8 this
//! workspace uses: `rngs::StdRng`, `SeedableRng::seed_from_u64`,
//! `Rng::gen_range` (half-open and inclusive integer/float ranges), and
//! `Rng::gen_bool`.
//!
//! The build environment resolves crates offline with no registry
//! cache, so the real `rand` cannot be downloaded; this crate is wired
//! in through `[patch.crates-io]`. The generator is xoshiro256++
//! seeded via SplitMix64 — high-quality uniformity for the synthetic
//! workloads and property tests, deterministic per seed. The streams
//! differ from the real `rand`'s, which is fine: every test in the
//! workspace asserts structural properties, not stream values.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Core RNG interface: a source of uniform 64-bit words.
pub trait RngCore {
    /// The next uniform 64-bit word.
    fn next_u64(&mut self) -> u64;

    /// The next uniform 32-bit word.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction (only the `u64` entry point is provided).
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// A primitive that can be drawn uniformly from an interval.
///
/// Mirrors `rand::distributions::uniform::SampleUniform` closely enough
/// that [`SampleRange`] can be a *single* blanket impl per range shape —
/// which is what lets `w + rng.gen_range(0..7)` infer the literal's
/// type from `w` instead of falling back to `i32`.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;

    /// Uniform draw from `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! int_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let span = (hi as i128 - lo as i128) as u128;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (lo as i128 + v) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (lo as i128 + v) as $t
            }
        }
    )*};
}

int_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                let v = (lo as f64 + (hi as f64 - lo as f64) * unit) as $t;
                // Guard against rounding up to the excluded endpoint.
                if v >= hi { lo } else { v }
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                (lo as f64 + (hi as f64 - lo as f64) * unit) as $t
            }
        }
    )*};
}

float_sample_uniform!(f32, f64);

/// A range shape accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "empty range in gen_range");
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range in gen_range");
        T::sample_inclusive(rng, lo, hi)
    }
}

/// User-facing sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform draw from `range` (half-open or inclusive).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw: `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range");
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

impl<R: RngCore> Rng for R {}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard seeded generator: xoshiro256++ (Blackman–Vigna),
    /// seeded through SplitMix64 as its authors recommend.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(mut state: u64) -> Self {
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            Self { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1_000_000u64), b.gen_range(0..1_000_000u64));
        }
        let mut c = StdRng::seed_from_u64(8);
        let same = (0..100).all(|_| {
            StdRng::seed_from_u64(7).gen_range(0..u64::MAX) == c.gen_range(0..u64::MAX)
        });
        assert!(!same);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(-50..50i32);
            assert!((-50..50).contains(&v));
            let f = rng.gen_range(0.0..1e6f64);
            assert!((0.0..1e6).contains(&f));
            let u = rng.gen_range(3..=7usize);
            assert!((3..=7).contains(&u));
            let g = rng.gen_range(-1.0..=1.0f64);
            assert!((-1.0..=1.0).contains(&g));
        }
    }

    #[test]
    fn roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(42);
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            counts[rng.gen_range(0..10usize)] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c), "{counts:?}");
        }
    }

    #[test]
    fn gen_bool_tracks_p() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.4)).count();
        assert!((38_000..42_000).contains(&hits), "{hits}");
    }
}
