//! Full-text + structured search over a small article archive.
//!
//! Each article has free-form text (run through the `Analyzer`
//! tokenizer) and two structured attributes — publication year and
//! reading time — so queries like "articles about database indexing,
//! published 2015–2020, under 12 minutes" become ORP-KW queries.
//!
//! Run with: `cargo run --release --example text_search`

use structured_keyword_search::invidx::Analyzer;
use structured_keyword_search::prelude::*;

fn main() {
    // (year, minutes, title-ish text blurb)
    let articles: Vec<(f64, f64, &str)> = vec![
        (
            2012.0,
            8.0,
            "A gentle introduction to database indexing with B-trees",
        ),
        (
            2014.0,
            15.0,
            "Scaling keyword search across sharded databases",
        ),
        (
            2016.0,
            10.0,
            "Spatial indexing: kd-trees, quadtrees, and R-trees compared",
        ),
        (
            2017.0,
            6.0,
            "Why your database index is slower than you think",
        ),
        (
            2018.0,
            11.0,
            "Keyword search meets geometry: indexing hybrid queries",
        ),
        (2019.0, 20.0, "A survey of spatial keyword query processing"),
        (
            2020.0,
            9.0,
            "Indexing temporal documents for time-travel keyword search",
        ),
        (
            2021.0,
            7.0,
            "Partition trees in practice: simplex range searching",
        ),
        (
            2022.0,
            13.0,
            "Set intersection at scale: galloping, SIMD, and beyond",
        ),
        (
            2023.0,
            5.0,
            "Near-optimal indexes for keyword search with structured constraints",
        ),
        (
            2023.0,
            14.0,
            "Lifting maps: reducing balls to halfspaces for fun and profit",
        ),
        (
            2024.0,
            8.0,
            "The inverted index strikes back: adaptive query processing",
        ),
    ];

    // Tokenize everything through the analyzer.
    let mut analyzer = Analyzer::new();
    let parts: Vec<(Point, Vec<Keyword>)> = articles
        .iter()
        .map(|&(year, minutes, text)| {
            let doc = analyzer.analyze(text).expect("non-empty text");
            (Point::new2(year, minutes), doc.keywords().to_vec())
        })
        .collect();
    let dataset = Dataset::from_parts(parts);
    println!(
        "{} articles, {} distinct terms, N = {}\n",
        dataset.len(),
        analyzer.dictionary().len(),
        dataset.input_size()
    );

    let index = OrpKwIndex::build(&dataset, 2);

    // "Articles about indexing keywords, 2015-2021, at most 12 minutes."
    let window = Rect::new(&[2015.0, 0.0], &[2021.0, 12.0]);
    let terms = ["indexing", "keyword"];
    let ids: Vec<Keyword> = analyzer
        .query_terms(&terms)
        .into_iter()
        .map(|t| t.expect("terms occur in the corpus"))
        .collect();
    let mut hits = index.query(&window, &ids);
    hits.sort_unstable();
    println!("query: {terms:?} AND year ∈ [2015, 2021] AND minutes ≤ 12");
    for id in &hits {
        let (y, m, text) = articles[*id as usize];
        println!("  → [{y:.0}, {m:>2.0} min] {text}");
    }

    // A term the corpus never saw short-circuits to empty.
    let missing = analyzer.query_terms(&["blockchain"]);
    assert_eq!(missing, vec![None]);
    println!("\nquery term 'blockchain': not in the corpus → empty without touching the index");

    // Cross-check against a full scan.
    let oracle = FullScan::new(&dataset);
    let mut expected = oracle.query_rect(&window, &ids);
    expected.sort_unstable();
    assert_eq!(hits, expected);
    println!("verified against a full scan ✓");
}
