//! Quickstart: the paper's introductory hotel example.
//!
//! A relation `Hotel(price, rating, Doc)` where `Doc` holds textual
//! tags. We ask the two queries from the introduction:
//!
//! * **C1** (orthogonal range): `price ∈ [100, 200] AND rating ≥ 8`,
//!   with keywords `pool`, `free-parking`, `pet-friendly`;
//! * **C2** (linear constraint): `c₁·price + c₂·(10 − rating) ≤ c₃`,
//!   with the same keywords.
//!
//! Run with: `cargo run --example quickstart`

use structured_keyword_search::prelude::*;

fn main() {
    // --- Build the hotel table. -----------------------------------
    let mut dict = Dictionary::new();
    let pool = dict.intern("pool");
    let parking = dict.intern("free-parking");
    let pets = dict.intern("pet-friendly");
    let spa = dict.intern("spa");
    let gym = dict.intern("gym");

    let rows: Vec<(&str, f64, f64, Vec<Keyword>)> = vec![
        ("Seaview", 120.0, 8.5, vec![pool, parking, pets]),
        ("Grand Palace", 250.0, 9.5, vec![pool, pets, spa]),
        ("Hilltop Lodge", 150.0, 8.8, vec![pool, parking, pets, gym]),
        ("Budget Inn", 60.0, 6.9, vec![parking]),
        ("Central Suites", 180.0, 7.5, vec![pool, parking, pets]),
        ("Quiet Corner", 95.0, 9.1, vec![parking, pets]),
        ("Marina Bay", 199.0, 8.0, vec![pool, parking, pets, spa]),
    ];
    let names: Vec<&str> = rows.iter().map(|r| r.0).collect();
    let hotels = Dataset::from_parts(
        rows.iter()
            .map(|(_, price, rating, kws)| (Point::new2(*price, *rating), kws.clone()))
            .collect(),
    );
    println!(
        "{} hotels, input size N = {} (total tag occurrences)\n",
        hotels.len(),
        hotels.input_size()
    );

    let wanted = [pool, parking, pets];

    // --- C1: orthogonal range + keywords (ORP-KW, Theorem 1). -----
    let orp = OrpKwIndex::build(&hotels, wanted.len());
    let c1 = Rect::new(&[100.0, 8.0], &[200.0, 10.0]);
    let mut hits = orp.query(&c1, &wanted);
    hits.sort_unstable();
    println!("C1: price ∈ [100, 200] AND rating ≥ 8 AND pool ∧ free-parking ∧ pet-friendly");
    for id in &hits {
        let p = hotels.point(*id as usize);
        println!(
            "  → {:<14} (price {:>5}, rating {})",
            names[*id as usize],
            p.get(0),
            p.get(1)
        );
    }

    // --- C2: linear constraint + keywords (LC-KW, Theorem 5). -----
    // price + 40·(10 − rating) ≤ 240  ⇔  price − 40·rating ≤ −160.
    let lc = LcKwIndex::build(&hotels, wanted.len());
    let c2 = Halfspace::new(&[1.0, -40.0], -160.0);
    let mut hits = lc.query(&[c2], &wanted);
    hits.sort_unstable();
    println!("\nC2: price + 40·(10 − rating) ≤ 240 AND the same keywords");
    for id in &hits {
        let p = hotels.point(*id as usize);
        println!(
            "  → {:<14} (price {:>5}, rating {})",
            names[*id as usize],
            p.get(0),
            p.get(1)
        );
    }

    // --- Nearest by value profile (L∞NN-KW, Corollary 4). ---------
    let nn = LinfNnIndex::build(&hotels, wanted.len());
    let target = Point::new2(150.0, 9.0);
    let best = nn.query(&target, 2, &wanted);
    println!("\n2 hotels with all keywords closest to (price 150, rating 9) under L∞:");
    for id in &best {
        let p = hotels.point(*id as usize);
        println!(
            "  → {:<14} (price {:>5}, rating {}, L∞ distance {})",
            names[*id as usize],
            p.get(0),
            p.get(1),
            p.linf(&target)
        );
    }

    // --- Sanity: agree with the naive full scan. -------------------
    let oracle = FullScan::new(&hotels);
    assert_eq!(
        {
            let mut v = oracle.query_rect(&c1, &wanted);
            v.sort_unstable();
            v
        },
        orp.query(&c1, &wanted)
            .into_iter()
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
            .collect::<Vec<_>>()
    );
    println!("\nAll index answers verified against a full scan. ✓");
}
