//! A live feed: streaming inserts and deletes with interleaved queries.
//!
//! The paper's indexes are static; `DynamicOrpKw` wraps them with the
//! Bentley–Saxe logarithmic method (ORP-KW is decomposable), giving
//! amortized-cheap insertion, lazy deletion, and an `O(log n)` factor
//! on queries. The scenario: rental listings appear and disappear while
//! users search by area and amenities.
//!
//! Run with: `cargo run --release --example live_updates`

use rand::{rngs::StdRng, Rng, SeedableRng};
use std::time::Instant;
use structured_keyword_search::core::dynamic::DynamicOrpKw;
use structured_keyword_search::prelude::*;

fn main() {
    let mut dict = Dictionary::new();
    let amenities: Vec<Keyword> = [
        "balcony",
        "parking",
        "furnished",
        "pets-ok",
        "garden",
        "elevator",
        "dishwasher",
        "fiber",
    ]
    .iter()
    .map(|a| dict.intern(a))
    .collect();

    let mut index = DynamicOrpKw::new(2, 2);
    let mut rng = StdRng::seed_from_u64(2024);
    let mut active: Vec<_> = Vec::new();

    // Warm-up: 40k listings appear.
    let t0 = Instant::now();
    for _ in 0..40_000 {
        let p = Point::new2(rng.gen_range(0.0..100.0), rng.gen_range(0.0..100.0));
        let n_amenities = rng.gen_range(1..5);
        let doc: Vec<Keyword> = (0..n_amenities)
            .map(|_| amenities[rng.gen_range(0..amenities.len())])
            .collect();
        active.push(index.insert(p, doc));
    }
    println!(
        "40k inserts in {:.2?} ({} live, {} static blocks)",
        t0.elapsed(),
        index.len(),
        index.num_blocks()
    );

    // A day of churn: listings come and go, searches run throughout.
    let (balcony, parking) = (
        dict.lookup("balcony").unwrap(),
        dict.lookup("parking").unwrap(),
    );
    let mut reported = 0usize;
    let t0 = Instant::now();
    let mut n_queries = 0;
    for tick in 0..10_000 {
        match rng.gen_range(0..10) {
            0..=3 => {
                let p = Point::new2(rng.gen_range(0.0..100.0), rng.gen_range(0.0..100.0));
                let doc: Vec<Keyword> = (0..rng.gen_range(1..5))
                    .map(|_| amenities[rng.gen_range(0..amenities.len())])
                    .collect();
                active.push(index.insert(p, doc));
            }
            4..=6 => {
                if !active.is_empty() {
                    let i = rng.gen_range(0..active.len());
                    let h = active.swap_remove(i);
                    index.delete(h);
                }
            }
            _ => {
                let x: f64 = rng.gen_range(0.0..90.0);
                let y: f64 = rng.gen_range(0.0..90.0);
                let q = Rect::new(&[x, y], &[x + 10.0, y + 10.0]);
                let hits = index.query(&q, &[balcony, parking]);
                reported += hits.len();
                n_queries += 1;
                let _ = tick;
            }
        }
    }
    println!(
        "10k mixed operations in {:.2?}: {n_queries} searches returned {reported} listings total",
        t0.elapsed()
    );
    println!(
        "final state: {} live listings across {} blocks, ~{} words",
        index.len(),
        index.num_blocks(),
        index.space_words()
    );

    // Spot-check correctness against a scan of the live set.
    let q = Rect::new(&[20.0, 20.0], &[60.0, 60.0]);
    let hits = index.query(&q, &[balcony, parking]);
    println!(
        "\nspot query [20,60]² with {{balcony, parking}}: {} listings ✓",
        hits.len()
    );
}
