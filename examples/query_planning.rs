//! Cost-based plan selection across the three execution strategies.
//!
//! The paper's introduction contrasts two naive plans; the contribution
//! adds a third. This example holds all three behind `PlannedOrpKw` and
//! shows the planner routing each query to the right engine:
//!
//! * a *rare* keyword → keywords-only (the postings list is tiny);
//! * a *tiny* window → structured-only (the kd-tree isolates it);
//! * frequent keywords over a wide window with few joint matches → the
//!   paper's index.
//!
//! Run with: `cargo run --release --example query_planning`

use std::time::Instant;
use structured_keyword_search::core::planner::{Plan, PlannedOrpKw};
use structured_keyword_search::prelude::*;

fn main() {
    // City POIs with Zipf tags: a few huge tags, a long rare tail.
    let config = SpatialKeywordConfig {
        num_objects: 80_000,
        vocab: 2_000,
        doc_len: (3, 7),
        extent: 10_000.0,
        keywords: KeywordModel::Zipf(1.1),
        ..Default::default()
    };
    let mut city = config.generate(99);
    // Plant two tags that are individually huge (~1/3 of all objects
    // each) but never co-occur — the regime the paper's index targets.
    {
        let a = 5_000u32;
        let b = 5_001u32;
        let parts: Vec<(Point, Vec<Keyword>)> = (0..city.len())
            .map(|i| {
                let mut doc = city.doc(i).keywords().to_vec();
                match i % 3 {
                    0 => doc.push(a),
                    1 => doc.push(b),
                    _ => {}
                }
                (*city.point(i), doc)
            })
            .collect();
        city = Dataset::from_parts(parts);
    }
    println!(
        "dataset: {} objects, N = {}\n",
        city.len(),
        city.input_size()
    );

    let t0 = Instant::now();
    let planner = PlannedOrpKw::build(&city, 2);
    println!("all three engines built in {:.2?}\n", t0.elapsed());

    let gen = QueryGen::new(&city, 1);
    let top = gen.top_keywords(2).unwrap();
    let rare = {
        // One top keyword plus one from deep in the frequency tail.
        let mut g = QueryGen::new(&city, 2);
        let tail = g.keywords(1, 1.0).unwrap()[0];
        vec![top[0], tail]
    };

    // The two planted tags: individually huge, never together.
    let disjoint_pair = vec![5_000u32, 5_001u32];

    let scenarios: Vec<(&str, Rect, Vec<Keyword>)> = vec![
        (
            "wide window + two frequent tags (they co-occur a lot)",
            Rect::new(&[1000.0, 1000.0], &[9000.0, 9000.0]),
            top.clone(),
        ),
        ("anything + one rare tag", Rect::full(2), rare),
        (
            "tiny window + frequent tags",
            Rect::new(&[5000.0, 5000.0], &[5050.0, 5050.0]),
            top.clone(),
        ),
        (
            "wide window + frequent tags that rarely co-occur",
            Rect::new(&[1000.0, 1000.0], &[9000.0, 9000.0]),
            disjoint_pair,
        ),
    ];

    for (name, q, kws) in &scenarios {
        let est = planner.estimate(q, kws);
        let (hits, plan) = planner.query(q, kws);
        println!("scenario: {name}");
        println!(
            "  estimates — keywords-only: {:.0}, structured-only: {:.0}, framework: {:.0}",
            est.keywords_only, est.structured_only, est.framework
        );
        println!("  chosen plan: {plan:?}, {} results", hits.len());

        // Time all three plans to show the choice was sound.
        for p in [Plan::KeywordsOnly, Plan::StructuredOnly, Plan::Framework] {
            let t = Instant::now();
            let r = planner.query_with_plan(q, kws, p);
            let dt = t.elapsed();
            assert_eq!(r, hits, "plans must agree");
            let marker = if p == plan { "  ← chosen" } else { "" };
            println!("    {p:?}: {dt:.1?}{marker}");
        }
        println!();
    }
}
