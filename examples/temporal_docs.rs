//! Temporal keyword search over versioned documents (RR-KW, d = 1).
//!
//! Each document version has a *lifespan* interval `[from, to]`; a query
//! asks for the versions alive at some time window that contain all the
//! query keywords — the setting of Anand et al. (CIKM'10), which the
//! paper cites as the `d = 1` application of RR-KW (Corollary 3).
//!
//! Run with: `cargo run --release --example temporal_docs`

use rand::{rngs::StdRng, Rng, SeedableRng};
use structured_keyword_search::core::rr::{rr_bruteforce, RrKwIndex};
use structured_keyword_search::prelude::*;

fn main() {
    let mut rng = StdRng::seed_from_u64(2010);
    let mut dict = Dictionary::new();
    let vocab: Vec<Keyword> = [
        "database", "index", "keyword", "temporal", "query", "text", "search", "tree", "hash",
        "graph", "join", "rank", "cache", "log", "view", "shard",
    ]
    .iter()
    .map(|w| dict.intern(w))
    .collect();

    // 30k document versions over a 10-year timeline (days).
    let horizon = 3650.0;
    let versions: Vec<(Rect, Vec<Keyword>)> = (0..30_000)
        .map(|_| {
            let from: f64 = rng.gen_range(0.0..horizon - 1.0);
            let lifespan: f64 = rng.gen_range(1.0..400.0);
            let to = (from + lifespan).min(horizon);
            let n_kw = rng.gen_range(2..6);
            let kws: Vec<Keyword> = (0..n_kw)
                .map(|_| vocab[rng.gen_range(0..vocab.len())])
                .collect();
            (Rect::new(&[from], &[to]), kws)
        })
        .collect();

    let k = 3;
    let index = RrKwIndex::build(&versions, k);
    println!(
        "indexed {} versions (N = {}), space ≈ {} words",
        versions.len(),
        versions.iter().map(|(_, k)| k.len()).sum::<usize>(),
        index.space_words()
    );

    // "Versions alive during days 1000–1030 mentioning database,
    // temporal, and index."
    let window = Rect::new(&[1000.0], &[1030.0]);
    let query_kws = vec![
        dict.lookup("database").unwrap(),
        dict.lookup("temporal").unwrap(),
        dict.lookup("index").unwrap(),
    ];
    let (mut hits, stats) = index.query_with_stats(&window, &query_kws);
    hits.sort_unstable();
    println!(
        "\nalive in days [1000, 1030] with {{database, temporal, index}}: {} versions",
        hits.len()
    );
    println!(
        "  examined {} objects across {} tree nodes",
        stats.objects_examined(),
        stats.nodes_visited
    );
    for id in hits.iter().take(5) {
        let (span, kws) = &versions[*id as usize];
        let names: Vec<&str> = kws.iter().map(|&w| dict.name(w).unwrap()).collect();
        println!(
            "  → version {:>6} alive [{:>6.0}, {:>6.0}] tags {:?}",
            id,
            span.lo(0),
            span.hi(0),
            names
        );
    }

    // Verify against brute force, on this and a few more windows.
    let expected = rr_bruteforce(&versions, &window, &query_kws);
    assert_eq!(hits, expected);
    for _ in 0..20 {
        let a: f64 = rng.gen_range(0.0..horizon);
        let w = Rect::new(&[a], &[(a + rng.gen_range(1.0..200.0)).min(horizon)]);
        let mut got = index.query(&w, &query_kws);
        got.sort_unstable();
        assert_eq!(got, rr_bruteforce(&versions, &w, &query_kws));
    }
    println!("\nverified against brute force on 21 windows ✓");
}
