//! Spatial keyword search over a synthetic city of points of interest.
//!
//! The workload the spatial-keyword-search literature motivates: POIs
//! with coordinates and tags (tags are Zipf-distributed and spatially
//! correlated, like "beach" or "ski" in real map data). We run all
//! three spatial query types against the paper's indexes and both naive
//! baselines, printing answers and examined-candidate counts.
//!
//! Run with: `cargo run --release --example geo_search`

use std::time::Instant;

use structured_keyword_search::prelude::*;

fn main() {
    // --- A synthetic city: 50k POIs, clustered, correlated tags. ---
    let config = SpatialKeywordConfig {
        num_objects: 50_000,
        dim: 2,
        vocab: 400,
        doc_len: (3, 8),
        extent: 100_000.0,
        integer_coords: true, // enables exact L2 NN
        spatial: SpatialModel::Clustered {
            count: 12,
            spread: 0.05,
        },
        keywords: KeywordModel::ZipfCorrelated(0.9),
    };
    let city = config.generate(20230618);
    println!(
        "city: {} POIs, N = {}, {} distinct tags",
        city.len(),
        city.input_size(),
        city.num_keywords()
    );

    let k = 2;
    let t0 = Instant::now();
    let orp = OrpKwIndex::build(&city, k);
    let srp = SrpKwIndex::build(&city, k);
    let nn = L2NnIndex::build(&city, k);
    println!("indexes built in {:.2?}\n", t0.elapsed());

    let keywords_first = KeywordsFirst::build(&city);
    let structured_first = StructuredFirst::build(&city);

    let mut gen = QueryGen::new(&city, 7);
    // Query with the two most common tags — plenty of co-occurrences.
    let kws = gen.top_keywords(k).expect("enough keywords");

    // Anchor the spatial predicates on a POI that has both tags, so the
    // queries land where the (clustered) data actually lives.
    let anchor = (0..city.len())
        .find(|&i| city.doc(i).contains_all(&kws))
        .map(|i| *city.point(i))
        .expect("some POI has both tags");

    // --- Range query: "all POIs with both tags in this window". ----
    let half = 4_000.0;
    let window = Rect::new(
        &[anchor.get(0) - half, anchor.get(1) - half],
        &[anchor.get(0) + half, anchor.get(1) + half],
    );
    let t = Instant::now();
    let (hits, stats) = orp.query_with_stats(&window, &kws);
    let dt = t.elapsed();
    println!("RANGE  {window:?} tags {kws:?}");
    println!(
        "  ORP-KW index : {:>5} hits, {:>7} objects examined, {dt:.1?}",
        hits.len(),
        stats.objects_examined()
    );
    let t = Instant::now();
    let base = keywords_first.query_rect(&window, &kws);
    println!(
        "  keywords-only: {:>5} hits, {:>7} candidates,        {:.1?}",
        base.len(),
        keywords_first.candidates(&kws),
        t.elapsed()
    );
    let t = Instant::now();
    let base2 = structured_first.query_rect(&window, &kws);
    println!(
        "  spatial-only : {:>5} hits, {:>7} candidates,        {:.1?}",
        base2.len(),
        structured_first.candidates_rect(&window),
        t.elapsed()
    );
    assert_eq!(sorted(hits.clone()), sorted(base));

    // --- Ball query: "within 3km of this point" (SRP-KW). ----------
    let center = Point::new2(anchor.get(0).round(), anchor.get(1).round());
    let ball = Ball::new(center, 3_000.0);
    let t = Instant::now();
    let (hits_b, stats_b) = srp.query_with_stats(&ball, &kws);
    println!("\nBALL   center {center:?}, radius 3000, tags {kws:?}");
    println!(
        "  SRP-KW index : {:>5} hits, {:>7} objects examined, {:.1?}",
        hits_b.len(),
        stats_b.objects_examined(),
        t.elapsed()
    );
    let base_b = keywords_first.query_ball(&ball, &kws);
    assert_eq!(sorted(hits_b), sorted(base_b));

    // --- Nearest neighbours: "5 closest POIs with both tags". ------
    let q = gen.integer_point();
    let t = Instant::now();
    let nearest = nn.query(&q, 5, &kws);
    println!(
        "\nNN     query point {q:?}, t = 5, tags {kws:?} ({:.1?})",
        t.elapsed()
    );
    for id in &nearest {
        let p = city.point(*id as usize);
        println!(
            "  → POI {:>6} at {p:?}, distance {:.1}",
            id,
            p.l2_sq(&q).sqrt()
        );
    }
    let base_nn = keywords_first.nn_l2(&q, 5, &kws);
    assert_eq!(nearest, base_nn);

    println!("\nall answers verified against the naive baselines ✓");
}

fn sorted(mut v: Vec<u32>) -> Vec<u32> {
    v.sort_unstable();
    v
}
