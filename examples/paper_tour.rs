//! A guided tour of the paper's machinery, with the index's own
//! diagnostics as the tour guide.
//!
//! Walks through: the verbose-set weighting and large/small keyword
//! classification (§3.2), the covered/crossing query analysis and the
//! Figure-1 compaction effect (§3.3, Lemmas 9–10), and the
//! dimension-reduction tree's type-1/type-2 structure (§4, Figure 2).
//!
//! Run with: `cargo run --release --example paper_tour`

use structured_keyword_search::prelude::*;
use structured_keyword_search::workload::scenarios;

fn main() {
    println!("================================================================");
    println!(" §3.2 — the transformed kd-tree");
    println!("================================================================\n");

    let city = scenarios::city(50_000, 1);
    let k = 2;
    println!(
        "dataset: {} objects, N = Σ|Doc| = {} (the verbose set has N points)",
        city.len(),
        city.input_size()
    );
    let index = OrpKwIndex::build(&city, k);
    let summaries = index.kd_node_summaries().expect("2D uses the kd framework");
    let height = summaries.iter().map(|&(l, ..)| l).max().unwrap();
    println!(
        "kd framework tree: {} nodes, height {height} (≈ log2 N = {:.1})",
        summaries.len(),
        (city.input_size() as f64).log2()
    );

    // Large/small classification at the root: at most N^(1/k) large.
    let (_, root_weight, _, root_large) = summaries[0];
    println!(
        "root: N_u = {root_weight}, {root_large} large keywords (bound N^(1/k) = {:.0})",
        (root_weight as f64).powf(1.0 / k as f64)
    );
    let max_large = summaries.iter().map(|&(.., l)| l).max().unwrap();
    println!("max large keywords at any node: {max_large}\n");

    println!("================================================================");
    println!(" §3.3 — covered vs crossing (Figure 1)");
    println!("================================================================\n");

    let mut gen = QueryGen::new(&city, 2);
    let kws = gen.top_keywords(k).unwrap();

    // A window query: most visited cells are covered, the boundary ring
    // crosses.
    let window = gen.rect(0.05);
    let (hits, stats) = index.query_with_stats(&window, &kws);
    println!("window query ({} hits): {stats}", hits.len());
    println!(
        "  covered : {} nodes (their subtrees are pure output — Lemma 9)",
        stats.covered_nodes
    );
    println!(
        "  crossing: {} nodes (the boundary — Lemma 10 bounds these)\n",
        stats.crossing_nodes
    );

    // A vertical line through a data coordinate: the Figure-1 picture.
    let x = city.point(city.len() / 2).get(0);
    let line = Rect::new(&[x, f64::NEG_INFINITY], &[x, f64::INFINITY]);
    let (_, stats) = index.query_with_stats(&line, &kws);
    println!("vertical line x = {x}: crossing histogram by level");
    println!("  {:?}", stats.crossing_by_level);
    println!(
        "  (even levels split vertically and do NOT double for a vertical\n   \
         line — exactly the compaction step drawn in Figure 1; total {} vs\n   \
         √N = {:.0})\n",
        stats.crossing_nodes,
        (city.input_size() as f64).sqrt()
    );

    println!("================================================================");
    println!(" §4 — dimension reduction (Figure 2)");
    println!("================================================================\n");

    let net = scenarios::sensor_net(50_000, 3);
    let index3 = OrpKwIndex::build(&net, 2);
    let mut gen3 = QueryGen::new(&net, 4);
    let kws3 = gen3.top_keywords(2).unwrap();
    let q3 = gen3.rect(0.2);
    let (hits3, stats3) = index3.query_with_stats(&q3, &kws3);
    println!(
        "3D query ({} hits) on N = {}: type-1 per level {:?}, type-2 per level {:?}",
        hits3.len(),
        net.input_size(),
        stats3.type1_by_level,
        stats3.type2_by_level
    );
    println!(
        "  (at most two type-2 \"boundary chain\" nodes per level — the\n   \
         black/white node picture of Figure 2; the tree has O(log log N)\n   \
         levels, here {} for log2 log2 N = {:.1})",
        stats3.type1_by_level.len().max(stats3.type2_by_level.len()),
        (net.input_size() as f64).log2().log2()
    );
}
