//! Pure k-set intersection: the hardness core of keyword search (§1.2).
//!
//! Builds a *planted* instance where three designated sets intersect in
//! exactly `OUT` elements while every pair of them shares thousands —
//! the worst case for merge-based intersection. Compares the paper's
//! framework index (`O(N^{1−1/k}(1 + OUT^{1/k}))`) against the
//! galloping inverted-index merge (`Θ(shortest list)`).
//!
//! Run with: `cargo run --release --example set_intersection`

use std::time::Instant;

use structured_keyword_search::prelude::*;
use structured_keyword_search::workload::ksi::planted_instance;

fn main() {
    let n = 200_000;
    let k = 3;
    println!("planted 3-set intersection over {n} elements\n");
    println!(
        "{:>8} {:>14} {:>14} {:>12}",
        "OUT", "framework", "inverted idx", "speedup"
    );

    for planted in [0usize, 10, 100, 1_000, 10_000] {
        let inst = planted_instance(n, 8, k, planted, 6, 99);
        let ksi = KsiIndex::build(&inst.docs, k);
        let inv = InvertedIndex::build(&inst.docs);

        // Warm up + verify both agree with the planted truth.
        let mut got = ksi.intersect(&inst.query);
        got.sort_unstable();
        assert_eq!(got, inst.expected);
        assert_eq!(inv.intersect(&inst.query), inst.expected);

        let reps = 20;
        let t = Instant::now();
        for _ in 0..reps {
            std::hint::black_box(ksi.intersect(std::hint::black_box(&inst.query)));
        }
        let fw = t.elapsed() / reps;

        let t = Instant::now();
        for _ in 0..reps {
            std::hint::black_box(inv.intersect(std::hint::black_box(&inst.query)));
        }
        let naive = t.elapsed() / reps;

        println!(
            "{planted:>8} {fw:>14.1?} {naive:>14.1?} {:>11.1}x",
            naive.as_secs_f64() / fw.as_secs_f64().max(1e-12)
        );
    }

    println!(
        "\nThe framework wins big when OUT is small (it certifies emptiness in \
         ~N^(1-1/k) work) and converges to the naive cost as OUT approaches N — \
         exactly the shape of bound (4) in the paper."
    );

    // Emptiness queries (the strong k-set-disjointness side).
    let inst = planted_instance(n, 8, k, 0, 6, 7);
    let ksi = KsiIndex::build(&inst.docs, k);
    let inv = InvertedIndex::build(&inst.docs);
    let t = Instant::now();
    let reps = 50;
    for _ in 0..reps {
        assert!(ksi.intersection_is_empty(std::hint::black_box(&inst.query)));
    }
    let fw = t.elapsed() / reps;
    let t = Instant::now();
    for _ in 0..reps {
        assert!(inv.intersection_is_empty(std::hint::black_box(&inst.query)));
    }
    let naive = t.elapsed() / reps;
    println!("\nemptiness query: framework {fw:.1?} vs inverted index {naive:.1?}");
}
