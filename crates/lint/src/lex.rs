//! A std-only, span-accurate Rust lexer for the rule engine.
//!
//! The token stream is *lossless*: every byte of the source belongs to
//! exactly one token (whitespace and comments are tokens too), so
//! concatenating token spans reproduces the file byte-for-byte — a
//! property pinned by `tests/lexer_props.rs` over the whole workspace.
//! That makes the stream safe to use both for structural rules (the
//! concurrency pass in `conc.rs`) and as the source of truth for the
//! masked text view the line-oriented rules L01–L14 consume
//! (`masked_view`).
//!
//! The lexer is deliberately simpler than rustc's: keywords are plain
//! `Ident` tokens, all punctuation is single-byte (`::` is two `Punct`
//! tokens), and numeric edge cases (hex floats, suffix soup) may fuse
//! into one `Num` token. None of that matters for the rules, which
//! match token *sequences*; what must be exact are spans, comment
//! boundaries, and the body ranges of string/char literals.

use std::cell::Cell;

thread_local! {
    /// How many times `lex` has run on this thread. The fixture suite
    /// asserts this advances exactly once per file per `Workspace`
    /// construction — i.e. every rule shares one token stream and
    /// nothing re-reads or re-lexes behind the engine's back.
    /// Thread-local so parallel test threads cannot skew each other's
    /// counts.
    static LEX_RUNS: Cell<usize> = const { Cell::new(0) };
}

/// This thread's count of `lex` invocations (diagnostic; see
/// `LEX_RUNS`).
pub fn lex_runs() -> usize {
    LEX_RUNS.with(Cell::get)
}

/// Token classification. `Open`/`Close` carry the delimiter byte
/// (`(`/`)`, `[`/`]`, `{`/`}`); `Punct` carries the first byte of the
/// (possibly multi-byte) punctuation character.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// A run of whitespace (newlines included).
    Whitespace,
    /// `// …` up to but not including the newline.
    LineComment,
    /// `/* … */`, nesting respected; unterminated runs to EOF.
    BlockComment,
    /// Identifier or keyword (`fn`, `while`, `r#ident`, …).
    Ident,
    /// `'a`, `'static` — quote plus identifier, no closing quote.
    Lifetime,
    /// Any string-like literal: `"…"`, `r#"…"#`, `b"…"`, `br#"…"#`.
    Str,
    /// Char or byte-char literal: `'x'`, `'\n'`, `b'x'`.
    Char,
    /// Numeric literal, possibly with suffix/exponent.
    Num,
    /// Single punctuation character (first byte).
    Punct(u8),
    /// Opening delimiter byte.
    Open(u8),
    /// Closing delimiter byte.
    Close(u8),
}

/// One token: `kind` plus the half-open byte span `start..end` in the
/// source. For `Str`/`Char`, `body_start..body_end` is the literal's
/// *contents* — the bytes between the delimiters (quotes and raw-string
/// fences excluded). For every other kind the body range is empty.
#[derive(Debug, Clone, Copy)]
pub struct Token {
    pub kind: TokenKind,
    pub start: usize,
    pub end: usize,
    pub body_start: usize,
    pub body_end: usize,
}

impl Token {
    fn plain(kind: TokenKind, start: usize, end: usize) -> Self {
        Token {
            kind,
            start,
            end,
            body_start: start,
            body_end: start,
        }
    }

    fn literal(
        kind: TokenKind,
        start: usize,
        end: usize,
        body_start: usize,
        body_end: usize,
    ) -> Self {
        Token {
            kind,
            start,
            end,
            body_start,
            body_end,
        }
    }
}

/// Lex `src` into a contiguous, byte-covering token stream.
pub fn lex(src: &str) -> Vec<Token> {
    LEX_RUNS.with(|c| c.set(c.get() + 1));
    let bytes = src.as_bytes();
    let n = src.len();
    let mut out = Vec::new();
    let mut i = 0;
    while i < n {
        let b = bytes[i];
        let tok = if b == b'/' && src[i..].starts_with("//") {
            let end = src[i..].find('\n').map(|o| i + o).unwrap_or(n);
            Token::plain(TokenKind::LineComment, i, end)
        } else if b == b'/' && src[i..].starts_with("/*") {
            Token::plain(TokenKind::BlockComment, i, block_comment_end(src, i))
        } else if first_char(src, i).is_whitespace() {
            let mut j = i;
            while j < n {
                let c = first_char(src, j);
                if !c.is_whitespace() {
                    break;
                }
                j += c.len_utf8();
            }
            Token::plain(TokenKind::Whitespace, i, j)
        } else if let Some(tok) = raw_string(src, i) {
            tok
        } else if b == b'b' && i + 1 < n && bytes[i + 1] == b'"' {
            quoted_string(src, i, i + 1)
        } else if b == b'"' {
            quoted_string(src, i, i)
        } else if b == b'b' && i + 1 < n && bytes[i + 1] == b'\'' {
            char_or_lifetime(src, i, i + 1).unwrap_or_else(|| ident(src, i))
        } else if b == b'\'' {
            char_or_lifetime(src, i, i).unwrap_or(Token::plain(TokenKind::Punct(b'\''), i, i + 1))
        } else if is_ident_start(first_char(src, i)) {
            ident(src, i)
        } else if b.is_ascii_digit() {
            number(src, i)
        } else if matches!(b, b'(' | b'[' | b'{') {
            Token::plain(TokenKind::Open(b), i, i + 1)
        } else if matches!(b, b')' | b']' | b'}') {
            Token::plain(TokenKind::Close(b), i, i + 1)
        } else {
            Token::plain(TokenKind::Punct(b), i, i + first_char(src, i).len_utf8())
        };
        debug_assert!(tok.end > tok.start && tok.start == i);
        i = tok.end;
        out.push(tok);
    }
    out
}

/// Re-create the masked text view from the token stream: comments and
/// literal *bodies* are blanked to spaces (newlines preserved so line
/// numbers survive); quotes, raw-string fences, lifetimes, and all code
/// bytes pass through untouched. This reproduces the semantics of the
/// historical character-level masker, which the `scan` unit tests pin.
pub fn masked_view(src: &str, tokens: &[Token]) -> String {
    let mut out = src.as_bytes().to_vec();
    for tok in tokens {
        let (lo, hi) = match tok.kind {
            TokenKind::LineComment | TokenKind::BlockComment => (tok.start, tok.end),
            TokenKind::Str | TokenKind::Char => (tok.body_start, tok.body_end),
            _ => continue,
        };
        for b in &mut out[lo..hi] {
            if *b != b'\n' {
                *b = b' ';
            }
        }
    }
    // Masking only ever rewrites bytes to ASCII spaces, so the result
    // stays valid UTF-8; fall back to the source if that ever breaks.
    String::from_utf8(out).unwrap_or_else(|_| src.to_string())
}

fn first_char(src: &str, i: usize) -> char {
    src[i..].chars().next().unwrap_or('\0')
}

fn is_ident_start(c: char) -> bool {
    c == '_' || c.is_alphabetic()
}

fn is_ident_continue(c: char) -> bool {
    c == '_' || c.is_alphanumeric()
}

/// End offset of a (possibly nested) block comment opened at `i`.
fn block_comment_end(src: &str, i: usize) -> usize {
    let bytes = src.as_bytes();
    let n = src.len();
    let mut depth = 0usize;
    let mut j = i;
    while j < n {
        if bytes[j] == b'/' && j + 1 < n && bytes[j + 1] == b'*' {
            depth += 1;
            j += 2;
        } else if bytes[j] == b'*' && j + 1 < n && bytes[j + 1] == b'/' {
            depth -= 1;
            j += 2;
            if depth == 0 {
                return j;
            }
        } else {
            j += 1;
        }
    }
    n
}

/// Raw string (`r"…"`, `r#"…"#`) or raw byte string (`br…`), starting
/// at `i`; also claims raw identifiers (`r#ident`) as `Ident`.
fn raw_string(src: &str, i: usize) -> Option<Token> {
    let bytes = src.as_bytes();
    let n = src.len();
    let mut j = i;
    if bytes[j] == b'b' && j + 1 < n && bytes[j + 1] == b'r' {
        j += 2;
    } else if bytes[j] == b'r' {
        j += 1;
    } else {
        return None;
    }
    let mut hashes = 0usize;
    while j < n && bytes[j] == b'#' {
        hashes += 1;
        j += 1;
    }
    if j < n && bytes[j] == b'"' {
        let body_start = j + 1;
        let closer: String = std::iter::once('"')
            .chain(std::iter::repeat_n('#', hashes))
            .collect();
        match src[body_start..].find(&closer) {
            Some(off) => {
                let body_end = body_start + off;
                Some(Token::literal(
                    TokenKind::Str,
                    i,
                    body_end + closer.len(),
                    body_start,
                    body_end,
                ))
            }
            None => Some(Token::literal(TokenKind::Str, i, n, body_start, n)),
        }
    } else if bytes[i] == b'r' && hashes == 1 && j < n && is_ident_start(first_char(src, j)) {
        // Raw identifier `r#ident`.
        let mut k = j;
        while k < n {
            let c = first_char(src, k);
            if !is_ident_continue(c) {
                break;
            }
            k += c.len_utf8();
        }
        Some(Token::plain(TokenKind::Ident, i, k))
    } else {
        None
    }
}

/// Plain or byte string literal; `quote` is the offset of the opening
/// `"` (equal to `start` unless there is a `b` prefix).
fn quoted_string(src: &str, start: usize, quote: usize) -> Token {
    let bytes = src.as_bytes();
    let n = src.len();
    let body_start = quote + 1;
    let mut j = body_start;
    while j < n {
        match bytes[j] {
            b'\\' => j = (j + 2).min(n),
            b'"' => return Token::literal(TokenKind::Str, start, j + 1, body_start, j),
            _ => j += 1,
        }
    }
    Token::literal(TokenKind::Str, start, n, body_start, n)
}

/// Disambiguate `'x'` / `'\n'` (char literal) from `'a` (lifetime).
/// `quote` is the offset of the `'` (equal to `start` unless there is
/// a `b` prefix). Returns `None` when a `b` prefix fails to form a
/// byte-char literal, so the caller can fall back to lexing the `b` as
/// an identifier.
fn char_or_lifetime(src: &str, start: usize, quote: usize) -> Option<Token> {
    let bytes = src.as_bytes();
    let n = src.len();
    let is_byte = quote > start;
    let mut rest = src[quote + 1..].char_indices();
    let (o1, c1) = rest.next()?;
    let first = quote + 1 + o1;
    if c1 == '\\' {
        // Escaped char literal: skip the escape head, then scan to the
        // closing quote (covers \n, \x7f, \u{…}, \'; bounded by EOF).
        let mut j = (first + 2).min(n);
        while j < n && bytes[j] != b'\'' {
            j += 1;
        }
        if j < n {
            return Some(Token::literal(TokenKind::Char, start, j + 1, quote + 1, j));
        }
        return if is_byte {
            None
        } else {
            Some(Token::plain(TokenKind::Punct(b'\''), quote, quote + 1))
        };
    }
    let after = first + c1.len_utf8();
    if after < n && bytes[after] == b'\'' {
        return Some(Token::literal(
            TokenKind::Char,
            start,
            after + 1,
            quote + 1,
            after,
        ));
    }
    if !is_byte && is_ident_start(c1) {
        let mut k = after;
        while k < n {
            let c = first_char(src, k);
            if !is_ident_continue(c) {
                break;
            }
            k += c.len_utf8();
        }
        return Some(Token::plain(TokenKind::Lifetime, quote, k));
    }
    if is_byte {
        None
    } else {
        Some(Token::plain(TokenKind::Punct(b'\''), quote, quote + 1))
    }
}

fn ident(src: &str, i: usize) -> Token {
    let n = src.len();
    let mut j = i;
    while j < n {
        let c = first_char(src, j);
        if !is_ident_continue(c) {
            break;
        }
        j += c.len_utf8();
    }
    Token::plain(TokenKind::Ident, i, j)
}

/// Numeric literal: digits, `_`, suffix letters, a `.` only when a
/// digit follows (so `0..5` and `1.max(2)` split correctly), and a
/// sign directly after an exponent `e`/`E`.
fn number(src: &str, i: usize) -> Token {
    let bytes = src.as_bytes();
    let n = src.len();
    let mut j = i;
    while j < n {
        let b = bytes[j];
        let dot_in_float = b == b'.' && j + 1 < n && bytes[j + 1].is_ascii_digit();
        let exponent_sign =
            (b == b'+' || b == b'-') && j > i && matches!(bytes[j - 1], b'e' | b'E');
        if b.is_ascii_alphanumeric() || b == b'_' || dot_in_float || exponent_sign {
            j += 1;
        } else {
            break;
        }
    }
    Token::plain(TokenKind::Num, i, j)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rebuild(src: &str) -> String {
        lex(src).iter().map(|t| &src[t.start..t.end]).collect()
    }

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src)
            .into_iter()
            .filter(|t| t.kind != TokenKind::Whitespace)
            .map(|t| t.kind)
            .collect()
    }

    #[test]
    fn spans_are_contiguous_and_cover_the_source() {
        let src = "fn main() { let s = \"a\\\"b\"; /* hi /* nest */ */ let c = 'x'; }\n";
        let toks = lex(src);
        let mut pos = 0;
        for t in &toks {
            assert_eq!(t.start, pos);
            assert!(t.end > t.start);
            pos = t.end;
        }
        assert_eq!(pos, src.len());
        assert_eq!(rebuild(src), src);
    }

    #[test]
    fn lifetimes_and_char_literals_disambiguate() {
        let toks = kinds("<'a, 'static> 'x' b'y' '\\n' '\\u{1F600}'");
        assert_eq!(
            toks,
            vec![
                TokenKind::Punct(b'<'),
                TokenKind::Lifetime,
                TokenKind::Punct(b','),
                TokenKind::Lifetime,
                TokenKind::Punct(b'>'),
                TokenKind::Char,
                TokenKind::Char,
                TokenKind::Char,
                TokenKind::Char,
            ]
        );
    }

    #[test]
    fn raw_and_byte_strings_have_body_ranges() {
        let src = "r#\"ab\"cd\"# b\"x\" br##\"y\"##";
        let toks: Vec<Token> = lex(src)
            .into_iter()
            .filter(|t| t.kind == TokenKind::Str)
            .collect();
        assert_eq!(toks.len(), 3);
        assert_eq!(&src[toks[0].body_start..toks[0].body_end], "ab\"cd");
        assert_eq!(&src[toks[1].body_start..toks[1].body_end], "x");
        assert_eq!(&src[toks[2].body_start..toks[2].body_end], "y");
        assert_eq!(rebuild(src), src);
    }

    #[test]
    fn raw_identifiers_are_idents() {
        let toks = kinds("r#fn r#loop x");
        assert_eq!(
            toks,
            vec![TokenKind::Ident, TokenKind::Ident, TokenKind::Ident]
        );
    }

    #[test]
    fn numbers_do_not_swallow_ranges_or_method_calls() {
        let src = "0..5 1.max(2) 1.5e-3 0xFF_u32";
        let toks: Vec<(TokenKind, &str)> = lex(src)
            .into_iter()
            .filter(|t| t.kind != TokenKind::Whitespace)
            .map(|t| (t.kind, &src[t.start..t.end]))
            .collect();
        let nums: Vec<&str> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Num)
            .map(|(_, s)| *s)
            .collect();
        assert_eq!(nums, vec!["0", "5", "1", "2", "1.5e-3", "0xFF_u32"]);
    }

    #[test]
    fn masked_view_blanks_comments_and_literal_bodies() {
        let src = "let s = \"secret\"; // note\nlet c = 'q'; /* b */ let l: &'a str;\n";
        let toks = lex(src);
        let masked = masked_view(src, &toks);
        assert_eq!(masked.len(), src.len());
        assert!(!masked.contains("secret"));
        assert!(!masked.contains("note"));
        assert!(!masked.contains('q'));
        assert!(masked.contains("\"      \""), "quotes survive masking");
        assert!(masked.contains("'a"), "lifetimes survive masking");
        assert_eq!(masked.matches('\n').count(), src.matches('\n').count());
    }

    #[test]
    fn unterminated_constructs_clamp_to_eof() {
        for src in ["\"abc", "r#\"abc", "/* abc", "'\\n", "b'"] {
            assert_eq!(rebuild(src), src, "roundtrip failed for {src:?}");
        }
    }
}
