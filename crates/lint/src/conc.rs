//! The concurrency audit pass: token-level rules L15–L18.
//!
//! Unlike the line-oriented rules in [`crate::rules`], these walk the
//! lexed token stream directly (see [`crate::lex`]), so they can see
//! structure the masked text cannot: receiver chains, call argument
//! lists, enclosing loops, and function bodies.
//!
//! The pass is an *auditor*, not a verifier. Lock identity is the
//! receiver's final field name (`self.stripes[i].read()` → `stripes`) —
//! a deliberate over-approximation that unifies same-named fields
//! across crates and collapses striped locks into one node. That makes
//! the lock-order graph small and reviewable, at the cost of
//! occasionally merging unrelated locks; naming locks distinctly is
//! part of the discipline the rule enforces. Self-edges are ignored
//! (striped locks legitimately acquire same-named siblings in a fixed
//! stripe order).

use std::collections::{BTreeMap, BTreeSet};

use crate::lex::{Token, TokenKind};
use crate::scan::SourceFile;
use crate::{Finding, Workspace};

/// Guard-producing methods audited by L15/L18 (all nullary).
const LOCK_METHODS: &[&str] = &["lock", "read", "write"];

/// Atomic read-modify-write methods; any of these with an
/// acquire-or-stronger ordering counts as the read side of a
/// release/acquire pair.
const ATOMIC_RMW: &[&str] = &[
    "swap",
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_nand",
    "fetch_or",
    "fetch_xor",
    "fetch_max",
    "fetch_min",
    "fetch_update",
    "compare_exchange",
    "compare_exchange_weak",
];

/// A non-trivia view over a file's token stream: whitespace and
/// comments are skipped, indices are positions in this *code* sequence.
struct Code<'a> {
    file: &'a SourceFile,
    idx: Vec<usize>,
}

impl<'a> Code<'a> {
    fn new(file: &'a SourceFile) -> Self {
        let idx = file
            .tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| {
                !matches!(
                    t.kind,
                    TokenKind::Whitespace | TokenKind::LineComment | TokenKind::BlockComment
                )
            })
            .map(|(i, _)| i)
            .collect();
        Self { file, idx }
    }

    fn len(&self) -> usize {
        self.idx.len()
    }

    fn tok(&self, k: usize) -> &Token {
        &self.file.tokens[self.idx[k]]
    }

    fn text(&self, k: usize) -> &str {
        let t = self.tok(k);
        &self.file.raw[t.start..t.end]
    }

    fn kind(&self, k: usize) -> TokenKind {
        self.tok(k).kind
    }

    fn is_ident(&self, k: usize, name: &str) -> bool {
        k < self.len() && self.kind(k) == TokenKind::Ident && self.text(k) == name
    }

    fn is_punct(&self, k: usize, b: u8) -> bool {
        k < self.len() && self.kind(k) == TokenKind::Punct(b)
    }

    fn is_open(&self, k: usize, b: u8) -> bool {
        k < self.len() && self.kind(k) == TokenKind::Open(b)
    }

    fn is_close(&self, k: usize, b: u8) -> bool {
        k < self.len() && self.kind(k) == TokenKind::Close(b)
    }

    /// 1-based `(line, col)` of code token `k`.
    fn position(&self, k: usize) -> (usize, usize) {
        self.file.position(self.tok(k).start)
    }

    fn is_test(&self, k: usize) -> bool {
        self.file.is_test_at(self.tok(k).start)
    }

    /// Index of the close delimiter matching the open delimiter at `k`.
    fn matching_close(&self, k: usize) -> Option<usize> {
        let TokenKind::Open(open) = self.kind(k) else {
            return None;
        };
        let close = close_of(open);
        let mut depth = 0i64;
        for j in k..self.len() {
            match self.kind(j) {
                TokenKind::Open(b) if b == open => depth += 1,
                TokenKind::Close(b) if b == close => {
                    depth -= 1;
                    if depth == 0 {
                        return Some(j);
                    }
                }
                _ => {}
            }
        }
        None
    }

    /// Index of the open delimiter matching the close delimiter at `k`.
    fn matching_open(&self, k: usize) -> Option<usize> {
        let TokenKind::Close(close) = self.kind(k) else {
            return None;
        };
        let open = open_of(close);
        let mut depth = 0i64;
        for j in (0..=k).rev() {
            match self.kind(j) {
                TokenKind::Close(b) if b == close => depth += 1,
                TokenKind::Open(b) if b == open => {
                    depth -= 1;
                    if depth == 0 {
                        return Some(j);
                    }
                }
                _ => {}
            }
        }
        None
    }

    /// If code token `k` is the `.` of a method call `.name(...)`,
    /// returns `(name_index, open_paren_index)`.
    fn method_call(&self, k: usize) -> Option<(usize, usize)> {
        if self.is_punct(k, b'.')
            && k + 2 < self.len()
            && self.kind(k + 1) == TokenKind::Ident
            && self.is_open(k + 2, b'(')
        {
            Some((k + 1, k + 2))
        } else {
            None
        }
    }

    /// The identifying field of the receiver chain ending at the `.` at
    /// `k`: the last plain identifier before the dot, skipping one or
    /// more trailing index/call groups (`stripes[i]` → `stripes`,
    /// `inner()` → `inner`). `None` for non-identifier receivers
    /// (tuple fields, literals, parenthesized expressions).
    fn receiver_field(&self, k: usize) -> Option<String> {
        let mut j = k;
        while j > 0 {
            j -= 1;
            match self.kind(j) {
                TokenKind::Close(_) => j = self.matching_open(j)?,
                TokenKind::Ident => return Some(self.text(j).to_string()),
                _ => return None,
            }
        }
        None
    }

    /// Whether the statement containing code token `k` starts with a
    /// `let` binding (scanning back to the previous `;`, `{`, or `}`,
    /// but not past `lo`). Used as the "guard is bound and stays live"
    /// heuristic for lock-hold tracking.
    fn stmt_has_let(&self, lo: usize, k: usize) -> bool {
        let mut j = k;
        while j > lo {
            j -= 1;
            match self.kind(j) {
                TokenKind::Punct(b';') | TokenKind::Open(b'{') | TokenKind::Close(b'}') => {
                    return false
                }
                TokenKind::Ident if self.text(j) == "let" => return true,
                _ => {}
            }
        }
        false
    }

    /// Whether the idents at `k-3..k` spell `prefix::` (two `:` puncts
    /// plus the prefix identifier) directly before code token `k`.
    fn path_prefix(&self, k: usize, prefix: &str) -> bool {
        k >= 3
            && self.is_punct(k - 1, b':')
            && self.is_punct(k - 2, b':')
            && self.is_ident(k - 3, prefix)
    }
}

fn close_of(open: u8) -> u8 {
    match open {
        b'(' => b')',
        b'[' => b']',
        _ => b'}',
    }
}

fn open_of(close: u8) -> u8 {
    match close {
        b')' => b'(',
        b']' => b'[',
        _ => b'{',
    }
}

/// A function body located in the code-token sequence: `body_open` and
/// `body_close` are the indices of its outer braces.
struct FnBody {
    body_open: usize,
    body_close: usize,
}

/// Every `fn name(...) { ... }` body in the file, in source order.
/// Nested functions are reported separately (and their tokens are also
/// walked as part of the enclosing body — an accepted imprecision).
fn fn_bodies(code: &Code) -> Vec<FnBody> {
    let mut out = Vec::new();
    let mut k = 0;
    while k < code.len() {
        if code.is_ident(k, "fn") && k + 1 < code.len() && code.kind(k + 1) == TokenKind::Ident {
            let mut j = k + 2;
            let mut depth = 0i64;
            let mut body = None;
            while j < code.len() {
                match code.kind(j) {
                    TokenKind::Open(b'{') if depth == 0 => {
                        body = Some(j);
                        break;
                    }
                    TokenKind::Open(_) => depth += 1,
                    TokenKind::Close(_) => {
                        if depth == 0 {
                            break; // stray close: the fn had no body here
                        }
                        depth -= 1;
                    }
                    TokenKind::Punct(b';') if depth == 0 => break, // trait method decl
                    _ => {}
                }
                j += 1;
            }
            if let Some(open) = body {
                if let Some(close) = code.matching_close(open) {
                    out.push(FnBody {
                        body_open: open,
                        body_close: close,
                    });
                    k = open + 1; // descend: nested fns get their own entry
                    continue;
                }
            }
        }
        k += 1;
    }
    out
}

/// One directed edge in the lock-order graph: `from` was held (a
/// `let`-bound guard still in scope) when `to` was acquired. The site
/// is the first acquisition that created the edge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LockEdge {
    pub from: String,
    pub to: String,
    pub path: String,
    pub line: usize,
    pub col: usize,
}

/// The inter-crate lock-order graph: nodes are lock field names, edges
/// are held→acquired pairs observed inside some function body.
#[derive(Debug, Default)]
pub struct LockGraph {
    pub nodes: BTreeSet<String>,
    pub edges: Vec<LockEdge>,
}

impl LockGraph {
    /// Node groups that form lock-order cycles (strongly connected
    /// components with ≥ 2 nodes; self-edges are never recorded).
    pub fn cycles(&self) -> Vec<Vec<String>> {
        let nodes: Vec<&String> = self.nodes.iter().collect();
        let index: BTreeMap<&str, usize> = nodes
            .iter()
            .enumerate()
            .map(|(i, n)| (n.as_str(), i))
            .collect();
        let n = nodes.len();
        let mut adj = vec![Vec::new(); n];
        for e in &self.edges {
            adj[index[e.from.as_str()]].push(index[e.to.as_str()]);
        }
        // Reachability closure; lock graphs are tiny, O(n^2) is fine.
        let mut reach = vec![vec![false; n]; n];
        for (s, row) in reach.iter_mut().enumerate() {
            let mut stack = adj[s].clone();
            while let Some(v) = stack.pop() {
                if !row[v] {
                    row[v] = true;
                    stack.extend(adj[v].iter().copied());
                }
            }
        }
        let mut seen = vec![false; n];
        let mut out = Vec::new();
        for i in 0..n {
            if seen[i] {
                continue;
            }
            let mut comp = vec![i];
            for (j, row_j) in reach.iter().enumerate().skip(i + 1) {
                if reach[i][j] && row_j[i] {
                    comp.push(j);
                }
            }
            if comp.len() > 1 {
                for &c in &comp {
                    seen[c] = true;
                }
                out.push(comp.iter().map(|&c| nodes[c].clone()).collect());
            }
        }
        out
    }

    /// Renders the graph as Graphviz DOT. Edges participating in a
    /// cycle are colored red; edge labels carry the first site that
    /// created the edge.
    pub fn render_dot(&self) -> String {
        let cycles = self.cycles();
        let cyclic: BTreeSet<&str> = cycles.iter().flatten().map(String::as_str).collect();
        let mut out = String::from("digraph lock_order {\n");
        out.push_str("  rankdir=LR;\n  node [shape=box, fontname=\"monospace\"];\n");
        for node in &self.nodes {
            out.push_str(&format!("  \"{}\";\n", dot_escape(node)));
        }
        for e in &self.edges {
            let red = cyclic.contains(e.from.as_str()) && cyclic.contains(e.to.as_str());
            out.push_str(&format!(
                "  \"{}\" -> \"{}\" [label=\"{}:{}\"{}];\n",
                dot_escape(&e.from),
                dot_escape(&e.to),
                dot_escape(&e.path),
                e.line,
                if red { ", color=red" } else { "" }
            ));
        }
        out.push_str("}\n");
        out
    }
}

fn dot_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Builds the workspace lock-order graph (non-test code only): for each
/// function body, tracks `let`-bound guards from `.lock()`/`.read()`/
/// `.write()` until their enclosing block closes, and records an edge
/// held→acquired for every acquisition made while another guard is
/// live. Self-edges (striped re-acquisition) are skipped.
pub fn lock_graph(ws: &Workspace) -> LockGraph {
    let mut graph = LockGraph::default();
    let mut first_edge: BTreeMap<(String, String), (String, usize, usize)> = BTreeMap::new();
    for file in &ws.files {
        let code = Code::new(file);
        for body in fn_bodies(&code) {
            // (lock id, brace depth its binding lives at)
            let mut held: Vec<(String, i64)> = Vec::new();
            let mut depth = 0i64;
            for k in body.body_open + 1..body.body_close {
                match code.kind(k) {
                    TokenKind::Open(b'{') => depth += 1,
                    TokenKind::Close(b'}') => {
                        depth -= 1;
                        held.retain(|(_, d)| *d <= depth);
                    }
                    TokenKind::Punct(b'.') => {
                        let Some((name_k, open)) = code.method_call(k) else {
                            continue;
                        };
                        if !LOCK_METHODS.contains(&code.text(name_k))
                            || !code.is_close(open + 1, b')')
                            || code.is_test(k)
                        {
                            continue;
                        }
                        let Some(id) = code.receiver_field(k) else {
                            continue;
                        };
                        graph.nodes.insert(id.clone());
                        let (line, col) = code.position(name_k);
                        for (h, _) in &held {
                            if *h != id {
                                first_edge
                                    .entry((h.clone(), id.clone()))
                                    .or_insert_with(|| (file.path.clone(), line, col));
                            }
                        }
                        if code.stmt_has_let(body.body_open, k) {
                            held.push((id, depth));
                        }
                    }
                    _ => {}
                }
            }
        }
    }
    graph.edges = first_edge
        .into_iter()
        .map(|((from, to), (path, line, col))| LockEdge {
            from,
            to,
            path,
            line,
            col,
        })
        .collect();
    graph
}

/// L15 — lock-order cycles. A cycle in the held→acquired graph means
/// two code paths can acquire the same locks in opposite orders: a
/// classic deadlock. One finding per cycle, anchored at the lexically
/// first edge site, listing every edge involved.
pub(crate) fn lock_order_cycles(ws: &Workspace, findings: &mut Vec<Finding>) {
    let graph = lock_graph(ws);
    for comp in graph.cycles() {
        let members: BTreeSet<&str> = comp.iter().map(String::as_str).collect();
        let involved: Vec<&LockEdge> = graph
            .edges
            .iter()
            .filter(|e| members.contains(e.from.as_str()) && members.contains(e.to.as_str()))
            .collect();
        let Some(anchor) = involved.iter().min_by_key(|e| (&e.path, e.line, e.col)) else {
            continue;
        };
        let route = involved
            .iter()
            .map(|e| format!("`{}`→`{}` ({}:{})", e.from, e.to, e.path, e.line))
            .collect::<Vec<_>>()
            .join(", ");
        findings.push(Finding {
            rule: "L15",
            path: anchor.path.clone(),
            line: anchor.line,
            col: anchor.col,
            message: format!(
                "lock-order cycle among {{{}}}: {} — pick one global acquisition order \
                 (export the graph with --lock-graph)",
                comp.join(", "),
                route
            ),
        });
    }
}

/// L16 — atomic-ordering discipline, two obligations:
///
/// 1. every `Ordering::Relaxed` outside tests carries an inline
///    `// relaxed: <reason>` comment on the same line or the line above;
/// 2. every `store(.., Ordering::Release)` has, somewhere in non-test
///    code, a matching acquire-or-stronger read (`load` with
///    `Acquire`/`SeqCst`, or an RMW with `Acquire`/`AcqRel`/`SeqCst`)
///    on the same atomic field — reported once per field, at the store.
pub(crate) fn atomic_discipline(ws: &Workspace, findings: &mut Vec<Finding>) {
    // Per-field pairing state: first unpaired Release-store site, and
    // whether any acquiring read was seen.
    struct FieldUse {
        release_store: Option<(String, usize, usize)>,
        acquire_read: bool,
    }
    let mut fields: BTreeMap<String, FieldUse> = BTreeMap::new();

    for file in &ws.files {
        let code = Code::new(file);
        for k in 0..code.len() {
            // Obligation 1: justified Relaxed.
            if code.is_ident(k, "Relaxed") && code.path_prefix(k, "Ordering") && !code.is_test(k) {
                let (line, col) = code.position(k);
                let comments = file.comments_near(line);
                let justified = comments
                    .find("relaxed:")
                    .map(|at| !comments[at + "relaxed:".len()..].trim().is_empty())
                    .unwrap_or(false);
                if !justified {
                    findings.push(Finding {
                        rule: "L16",
                        path: file.path.clone(),
                        line,
                        col,
                        message: "`Ordering::Relaxed` without an inline `// relaxed: <reason>` \
                                  justification on the same line or in the comment block directly \
                                  above — say why no ordering is needed, or use a stronger \
                                  ordering"
                            .to_string(),
                    });
                }
            }

            // Obligation 2: collect atomic ops (calls whose arguments
            // mention `Ordering::<X>`) for release/acquire pairing.
            let Some((name_k, open)) = code.method_call(k) else {
                continue;
            };
            let Some(close) = code.matching_close(open) else {
                continue;
            };
            let orderings = call_orderings(&code, open, close);
            if orderings.is_empty() || code.is_test(k) {
                continue; // not an atomic op (or test-only code)
            }
            let Some(field) = code.receiver_field(k) else {
                continue;
            };
            let method = code.text(name_k);
            let entry = fields.entry(field).or_insert(FieldUse {
                release_store: None,
                acquire_read: false,
            });
            let acquiring = |o: &str| matches!(o, "Acquire" | "AcqRel" | "SeqCst");
            if method == "store" && orderings.iter().any(|o| o == "Release") {
                if entry.release_store.is_none() {
                    let (line, col) = code.position(name_k);
                    entry.release_store = Some((file.path.clone(), line, col));
                }
            } else if (method == "load" && orderings.iter().any(|o| acquiring(o)))
                || (ATOMIC_RMW.contains(&method) && orderings.iter().any(|o| acquiring(o)))
            {
                entry.acquire_read = true;
            }
        }
    }

    for (field, usage) in fields {
        if usage.acquire_read {
            continue;
        }
        if let Some((path, line, col)) = usage.release_store {
            findings.push(Finding {
                rule: "L16",
                path,
                line,
                col,
                message: format!(
                    "atomic field `{field}`: `store(.., Ordering::Release)` has no matching \
                     acquire-or-stronger read (`load(.., Ordering::Acquire)` or an acquiring RMW) \
                     on the same field in non-test code — the release publishes nothing \
                     (pairing table, DESIGN.md §12)"
                ),
            });
        }
    }
}

/// The `Ordering::<X>` path segments appearing between code indices
/// `open` and `close` (exclusive), in order.
fn call_orderings(code: &Code, open: usize, close: usize) -> Vec<String> {
    let mut out = Vec::new();
    for k in open + 1..close {
        if code.kind(k) == TokenKind::Ident && code.path_prefix(k, "Ordering") {
            out.push(code.text(k).to_string());
        }
    }
    out
}

/// L17 — `Condvar::wait`/`wait_timeout` must sit inside a
/// predicate-re-checking `loop`/`while`, because condvar wakeups are
/// spurious and the predicate can be invalidated between notify and
/// wake. `wait_while`/`wait_timeout_while` re-check internally and are
/// exempt; nullary `.wait()` calls (futures, latches) are not condvar
/// waits — `Condvar::wait` always takes the guard — and are skipped.
pub(crate) fn condvar_wait_in_loop(ws: &Workspace, findings: &mut Vec<Finding>) {
    for file in &ws.files {
        let code = Code::new(file);
        for body in fn_bodies(&code) {
            // Stack of enclosing blocks; `true` = a loop/while body.
            let mut blocks: Vec<bool> = Vec::new();
            let mut pending_loop = false;
            let mut paren_depth = 0i64;
            for k in body.body_open + 1..body.body_close {
                match code.kind(k) {
                    TokenKind::Open(b'(') | TokenKind::Open(b'[') => paren_depth += 1,
                    TokenKind::Close(b')') | TokenKind::Close(b']') => paren_depth -= 1,
                    TokenKind::Ident
                        if paren_depth == 0
                            && (code.text(k) == "loop" || code.text(k) == "while") =>
                    {
                        pending_loop = true;
                    }
                    TokenKind::Open(b'{') => {
                        blocks.push(pending_loop && paren_depth == 0);
                        if paren_depth == 0 {
                            pending_loop = false;
                        }
                    }
                    TokenKind::Close(b'}') => {
                        blocks.pop();
                    }
                    TokenKind::Punct(b'.') => {
                        let Some((name_k, open)) = code.method_call(k) else {
                            continue;
                        };
                        let name = code.text(name_k);
                        let is_wait = name == "wait_timeout"
                            || (name == "wait" && !code.is_close(open + 1, b')'));
                        if !is_wait || code.is_test(k) {
                            continue;
                        }
                        if !blocks.iter().any(|&is_loop| is_loop) {
                            let (line, col) = code.position(name_k);
                            findings.push(Finding {
                                rule: "L17",
                                path: file.path.clone(),
                                line,
                                col,
                                message: format!(
                                    "`Condvar::{name}` outside a `loop`/`while` — wakeups are \
                                     spurious; re-check the predicate around the wait (or use \
                                     `wait_while`)"
                                ),
                            });
                        }
                    }
                    _ => {}
                }
            }
        }
    }
}

/// L18 — `.lock().unwrap()` (and `.read()`/`.write()` variants, and
/// `.expect(..)`) panics the surviving thread when another worker
/// panicked while holding the lock, cascading one failure into many.
/// Non-test code must use `unwrap_or_else(PoisonError::into_inner)`:
/// for this workspace's guard-protected state, the data is either
/// rebuilt (snapshots) or monotonic (metrics), so recovering the
/// poisoned guard is always sound.
pub(crate) fn lock_unwrap_ban(ws: &Workspace, findings: &mut Vec<Finding>) {
    for file in &ws.files {
        let code = Code::new(file);
        for k in 0..code.len() {
            let Some((name_k, open)) = code.method_call(k) else {
                continue;
            };
            let method = code.text(name_k);
            if !LOCK_METHODS.contains(&method) || !code.is_close(open + 1, b')') {
                continue;
            }
            let after = open + 2; // the `.` of a chained call, if any
            let Some((next_k, _)) = code.method_call(after) else {
                continue;
            };
            let consumer = code.text(next_k);
            if !matches!(consumer, "unwrap" | "expect") || code.is_test(k) {
                continue;
            }
            let (line, col) = code.position(next_k);
            findings.push(Finding {
                rule: "L18",
                path: file.path.clone(),
                line,
                col,
                message: format!(
                    "`.{method}().{consumer}(..)` panics on a poisoned lock, cascading one \
                     worker's panic into every thread that touches the lock — use \
                     `.{method}().unwrap_or_else(PoisonError::into_inner)`"
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ws(src: &str) -> Workspace {
        Workspace::from_memory(&[("crates/x/src/a.rs", src)])
    }

    #[test]
    fn receiver_field_walks_index_and_call_groups() {
        let w = ws("fn f(&self) { self.stripes[self.pick()].read(); self.inner().lock(); }");
        let code = Code::new(&w.files[0]);
        let mut fields = Vec::new();
        for k in 0..code.len() {
            if let Some((name_k, open)) = code.method_call(k) {
                if LOCK_METHODS.contains(&code.text(name_k)) && code.is_close(open + 1, b')') {
                    fields.push(code.receiver_field(k).unwrap());
                }
            }
        }
        assert_eq!(fields, vec!["stripes".to_string(), "inner".to_string()]);
    }

    #[test]
    fn lock_graph_records_held_edges_and_skips_self_edges() {
        let w = ws(concat!(
            "fn f(&self) {\n",
            "    let a = self.alpha.lock();\n",
            "    let b = self.beta.lock();\n",
            "    drop(b); drop(a);\n",
            "}\n",
            "fn g(&self) {\n",
            "    for s in &self.stripes { let _g = self.stripes.read(); }\n",
            "}\n",
        ));
        let g = lock_graph(&w);
        assert!(g.nodes.contains("alpha") && g.nodes.contains("beta"));
        assert_eq!(g.edges.len(), 1);
        assert_eq!(
            (g.edges[0].from.as_str(), g.edges[0].to.as_str()),
            ("alpha", "beta")
        );
    }

    #[test]
    fn guard_scope_ends_with_its_block() {
        let w = ws(concat!(
            "fn f(&self) {\n",
            "    { let a = self.alpha.lock(); }\n",
            "    let b = self.beta.lock();\n",
            "}\n",
        ));
        let g = lock_graph(&w);
        assert!(
            g.edges.is_empty(),
            "alpha's guard died with its block: {:?}",
            g.edges
        );
    }

    #[test]
    fn dot_output_is_wellformed() {
        let w = ws("fn f(&self) { let a = self.alpha.lock(); let b = self.beta.lock(); }");
        let dot = lock_graph(&w).render_dot();
        assert!(dot.starts_with("digraph lock_order {"));
        assert!(dot.contains("\"alpha\" -> \"beta\""));
        assert!(dot.trim_end().ends_with('}'));
    }
}
