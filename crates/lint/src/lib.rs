#![forbid(unsafe_code)]
//! `skq-lint`: the workspace's own rule engine.
//!
//! Clippy enforces Rust-level hygiene; this crate enforces *repo-level*
//! contracts that no general-purpose linter can know about — the
//! request-path no-panic policy, the `skq_` metrics registry discipline,
//! fail-point registry coverage, `ResultSink` propagation, and the
//! paper-invariant audit hooks. It runs as `cargo run -p skq-lint` and
//! as a CI gate, and it is std-only (like `skq-obs`) so the zero-dep
//! gate `cargo tree -p skq-lint` proves the auditor can never drag a
//! dependency into the workspace it audits.
//!
//! Architecture: [`Workspace`] is an immutable snapshot of the source
//! tree (loadable from disk or from memory, so every rule is testable
//! against tiny fixtures); [`lex`] turns each file into a lossless,
//! span-accurate token stream exactly once; [`scan::SourceFile`] derives
//! the masked text view from the tokens and tracks `#[cfg(test)]`
//! regions; [`rules`] holds one function per line-oriented rule ID and
//! [`conc`] the token-level concurrency pass (L15–L18). Findings flow
//! through inline suppressions (`// skq-lint: allow(Lxx)
//! <justification>`) and the checked-in baseline (`lint-baseline.txt`)
//! before they fail the build.

pub mod conc;
pub mod lex;
pub mod rules;
pub mod scan;

use std::collections::BTreeMap;
use std::fmt;
use std::fs;
use std::io;
use std::path::Path;

use scan::SourceFile;

/// Version of the rule set / engine, embedded in `--json` output so
/// downstream consumers (CI artifacts, dashboards) can tell which
/// contract produced a findings file. Bump when rules are added,
/// removed, or change meaning.
///
/// History: 1 = masked-line engine, L01–L14; 2 = token-stream engine,
/// L01–L18.
pub const RULE_VERSION: u32 = 2;

/// One diagnostic produced by a rule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Stable rule ID (`"L01"` … `"L11"`), listed in [`rules::RULES`].
    pub rule: &'static str,
    /// Workspace-relative path with `/` separators.
    pub path: String,
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
    /// Human-readable description of the violation.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}:{}: {} {}",
            self.path, self.line, self.col, self.rule, self.message
        )
    }
}

/// An immutable snapshot of the source tree the rules run over.
pub struct Workspace {
    /// Every `.rs` file, scanned.
    pub files: Vec<SourceFile>,
    /// Non-Rust documents some rules cross-check (keyed by
    /// workspace-relative path; currently only `DESIGN.md`).
    pub docs: BTreeMap<String, String>,
}

/// Directories never scanned: build output, vendored stand-ins, VCS.
const SKIP_DIRS: &[&str] = &["target", "third_party", ".git", ".github"];

/// Relative-path fragments that mark a file as wholly test code.
fn is_test_path(rel: &str) -> bool {
    rel.starts_with("tests/")
        || rel.contains("/tests/")
        || rel.contains("/benches/")
        || rel.contains("/fixtures/")
}

impl Workspace {
    /// Loads every `.rs` file (plus `DESIGN.md`) under `root`.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from walking or reading the tree.
    pub fn load(root: &Path) -> io::Result<Self> {
        let mut files = Vec::new();
        let mut stack = vec![root.to_path_buf()];
        while let Some(dir) = stack.pop() {
            let mut entries: Vec<_> = fs::read_dir(&dir)?.collect::<io::Result<_>>()?;
            entries.sort_by_key(std::fs::DirEntry::file_name);
            for entry in entries {
                let path = entry.path();
                let name = entry.file_name().to_string_lossy().into_owned();
                if path.is_dir() {
                    if !SKIP_DIRS.contains(&name.as_str()) {
                        stack.push(path);
                    }
                } else if name.ends_with(".rs") {
                    let rel = rel_path(root, &path);
                    let raw = fs::read_to_string(&path)?;
                    let force_test = is_test_path(&rel);
                    files.push(SourceFile::new(rel, raw, force_test));
                }
            }
        }
        files.sort_by(|a, b| a.path.cmp(&b.path));
        let mut docs = BTreeMap::new();
        let design = root.join("DESIGN.md");
        if design.is_file() {
            docs.insert("DESIGN.md".to_string(), fs::read_to_string(design)?);
        }
        Ok(Self { files, docs })
    }

    /// Builds a snapshot from in-memory `(path, contents)` pairs —
    /// the fixture entry point. Paths ending in `.md` become docs.
    pub fn from_memory(sources: &[(&str, &str)]) -> Self {
        let mut files = Vec::new();
        let mut docs = BTreeMap::new();
        for (path, contents) in sources {
            if path.ends_with(".md") {
                docs.insert((*path).to_string(), (*contents).to_string());
            } else {
                files.push(SourceFile::new(
                    (*path).to_string(),
                    (*contents).to_string(),
                    is_test_path(path),
                ));
            }
        }
        Self { files, docs }
    }

    /// The scanned file at `path`, if present.
    pub fn file(&self, path: &str) -> Option<&SourceFile> {
        self.files.iter().find(|f| f.path == path)
    }
}

fn rel_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Runs every rule over the snapshot. Raw output: suppressions and the
/// baseline are applied by [`apply_suppressions`] / [`Baseline`].
pub fn run_rules(ws: &Workspace) -> Vec<Finding> {
    let mut findings = Vec::new();
    for (_, _, run) in rules::RULES {
        run(ws, &mut findings);
    }
    findings.sort_by(|a, b| {
        (a.path.as_str(), a.line, a.col, a.rule).cmp(&(b.path.as_str(), b.line, b.col, b.rule))
    });
    findings
}

/// Splits findings into `(active, suppressed)` by honouring inline
/// `// skq-lint: allow(Lxx) <justification>` comments on the finding's
/// line or the line directly above. A suppression with no justification
/// text after the closing parenthesis suppresses nothing.
pub fn apply_suppressions(ws: &Workspace, findings: Vec<Finding>) -> (Vec<Finding>, Vec<Finding>) {
    findings.into_iter().partition(|f| !is_suppressed(ws, f))
}

fn is_suppressed(ws: &Workspace, finding: &Finding) -> bool {
    let Some(file) = ws.file(&finding.path) else {
        return false;
    };
    let lines = [finding.line, finding.line.saturating_sub(1)];
    for line in lines {
        if line == 0 || line > file.line_starts.len() {
            continue;
        }
        if suppresses(file.line_text(line), finding.rule) {
            return true;
        }
    }
    false
}

/// Whether `text` carries a justified `skq-lint: allow(...)` marker
/// covering `rule`.
fn suppresses(text: &str, rule: &str) -> bool {
    let Some(at) = text.find("skq-lint: allow(") else {
        return false;
    };
    let rest = &text[at + "skq-lint: allow(".len()..];
    let Some(close) = rest.find(')') else {
        return false;
    };
    let listed = rest[..close].split(',').any(|r| r.trim() == rule);
    let justified = !rest[close + 1..].trim().is_empty();
    listed && justified
}

/// The checked-in baseline: findings accepted as legacy debt.
///
/// Format — one entry per line, `RULE path  # reason`; blank lines and
/// `#`-comment lines ignored. Matching is by rule + path (not line), so
/// unrelated edits to a baselined file do not churn the baseline.
#[derive(Debug, Default)]
pub struct Baseline {
    entries: Vec<(String, String)>,
}

impl Baseline {
    /// Parses baseline text.
    pub fn parse(text: &str) -> Self {
        let mut entries = Vec::new();
        for line in text.lines() {
            let line = line.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let mut parts = line.split_whitespace();
            if let (Some(rule), Some(path)) = (parts.next(), parts.next()) {
                entries.push((rule.to_string(), path.to_string()));
            }
        }
        Self { entries }
    }

    /// Whether `finding` is accepted by the baseline.
    pub fn accepts(&self, finding: &Finding) -> bool {
        self.entries
            .iter()
            .any(|(rule, path)| rule == finding.rule && *path == finding.path)
    }

    /// Splits findings into `(active, baselined)`.
    pub fn apply(&self, findings: Vec<Finding>) -> (Vec<Finding>, Vec<Finding>) {
        findings.into_iter().partition(|f| !self.accepts(f))
    }

    /// Number of entries (for reporting).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the baseline is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Renders findings as a JSON object `{"rule_version": N, "findings":
/// [...]}` (hand-rolled; the crate is dependency-free by design).
pub fn render_json(findings: &[Finding]) -> String {
    let mut out = format!("{{\"rule_version\":{RULE_VERSION},\"findings\":[");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n  {{\"rule\":\"{}\",\"path\":\"{}\",\"line\":{},\"col\":{},\"message\":\"{}\"}}",
            f.rule,
            json_escape(&f.path),
            f.line,
            f.col,
            json_escape(&f.message)
        ));
    }
    if !findings.is_empty() {
        out.push('\n');
    }
    out.push_str("]}\n");
    out
}

/// Renders findings as GitHub Actions `::error` annotations.
pub fn render_github(findings: &[Finding]) -> String {
    let mut out = String::new();
    for f in findings {
        out.push_str(&format!(
            "::error file={},line={},col={},title=skq-lint {}::{}\n",
            f.path,
            f.line,
            f.col,
            f.rule,
            f.message.replace('\n', " ")
        ));
    }
    out
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suppression_requires_justification() {
        assert!(suppresses(
            "x(); // skq-lint: allow(L01) legacy wrapper kept for API compat",
            "L01"
        ));
        assert!(!suppresses("x(); // skq-lint: allow(L01)", "L01"));
        assert!(!suppresses(
            "x(); // skq-lint: allow(L02) wrong rule",
            "L01"
        ));
        assert!(suppresses(
            "// skq-lint: allow(L01,L07) two rules, one reason",
            "L07"
        ));
    }

    #[test]
    fn baseline_matches_rule_and_path() {
        let b = Baseline::parse("# legacy debt\nL01 crates/core/src/suite.rs  # wrapper\n\n");
        assert_eq!(b.len(), 1);
        let hit = Finding {
            rule: "L01",
            path: "crates/core/src/suite.rs".into(),
            line: 9,
            col: 1,
            message: String::new(),
        };
        assert!(b.accepts(&hit));
        let miss = Finding {
            rule: "L02",
            ..hit.clone()
        };
        assert!(!b.accepts(&miss));
    }

    #[test]
    fn json_output_is_escaped() {
        let f = Finding {
            rule: "L03",
            path: "a.rs".into(),
            line: 1,
            col: 2,
            message: "name \"x\" bad".into(),
        };
        let json = render_json(&[f]);
        assert!(json.contains("\\\"x\\\""));
        assert!(json.starts_with("{\"rule_version\":"));
        assert!(json.contains(&format!("\"rule_version\":{RULE_VERSION}")));
        assert!(json.contains("\"findings\":["));
    }
}
