//! `cargo run -p skq-lint` — scan the workspace and report findings.
//!
//! Exit status 0 when every finding is suppressed inline or accepted by
//! the baseline; 1 otherwise; 2 on usage or I/O errors.
//!
//! ```text
//! cargo run -p skq-lint                  # human-readable report
//! cargo run -p skq-lint -- --json        # machine-readable findings
//! cargo run -p skq-lint -- --github      # GitHub Actions annotations
//! cargo run -p skq-lint -- --list        # rule registry
//! cargo run -p skq-lint -- --lock-graph out.dot   # export lock-order graph
//! cargo run -p skq-lint -- --root <dir> --baseline <file>
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

use skq_lint::{apply_suppressions, render_github, render_json, run_rules, Baseline, Workspace};

struct Options {
    root: PathBuf,
    baseline: PathBuf,
    json: bool,
    github: bool,
    list: bool,
    lock_graph: Option<PathBuf>,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        root: PathBuf::from("."),
        baseline: PathBuf::new(),
        json: false,
        github: false,
        list: false,
        lock_graph: None,
    };
    let mut baseline_set = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => opts.json = true,
            "--github" => opts.github = true,
            "--list" => opts.list = true,
            "--root" => {
                opts.root = PathBuf::from(args.next().ok_or("--root needs a directory")?);
            }
            "--baseline" => {
                opts.baseline = PathBuf::from(args.next().ok_or("--baseline needs a file")?);
                baseline_set = true;
            }
            "--lock-graph" => {
                opts.lock_graph = Some(PathBuf::from(
                    args.next().ok_or("--lock-graph needs an output path")?,
                ));
            }
            other => return Err(format!("unknown argument `{other}` (see --list)")),
        }
    }
    if !baseline_set {
        opts.baseline = opts.root.join("lint-baseline.txt");
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("skq-lint: {e}");
            return ExitCode::from(2);
        }
    };
    if opts.list {
        for (id, summary, _) in skq_lint::rules::RULES {
            println!("{id}  {summary}");
        }
        return ExitCode::SUCCESS;
    }
    let ws = match Workspace::load(&opts.root) {
        Ok(ws) => ws,
        Err(e) => {
            eprintln!(
                "skq-lint: cannot load workspace {}: {e}",
                opts.root.display()
            );
            return ExitCode::from(2);
        }
    };
    let baseline = match std::fs::read_to_string(&opts.baseline) {
        Ok(text) => Baseline::parse(&text),
        Err(_) => Baseline::default(), // no baseline file = empty baseline
    };

    if let Some(out) = &opts.lock_graph {
        let dot = skq_lint::conc::lock_graph(&ws).render_dot();
        if let Err(e) = std::fs::write(out, dot) {
            eprintln!("skq-lint: cannot write lock graph {}: {e}", out.display());
            return ExitCode::from(2);
        }
        eprintln!("skq-lint: lock-order graph written to {}", out.display());
    }

    let raw = run_rules(&ws);
    let (active, suppressed) = apply_suppressions(&ws, raw);
    let (active, baselined) = baseline.apply(active);

    if opts.json {
        print!("{}", render_json(&active));
    } else if opts.github {
        print!("{}", render_github(&active));
    } else {
        for f in &active {
            println!("{f}");
        }
        println!(
            "skq-lint: {} finding(s), {} suppressed inline, {} baselined, {} file(s) scanned",
            active.len(),
            suppressed.len(),
            baselined.len(),
            ws.files.len()
        );
    }
    if active.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
