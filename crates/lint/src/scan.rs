//! Source modelling: comment/string masking and `#[cfg(test)]` region
//! tracking.
//!
//! The rule engine never parses Rust properly — it works on a *masked*
//! view of each file in which comment bodies and string/char literal
//! contents are replaced by spaces (newlines preserved), so token
//! searches cannot match inside prose or literals, plus a per-line
//! `is_test` bitmap so rules can skip `#[cfg(test)]` modules and
//! functions. This is deliberately lighter than a real parser: every
//! rule here is a *policy* check over a handful of easily recognized
//! tokens, and the masking layer is the only part that needs to
//! understand Rust's lexical grammar.

/// One scanned source file.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path with `/` separators (stable across OSes
    /// for baselines and fixtures).
    pub path: String,
    /// The raw text, used for extracting literal contents (metric
    /// names, fail-point sites) and suppression comments.
    pub raw: String,
    /// Same length as `raw`: comments and literal contents blanked.
    pub masked: String,
    /// Byte offset of the start of each line (index 0 = line 1).
    pub line_starts: Vec<usize>,
    /// `test_lines[i]` — line `i + 1` lies inside a `#[cfg(test)]`
    /// item or the whole file is a test target.
    pub test_lines: Vec<bool>,
}

impl SourceFile {
    /// Scans `raw` into a masked model. `force_test` marks every line
    /// as test code (integration tests, benches, fixtures).
    pub fn new(path: String, raw: String, force_test: bool) -> Self {
        let masked = mask(&raw);
        let line_starts = line_starts(&raw);
        let test_lines = if force_test {
            vec![true; line_starts.len()]
        } else {
            test_regions(&masked, &line_starts)
        };
        Self {
            path,
            raw,
            masked,
            line_starts,
            test_lines,
        }
    }

    /// 1-based `(line, col)` of a byte offset.
    pub fn position(&self, offset: usize) -> (usize, usize) {
        let line = match self.line_starts.binary_search(&offset) {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        (line + 1, offset - self.line_starts[line] + 1)
    }

    /// Whether the line holding `offset` is test code.
    pub fn is_test_at(&self, offset: usize) -> bool {
        let (line, _) = self.position(offset);
        self.test_lines.get(line - 1).copied().unwrap_or(false)
    }

    /// The raw text of 1-based `line` (without the newline).
    pub fn line_text(&self, line: usize) -> &str {
        let start = self.line_starts[line - 1];
        let end = self
            .line_starts
            .get(line)
            .map(|&e| e - 1)
            .unwrap_or(self.raw.len());
        self.raw[start..end]
            .trim_end_matches('\n')
            .trim_end_matches('\r')
    }

    /// Every start offset of `token` in the masked text.
    pub fn masked_offsets(&self, token: &str) -> Vec<usize> {
        offsets_of(&self.masked, token)
    }
}

/// Every start offset of `token` in `text`.
pub fn offsets_of(text: &str, token: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(i) = text[from..].find(token) {
        out.push(from + i);
        from += i + token.len().max(1);
    }
    out
}

fn line_starts(raw: &str) -> Vec<usize> {
    let mut starts = vec![0usize];
    for (i, b) in raw.bytes().enumerate() {
        if b == b'\n' {
            starts.push(i + 1);
        }
    }
    if starts.last() == Some(&raw.len()) && raw.ends_with('\n') {
        starts.pop();
    }
    starts
}

/// Replaces comment bodies and string/char literal contents with
/// spaces, preserving length and newlines. Handles line and (nested)
/// block comments, plain/byte strings with escapes, raw strings with
/// `#` fences, char literals, and leaves lifetimes (`'a`) alone.
fn mask(raw: &str) -> String {
    let bytes = raw.as_bytes();
    let mut out: Vec<u8> = bytes.to_vec();
    let mut i = 0usize;
    let n = bytes.len();

    let blank = |out: &mut Vec<u8>, from: usize, to: usize| {
        for item in out.iter_mut().take(to).skip(from) {
            if *item != b'\n' {
                *item = b' ';
            }
        }
    };

    while i < n {
        let b = bytes[i];
        match b {
            b'/' if i + 1 < n && bytes[i + 1] == b'/' => {
                let end = raw[i..].find('\n').map(|e| i + e).unwrap_or(n);
                blank(&mut out, i, end);
                i = end;
            }
            b'/' if i + 1 < n && bytes[i + 1] == b'*' => {
                let mut depth = 1usize;
                let mut j = i + 2;
                while j < n && depth > 0 {
                    if j + 1 < n && bytes[j] == b'/' && bytes[j + 1] == b'*' {
                        depth += 1;
                        j += 2;
                    } else if j + 1 < n && bytes[j] == b'*' && bytes[j + 1] == b'/' {
                        depth -= 1;
                        j += 2;
                    } else {
                        j += 1;
                    }
                }
                blank(&mut out, i, j);
                i = j;
            }
            b'r' | b'b' if is_raw_string_start(bytes, i) => {
                let (hash_count, quote) = raw_string_open(bytes, i);
                let body = quote + 1;
                let closer: String = std::iter::once('"')
                    .chain("#".repeat(hash_count).chars())
                    .collect();
                let end = raw[body..]
                    .find(&closer)
                    .map(|e| body + e)
                    .unwrap_or(n.saturating_sub(closer.len()));
                blank(&mut out, body, end);
                i = end + closer.len();
            }
            b'"' => {
                let mut j = i + 1;
                while j < n {
                    match bytes[j] {
                        b'\\' => j += 2,
                        b'"' => break,
                        _ => j += 1,
                    }
                }
                blank(&mut out, i + 1, j.min(n));
                i = (j + 1).min(n);
            }
            b'\'' => {
                if let Some(end) = char_literal_end(bytes, i) {
                    blank(&mut out, i + 1, end);
                    i = end + 1;
                } else {
                    i += 1; // a lifetime: leave it
                }
            }
            _ => i += 1,
        }
    }
    // SAFETY-free conversion: we only wrote ASCII spaces over bytes.
    String::from_utf8(out).unwrap_or_else(|_| raw.to_string())
}

/// `r"…"`, `r#"…"#`, `br"…"`, `b"…"` starts (byte strings share the
/// plain-string escape path via the `b'"'` arm unless raw).
fn is_raw_string_start(bytes: &[u8], i: usize) -> bool {
    // Not part of an identifier like `for` or `br`oken names.
    if i > 0 && (bytes[i - 1].is_ascii_alphanumeric() || bytes[i - 1] == b'_') {
        return false;
    }
    let mut j = i;
    if bytes[j] == b'b' {
        j += 1;
    }
    if j >= bytes.len() || bytes[j] != b'r' {
        return false;
    }
    j += 1;
    while j < bytes.len() && bytes[j] == b'#' {
        j += 1;
    }
    j < bytes.len() && bytes[j] == b'"'
}

/// Returns `(hash_count, quote_offset)` for a raw-string opener at `i`.
fn raw_string_open(bytes: &[u8], i: usize) -> (usize, usize) {
    let mut j = i;
    if bytes[j] == b'b' {
        j += 1;
    }
    j += 1; // the `r`
    let mut hashes = 0usize;
    while j < bytes.len() && bytes[j] == b'#' {
        hashes += 1;
        j += 1;
    }
    (hashes, j)
}

/// If a char literal starts at `i` (a `'`), returns the offset of the
/// closing quote; `None` for lifetimes.
fn char_literal_end(bytes: &[u8], i: usize) -> Option<usize> {
    let n = bytes.len();
    if i + 2 >= n {
        return None;
    }
    if bytes[i + 1] == b'\\' {
        // Escaped char: scan to the closing quote (bounded).
        let mut j = i + 2;
        while j < n && j < i + 12 {
            if bytes[j] == b'\'' {
                return Some(j);
            }
            j += 1;
        }
        return None;
    }
    // `'x'` for any single byte x (multibyte chars: find the quote
    // within a small window).
    let mut j = i + 1;
    while j < n && j <= i + 5 {
        if bytes[j] == b'\'' && j > i + 1 {
            return Some(j);
        }
        j += 1;
    }
    None
}

/// Marks lines inside `#[cfg(test)]`-gated items by walking the masked
/// text with a brace counter.
fn test_regions(masked: &str, line_starts: &[usize]) -> Vec<bool> {
    let mut flags = vec![false; line_starts.len()];
    let bytes = masked.as_bytes();
    let n = bytes.len();
    let mut depth = 0i64;
    // (armed_at_depth) set when a cfg(test) attribute is seen; the next
    // `{` at that depth opens the region.
    let mut pending: Option<i64> = None;
    // (region_open_depth) while inside a test region.
    let mut region: Option<i64> = None;
    let mut i = 0usize;
    let line_of = |offset: usize| -> usize {
        match line_starts.binary_search(&offset) {
            Ok(l) => l,
            Err(l) => l - 1,
        }
    };
    while i < n {
        if region.is_none()
            && pending.is_none()
            && (masked[i..].starts_with("#[cfg(test)]")
                || masked[i..].starts_with("#[cfg(all(test"))
        {
            pending = Some(depth);
            flags[line_of(i)] = true;
            i += 2;
            continue;
        }
        match bytes[i] {
            b'{' => {
                if let Some(d) = pending {
                    if d == depth {
                        region = Some(depth);
                        pending = None;
                    }
                }
                depth += 1;
            }
            b'}' => {
                depth -= 1;
                if region == Some(depth) {
                    region = None;
                    flags[line_of(i)] = true;
                }
            }
            _ => {}
        }
        if region.is_some() {
            flags[line_of(i)] = true;
        }
        i += 1;
    }
    flags
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masking_blanks_comments_and_strings() {
        let src = "let a = \"panic!(x)\"; // unwrap()\nlet b = 1; /* expect( */ let c = 'x';\n";
        let f = SourceFile::new("t.rs".into(), src.into(), false);
        assert!(!f.masked.contains("panic!"));
        assert!(!f.masked.contains("unwrap"));
        assert!(!f.masked.contains("expect"));
        assert_eq!(f.masked.len(), src.len());
        assert!(f.masked.contains("let b = 1;"));
    }

    #[test]
    fn lifetimes_survive_char_literals_do_not() {
        let src = "fn f<'a>(x: &'a str) { let c = 'q'; let d = '\\n'; }";
        let f = SourceFile::new("t.rs".into(), src.into(), false);
        assert!(f.masked.contains("<'a>"));
        assert!(f.masked.contains("&'a str"));
        assert!(!f.masked.contains('q'));
    }

    #[test]
    fn raw_strings_are_blanked() {
        let src = "let s = r#\"todo!() \"inner\" \"#; let t = 2;";
        let f = SourceFile::new("t.rs".into(), src.into(), false);
        assert!(!f.masked.contains("todo!"));
        assert!(f.masked.contains("let t = 2;"));
    }

    #[test]
    fn cfg_test_regions_are_flagged() {
        let src = "pub fn a() {}\n#[cfg(test)]\nmod tests {\n    fn b() { x.unwrap(); }\n}\npub fn c() {}\n";
        let f = SourceFile::new("t.rs".into(), src.into(), false);
        assert!(!f.test_lines[0], "line 1 is production code");
        assert!(f.test_lines[1], "attribute line");
        assert!(f.test_lines[2] && f.test_lines[3] && f.test_lines[4]);
        assert!(!f.test_lines[5], "after the test module");
    }

    #[test]
    fn positions_are_one_based() {
        let src = "abc\ndef\n";
        let f = SourceFile::new("t.rs".into(), src.into(), false);
        assert_eq!(f.position(0), (1, 1));
        assert_eq!(f.position(4), (2, 1));
        assert_eq!(f.position(6), (2, 3));
        assert_eq!(f.line_text(2), "def");
    }
}
