//! Source modelling: the lexed token stream, the masked text view
//! derived from it, and `#[cfg(test)]` region tracking.
//!
//! Each file is lexed exactly once (see [`crate::lex`]); everything the
//! rules consume is a view over that one token stream. The line-oriented
//! rules L01–L14 work on the *masked* text — comment bodies and
//! string/char literal contents replaced by spaces (newlines preserved),
//! so token searches cannot match inside prose or literals — while the
//! concurrency pass (L15–L18, [`crate::conc`]) walks the tokens
//! directly. A per-line `is_test` bitmap lets rules skip `#[cfg(test)]`
//! modules and functions. This is deliberately lighter than a real
//! parser: every rule here is a *policy* check over a handful of easily
//! recognized tokens, and the lexer is the only part that needs to
//! understand Rust's lexical grammar.

use crate::lex::{self, Token, TokenKind};

/// One scanned source file.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path with `/` separators (stable across OSes
    /// for baselines and fixtures).
    pub path: String,
    /// The raw text, used for extracting literal contents (metric
    /// names, fail-point sites) and suppression comments.
    pub raw: String,
    /// The lossless token stream over `raw` — shared by every rule;
    /// lexed once per file per run.
    pub tokens: Vec<Token>,
    /// Same length as `raw`: comments and literal contents blanked
    /// (a view computed from `tokens`).
    pub masked: String,
    /// Byte offset of the start of each line (index 0 = line 1).
    pub line_starts: Vec<usize>,
    /// `test_lines[i]` — line `i + 1` lies inside a `#[cfg(test)]`
    /// item or the whole file is a test target.
    pub test_lines: Vec<bool>,
}

impl SourceFile {
    /// Lexes `raw` once and derives the masked model. `force_test`
    /// marks every line as test code (integration tests, benches,
    /// fixtures).
    pub fn new(path: String, raw: String, force_test: bool) -> Self {
        let tokens = lex::lex(&raw);
        let masked = lex::masked_view(&raw, &tokens);
        let line_starts = line_starts(&raw);
        let test_lines = if force_test {
            vec![true; line_starts.len()]
        } else {
            test_regions(&masked, &line_starts)
        };
        Self {
            path,
            raw,
            tokens,
            masked,
            line_starts,
            test_lines,
        }
    }

    /// 1-based `(line, col)` of a byte offset.
    pub fn position(&self, offset: usize) -> (usize, usize) {
        let line = match self.line_starts.binary_search(&offset) {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        (line + 1, offset - self.line_starts[line] + 1)
    }

    /// Whether the line holding `offset` is test code.
    pub fn is_test_at(&self, offset: usize) -> bool {
        let (line, _) = self.position(offset);
        self.test_lines.get(line - 1).copied().unwrap_or(false)
    }

    /// The raw text of 1-based `line` (without the newline).
    pub fn line_text(&self, line: usize) -> &str {
        let start = self.line_starts[line - 1];
        let end = self
            .line_starts
            .get(line)
            .map(|&e| e - 1)
            .unwrap_or(self.raw.len());
        self.raw[start..end]
            .trim_end_matches('\n')
            .trim_end_matches('\r')
    }

    /// Every start offset of `token` in the masked text.
    pub fn masked_offsets(&self, token: &str) -> Vec<usize> {
        offsets_of(&self.masked, token)
    }

    /// The comment text attached to 1-based `line`: every comment token
    /// on `line` itself (trailing comments), plus the contiguous block
    /// of full-line comments directly above it, joined by newlines.
    /// This is how the concurrency rules read justification comments
    /// (`// relaxed: <reason>` — the reason may span a multi-line
    /// comment block as long as the block touches the site).
    pub fn comments_near(&self, line: usize) -> String {
        // Full-line comments (nothing but whitespace before them) by
        // starting line, and trailing comments on `line` itself.
        let mut full_line: std::collections::BTreeMap<usize, &str> =
            std::collections::BTreeMap::new();
        let mut on_line = Vec::new();
        for tok in &self.tokens {
            if !matches!(tok.kind, TokenKind::LineComment | TokenKind::BlockComment) {
                continue;
            }
            let (tok_line, _) = self.position(tok.start);
            let text = &self.raw[tok.start..tok.end];
            if tok_line == line {
                on_line.push(text);
            } else if tok_line < line {
                let start = self.line_starts[tok_line - 1];
                if self.raw[start..tok.start].trim().is_empty() {
                    full_line.insert(tok_line, text);
                }
            }
        }
        let mut block = Vec::new();
        let mut l = line;
        while l > 1 {
            l -= 1;
            match full_line.get(&l) {
                Some(text) => block.push(*text),
                None => break,
            }
        }
        block.reverse();
        block.extend(on_line);
        block.join("\n")
    }
}

/// Every start offset of `token` in `text`.
pub fn offsets_of(text: &str, token: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(i) = text[from..].find(token) {
        out.push(from + i);
        from += i + token.len().max(1);
    }
    out
}

fn line_starts(raw: &str) -> Vec<usize> {
    let mut starts = vec![0usize];
    for (i, b) in raw.bytes().enumerate() {
        if b == b'\n' {
            starts.push(i + 1);
        }
    }
    if starts.last() == Some(&raw.len()) && raw.ends_with('\n') {
        starts.pop();
    }
    starts
}

/// Marks lines inside `#[cfg(test)]`-gated items by walking the masked
/// text with a brace counter.
fn test_regions(masked: &str, line_starts: &[usize]) -> Vec<bool> {
    let mut flags = vec![false; line_starts.len()];
    let bytes = masked.as_bytes();
    let n = bytes.len();
    let mut depth = 0i64;
    // (armed_at_depth) set when a cfg(test) attribute is seen; the next
    // `{` at that depth opens the region.
    let mut pending: Option<i64> = None;
    // (region_open_depth) while inside a test region.
    let mut region: Option<i64> = None;
    let mut i = 0usize;
    let line_of = |offset: usize| -> usize {
        match line_starts.binary_search(&offset) {
            Ok(l) => l,
            Err(l) => l - 1,
        }
    };
    while i < n {
        if region.is_none()
            && pending.is_none()
            && (masked[i..].starts_with("#[cfg(test)]")
                || masked[i..].starts_with("#[cfg(all(test"))
        {
            pending = Some(depth);
            flags[line_of(i)] = true;
            i += 2;
            continue;
        }
        match bytes[i] {
            b'{' => {
                if let Some(d) = pending {
                    if d == depth {
                        region = Some(depth);
                        pending = None;
                    }
                }
                depth += 1;
            }
            b'}' => {
                depth -= 1;
                if region == Some(depth) {
                    region = None;
                    flags[line_of(i)] = true;
                }
            }
            _ => {}
        }
        if region.is_some() {
            flags[line_of(i)] = true;
        }
        i += 1;
    }
    flags
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masking_blanks_comments_and_strings() {
        let src = "let a = \"panic!(x)\"; // unwrap()\nlet b = 1; /* expect( */ let c = 'x';\n";
        let f = SourceFile::new("t.rs".into(), src.into(), false);
        assert!(!f.masked.contains("panic!"));
        assert!(!f.masked.contains("unwrap"));
        assert!(!f.masked.contains("expect"));
        assert_eq!(f.masked.len(), src.len());
        assert!(f.masked.contains("let b = 1;"));
    }

    #[test]
    fn lifetimes_survive_char_literals_do_not() {
        let src = "fn f<'a>(x: &'a str) { let c = 'q'; let d = '\\n'; }";
        let f = SourceFile::new("t.rs".into(), src.into(), false);
        assert!(f.masked.contains("<'a>"));
        assert!(f.masked.contains("&'a str"));
        assert!(!f.masked.contains('q'));
    }

    #[test]
    fn raw_strings_are_blanked() {
        let src = "let s = r#\"todo!() \"inner\" \"#; let t = 2;";
        let f = SourceFile::new("t.rs".into(), src.into(), false);
        assert!(!f.masked.contains("todo!"));
        assert!(f.masked.contains("let t = 2;"));
    }

    #[test]
    fn cfg_test_regions_are_flagged() {
        let src = "pub fn a() {}\n#[cfg(test)]\nmod tests {\n    fn b() { x.unwrap(); }\n}\npub fn c() {}\n";
        let f = SourceFile::new("t.rs".into(), src.into(), false);
        assert!(!f.test_lines[0], "line 1 is production code");
        assert!(f.test_lines[1], "attribute line");
        assert!(f.test_lines[2] && f.test_lines[3] && f.test_lines[4]);
        assert!(!f.test_lines[5], "after the test module");
    }

    #[test]
    fn positions_are_one_based() {
        let src = "abc\ndef\n";
        let f = SourceFile::new("t.rs".into(), src.into(), false);
        assert_eq!(f.position(0), (1, 1));
        assert_eq!(f.position(4), (2, 1));
        assert_eq!(f.position(6), (2, 3));
        assert_eq!(f.line_text(2), "def");
    }

    #[test]
    fn comments_near_attaches_same_line_and_line_above() {
        let src = "// relaxed: counter only\nx.load(Ordering::Relaxed);\ny(); // trailing note\n";
        let f = SourceFile::new("t.rs".into(), src.into(), false);
        assert!(f.comments_near(2).contains("relaxed: counter only"));
        assert!(f.comments_near(3).contains("trailing note"));
        assert!(f.comments_near(1).contains("relaxed"));
    }
}
