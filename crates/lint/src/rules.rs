//! The rule set: repo-specific contracts clippy cannot express.
//!
//! Each rule is a plain function over the [`Workspace`] snapshot; the
//! registry [`RULES`] drives the engine and the `--list` CLI output.
//! Rule IDs are stable — they appear in suppression comments and the
//! baseline, so renumbering is a breaking change. All rules skip
//! `#[cfg(test)]` regions and test-path files unless noted.

use crate::scan::{offsets_of, SourceFile};
use crate::{Finding, Workspace};

/// Rule function signature: append findings for the whole workspace.
pub type RuleFn = fn(&Workspace, &mut Vec<Finding>);

/// The registry: `(id, summary, implementation)`.
pub const RULES: &[(&str, &str, RuleFn)] = &[
    (
        "L01",
        "no unwrap/expect/panic-family macros in request-path modules outside tests",
        l01_no_panics_in_request_path,
    ),
    (
        "L02",
        "every core module with `pub fn query*` exposes a fallible query counterpart",
        l02_fallible_query_counterpart,
    ),
    (
        "L03",
        "metric names start with `skq_`, keep one kind per name, and appear in DESIGN.md",
        l03_metric_discipline,
    ),
    (
        "L04",
        "fail-point sites are unique, registered in SITES, and every SITES entry is armed by a call site",
        l04_failpoint_registry,
    ),
    (
        "L05",
        "every ResultSink::emit call site propagates ControlFlow::Break",
        l05_emit_propagates_break,
    ),
    (
        "L06",
        "framework/dimred traversals with a sink parameter never collect via Vec::push",
        l06_no_push_in_sink_traversals,
    ),
    (
        "L07",
        "every #[allow(...)] outside tests carries a justification comment",
        l07_justified_allows,
    ),
    (
        "L08",
        "every SkqError variant is constructed somewhere outside tests",
        l08_error_variants_constructed,
    ),
    (
        "L09",
        "every crate root starts with #![forbid(unsafe_code)]",
        l09_forbid_unsafe,
    ),
    (
        "L10",
        "no println!/eprintln!/dbg! in library code (bins and bench excepted)",
        l10_no_stdout_in_libs,
    ),
    (
        "L11",
        "every `pub fn try_*` documents a `# Errors` section",
        l11_try_fns_document_errors,
    ),
    (
        "L12",
        "every trace-span name (`Span::enter*` literal) appears in DESIGN.md \u{a7}13",
        l12_trace_spans_documented,
    ),
    (
        "L13",
        "every file with a serialized-section impl (`impl Persist for`) references SCHEMA_VERSION",
        l13_persist_impls_reference_schema_version,
    ),
    (
        "L14",
        "every fail-point site in SITES appears in DESIGN.md's fail-point table",
        l14_failpoint_sites_documented,
    ),
    (
        "L15",
        "no cycles in the inter-crate lock-order graph (deadlock risk; see --lock-graph)",
        crate::conc::lock_order_cycles,
    ),
    (
        "L16",
        "Ordering::Relaxed needs an inline `// relaxed: <reason>`; Release stores need an Acquire read on the same field",
        crate::conc::atomic_discipline,
    ),
    (
        "L17",
        "Condvar::wait/wait_timeout must sit inside a predicate-re-checking loop",
        crate::conc::condvar_wait_in_loop,
    ),
    (
        "L18",
        "no .lock().unwrap() outside tests — recover poisoned guards with PoisonError::into_inner",
        crate::conc::lock_unwrap_ban,
    ),
];

/// Modules on the request path: panics here would take down a serving
/// process instead of failing one query. Mirrors the per-module
/// `#[warn(clippy::disallowed_methods)]` opt-ins in `skq-core`'s root.
const REQUEST_PATH: &[&str] = &[
    "crates/core/src/batch.rs",
    "crates/core/src/dynamic.rs",
    "crates/core/src/planner.rs",
    "crates/core/src/suite.rs",
];

fn push(out: &mut Vec<Finding>, rule: &'static str, file: &SourceFile, offset: usize, msg: String) {
    let (line, col) = file.position(offset);
    out.push(Finding {
        rule,
        path: file.path.clone(),
        line,
        col,
        message: msg,
    });
}

// ---------------------------------------------------------------- L01

fn l01_no_panics_in_request_path(ws: &Workspace, out: &mut Vec<Finding>) {
    const BANNED: &[&str] = &[
        ".unwrap()",
        ".expect(",
        "panic!(",
        "todo!(",
        "unimplemented!(",
        "unreachable!(",
    ];
    for file in &ws.files {
        if !REQUEST_PATH.contains(&file.path.as_str()) {
            continue;
        }
        for token in BANNED {
            for o in file.masked_offsets(token) {
                if file.is_test_at(o) {
                    continue;
                }
                push(
                    out,
                    "L01",
                    file,
                    o,
                    format!(
                        "`{}` in request-path module; return SkqError (or use the guarded surface) instead",
                        token.trim_start_matches('.').trim_end_matches('(')
                    ),
                );
            }
        }
    }
}

// ---------------------------------------------------------------- L02

fn l02_fallible_query_counterpart(ws: &Workspace, out: &mut Vec<Finding>) {
    for file in &ws.files {
        // Top-level core modules only: the public index surface.
        let Some(rest) = file.path.strip_prefix("crates/core/src/") else {
            continue;
        };
        if rest.contains('/') {
            continue;
        }
        let mut first_query: Option<usize> = None;
        let mut has_fallible = false;
        for o in file.masked_offsets("pub fn ") {
            if file.is_test_at(o) {
                continue;
            }
            let name_start = o + "pub fn ".len();
            let name = ident_at(&file.masked, name_start);
            if name.starts_with("try_query") {
                has_fallible = true;
            } else if name.starts_with("query") {
                first_query.get_or_insert(o);
                // A query returning Result counts as its own fallible form.
                if signature_text(&file.masked, o).contains("Result<") {
                    has_fallible = true;
                }
            }
        }
        if let Some(o) = first_query {
            if !has_fallible {
                push(
                    out,
                    "L02",
                    file,
                    o,
                    "module declares `pub fn query*` but no fallible counterpart \
                     (`try_query*` or a query returning Result)"
                        .to_string(),
                );
            }
        }
    }
}

// ---------------------------------------------------------------- L03

fn l03_metric_discipline(ws: &Workspace, out: &mut Vec<Finding>) {
    const REGISTER: &[(&str, &str)] = &[
        (".counter(", "counter"),
        (".gauge(", "gauge"),
        (".histogram(", "histogram"),
    ];
    let design = ws.docs.get("DESIGN.md").map(String::as_str).unwrap_or("");
    // (name, kind, file index, offset)
    let mut uses: Vec<(String, &'static str, usize, usize)> = Vec::new();
    for (fi, file) in ws.files.iter().enumerate() {
        for (token, kind) in REGISTER {
            for o in file.masked_offsets(token) {
                if file.is_test_at(o) {
                    continue;
                }
                let open = o + token.len();
                let Some(name) = literal_after(file, open) else {
                    continue; // registered via a const — out of scope here
                };
                uses.push((name, kind, fi, o));
            }
        }
    }
    for (name, kind, fi, o) in &uses {
        let file = &ws.files[*fi];
        if !is_metric_name(name) {
            push(
                out,
                "L03",
                file,
                *o,
                format!("metric name `{name}` must match `skq_[a-z0-9_]+`"),
            );
            continue;
        }
        if !design.contains(name.as_str()) {
            push(
                out,
                "L03",
                file,
                *o,
                format!("metric `{name}` is not documented in DESIGN.md \u{a7}9"),
            );
        }
        if let Some((_, first_kind, _, _)) = uses.iter().find(|(n, _, _, _)| n == name) {
            if first_kind != kind {
                push(
                    out,
                    "L03",
                    file,
                    *o,
                    format!(
                        "metric `{name}` registered as {kind} here but as {first_kind} elsewhere; \
                         one name, one kind"
                    ),
                );
            }
        }
    }
}

fn is_metric_name(name: &str) -> bool {
    name.strip_prefix("skq_").is_some_and(|rest| {
        !rest.is_empty()
            && rest
                .bytes()
                .all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'_')
    })
}

// ---------------------------------------------------------------- L04

/// Parses the `SITES` array from `failpoints.rs` raw text (the masking
/// blanks literals): `(site name, raw offset)` per entry.
fn parse_failpoint_sites(reg_file: &SourceFile) -> Option<Vec<(String, usize)>> {
    let decl = reg_file.raw.find("pub const SITES")?;
    let end = reg_file.raw[decl..]
        .find("];")
        .map(|e| decl + e)
        .unwrap_or(reg_file.raw.len());
    let block = &reg_file.raw[decl..end];
    let mut sites: Vec<(String, usize)> = Vec::new();
    let mut from = 0usize;
    while let Some(q) = block[from..].find('"') {
        let start = from + q + 1;
        let Some(len) = block[start..].find('"') else {
            break;
        };
        sites.push((block[start..start + len].to_string(), decl + start));
        from = start + len + 1;
    }
    Some(sites)
}

fn l04_failpoint_registry(ws: &Workspace, out: &mut Vec<Finding>) {
    let Some(reg_file) = ws.file("crates/core/src/failpoints.rs") else {
        return;
    };
    let Some(sites) = parse_failpoint_sites(reg_file) else {
        push(
            out,
            "L04",
            reg_file,
            0,
            "failpoints.rs lost its `pub const SITES` registry".to_string(),
        );
        return;
    };
    for (i, (site, o)) in sites.iter().enumerate() {
        if sites[..i].iter().any(|(s, _)| s == site) {
            push(
                out,
                "L04",
                reg_file,
                *o,
                format!("duplicate fail-point site `{site}` in SITES"),
            );
        }
    }
    // Every check("…") call site must name a registered site, and every
    // registered site must have at least one call site.
    let mut called: Vec<String> = Vec::new();
    for file in &ws.files {
        for o in file.masked_offsets("failpoints::check(") {
            if file.is_test_at(o) {
                continue;
            }
            let open = o + "failpoints::check(".len();
            let Some(site) = literal_after(file, open) else {
                continue; // `check(site)` forwarding inside failpoints.rs
            };
            if !sites.iter().any(|(s, _)| *s == site) {
                push(
                    out,
                    "L04",
                    file,
                    o,
                    format!("fail point `{site}` is not registered in failpoints::SITES"),
                );
            }
            called.push(site);
        }
    }
    for (site, o) in &sites {
        if !called.iter().any(|c| c == site) {
            push(
                out,
                "L04",
                reg_file,
                *o,
                format!("registered fail point `{site}` has no check() call site"),
            );
        }
    }
}

// ---------------------------------------------------------------- L05

fn l05_emit_propagates_break(ws: &Workspace, out: &mut Vec<Finding>) {
    for file in &ws.files {
        let masked = file.masked.as_bytes();
        for o in file.masked_offsets(".emit(") {
            if file.is_test_at(o) {
                continue;
            }
            let open = o + ".emit(".len() - 1; // the '('
            let Some(close) = matching_paren(&file.masked, open) else {
                continue;
            };
            let mut j = close + 1;
            while j < masked.len() && (masked[j] == b' ' || masked[j] == b'\n') {
                j += 1;
            }
            let next = masked.get(j).copied().unwrap_or(b'}');
            // `?`, a method chain (`.is_break()`), a comparison, or a
            // tail/argument position all consume the ControlFlow.
            if matches!(next, b'?' | b'.' | b'=' | b'!' | b'}' | b')' | b',') {
                continue;
            }
            if next == b';' {
                // Statement position: fine when the value is bound or
                // tested, a bare `sink.emit(x);` drops the Break.
                let stmt_start = file.masked[..o]
                    .rfind([';', '{', '}'])
                    .map(|s| s + 1)
                    .unwrap_or(0);
                let stmt = &file.masked[stmt_start..o];
                const CONSUMERS: &[&str] =
                    &["let ", "if ", "while ", "match ", "return ", "=> ", "= "];
                if CONSUMERS.iter().any(|c| stmt.contains(c)) {
                    continue;
                }
            }
            push(
                out,
                "L05",
                file,
                o,
                "ResultSink::emit result is discarded; propagate ControlFlow::Break \
                 (`sink.emit(x)?` or check `.is_break()`)"
                    .to_string(),
            );
        }
    }
}

// ---------------------------------------------------------------- L06

fn l06_no_push_in_sink_traversals(ws: &Workspace, out: &mut Vec<Finding>) {
    for file in &ws.files {
        if !(file.path.starts_with("crates/core/src/framework/")
            || file.path.starts_with("crates/core/src/dimred/"))
        {
            continue;
        }
        for (sig_start, body_start, body_end) in fn_spans(&file.masked) {
            let sig = &file.masked[sig_start..body_start];
            if !sig.contains("Sink") {
                continue;
            }
            for rel in offsets_of(&file.masked[body_start..body_end], ".push(") {
                let o = body_start + rel;
                if file.is_test_at(o) {
                    continue;
                }
                push(
                    out,
                    "L06",
                    file,
                    o,
                    "Vec::push inside a sink-carrying traversal; results must flow \
                     through ResultSink::emit so limits and cancellation hold"
                        .to_string(),
                );
            }
        }
    }
}

// ---------------------------------------------------------------- L07

fn l07_justified_allows(ws: &Workspace, out: &mut Vec<Finding>) {
    for file in &ws.files {
        for token in ["#[allow(", "#![allow("] {
            for o in file.masked_offsets(token) {
                if file.is_test_at(o) {
                    continue;
                }
                let (line, _) = file.position(o);
                let attr_line = file.line_text(line);
                let after_attr = attr_line
                    .find(']')
                    .map(|b| &attr_line[b..])
                    .unwrap_or(attr_line);
                let same_line = after_attr.contains("//");
                let prev_line = line > 1 && file.line_text(line - 1).trim_start().starts_with("//");
                if !(same_line || prev_line) {
                    push(
                        out,
                        "L07",
                        file,
                        o,
                        "#[allow(...)] without a justification comment (same line or \
                         the line above)"
                            .to_string(),
                    );
                }
            }
        }
    }
}

// ---------------------------------------------------------------- L08

fn l08_error_variants_constructed(ws: &Workspace, out: &mut Vec<Finding>) {
    let Some(err_file) = ws.file("crates/core/src/error.rs") else {
        return;
    };
    let Some(decl) = err_file.masked.find("pub enum SkqError") else {
        return;
    };
    let Some(open) = err_file.masked[decl..].find('{').map(|b| decl + b) else {
        return;
    };
    let Some(close) = matching_brace(&err_file.masked, open) else {
        return;
    };
    // Variant names: capitalized identifiers at the start of a line in
    // the (doc-comment-masked) enum body.
    let mut variants: Vec<(String, usize)> = Vec::new();
    let body = &err_file.masked[open + 1..close];
    let mut line_start = 0usize;
    for seg in body.split_inclusive('\n') {
        let trimmed = seg.trim_start();
        let indent = seg.len() - trimmed.len();
        if trimmed
            .chars()
            .next()
            .is_some_and(|c| c.is_ascii_uppercase())
        {
            let name = ident_at(body, line_start + indent);
            if !name.is_empty() {
                variants.push((name, open + 1 + line_start + indent));
            }
        }
        line_start += seg.len();
    }
    for (variant, decl_offset) in &variants {
        let token = format!("SkqError::{variant}");
        let mut constructed = false;
        'files: for file in &ws.files {
            for o in file.masked_offsets(&token) {
                if file.is_test_at(o) {
                    continue;
                }
                // The declaration itself.
                if file.path == err_file.path && o >= decl && o <= close {
                    continue;
                }
                // A match arm pattern (`SkqError::X(..) => …`) is a
                // use, not a construction — but an arrow *before* the
                // token means the construction sits on an arm's right
                // side, which counts.
                let (line, col) = file.position(o);
                if let Some(arrow) = file.line_text(line).find("=>") {
                    if arrow >= col {
                        continue;
                    }
                }
                constructed = true;
                break 'files;
            }
        }
        if !constructed {
            push(
                out,
                "L08",
                err_file,
                *decl_offset,
                format!(
                    "SkqError::{variant} is never constructed outside tests; dead error \
                     surface (remove it or wire it up)"
                ),
            );
        }
    }
}

// ---------------------------------------------------------------- L09

fn l09_forbid_unsafe(ws: &Workspace, out: &mut Vec<Finding>) {
    for file in &ws.files {
        let is_crate_root = file.path == "src/lib.rs"
            || (file.path.starts_with("crates/") && file.path.ends_with("/src/lib.rs"));
        if !is_crate_root {
            continue;
        }
        if !file.masked.contains("#![forbid(unsafe_code)]") {
            push(
                out,
                "L09",
                file,
                0,
                "crate root must declare #![forbid(unsafe_code)]".to_string(),
            );
        }
    }
}

// ---------------------------------------------------------------- L10

fn l10_no_stdout_in_libs(ws: &Workspace, out: &mut Vec<Finding>) {
    for file in &ws.files {
        let exempt = file.path.starts_with("crates/bench/")
            || file.path.starts_with("examples/")
            || file.path.contains("/bin/")
            || file.path.ends_with("main.rs");
        if exempt {
            continue;
        }
        for token in ["println!(", "eprintln!(", "print!(", "eprint!(", "dbg!("] {
            for o in file.masked_offsets(token) {
                if file.is_test_at(o) {
                    continue;
                }
                push(
                    out,
                    "L10",
                    file,
                    o,
                    format!(
                        "`{}` in library code; route output through skq-obs or return it",
                        token.trim_end_matches('(')
                    ),
                );
            }
        }
    }
}

// ---------------------------------------------------------------- L11

fn l11_try_fns_document_errors(ws: &Workspace, out: &mut Vec<Finding>) {
    for file in &ws.files {
        for o in file.masked_offsets("pub fn try_") {
            if file.is_test_at(o) {
                continue;
            }
            let (line, _) = file.position(o);
            let mut documented = false;
            let mut l = line;
            while l > 1 {
                l -= 1;
                let text = file.line_text(l);
                let t = text.trim_start();
                if t.starts_with("///") {
                    if t.contains("# Errors") {
                        documented = true;
                        break;
                    }
                } else if !(t.starts_with("#[") || t.starts_with("#![") || t.is_empty()) {
                    break;
                }
            }
            if !documented {
                let name = ident_at(&file.masked, o + "pub fn ".len());
                push(
                    out,
                    "L11",
                    file,
                    o,
                    format!("`pub fn {name}` has no `# Errors` doc section"),
                );
            }
        }
    }
}

// ---------------------------------------------------------------- L12

/// Span names are the coordinate system of the exported traces: a name
/// that exists only in source cannot be interpreted by anyone reading a
/// Perfetto capture. Every literal passed to `Span::enter` /
/// `Span::enter_in` outside tests must therefore appear in DESIGN.md's
/// span table (§13). Names built from non-literal expressions are out
/// of scope, mirroring L03's treatment of const-registered metrics.
fn l12_trace_spans_documented(ws: &Workspace, out: &mut Vec<Finding>) {
    let design = ws.docs.get("DESIGN.md").map(String::as_str).unwrap_or("");
    let check = |file: &SourceFile, o: usize, name: String, out: &mut Vec<Finding>| {
        if !design.contains(name.as_str()) {
            push(
                out,
                "L12",
                file,
                o,
                format!("trace span `{name}` is not documented in DESIGN.md \u{a7}13"),
            );
        }
    };
    for file in &ws.files {
        // `Span::enter("name")` — the name is the first argument.
        for o in file.masked_offsets("Span::enter(") {
            if file.is_test_at(o) {
                continue;
            }
            let open = o + "Span::enter(".len();
            if let Some(name) = literal_after(file, open) {
                check(file, o, name, out);
            }
        }
        // `Span::enter_in(registry, "name")` — the name is the second
        // argument: the literal after the first top-level comma.
        for o in file.masked_offsets("Span::enter_in(") {
            if file.is_test_at(o) {
                continue;
            }
            let open = o + "Span::enter_in".len(); // the '('
            let bytes = file.masked.as_bytes();
            let mut depth = 0i64;
            let mut i = open;
            while i < bytes.len() {
                match bytes[i] {
                    b'(' => depth += 1,
                    b')' => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    b',' if depth == 1 => break,
                    _ => {}
                }
                i += 1;
            }
            if bytes.get(i) == Some(&b',') {
                if let Some(name) = literal_after(file, i + 1) {
                    check(file, o, name, out);
                }
            }
        }
    }
}

// ---------------------------------------------------------------- L13

/// A file that implements [`Persist`] owns part of the on-disk layout
/// (DESIGN.md §15), so an edit to it can silently change the bytes. The
/// schema constant is the bump site for such changes; requiring every
/// serializing file to reference `SCHEMA_VERSION` keeps the constant in
/// view at each place where a layout edit could originate. References
/// in comments and strings do not count — the token must survive
/// masking (an import or a real use in the encoding code).
fn l13_persist_impls_reference_schema_version(ws: &Workspace, out: &mut Vec<Finding>) {
    for file in &ws.files {
        let Some(o) = file.masked_offsets("impl Persist for").into_iter().next() else {
            continue;
        };
        if file.is_test_at(o) {
            continue;
        }
        if file.masked_offsets("SCHEMA_VERSION").is_empty() {
            let name = ident_at(&file.masked, o + "impl Persist for ".len());
            push(
                out,
                "L13",
                file,
                o,
                format!(
                    "`impl Persist for {name}` serializes a section but the file never \
                     references SCHEMA_VERSION (the bump site for layout changes, \
                     DESIGN.md \u{a7}15)"
                ),
            );
        }
    }
}

// ---------------------------------------------------------------- L14

/// A fail point is an operational contract: chaos tests and the
/// `skq-crash` driver arm sites by name, so a site that exists only in
/// source is an undocumented knob nobody can reach for. Every entry in
/// `failpoints::SITES` must therefore appear in DESIGN.md's fail-point
/// table (§11), mirroring how L03/L12 pin metric and span names.
fn l14_failpoint_sites_documented(ws: &Workspace, out: &mut Vec<Finding>) {
    let Some(reg_file) = ws.file("crates/core/src/failpoints.rs") else {
        return;
    };
    let Some(sites) = parse_failpoint_sites(reg_file) else {
        return; // A missing registry is already an L04 finding.
    };
    let design = ws.docs.get("DESIGN.md").map(String::as_str).unwrap_or("");
    for (site, o) in &sites {
        if !design.contains(site.as_str()) {
            push(
                out,
                "L14",
                reg_file,
                *o,
                format!("fail-point site `{site}` is not documented in DESIGN.md \u{a7}11"),
            );
        }
    }
}

// ------------------------------------------------------------ helpers

/// The identifier starting at `offset` (empty if none).
fn ident_at(text: &str, offset: usize) -> String {
    text[offset..]
        .chars()
        .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
        .collect()
}

/// The signature text of a `fn` declared at `offset`: everything up to
/// the body brace (bounded, in case of parse confusion).
fn signature_text(masked: &str, offset: usize) -> &str {
    let end = masked[offset..]
        .char_indices()
        .find(|&(i, c)| c == '{' || c == ';' || i > 600)
        .map(|(i, _)| offset + i)
        .unwrap_or(masked.len());
    &masked[offset..end]
}

/// If (after whitespace) a string literal opens at `offset` in the raw
/// text, returns its contents.
fn literal_after(file: &SourceFile, offset: usize) -> Option<String> {
    let raw = file.raw.as_bytes();
    let mut i = offset;
    while i < raw.len() && (raw[i] == b' ' || raw[i] == b'\n') {
        i += 1;
    }
    if raw.get(i) != Some(&b'"') {
        return None;
    }
    let start = i + 1;
    let len = file.raw[start..].find('"')?;
    Some(file.raw[start..start + len].to_string())
}

/// Offset of the `)` matching the `(` at `open`.
fn matching_paren(text: &str, open: usize) -> Option<usize> {
    matching(text, open, b'(', b')')
}

/// Offset of the `}` matching the `{` at `open`.
fn matching_brace(text: &str, open: usize) -> Option<usize> {
    matching(text, open, b'{', b'}')
}

fn matching(text: &str, open: usize, inc: u8, dec: u8) -> Option<usize> {
    let bytes = text.as_bytes();
    let mut depth = 0i64;
    for (i, &b) in bytes.iter().enumerate().skip(open) {
        if b == inc {
            depth += 1;
        } else if b == dec {
            depth -= 1;
            if depth == 0 {
                return Some(i);
            }
        }
    }
    None
}

/// `(signature_start, body_start, body_end)` for every `fn` in the
/// masked text.
fn fn_spans(masked: &str) -> Vec<(usize, usize, usize)> {
    let mut spans = Vec::new();
    for o in offsets_of(masked, "fn ") {
        // Word boundary: reject `often `, accept start-of-text.
        if o > 0 {
            let prev = masked.as_bytes()[o - 1];
            if prev.is_ascii_alphanumeric() || prev == b'_' {
                continue;
            }
        }
        // The body brace: first `{` at zero paren/angle-free depth.
        let bytes = masked.as_bytes();
        let mut depth = 0i64;
        let mut body_start = None;
        for (i, &b) in bytes.iter().enumerate().skip(o) {
            match b {
                b'(' | b'[' => depth += 1,
                b')' | b']' => depth -= 1,
                b'{' if depth == 0 => {
                    body_start = Some(i);
                    break;
                }
                b';' if depth == 0 => break, // trait method without body
                _ => {}
            }
        }
        if let Some(bs) = body_start {
            if let Some(be) = matching_brace(masked, bs) {
                spans.push((o, bs, be));
            }
        }
    }
    spans
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fn_spans_find_bodies() {
        let src = "fn a(x: i32) -> i32 { x }\nfn b() { if true { } }\ntrait T { fn c(); }\n";
        let spans = fn_spans(src);
        assert_eq!(spans.len(), 2, "trait method without body is skipped");
        assert!(src[spans[0].1..spans[0].2].contains('x'));
    }

    #[test]
    fn metric_name_shape() {
        assert!(is_metric_name("skq_query_total"));
        assert!(!is_metric_name("queries_total"));
        assert!(!is_metric_name("skq_Query"));
        assert!(!is_metric_name("skq_"));
    }
}
