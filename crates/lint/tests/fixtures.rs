//! Fixture tests: seed one violation of every rule in an in-memory
//! workspace and assert the engine reports the expected rule ID and
//! span (acceptance criterion of the rule engine).

use skq_lint::{apply_suppressions, run_rules, Workspace};

/// Runs the engine over `(path, contents)` fixtures, suppressions
/// applied.
fn lint(sources: &[(&str, &str)]) -> Vec<skq_lint::Finding> {
    let ws = Workspace::from_memory(sources);
    let (active, _suppressed) = apply_suppressions(&ws, run_rules(&ws));
    active
}

fn assert_one(findings: &[skq_lint::Finding], rule: &str, path: &str, line: usize, col: usize) {
    let hits: Vec<_> = findings.iter().filter(|f| f.rule == rule).collect();
    assert_eq!(
        hits.len(),
        1,
        "expected exactly one {rule} finding, got: {findings:?}"
    );
    let f = hits[0];
    assert_eq!((f.path.as_str(), f.line, f.col), (path, line, col), "{f}");
}

#[test]
fn l01_flags_panics_in_request_path() {
    let src = "pub fn f(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\n";
    let findings = lint(&[("crates/core/src/batch.rs", src)]);
    assert_one(&findings, "L01", "crates/core/src/batch.rs", 2, 6);
}

#[test]
fn l01_skips_test_regions_strings_and_other_modules() {
    let test_mod = "#[cfg(test)]\nmod tests {\n    fn f() { None::<u32>.unwrap(); }\n}\n";
    let string_only = "pub fn f() -> &'static str {\n    \"don't .unwrap() me\"\n}\n";
    let findings = lint(&[
        ("crates/core/src/batch.rs", test_mod),
        ("crates/core/src/suite.rs", string_only),
        // Same token outside the request path: not L01's business.
        (
            "crates/core/src/orp.rs",
            "pub fn g(x: Option<u32>) -> u32 { x.unwrap() }\n",
        ),
    ]);
    assert!(
        findings.iter().all(|f| f.rule != "L01"),
        "false positives: {findings:?}"
    );
}

#[test]
fn l02_requires_fallible_query_counterpart() {
    let bad = "pub fn query(&self) -> Vec<u32> { Vec::new() }\n";
    let findings = lint(&[("crates/core/src/rr.rs", bad)]);
    assert_one(&findings, "L02", "crates/core/src/rr.rs", 1, 1);

    let good_try = "pub fn query(&self) -> Vec<u32> { Vec::new() }\n\
                    /// # Errors\n/// Never.\n\
                    pub fn try_query_into(&self) -> Result<(), ()> { Ok(()) }\n";
    assert!(lint(&[("crates/core/src/rr.rs", good_try)]).is_empty());

    let good_result = "pub fn query_guarded(&self) -> Result<Vec<u32>, ()> { Ok(Vec::new()) }\n";
    assert!(lint(&[("crates/core/src/rr.rs", good_result)]).is_empty());
}

#[test]
fn l03_flags_undocumented_and_misshapen_metrics() {
    let src = "pub fn f(reg: &R) {\n    reg.counter(\"skq_good_total\", &[]).inc();\n    reg.counter(\"bad_name\", &[]).inc();\n    reg.gauge(\"skq_missing_from_design\", &[]).set(1.0);\n}\n";
    let findings = lint(&[
        ("crates/core/src/telemetry.rs", src),
        ("DESIGN.md", "| `skq_good_total` | — | telemetry |\n"),
    ]);
    let l03: Vec<_> = findings.iter().filter(|f| f.rule == "L03").collect();
    assert_eq!(l03.len(), 2, "{findings:?}");
    assert!(l03
        .iter()
        .any(|f| f.line == 3 && f.message.contains("bad_name")));
    assert!(l03
        .iter()
        .any(|f| f.line == 4 && f.message.contains("skq_missing_from_design")));
}

#[test]
fn l03_flags_one_name_two_kinds() {
    let src = "pub fn f(reg: &R) {\n    reg.counter(\"skq_x_total\", &[]).inc();\n    reg.histogram(\"skq_x_total\", &[]).observe(1);\n}\n";
    let findings = lint(&[
        ("crates/core/src/telemetry.rs", src),
        ("DESIGN.md", "`skq_x_total`\n"),
    ]);
    assert_one(&findings, "L03", "crates/core/src/telemetry.rs", 3, 8);
}

#[test]
fn l04_checks_site_registration_both_ways() {
    let registry = "pub const SITES: &[&str] = &[\n    \"orp::build\",\n    \"orp::build\",\n    \"never::called\",\n];\n";
    let caller =
        "pub fn f() -> Result<(), E> {\n    failpoints::check(\"orp::build\")?;\n    failpoints::check(\"rogue::site\")?;\n    Ok(())\n}\n";
    let findings = lint(&[
        ("crates/core/src/failpoints.rs", registry),
        ("crates/core/src/orp.rs", caller),
    ]);
    let l04: Vec<_> = findings.iter().filter(|f| f.rule == "L04").collect();
    assert_eq!(l04.len(), 3, "{findings:?}");
    assert!(l04
        .iter()
        .any(|f| f.line == 3 && f.message.contains("duplicate")));
    assert!(l04
        .iter()
        .any(|f| f.message.contains("rogue::site") && f.path.ends_with("orp.rs")));
    assert!(l04
        .iter()
        .any(|f| f.message.contains("never::called") && f.message.contains("no check()")));
}

#[test]
fn l05_flags_discarded_emit() {
    let bad = "fn f<S: ResultSink>(sink: &mut S) {\n    sink.emit(7);\n    other();\n}\n";
    let findings = lint(&[("crates/core/src/rr.rs", bad)]);
    assert_one(&findings, "L05", "crates/core/src/rr.rs", 2, 9);
}

#[test]
fn l05_accepts_all_propagation_forms() {
    let good = "fn a<S: ResultSink>(sink: &mut S) -> ControlFlow<()> {\n    sink.emit(1)?;\n    if sink.emit(2).is_break() {\n        return ControlFlow::Break(());\n    }\n    let flow = sink.emit(3);\n    flow\n}\nfn b<S: ResultSink>(sink: &mut S) -> ControlFlow<()> {\n    sink.emit(4)\n}\n";
    let findings = lint(&[("crates/core/src/rr.rs", good)]);
    assert!(
        findings.iter().all(|f| f.rule != "L05"),
        "false positives: {findings:?}"
    );
}

#[test]
fn l06_flags_push_in_sink_traversals() {
    let bad =
        "fn visit<S: ResultSink>(&self, sink: &mut S, out: &mut Vec<u32>) {\n    out.push(1);\n}\n";
    let findings = lint(&[("crates/core/src/framework/index.rs", bad)]);
    assert_one(&findings, "L06", "crates/core/src/framework/index.rs", 2, 8);
    // The same push in a sink-free helper is fine.
    let good = "fn collect(out: &mut Vec<u32>) {\n    out.push(1);\n}\n";
    assert!(lint(&[("crates/core/src/framework/index.rs", good)]).is_empty());
}

#[test]
fn l07_requires_justified_allows() {
    let bad = "#[allow(dead_code)]\nfn f() {}\n";
    let findings = lint(&[("crates/core/src/rr.rs", bad)]);
    assert_one(&findings, "L07", "crates/core/src/rr.rs", 1, 1);

    let same_line = "#[allow(dead_code)] // kept for the ffi surface\nfn f() {}\n";
    assert!(lint(&[("crates/core/src/rr.rs", same_line)]).is_empty());
    let line_above = "// kept for the ffi surface\n#[allow(dead_code)]\nfn f() {}\n";
    assert!(lint(&[("crates/core/src/rr.rs", line_above)]).is_empty());
}

#[test]
fn l08_flags_never_constructed_variants() {
    let error_rs = "pub enum SkqError {\n    /// Used.\n    InvalidQuery(String),\n    /// Dead.\n    Cancelled,\n}\n";
    let user =
        "pub fn f() -> Result<(), SkqError> {\n    Err(SkqError::InvalidQuery(String::new()))\n}\nfn display(e: &SkqError) -> &str {\n    match e {\n        SkqError::InvalidQuery(_) => \"iq\",\n        SkqError::Cancelled => \"c\",\n    }\n}\n";
    let findings = lint(&[
        ("crates/core/src/error.rs", error_rs),
        ("crates/core/src/guard.rs", user),
    ]);
    let l08: Vec<_> = findings.iter().filter(|f| f.rule == "L08").collect();
    assert_eq!(l08.len(), 1, "{findings:?}");
    assert_eq!((l08[0].line, l08[0].col), (5, 5));
    assert!(l08[0].message.contains("Cancelled"));
}

#[test]
fn l08_counts_arm_rhs_construction() {
    let error_rs = "pub enum SkqError {\n    Internal(String),\n}\n";
    let user = "pub fn f(x: bool) -> SkqError {\n    match x {\n        true => SkqError::Internal(String::new()),\n        false => SkqError::Internal(String::from(\"n\")),\n    }\n}\n";
    let findings = lint(&[
        ("crates/core/src/error.rs", error_rs),
        ("crates/core/src/guard.rs", user),
    ]);
    assert!(
        findings.iter().all(|f| f.rule != "L08"),
        "arm-RHS construction must count: {findings:?}"
    );
}

#[test]
fn l09_requires_forbid_unsafe_in_crate_roots() {
    let findings = lint(&[("crates/geom/src/lib.rs", "pub fn f() {}\n")]);
    assert_one(&findings, "L09", "crates/geom/src/lib.rs", 1, 1);
    assert!(lint(&[(
        "crates/geom/src/lib.rs",
        "#![forbid(unsafe_code)]\npub fn f() {}\n"
    )])
    .is_empty());
}

#[test]
fn l10_flags_prints_in_libs_only() {
    let src = "pub fn f() {\n    println!(\"hi\");\n}\n";
    let findings = lint(&[("crates/core/src/stats.rs", src)]);
    assert_one(&findings, "L10", "crates/core/src/stats.rs", 2, 5);
    for exempt in [
        "crates/bench/src/lib.rs",
        "src/bin/skq.rs",
        "examples/demo.rs",
    ] {
        assert!(
            lint(&[(exempt, src)]).iter().all(|f| f.rule != "L10"),
            "{exempt} should be exempt from L10"
        );
    }
}

#[test]
fn l11_requires_errors_doc_on_try_fns() {
    let bad = "/// Does things.\npub fn try_build() -> Result<(), ()> {\n    Ok(())\n}\n";
    let findings = lint(&[("crates/core/src/rr.rs", bad)]);
    assert_one(&findings, "L11", "crates/core/src/rr.rs", 2, 1);

    let good = "/// Does things.\n///\n/// # Errors\n///\n/// Never, actually.\n#[inline]\npub fn try_build() -> Result<(), ()> {\n    Ok(())\n}\n";
    assert!(lint(&[("crates/core/src/rr.rs", good)]).is_empty());
}

#[test]
fn l12_requires_documented_span_names() {
    let src = "pub fn f(reg: &MetricsRegistry) {\n    let _a = skq_obs::Span::enter(\"orp.query\");\n    let _b = Span::enter_in(reg, \"rogue.span\");\n}\n";
    let findings = lint(&[
        ("crates/core/src/orp.rs", src),
        ("DESIGN.md", "| `orp.query` | query wrapper | — |\n"),
    ]);
    assert_one(&findings, "L12", "crates/core/src/orp.rs", 3, 14);
    assert!(findings[0].message.contains("rogue.span"), "{findings:?}");
    // Test regions and non-literal names are out of scope.
    let exempt = "#[cfg(test)]\nmod tests {\n    fn f() { let _s = Span::enter(\"undocumented\"); }\n}\npub fn g(name: &str) {\n    let _s = Span::enter(name);\n}\n";
    assert!(lint(&[("crates/core/src/orp.rs", exempt)])
        .iter()
        .all(|f| f.rule != "L12"));
}

#[test]
fn l13_persist_impls_must_reference_schema_version() {
    let bad = "pub struct Thing;\nimpl Persist for Thing {\n    fn to_pages(&self) {}\n}\n";
    let findings = lint(&[("crates/core/src/thing.rs", bad)]);
    assert_one(&findings, "L13", "crates/core/src/thing.rs", 2, 1);
    assert!(findings[0].message.contains("Thing"), "{findings:?}");

    // An import (or any masked-source use) of the constant satisfies
    // the rule; mentions in comments or strings do not.
    let good =
        "use crate::persist::SCHEMA_VERSION;\npub struct Thing;\nimpl Persist for Thing {}\n";
    assert!(lint(&[("crates/core/src/thing.rs", good)]).is_empty());
    let comment_only =
        "// SCHEMA_VERSION is mentioned but never referenced\npub struct T;\nimpl Persist for T {}\n";
    let findings = lint(&[("crates/core/src/thing.rs", comment_only)]);
    assert_one(&findings, "L13", "crates/core/src/thing.rs", 3, 1);
    // Files that do not serialize anything are out of scope.
    assert!(lint(&[("crates/core/src/plain.rs", "pub fn f() {}\n")]).is_empty());
}

#[test]
fn l14_requires_documented_failpoint_sites() {
    let registry =
        "pub const SITES: &[&str] = &[\n    \"orp::build\",\n    \"store::fsync\",\n];\n";
    let caller = "pub fn f() -> Result<(), E> {\n    failpoints::check(\"orp::build\")?;\n    failpoints::check(\"store::fsync\")?;\n    Ok(())\n}\n";
    let findings = lint(&[
        ("crates/core/src/failpoints.rs", registry),
        ("crates/core/src/orp.rs", caller),
        ("DESIGN.md", "| `orp::build` | ORP build path |\n"),
    ]);
    let l14: Vec<_> = findings.iter().filter(|f| f.rule == "L14").collect();
    assert_eq!(l14.len(), 1, "{findings:?}");
    assert_eq!((l14[0].line, l14[0].col), (3, 6));
    assert!(l14[0].message.contains("store::fsync"), "{findings:?}");

    // Both sites documented: no findings.
    let findings = lint(&[
        ("crates/core/src/failpoints.rs", registry),
        ("crates/core/src/orp.rs", caller),
        (
            "DESIGN.md",
            "| `orp::build` | ORP build path |\n| `store::fsync` | durable sync |\n",
        ),
    ]);
    assert!(findings.iter().all(|f| f.rule != "L14"), "{findings:?}");
}

#[test]
fn inline_suppression_needs_justification() {
    let justified = "pub fn f(x: Option<u32>) -> u32 {\n    x.unwrap() // skq-lint: allow(L01) fixture: reason given\n}\n";
    assert!(lint(&[("crates/core/src/batch.rs", justified)]).is_empty());

    let bare = "pub fn f(x: Option<u32>) -> u32 {\n    x.unwrap() // skq-lint: allow(L01)\n}\n";
    let findings = lint(&[("crates/core/src/batch.rs", bare)]);
    assert_eq!(
        findings.len(),
        1,
        "unjustified suppression must not hide the finding"
    );
}

#[test]
fn every_rule_id_is_covered_by_a_fixture() {
    // Meta-check: the registry and the fixture files must grow
    // together (L01–L14 here, L15–L18 in tests/conc_fixtures.rs).
    let covered = [
        "L01", "L02", "L03", "L04", "L05", "L06", "L07", "L08", "L09", "L10", "L11", "L12", "L13",
        "L14", "L15", "L16", "L17", "L18",
    ];
    for (id, _, _) in skq_lint::rules::RULES {
        assert!(covered.contains(id), "rule {id} has no fixture test");
    }
    assert_eq!(covered.len(), skq_lint::rules::RULES.len());
}

#[test]
fn each_file_is_lexed_exactly_once_per_run() {
    // The rules all share one token stream per file: constructing a
    // workspace lexes each file once, and running every rule (twice)
    // must not lex anything again.
    let sources: &[(&str, &str)] = &[
        ("crates/a/src/x.rs", "pub fn a() -> u32 { 1 }\n"),
        ("crates/a/src/y.rs", "pub fn b() -> u32 { 2 }\n"),
        ("crates/b/src/z.rs", "pub fn c() -> u32 { 3 }\n"),
    ];
    let before = skq_lint::lex::lex_runs();
    let ws = Workspace::from_memory(sources);
    let after_load = skq_lint::lex::lex_runs();
    assert_eq!(
        after_load - before,
        sources.len(),
        "workspace construction lexes each file exactly once"
    );
    let _ = skq_lint::run_rules(&ws);
    let _ = skq_lint::run_rules(&ws);
    assert_eq!(
        skq_lint::lex::lex_runs(),
        after_load,
        "running the rules must reuse the shared token streams, not re-lex"
    );
}
