//! Fixture tests for the concurrency audit rules L15–L18: each rule
//! has at least one firing fixture and one clean fixture, exercised
//! through the same in-memory `Workspace` entry point the engine uses.

use skq_lint::{run_rules, Finding, Workspace};

fn lint(sources: &[(&str, &str)]) -> Vec<Finding> {
    run_rules(&Workspace::from_memory(sources))
}

fn only_rule<'a>(findings: &'a [Finding], rule: &str) -> Vec<&'a Finding> {
    findings.iter().filter(|f| f.rule == rule).collect()
}

// ---------------------------------------------------------------- L15

/// Two functions acquiring the same pair of locks in opposite orders —
/// the textbook deadlock — must produce exactly one cycle finding.
#[test]
fn l15_fires_on_a_two_lock_cycle() {
    let src = concat!(
        "pub fn forward(&self) {\n",
        "    let a = self.alpha.lock();\n",
        "    let b = self.beta.lock();\n",
        "    drop(b);\n",
        "    drop(a);\n",
        "}\n",
        "pub fn backward(&self) {\n",
        "    let b = self.beta.lock();\n",
        "    let a = self.alpha.lock();\n",
        "    drop(a);\n",
        "    drop(b);\n",
        "}\n",
    );
    let findings = lint(&[("crates/x/src/a.rs", src)]);
    let hits = only_rule(&findings, "L15");
    assert_eq!(hits.len(), 1, "{findings:?}");
    assert!(hits[0].message.contains("alpha"));
    assert!(hits[0].message.contains("beta"));
}

/// The cycle is found even when the two halves live in different
/// crates — lock identity is the field name, workspace-wide.
#[test]
fn l15_sees_cross_crate_cycles() {
    let forward =
        "pub fn f(&self) { let a = self.alpha.lock(); let _b = self.beta.lock(); drop(a); }\n";
    let backward =
        "pub fn g(&self) { let b = self.beta.lock(); let _a = self.alpha.lock(); drop(b); }\n";
    let findings = lint(&[
        ("crates/x/src/a.rs", forward),
        ("crates/y/src/b.rs", backward),
    ]);
    assert_eq!(only_rule(&findings, "L15").len(), 1, "{findings:?}");
}

/// Consistent acquisition order is clean, as is nesting under a single
/// outer lock (a tree-shaped order has no cycles).
#[test]
fn l15_clean_on_consistent_order() {
    let src = concat!(
        "pub fn f(&self) { let a = self.alpha.lock(); let _b = self.beta.lock(); drop(a); }\n",
        "pub fn g(&self) { let a = self.alpha.lock(); let _c = self.gamma.lock(); drop(a); }\n",
    );
    let findings = lint(&[("crates/x/src/a.rs", src)]);
    assert!(only_rule(&findings, "L15").is_empty(), "{findings:?}");
}

/// Striped locks re-acquire same-named siblings by design; self-edges
/// must not be reported as cycles.
#[test]
fn l15_ignores_striped_self_acquisition() {
    let src = concat!(
        "pub fn drain(&self) {\n",
        "    for stripe in &self.stripes {\n",
        "        let g = self.stripes.lock();\n",
        "        let h = self.stripes.lock();\n",
        "        drop(h);\n",
        "        drop(g);\n",
        "    }\n",
        "}\n",
    );
    let findings = lint(&[("crates/x/src/a.rs", src)]);
    assert!(only_rule(&findings, "L15").is_empty(), "{findings:?}");
}

// ---------------------------------------------------------------- L16

#[test]
fn l16_fires_on_unjustified_relaxed() {
    let src = "pub fn f(c: &AtomicU64) -> u64 { c.load(Ordering::Relaxed) }\n";
    let findings = lint(&[("crates/x/src/a.rs", src)]);
    assert_eq!(only_rule(&findings, "L16").len(), 1, "{findings:?}");
}

#[test]
fn l16_clean_with_relaxed_justification_comment() {
    let same_line =
        "pub fn f(c: &AtomicU64) -> u64 { c.load(Ordering::Relaxed) } // relaxed: counter only\n";
    let line_above = concat!(
        "pub fn f(c: &AtomicU64) -> u64 {\n",
        "    // relaxed: monotonic counter; readers tolerate skew\n",
        "    c.load(Ordering::Relaxed)\n",
        "}\n",
    );
    // A multi-line comment block counts as long as it touches the
    // site — the `relaxed:` marker may sit on its first line.
    let block_above = concat!(
        "pub fn f(c: &AtomicU64) -> u64 {\n",
        "    // relaxed: monotonic counter; readers snapshot it without\n",
        "    // a lock and tolerate lag\n",
        "    c.load(Ordering::Relaxed)\n",
        "}\n",
    );
    for src in [same_line, line_above, block_above] {
        let findings = lint(&[("crates/x/src/a.rs", src)]);
        assert!(only_rule(&findings, "L16").is_empty(), "{findings:?}");
    }
}

/// A comment block separated from the site by a code line does not
/// justify it — the block must touch the `Relaxed` line.
#[test]
fn l16_detached_comment_block_does_not_count() {
    let src = concat!(
        "pub fn f(c: &AtomicU64) -> u64 {\n",
        "    // relaxed: this block is detached\n",
        "    let _unrelated = 1;\n",
        "    c.load(Ordering::Relaxed)\n",
        "}\n",
    );
    let findings = lint(&[("crates/x/src/a.rs", src)]);
    assert_eq!(only_rule(&findings, "L16").len(), 1, "{findings:?}");
}

/// A `relaxed:` marker with no reason after the colon justifies
/// nothing, mirroring the suppression-comment contract.
#[test]
fn l16_empty_justification_does_not_count() {
    let src = "pub fn f(c: &AtomicU64) -> u64 { c.load(Ordering::Relaxed) } // relaxed:\n";
    let findings = lint(&[("crates/x/src/a.rs", src)]);
    assert_eq!(only_rule(&findings, "L16").len(), 1, "{findings:?}");
}

#[test]
fn l16_fires_on_release_store_without_acquire_load() {
    let src = concat!(
        "pub fn publish(&self) {\n",
        "    self.epoch.store(1, Ordering::Release);\n",
        "}\n",
        "pub fn read(&self) -> u64 {\n",
        "    // relaxed: fixture read\n",
        "    self.epoch.load(Ordering::Relaxed)\n",
        "}\n",
    );
    let findings = lint(&[("crates/x/src/a.rs", src)]);
    let hits = only_rule(&findings, "L16");
    assert_eq!(hits.len(), 1, "{findings:?}");
    assert!(hits[0].message.contains("epoch"), "{}", hits[0].message);
}

#[test]
fn l16_clean_when_release_store_pairs_with_acquire_load() {
    let src = concat!(
        "pub fn publish(&self) { self.epoch.store(1, Ordering::Release); }\n",
        "pub fn read(&self) -> u64 { self.epoch.load(Ordering::Acquire) }\n",
    );
    let findings = lint(&[("crates/x/src/a.rs", src)]);
    assert!(only_rule(&findings, "L16").is_empty(), "{findings:?}");
}

/// An acquiring RMW (e.g. `fetch_update(AcqRel, ..)`) satisfies the
/// read side of the pair, and the pairing is tracked per field.
#[test]
fn l16_acquiring_rmw_counts_and_pairing_is_per_field() {
    let src = concat!(
        "pub fn f(&self) { self.slots.store(1, Ordering::Release); }\n",
        "pub fn g(&self) { let _ = self.slots.fetch_update(Ordering::AcqRel, Ordering::Acquire, |v| Some(v)); }\n",
        "pub fn h(&self) { self.other.store(1, Ordering::Release); }\n",
    );
    let findings = lint(&[("crates/x/src/a.rs", src)]);
    let hits = only_rule(&findings, "L16");
    assert_eq!(hits.len(), 1, "{findings:?}");
    assert!(hits[0].message.contains("other"), "{}", hits[0].message);
}

// ---------------------------------------------------------------- L17

#[test]
fn l17_fires_on_unlooped_condvar_wait() {
    let src = concat!(
        "pub fn park(&self) {\n",
        "    let guard = self.jobs.lock().unwrap_or_else(PoisonError::into_inner);\n",
        "    let _guard = self.cv.wait(guard);\n",
        "}\n",
    );
    let findings = lint(&[("crates/x/src/a.rs", src)]);
    assert_eq!(only_rule(&findings, "L17").len(), 1, "{findings:?}");
}

#[test]
fn l17_fires_on_unlooped_wait_timeout() {
    let src = concat!(
        "pub fn park(&self) {\n",
        "    let guard = self.jobs.lock().unwrap_or_else(PoisonError::into_inner);\n",
        "    let _r = self.cv.wait_timeout(guard, TICK);\n",
        "}\n",
    );
    let findings = lint(&[("crates/x/src/a.rs", src)]);
    assert_eq!(only_rule(&findings, "L17").len(), 1, "{findings:?}");
}

#[test]
fn l17_clean_inside_loop_and_while() {
    let src = concat!(
        "pub fn park(&self) {\n",
        "    let mut guard = self.jobs.lock().unwrap_or_else(PoisonError::into_inner);\n",
        "    loop {\n",
        "        if !guard.is_empty() { break; }\n",
        "        guard = self.cv.wait(guard).unwrap_or_else(PoisonError::into_inner);\n",
        "    }\n",
        "    while guard.is_empty() {\n",
        "        let (g, _t) = self.cv.wait_timeout(guard, TICK).unwrap_or_else(|e| e.into_inner());\n",
        "        guard = g;\n",
        "    }\n",
        "}\n",
    );
    let findings = lint(&[("crates/x/src/a.rs", src)]);
    assert!(only_rule(&findings, "L17").is_empty(), "{findings:?}");
}

/// Nullary `.wait()` is not `Condvar::wait` (which always takes the
/// guard) — completion handles must not be flagged.
#[test]
fn l17_ignores_nullary_wait() {
    let src = "pub fn f(&self, req: Request) -> Response { self.submit(req).wait() }\n";
    let findings = lint(&[("crates/x/src/a.rs", src)]);
    assert!(only_rule(&findings, "L17").is_empty(), "{findings:?}");
}

// ---------------------------------------------------------------- L18

#[test]
fn l18_fires_on_lock_unwrap_and_expect() {
    let src = concat!(
        "pub fn f(&self) -> u64 { *self.state.lock().unwrap() }\n",
        "pub fn g(&self) -> u64 { *self.state.read().expect(\"poisoned\") }\n",
    );
    let findings = lint(&[("crates/x/src/a.rs", src)]);
    assert_eq!(only_rule(&findings, "L18").len(), 2, "{findings:?}");
}

#[test]
fn l18_clean_with_into_inner_idiom() {
    let src = concat!(
        "pub fn f(&self) -> u64 { *self.state.lock().unwrap_or_else(PoisonError::into_inner) }\n",
        "pub fn g(&self) -> u64 { *self.state.write().unwrap_or_else(PoisonError::into_inner) }\n",
    );
    let findings = lint(&[("crates/x/src/a.rs", src)]);
    assert!(only_rule(&findings, "L18").is_empty(), "{findings:?}");
}

/// Test code may unwrap freely: a poisoned lock in a test *should*
/// fail loudly.
#[test]
fn l18_exempts_test_code() {
    let in_test_mod = concat!(
        "pub fn prod() {}\n",
        "#[cfg(test)]\n",
        "mod tests {\n",
        "    fn t(&self) -> u64 { *self.state.lock().unwrap() }\n",
        "}\n",
    );
    let findings = lint(&[
        ("crates/x/src/a.rs", in_test_mod),
        (
            "crates/x/tests/t.rs",
            "fn t(&self) -> u64 { *self.state.lock().unwrap() }\n",
        ),
    ]);
    assert!(only_rule(&findings, "L18").is_empty(), "{findings:?}");
}

// ------------------------------------------------------- suppressions

/// The concurrency rules flow through the same inline-suppression
/// machinery as every other rule.
#[test]
fn conc_rules_honour_justified_suppressions() {
    let src = concat!(
        "pub fn f(&self) -> u64 {\n",
        "    // skq-lint: allow(L18) fixture: exercising the suppression path\n",
        "    *self.state.lock().unwrap()\n",
        "}\n",
    );
    let ws = Workspace::from_memory(&[("crates/x/src/a.rs", src)]);
    let (active, suppressed) = skq_lint::apply_suppressions(&ws, run_rules(&ws));
    assert!(only_rule(&active, "L18").is_empty(), "{active:?}");
    assert_eq!(only_rule(&suppressed, "L18").len(), 1);
}
