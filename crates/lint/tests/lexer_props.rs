//! The lexer's load-bearing property: the token stream is lossless.
//! Concatenating token spans reproduces the source byte-for-byte, and
//! spans are contiguous with no gaps or overlaps — checked over every
//! `.rs` file in the workspace, so any construct the real codebase
//! uses that the lexer mishandles fails here immediately.

use std::path::Path;

use skq_lint::lex::{lex, masked_view, TokenKind};
use skq_lint::Workspace;

#[test]
fn token_spans_reproduce_every_workspace_file_byte_for_byte() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let ws = Workspace::load(&root).expect("load workspace");
    assert!(
        ws.files.len() > 40,
        "workspace scan looks truncated: {} files",
        ws.files.len()
    );
    for file in &ws.files {
        let rebuilt: String = file
            .tokens
            .iter()
            .map(|t| &file.raw[t.start..t.end])
            .collect();
        assert_eq!(
            rebuilt, file.raw,
            "lossless lexing failed for {}",
            file.path
        );
        let mut pos = 0;
        for t in &file.tokens {
            assert_eq!(t.start, pos, "gap/overlap at byte {pos} in {}", file.path);
            assert!(
                t.end > t.start,
                "empty token at byte {pos} in {}",
                file.path
            );
            assert!(
                t.body_start >= t.start && t.body_end <= t.end && t.body_start <= t.body_end,
                "body range escapes its token in {}",
                file.path
            );
            pos = t.end;
        }
        assert_eq!(pos, file.raw.len(), "tokens stop early in {}", file.path);
    }
}

#[test]
fn masked_view_is_length_and_newline_preserving_workspace_wide() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let ws = Workspace::load(&root).expect("load workspace");
    for file in &ws.files {
        assert_eq!(
            file.masked.len(),
            file.raw.len(),
            "masking changed length of {}",
            file.path
        );
        assert_eq!(
            file.masked.matches('\n').count(),
            file.raw.matches('\n').count(),
            "masking changed line count of {}",
            file.path
        );
    }
}

/// Adversarial snippets: constructs that historically break ad-hoc
/// Rust lexers. Every one must round-trip losslessly.
#[test]
fn nasty_constructs_roundtrip() {
    let nasties = [
        "let s = r##\"quote \" fence \"# still in\"##;",
        "let b = br#\"bytes \" here\"#;",
        "let c = '\\u{1F600}'; let l: &'static str = \"\";",
        "impl<'a, T: Iterator<Item = &'a u8>> X<'a, T> {}",
        "let r = 0..=5; let f = 1.0e-9f64; let h = 0xFF_FFu32;",
        "/* outer /* inner */ still outer */ fn f() {}",
        "let q = 'a'; let r#fn = r#loop;",
        "macro_rules! m { ($x:expr) => { $x + 1 }; }",
        "let s = \"escaped \\\" quote and \\\\ backslash\";",
        "fn g() -> impl Fn(u8) -> u8 { |x| x + 1 }",
        "// comment with 'quote and \"dquote and \\ slash\n let x = 1;",
        "let unicode = \"héllo wörld — §2\"; // nötes\n",
    ];
    for src in nasties {
        let toks = lex(src);
        let rebuilt: String = toks.iter().map(|t| &src[t.start..t.end]).collect();
        assert_eq!(rebuilt, src, "roundtrip failed for {src:?}");
        let masked = masked_view(src, &toks);
        assert_eq!(masked.len(), src.len(), "mask changed length of {src:?}");
    }
}

/// Comments survive as their own tokens (the concurrency pass reads
/// justification comments off the stream).
#[test]
fn comments_are_tokens_with_exact_spans() {
    let src = "x(); // tail note\n/* head */ y();\n";
    let toks = lex(src);
    let comments: Vec<&str> = toks
        .iter()
        .filter(|t| matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment))
        .map(|t| &src[t.start..t.end])
        .collect();
    assert_eq!(comments, vec!["// tail note", "/* head */"]);
}
