//! `skq-bench` — the performance-trajectory CLI.
//!
//! Subcommands:
//!
//! * `bench [--out PATH] [--timed] [--smoke|--full] [--trace PATH]` —
//!   run the pinned scenarios (see `skq_bench::trajectory`) and write a
//!   schema-versioned `BENCH_*.json`. Default capture is deterministic
//!   (byte-stable across runs); `--timed` adds wall-clock fields.
//! * `save-suite SNAP [--smoke|--full]` — write the default bench
//!   suite's `skq-store` snapshot; `bench --load-suite SNAP` then
//!   answers the pinned queries from the snapshot (recording
//!   `load_micros`) instead of rebuilding, and `diff --threshold 0`
//!   against the checked-in baseline proves the loaded suite's query
//!   counters are identical.
//! * `diff BASELINE CANDIDATE [--threshold PCT]` — compare two BENCH
//!   files; exits 3 when any metric regressed past the threshold
//!   (default 10%).
//! * `validate FILE` — schema-check a BENCH file.
//!
//! Exit codes: 0 success, 1 usage error, 2 I/O or parse error,
//! 3 regressions found.

// The counting wrapper must implement the inherently-unsafe
// `GlobalAlloc` trait; this is the same sanctioned exception to the
// workspace-wide `unsafe_code = "deny"` as `tests/sink_alloc.rs`.
#![allow(unsafe_code)] // skq-lint: allow(L07) GlobalAlloc impls are unavoidably unsafe

use std::alloc::{GlobalAlloc, Layout, System};
use std::process::ExitCode;
use std::sync::atomic::{AtomicU64, Ordering};

use skq_bench::json::Json;
use skq_bench::trajectory::{self, BenchOptions, Scale, Verdict};
use skq_bench::Table;

/// Delegates to [`System`], counting bytes and allocation calls so the
/// trajectory can record allocator traffic per build / query sweep.
struct CountingAlloc;

static BYTES: AtomicU64 = AtomicU64::new(0);
static ALLOCS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates verbatim to `System`; the only addition is relaxed
// counter bookkeeping, which cannot violate allocator invariants.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        // relaxed: allocator-path telemetry counters; the report-time
        // SeqCst loads run after the measured phase has quiesced
        BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        ALLOCS.fetch_add(1, Ordering::Relaxed); // relaxed: see above
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // relaxed: allocator-path telemetry counters; see alloc()
        BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        ALLOCS.fetch_add(1, Ordering::Relaxed); // relaxed: see above
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn read_alloc_counters() -> (u64, u64) {
    (BYTES.load(Ordering::SeqCst), ALLOCS.load(Ordering::SeqCst))
}

const USAGE: &str = "usage: skq-bench <command>
  bench [--out PATH] [--timed] [--smoke|--full] [--trace PATH] [--load-suite SNAP]
  save-suite SNAP [--smoke|--full]
  diff BASELINE CANDIDATE [--threshold PCT]
  validate FILE";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = args.first().map(String::as_str);
    let rest = if args.is_empty() { &[] } else { &args[1..] };
    let result = match cmd {
        // Accept the `bench diff a b` spelling alongside plain `diff`.
        Some("bench") if rest.first().map(String::as_str) == Some("diff") => cmd_diff(&rest[1..]),
        Some("bench") => cmd_bench(rest),
        Some("save-suite") => cmd_save_suite(rest),
        Some("diff") => cmd_diff(rest),
        Some("validate") => cmd_validate(rest),
        _ => {
            eprintln!("{USAGE}");
            return ExitCode::from(1);
        }
    };
    match result {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("skq-bench: {msg}");
            ExitCode::from(2)
        }
    }
}

/// Writes `contents` to `path`, creating parent directories.
fn write_file(path: &str, contents: &str) -> Result<(), String> {
    let p = std::path::Path::new(path);
    if let Some(parent) = p.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)
                .map_err(|e| format!("creating {}: {e}", parent.display()))?;
        }
    }
    std::fs::write(p, contents).map_err(|e| format!("writing {path}: {e}"))
}

fn read_json(path: &str) -> Result<Json, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    Json::parse(&text).map_err(|e| format!("{path}: {e}"))
}

/// Value of a `--flag VALUE` pair, if present.
fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn cmd_bench(args: &[String]) -> Result<ExitCode, String> {
    let mut opts = BenchOptions::default();
    if args.iter().any(|a| a == "--timed") {
        opts.timed = true;
    }
    if args.iter().any(|a| a == "--smoke") {
        opts.scale = Scale::Smoke;
    }
    if args.iter().any(|a| a == "--full") {
        opts.scale = Scale::Full;
    }
    let out_path = flag_value(args, "--out");
    let trace_path = flag_value(args, "--trace");
    let snapshot: Option<Vec<u8>> = match flag_value(args, "--load-suite") {
        Some(path) => {
            let bytes = std::fs::read(path).map_err(|e| format!("reading {path}: {e}"))?;
            // Validate the snapshot up front so a corrupt file is a
            // one-line typed error (exit 2), not a panic deep inside
            // the trajectory run.
            skq_core::suite::OrpKwSuite::try_load(&bytes)
                .map_err(|e| format!("--load-suite {path}: {e}"))?;
            Some(bytes)
        }
        None => None,
    };

    if trace_path.is_some() {
        skq_obs::trace::enable();
    }
    let doc = trajectory::run_with_snapshot(opts, &read_alloc_counters, snapshot.as_deref());
    if let Some(path) = trace_path {
        skq_obs::trace::disable();
        write_file(path, &skq_obs::trace::export_chrome())?;
        eprintln!(
            "trace: {} events -> {path} (load in chrome://tracing or ui.perfetto.dev)",
            skq_obs::trace::event_count()
        );
    }

    let text = doc.render_pretty(2);
    match out_path {
        Some(path) => {
            write_file(path, &text)?;
            eprintln!(
                "wrote {path} ({} scale, {})",
                doc.get("scale").and_then(Json::as_str).unwrap_or("?"),
                if opts.timed {
                    "timed — machine-dependent numbers"
                } else {
                    "deterministic"
                }
            );
        }
        None => print!("{text}"),
    }
    Ok(ExitCode::SUCCESS)
}

/// `save-suite SNAP`: writes the default bench suite's snapshot so a
/// fresh process (`bench --load-suite SNAP`) can answer the pinned
/// queries without rebuilding — the CI store-smoke flow.
fn cmd_save_suite(args: &[String]) -> Result<ExitCode, String> {
    let [path] = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .collect::<Vec<_>>()[..]
    else {
        eprintln!("{USAGE}");
        return Ok(ExitCode::from(1));
    };
    let scale = if args.iter().any(|a| a == "--smoke") {
        Scale::Smoke
    } else if args.iter().any(|a| a == "--full") {
        Scale::Full
    } else {
        Scale::Default
    };
    let bytes = trajectory::suite_snapshot(scale);
    if let Some(parent) = std::path::Path::new(path).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)
                .map_err(|e| format!("creating {}: {e}", parent.display()))?;
        }
    }
    std::fs::write(path, &bytes).map_err(|e| format!("writing {path}: {e}"))?;
    eprintln!("wrote {path} ({} bytes, {} scale)", bytes.len(), {
        match scale {
            Scale::Smoke => "smoke",
            Scale::Default => "default",
            Scale::Full => "full",
        }
    });
    Ok(ExitCode::SUCCESS)
}

fn cmd_diff(args: &[String]) -> Result<ExitCode, String> {
    let positional: Vec<&String> = {
        let threshold_value = flag_value(args, "--threshold");
        args.iter()
            .filter(|a| !a.starts_with("--") && Some(a.as_str()) != threshold_value)
            .collect()
    };
    let [a_path, b_path] = positional.as_slice() else {
        eprintln!("{USAGE}");
        return Ok(ExitCode::from(1));
    };
    let threshold: f64 = match flag_value(args, "--threshold") {
        Some(t) => t
            .parse()
            .map_err(|_| format!("--threshold {t}: not a number"))?,
        None => 10.0,
    };
    let a = read_json(a_path)?;
    let b = read_json(b_path)?;
    let report = trajectory::diff(&a, &b, threshold)?;

    let flagged: Vec<_> = report
        .lines
        .iter()
        .filter(|l| l.verdict != Verdict::Ok)
        .collect();
    if flagged.is_empty() {
        println!(
            "no metric moved more than {threshold}% ({} compared)",
            report.lines.len()
        );
    } else {
        let mut table = Table::new(&["problem", "metric", "baseline", "candidate", "Δ%", ""]);
        for l in &flagged {
            table.row(vec![
                l.problem.clone(),
                l.metric.clone(),
                format!("{}", l.a),
                format!("{}", l.b),
                format!("{:+.1}", l.change_pct),
                match l.verdict {
                    Verdict::Regressed => "REGRESSED".to_string(),
                    Verdict::Improved => "improved".to_string(),
                    Verdict::Ok => String::new(),
                },
            ]);
        }
        table.print();
    }
    for name in &report.incomparable {
        println!("note: problem {name:?} skipped (workload context differs)");
    }
    println!(
        "{} regressions, {} improvements past {threshold}% over {} metrics",
        report.regressions,
        report.improvements,
        report.lines.len()
    );
    if report.regressions > 0 {
        return Ok(ExitCode::from(3));
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_validate(args: &[String]) -> Result<ExitCode, String> {
    let [path] = args else {
        eprintln!("{USAGE}");
        return Ok(ExitCode::from(1));
    };
    let doc = read_json(path)?;
    trajectory::validate(&doc)?;
    println!(
        "{path}: valid {} document (schema_version {}, scale {}, {} problems)",
        trajectory::FORMAT,
        doc.get("schema_version")
            .and_then(Json::as_f64)
            .unwrap_or(0.0),
        doc.get("scale").and_then(Json::as_str).unwrap_or("?"),
        doc.get("problems")
            .and_then(Json::as_obj)
            .map(<[_]>::len)
            .unwrap_or(0)
    );
    Ok(ExitCode::SUCCESS)
}
