//! The performance-trajectory harness behind `skq-bench bench`.
//!
//! Runs pinned, seeded `skq-workload` scenarios across every problem
//! module and records a schema-versioned JSON document: per-problem
//! build cost, query cost counters, latency percentiles (pulled from
//! the `skq-obs` histograms), bytes-per-point index footprint, and
//! allocation counts. Checked-in snapshots (`BENCH_0.json`, …) form
//! the repo's performance trajectory; [`diff`] compares two snapshots
//! so a hot-path PR can prove it bent the curve — and CI can flag one
//! that bent it the wrong way.
//!
//! Two capture modes:
//!
//! * **deterministic** (the checked-in baseline): only quantities that
//!   are pure functions of the pinned seeds — structural counters,
//!   space, allocation totals. Regenerating the file reproduces it
//!   byte-for-byte on any machine.
//! * **timed** (`--timed`): additionally records build wall-time
//!   medians and per-query latency percentiles. Numbers are
//!   machine-dependent; diff them only against the same box.

use std::time::Instant;

use skq_core::dataset::Dataset;
use skq_core::ksi::KsiIndex;
use skq_core::lc::LcKwIndex;
use skq_core::nn_l2::L2NnIndex;
use skq_core::nn_linf::LinfNnIndex;
use skq_core::orp::OrpKwIndex;
use skq_core::persist::Persist;
use skq_core::planner::{Plan, PlannedOrpKw};
use skq_core::rr::RrKwIndex;
use skq_core::sink::CountSink;
use skq_core::sp::SpKwIndex;
use skq_core::srp::SrpKwIndex;
use skq_core::stats::QueryStats;
use skq_core::suite::OrpKwSuite;
use skq_geom::Rect;
use skq_invidx::Keyword;
use skq_workload::queries::QueryGen;
use skq_workload::scenarios;

use crate::json::Json;
use crate::{measure, shuffled_planted};

/// Version stamp of the BENCH document layout.
pub const SCHEMA_VERSION: u64 = 1;

/// The `format` marker written into every BENCH document.
pub const FORMAT: &str = "skq-bench-trajectory";

/// Histogram receiving per-query latencies in timed mode, labelled by
/// problem.
pub const LATENCY_METRIC: &str = "skq_bench_query_latency_microseconds";

/// Reads cumulative allocation counters `(bytes, allocations)`.
///
/// The bench binary installs a counting `#[global_allocator]` and
/// passes a probe reading it; callers without one (unit tests, the
/// harness library) pass `&|| (0, 0)` and the alloc fields record 0.
pub type AllocProbe<'a> = &'a dyn Fn() -> (u64, u64);

/// Problem-size preset for a trajectory run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// Tiny sizes for test-suite smoke runs (seconds, debug build).
    Smoke,
    /// The default: the scale of the checked-in `BENCH_*.json` files,
    /// cheap enough for CI (a few seconds in release).
    Default,
    /// Larger sizes for local investigations.
    Full,
}

impl Scale {
    fn label(self) -> &'static str {
        match self {
            Scale::Smoke => "smoke",
            Scale::Default => "default",
            Scale::Full => "full",
        }
    }

    fn n(self) -> usize {
        match self {
            Scale::Smoke => 1_000,
            Scale::Default => 20_000,
            Scale::Full => 80_000,
        }
    }

    fn queries(self) -> usize {
        match self {
            Scale::Smoke => 16,
            Scale::Default => 48,
            Scale::Full => 96,
        }
    }
}

/// Capture options for [`run`].
#[derive(Clone, Copy, Debug)]
pub struct BenchOptions {
    /// Problem-size preset.
    pub scale: Scale,
    /// When false, omit all wall-clock fields so the output is
    /// byte-stable across runs and machines.
    pub timed: bool,
    /// Build repetitions for the wall-time median in timed mode.
    pub build_reps: usize,
}

impl Default for BenchOptions {
    fn default() -> Self {
        Self {
            scale: Scale::Default,
            timed: false,
            build_reps: 3,
        }
    }
}

const BUILD_K: usize = 2;
/// `k_max` of the default bench suite (the `store` problem and
/// `skq-bench save-suite`).
const SUITE_K_MAX: usize = 3;
const SEED_DATA: u64 = 62023; // the paper's PODS edition, pinned
const SEED_QUERIES: u64 = 0x5eed_0001;

struct Ctx<'a> {
    opts: BenchOptions,
    probe: AllocProbe<'a>,
}

impl Ctx<'_> {
    /// Allocation delta `(bytes, allocations)` across `f`.
    fn alloc_delta<T>(&self, f: impl FnOnce() -> T) -> (T, u64, u64) {
        let (b0, a0) = (self.probe)();
        let value = f();
        let (b1, a1) = (self.probe)();
        (value, b1.saturating_sub(b0), a1.saturating_sub(a0))
    }

    /// Builds once under the allocation probe, recording footprint and
    /// (in timed mode) the wall-time spread of `build_reps` rebuilds.
    fn build_record<T>(
        &self,
        n: usize,
        build: impl Fn() -> T,
        space_words: impl Fn(&T) -> usize,
    ) -> (T, Json) {
        let (index, alloc_bytes, allocs) = self.alloc_delta(&build);
        let words = space_words(&index);
        let mut out = Json::obj();
        out.set("space_words", Json::Num(words as f64));
        out.set(
            "bytes_per_point",
            Json::Num(round3(words as f64 * 8.0 / n as f64)),
        );
        out.set("alloc_bytes", Json::Num(alloc_bytes as f64));
        out.set("allocs", Json::Num(allocs as f64));
        if self.opts.timed {
            let m = measure(self.opts.build_reps, || {
                std::hint::black_box(build());
            });
            out.set("wall_us", measurement_json(&m));
        }
        (index, out)
    }

    /// Runs the query sweep, accumulating structural counters and (in
    /// timed mode) per-query latencies into the `skq-obs` histogram for
    /// `problem`.
    fn query_record(
        &self,
        problem: &'static str,
        queries: usize,
        mut run_one: impl FnMut(usize) -> QueryStats,
    ) -> Json {
        let hist = skq_obs::global().histogram(LATENCY_METRIC, &[("problem", problem)]);
        let mut total = QueryStats::new();
        let (_, alloc_bytes, allocs) = self.alloc_delta(|| {
            for i in 0..queries {
                let t = Instant::now();
                let stats = run_one(i);
                if self.opts.timed {
                    hist.observe(t.elapsed().as_micros() as u64);
                }
                total.absorb(&stats);
            }
        });
        let mut out = Json::obj();
        out.set("queries", Json::Num(queries as f64));
        out.set("nodes_visited", Json::Num(total.nodes_visited as f64));
        out.set(
            "objects_examined",
            Json::Num(total.objects_examined() as f64),
        );
        out.set("postings_scanned", Json::Num(total.list_scans as f64));
        out.set("reported", Json::Num(total.reported as f64));
        out.set("alloc_bytes", Json::Num(alloc_bytes as f64));
        out.set("allocs", Json::Num(allocs as f64));
        if self.opts.timed {
            let mut lat = Json::obj();
            lat.set("p50", Json::Num(hist.p50() as f64));
            lat.set("p90", Json::Num(hist.quantile(0.90) as f64));
            lat.set("p99", Json::Num(hist.p99() as f64));
            lat.set("count", Json::Num(hist.count() as f64));
            out.set("latency_us", lat);
        }
        out
    }
}

fn round3(x: f64) -> f64 {
    (x * 1000.0).round() / 1000.0
}

fn measurement_json(m: &crate::Measurement) -> Json {
    let mut out = Json::obj();
    out.set("min", Json::Num(m.min.as_micros() as f64));
    out.set("median", Json::Num(m.median.as_micros() as f64));
    out.set("p90", Json::Num(m.p90.as_micros() as f64));
    out.set("reps", Json::Num(m.reps as f64));
    out
}

fn problem_header(out: &mut Json, scenario: &str, n: usize, input_size: usize, k: usize) {
    out.set("scenario", Json::Str(scenario.to_string()));
    out.set("n", Json::Num(n as f64));
    out.set("input_size", Json::Num(input_size as f64));
    out.set("k", Json::Num(k as f64));
}

/// Rect + keyword queries shared by the rect-query problems.
fn rect_queries(d: &Dataset, count: usize) -> Vec<(Rect, Vec<Keyword>)> {
    let mut gen = QueryGen::new(d, SEED_QUERIES);
    (0..count)
        .map(|_| {
            let rect = gen.rect(0.1);
            let kws = gen
                .keywords(BUILD_K, 0.3)
                .expect("scenario vocabulary has >= k keywords");
            (rect, kws)
        })
        .collect()
}

fn orp_problem(ctx: &Ctx, d: &Dataset) -> Json {
    let queries = rect_queries(d, ctx.opts.scale.queries());
    let (index, build) = ctx.build_record(
        d.len(),
        || OrpKwIndex::build(d, BUILD_K),
        OrpKwIndex::space_words,
    );
    let query = ctx.query_record("orp", queries.len(), |i| {
        let (rect, kws) = &queries[i];
        index.query_with_stats(rect, kws).1
    });
    let mut out = Json::obj();
    problem_header(&mut out, "city", d.len(), d.input_size(), BUILD_K);
    out.set("build", build);
    out.set("query", query);
    out
}

fn rr_problem(ctx: &Ctx, d: &Dataset) -> Json {
    // Inflate each point into a small axis-aligned box: the
    // rect-vs-rect regime on the same city scenario.
    let side = 150.0;
    let boxes: Vec<(Rect, Vec<Keyword>)> = (0..d.len())
        .map(|i| {
            let p = d.point(i);
            let lo: Vec<f64> = p.coords().to_vec();
            let hi: Vec<f64> = p.coords().iter().map(|c| c + side).collect();
            (Rect::new(&lo, &hi), d.doc(i).keywords().to_vec())
        })
        .collect();
    let input_size: usize = boxes.iter().map(|(_, kws)| 1 + kws.len()).sum();
    let queries = rect_queries(d, ctx.opts.scale.queries());
    let (index, build) = ctx.build_record(
        d.len(),
        || RrKwIndex::build(&boxes, BUILD_K),
        RrKwIndex::space_words,
    );
    let query = ctx.query_record("rr", queries.len(), |i| {
        let (rect, kws) = &queries[i];
        index.query_with_stats(rect, kws).1
    });
    let mut out = Json::obj();
    problem_header(&mut out, "city", d.len(), input_size, BUILD_K);
    out.set("build", build);
    out.set("query", query);
    out
}

fn lc_problem(ctx: &Ctx, d: &Dataset) -> Json {
    let count = ctx.opts.scale.queries();
    let mut gen = QueryGen::new(d, SEED_QUERIES);
    let queries: Vec<_> = (0..count)
        .map(|_| {
            let poly = gen.halfspaces(1);
            let kws = gen.keywords(BUILD_K, 0.3).expect("vocabulary");
            (poly, kws)
        })
        .collect();
    let (index, build) = ctx.build_record(
        d.len(),
        || LcKwIndex::build(d, BUILD_K),
        LcKwIndex::space_words,
    );
    let query = ctx.query_record("lc", queries.len(), |i| {
        let (poly, kws) = &queries[i];
        index.query_with_stats(poly.halfspaces(), kws).1
    });
    let mut out = Json::obj();
    problem_header(&mut out, "city", d.len(), d.input_size(), BUILD_K);
    out.set("build", build);
    out.set("query", query);
    out
}

fn sp_problem(ctx: &Ctx, d: &Dataset) -> Json {
    let count = ctx.opts.scale.queries();
    let mut gen = QueryGen::new(d, SEED_QUERIES);
    let queries: Vec<_> = (0..count)
        .map(|_| {
            let poly = gen.halfspaces(2);
            let kws = gen.keywords(BUILD_K, 0.3).expect("vocabulary");
            (poly, kws)
        })
        .collect();
    let (index, build) = ctx.build_record(
        d.len(),
        || SpKwIndex::build(d, BUILD_K),
        SpKwIndex::space_words,
    );
    let query = ctx.query_record("sp", queries.len(), |i| {
        let (poly, kws) = &queries[i];
        index.query_with_stats(poly, kws).1
    });
    let mut out = Json::obj();
    problem_header(&mut out, "city", d.len(), d.input_size(), BUILD_K);
    out.set("build", build);
    out.set("query", query);
    out
}

fn srp_problem(ctx: &Ctx, d: &Dataset) -> Json {
    let count = ctx.opts.scale.queries();
    let mut gen = QueryGen::new(d, SEED_QUERIES);
    let queries: Vec<_> = (0..count)
        .map(|_| {
            let ball = gen.ball(0.1);
            let kws = gen.keywords(BUILD_K, 0.3).expect("vocabulary");
            (ball, kws)
        })
        .collect();
    let (index, build) = ctx.build_record(
        d.len(),
        || SrpKwIndex::build(d, BUILD_K),
        SrpKwIndex::space_words,
    );
    let query = ctx.query_record("srp", queries.len(), |i| {
        let (ball, kws) = &queries[i];
        index.query_with_stats(ball, kws).1
    });
    let mut out = Json::obj();
    problem_header(&mut out, "city", d.len(), d.input_size(), BUILD_K);
    out.set("build", build);
    out.set("query", query);
    out
}

fn nn_problem(
    ctx: &Ctx,
    d: &Dataset,
    problem: &'static str,
    build_index: impl Fn() -> NnEngine,
) -> Json {
    let count = ctx.opts.scale.queries();
    let mut gen = QueryGen::new(d, SEED_QUERIES);
    let queries: Vec<_> = (0..count)
        .map(|_| {
            let p = gen.integer_point();
            let kws = gen.keywords(BUILD_K, 0.3).expect("vocabulary");
            (p, kws)
        })
        .collect();
    let (index, build) = ctx.build_record(d.len(), &build_index, NnEngine::space_words);
    let query = ctx.query_record(problem, queries.len(), |i| {
        let (p, kws) = &queries[i];
        index.query_with_stats(p, 8, kws)
    });
    let mut out = Json::obj();
    problem_header(&mut out, "city", d.len(), d.input_size(), BUILD_K);
    out.set("build", build);
    out.set("query", query);
    out
}

/// The two NN engines behind one dispatch, so [`nn_problem`] is shared.
enum NnEngine {
    Linf(LinfNnIndex),
    L2(L2NnIndex),
}

impl NnEngine {
    fn space_words(&self) -> usize {
        match self {
            NnEngine::Linf(i) => i.space_words(),
            NnEngine::L2(i) => i.space_words(),
        }
    }

    fn query_with_stats(&self, p: &skq_geom::Point, t: usize, kws: &[Keyword]) -> QueryStats {
        match self {
            NnEngine::Linf(i) => i.query_with_stats(p, t, kws).1,
            NnEngine::L2(i) => i.query_with_stats(p, t, kws).1,
        }
    }
}

/// The persistence-tier problem: queries answered by an
/// [`OrpKwSuite`] that either was just built (`mode: "built"`, the
/// checked-in baseline) or came off a `skq-store` snapshot
/// (`mode: "loaded"`, the CI store-smoke run). The snapshot format is
/// byte-stable, so `snapshot_bytes` and every query counter must be
/// identical between the two modes — `skq-bench diff --threshold 0`
/// against `BENCH_0.json` proves a loaded suite answers exactly like
/// the in-memory build. `load_micros` (wall clock) is recorded only in
/// loaded runs, keeping the baseline deterministic.
fn store_problem(ctx: &Ctx, d: &Dataset, snapshot: Option<&[u8]>) -> Json {
    let queries = rect_queries(d, ctx.opts.scale.queries());
    let mut out = Json::obj();
    problem_header(&mut out, "city", d.len(), d.input_size(), SUITE_K_MAX);
    let suite = match snapshot {
        Some(bytes) => {
            let t = Instant::now();
            let suite = OrpKwSuite::try_load(bytes).expect("loading the suite snapshot");
            out.set("load_micros", Json::Num(t.elapsed().as_micros() as f64));
            out.set("mode", Json::Str("loaded".to_string()));
            suite
        }
        None => {
            let suite = OrpKwSuite::build(d, SUITE_K_MAX);
            out.set("mode", Json::Str("built".to_string()));
            suite
        }
    };
    // Re-encoding the loaded suite must reproduce the built suite's
    // size exactly (byte-stable format); a drift here fails the CI
    // zero-threshold diff.
    let bytes = suite.to_bytes().expect("suite snapshot encoding");
    out.set("snapshot_bytes", Json::Num(bytes.len() as f64));
    out.set("space_words", Json::Num(suite.space_words() as f64));
    let query = ctx.query_record("store", queries.len(), |i| {
        let (rect, kws) = &queries[i];
        let mut sink = CountSink::new();
        let mut stats = QueryStats::new();
        let _ = suite.query_sink(rect, kws, &mut sink, &mut stats);
        stats
    });
    out.set("query", query);
    out
}

/// Snapshot bytes of the default bench suite at `scale` (the
/// `skq-bench save-suite` payload): the pinned city scenario indexed
/// for `k ∈ 2..=3`, encoded with `skq_core::persist`.
pub fn suite_snapshot(scale: Scale) -> Vec<u8> {
    let d = scenarios::city(scale.n(), SEED_DATA);
    OrpKwSuite::build(&d, SUITE_K_MAX)
        .to_bytes()
        .expect("suite snapshot encoding")
}

fn ksi_problem(ctx: &Ctx) -> Json {
    let n = ctx.opts.scale.n();
    let inst = shuffled_planted(n, 8, BUILD_K, (n / 100).max(4), 6, SEED_DATA);
    let input_size: usize = inst.docs.iter().map(|doc| doc.keywords().len()).sum();
    let (index, build) = ctx.build_record(
        n,
        || KsiIndex::build(&inst.docs, BUILD_K),
        KsiIndex::space_words,
    );
    // One planted query repeated: k-SI query cost is a function of the
    // sets, so the sweep exercises the steady-state path.
    let query = ctx.query_record("ksi", ctx.opts.scale.queries(), |_| {
        index.intersect_with_stats(&inst.query).1
    });
    let mut out = Json::obj();
    problem_header(&mut out, "shuffled_planted", n, input_size, BUILD_K);
    out.set("build", build);
    out.set("query", query);
    out
}

fn planner_problem(ctx: &Ctx, d: &Dataset) -> Json {
    let queries = rect_queries(d, ctx.opts.scale.queries());
    // The planner does not expose a space accessor (it owns an engine
    // plus the two naive baselines); footprint is tracked through the
    // engines' own problems, so record 0 words here.
    let (planner, build) = ctx.build_record(d.len(), || PlannedOrpKw::build(d, BUILD_K), |_| 0);
    let mut chosen = [0u64; 3];
    let query = ctx.query_record("planner", queries.len(), |i| {
        let (rect, kws) = &queries[i];
        let mut sink = CountSink::new();
        let mut stats = QueryStats::new();
        let plan = planner.query_sink(rect, kws, &mut sink, &mut stats);
        chosen[match plan {
            Plan::KeywordsOnly => 0,
            Plan::StructuredOnly => 1,
            Plan::Framework => 2,
        }] += 1;
        stats
    });
    let mut plans = Json::obj();
    plans.set("keywords_only", Json::Num(chosen[0] as f64));
    plans.set("structured_only", Json::Num(chosen[1] as f64));
    plans.set("framework", Json::Num(chosen[2] as f64));
    let mut out = Json::obj();
    problem_header(&mut out, "city", d.len(), d.input_size(), BUILD_K);
    out.set("tier", Json::Str(planner.tier().label().to_string()));
    out.set("build", build);
    out.set("query", query);
    out.set("plans", plans);
    out
}

fn batch_problem(ctx: &Ctx, d: &Dataset, index: &OrpKwIndex) -> Json {
    use skq_core::batch::{run_batch, BatchQuery};
    let batch: Vec<BatchQuery> = rect_queries(d, ctx.opts.scale.queries())
        .into_iter()
        .map(|(rect, keywords)| BatchQuery { rect, keywords })
        .collect();
    let mut out = Json::obj();
    problem_header(&mut out, "city", d.len(), d.input_size(), BUILD_K);
    out.set("batch_size", Json::Num(batch.len() as f64));
    out.set("threads", Json::Num(2.0));
    let (results, alloc_bytes, allocs) = ctx.alloc_delta(|| run_batch(index, &batch, 2));
    out.set(
        "results_total",
        Json::Num(results.iter().map(Vec::len).sum::<usize>() as f64),
    );
    out.set("alloc_bytes", Json::Num(alloc_bytes as f64));
    out.set("allocs", Json::Num(allocs as f64));
    if ctx.opts.timed {
        let m = measure(ctx.opts.build_reps, || {
            std::hint::black_box(run_batch(index, &batch, 2));
        });
        out.set("wall_us", measurement_json(&m));
    }
    out
}

/// Runs the full trajectory capture and returns the BENCH document.
///
/// `probe` reads cumulative allocation counters; see [`AllocProbe`].
pub fn run(opts: BenchOptions, probe: AllocProbe) -> Json {
    run_with_snapshot(opts, probe, None)
}

/// Like [`run`], but when `snapshot` is given the `store` problem
/// loads its suite from those bytes (recording `load_micros`) instead
/// of building it — the fresh-process half of the CI store-smoke
/// check.
pub fn run_with_snapshot(opts: BenchOptions, probe: AllocProbe, snapshot: Option<&[u8]>) -> Json {
    let ctx = Ctx { opts, probe };
    // Warm up lazily-initialized global state (metric series, the query
    // log, keyword tables) on a tiny instance of every problem so those
    // one-time allocations are not charged to the measured sections.
    {
        let zero_probe = || (0u64, 0u64);
        let warm_ctx = Ctx {
            opts: BenchOptions {
                scale: Scale::Smoke,
                timed: false,
                build_reps: 1,
            },
            probe: &zero_probe,
        };
        let wd = scenarios::city(400, SEED_DATA);
        let _ = orp_problem(&warm_ctx, &wd);
        let _ = rr_problem(&warm_ctx, &wd);
        let _ = lc_problem(&warm_ctx, &wd);
        let _ = sp_problem(&warm_ctx, &wd);
        let _ = srp_problem(&warm_ctx, &wd);
        let _ = nn_problem(&warm_ctx, &wd, "nn_linf", || {
            NnEngine::Linf(LinfNnIndex::build(&wd, BUILD_K))
        });
        let _ = nn_problem(&warm_ctx, &wd, "nn_l2", || {
            NnEngine::L2(L2NnIndex::build(&wd, BUILD_K))
        });
        let _ = ksi_problem(&warm_ctx);
        let _ = planner_problem(&warm_ctx, &wd);
        let wi = OrpKwIndex::build(&wd, BUILD_K);
        let _ = batch_problem(&warm_ctx, &wd, &wi);
        let _ = store_problem(&warm_ctx, &wd, None);
    }

    let n = opts.scale.n();
    let d = scenarios::city(n, SEED_DATA);

    let mut problems = Json::obj();
    problems.set("orp", orp_problem(&ctx, &d));
    problems.set("rr", rr_problem(&ctx, &d));
    problems.set("lc", lc_problem(&ctx, &d));
    problems.set("sp", sp_problem(&ctx, &d));
    problems.set("srp", srp_problem(&ctx, &d));
    problems.set(
        "nn_linf",
        nn_problem(&ctx, &d, "nn_linf", || {
            NnEngine::Linf(LinfNnIndex::build(&d, BUILD_K))
        }),
    );
    problems.set(
        "nn_l2",
        nn_problem(&ctx, &d, "nn_l2", || {
            NnEngine::L2(L2NnIndex::build(&d, BUILD_K))
        }),
    );
    problems.set("ksi", ksi_problem(&ctx));
    problems.set("planner", planner_problem(&ctx, &d));
    let orp_index = OrpKwIndex::build(&d, BUILD_K);
    problems.set("batch", batch_problem(&ctx, &d, &orp_index));
    problems.set("store", store_problem(&ctx, &d, snapshot));

    let mut doc = Json::obj();
    doc.set("format", Json::Str(FORMAT.to_string()));
    doc.set("schema_version", Json::Num(SCHEMA_VERSION as f64));
    doc.set("scale", Json::Str(opts.scale.label().to_string()));
    doc.set("deterministic", Json::Bool(!opts.timed));
    doc.set("seed_data", Json::Num(SEED_DATA as f64));
    doc.set("seed_queries", Json::Num(SEED_QUERIES as f64));
    doc.set("problems", problems);
    doc
}

/// Checks that `doc` is a structurally valid BENCH document.
///
/// # Errors
///
/// A one-line description of the first problem found.
pub fn validate(doc: &Json) -> Result<(), String> {
    if doc.get("format").and_then(Json::as_str) != Some(FORMAT) {
        return Err(format!("format marker is not {FORMAT:?}"));
    }
    let version = doc
        .get("schema_version")
        .and_then(Json::as_f64)
        .ok_or("missing schema_version")?;
    if version != SCHEMA_VERSION as f64 {
        return Err(format!(
            "schema_version {version} (this build reads {SCHEMA_VERSION})"
        ));
    }
    let problems = doc
        .get("problems")
        .and_then(Json::as_obj)
        .ok_or("missing problems object")?;
    if problems.is_empty() {
        return Err("problems object is empty".to_string());
    }
    for (name, p) in problems {
        for key in ["scenario", "n", "input_size", "k"] {
            if p.get(key).is_none() {
                return Err(format!("problem {name:?} lacks {key:?}"));
            }
        }
        if name == "batch" {
            if p.get("results_total").and_then(Json::as_f64).is_none() {
                return Err("problem \"batch\" lacks results_total".to_string());
            }
            continue;
        }
        if name == "store" {
            // The store problem has no build record — its suite either
            // came off a snapshot or the build is covered by `orp`.
            if p.get("snapshot_bytes").and_then(Json::as_f64).is_none() {
                return Err("problem \"store\" lacks snapshot_bytes".to_string());
            }
        } else {
            let build = p
                .get("build")
                .ok_or_else(|| format!("problem {name:?} lacks build"))?;
            for key in ["space_words", "bytes_per_point", "alloc_bytes", "allocs"] {
                if build.get(key).and_then(Json::as_f64).is_none() {
                    return Err(format!("problem {name:?} build lacks {key:?}"));
                }
            }
        }
        let query = p
            .get("query")
            .ok_or_else(|| format!("problem {name:?} lacks query"))?;
        for key in [
            "queries",
            "nodes_visited",
            "objects_examined",
            "postings_scanned",
            "reported",
        ] {
            if query.get(key).and_then(Json::as_f64).is_none() {
                return Err(format!("problem {name:?} query lacks {key:?}"));
            }
        }
    }
    Ok(())
}

/// One compared metric in a [`DiffReport`].
#[derive(Clone, Debug)]
pub struct DiffLine {
    /// Problem name (`"orp"`, `"batch"`, …).
    pub problem: String,
    /// Dotted metric path within the problem (`"build.space_words"`).
    pub metric: String,
    /// Baseline value.
    pub a: f64,
    /// Candidate value.
    pub b: f64,
    /// Relative change in percent (`(b - a) / a * 100`).
    pub change_pct: f64,
    /// Whether the change crossed the threshold, and which way.
    pub verdict: Verdict,
}

/// Classification of one metric change (all metrics lower-is-better).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// Within the threshold either way.
    Ok,
    /// Decreased past the threshold.
    Improved,
    /// Increased past the threshold.
    Regressed,
}

/// Result of comparing two BENCH documents with [`diff`].
#[derive(Clone, Debug, Default)]
pub struct DiffReport {
    /// Every compared metric, in document order.
    pub lines: Vec<DiffLine>,
    /// Problems skipped because their workload context (scenario, `n`,
    /// `k`, query count) differs between the two documents.
    pub incomparable: Vec<String>,
    /// Number of [`Verdict::Regressed`] lines.
    pub regressions: usize,
    /// Number of [`Verdict::Improved`] lines.
    pub improvements: usize,
}

/// Keys describing the workload rather than its cost: compared for
/// equality (a mismatch makes the problem incomparable), never rated.
const CONTEXT_KEYS: &[&str] = &[
    "scenario",
    "n",
    "input_size",
    "k",
    "queries",
    "reps",
    "count",
    "batch_size",
    "threads",
];

fn flatten(prefix: &str, v: &Json, out: &mut Vec<(String, f64)>) {
    match v {
        Json::Num(n) => out.push((prefix.to_string(), *n)),
        Json::Obj(entries) => {
            for (k, v) in entries {
                if CONTEXT_KEYS.contains(&k.as_str()) {
                    continue;
                }
                let path = if prefix.is_empty() {
                    k.clone()
                } else {
                    format!("{prefix}.{k}")
                };
                flatten(&path, v, out);
            }
        }
        _ => {}
    }
}

fn context_matches(a: &Json, b: &Json) -> bool {
    CONTEXT_KEYS.iter().all(|&key| {
        let (va, vb) = (a.get(key), b.get(key));
        match (va, vb) {
            (None, None) => true,
            (Some(x), Some(y)) => x == y,
            _ => false,
        }
    })
}

/// Compares candidate `b` against baseline `a`: every numeric metric
/// present in both documents, rated against `threshold_pct`.
///
/// # Errors
///
/// When either document fails [`validate`].
pub fn diff(a: &Json, b: &Json, threshold_pct: f64) -> Result<DiffReport, String> {
    validate(a).map_err(|e| format!("baseline: {e}"))?;
    validate(b).map_err(|e| format!("candidate: {e}"))?;
    let pa = a.get("problems").and_then(Json::as_obj).unwrap_or(&[]);
    let mut report = DiffReport::default();
    for (name, prob_a) in pa {
        let Some(prob_b) = b.get("problems").and_then(|p| p.get(name)) else {
            report.incomparable.push(name.clone());
            continue;
        };
        if !context_matches(prob_a, prob_b) {
            report.incomparable.push(name.clone());
            continue;
        }
        let mut metrics_a = Vec::new();
        flatten("", prob_a, &mut metrics_a);
        let mut metrics_b = Vec::new();
        flatten("", prob_b, &mut metrics_b);
        for (path, va) in metrics_a {
            let Some((_, vb)) = metrics_b.iter().find(|(p, _)| *p == path) else {
                continue;
            };
            let change_pct = if va == 0.0 {
                if *vb == 0.0 {
                    0.0
                } else {
                    100.0
                }
            } else {
                (vb - va) / va * 100.0
            };
            let verdict = if change_pct > threshold_pct {
                report.regressions += 1;
                Verdict::Regressed
            } else if change_pct < -threshold_pct {
                report.improvements += 1;
                Verdict::Improved
            } else {
                Verdict::Ok
            };
            report.lines.push(DiffLine {
                problem: name.clone(),
                metric: path,
                a: va,
                b: *vb,
                change_pct,
                verdict,
            });
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smoke_doc() -> Json {
        run(
            BenchOptions {
                scale: Scale::Smoke,
                timed: false,
                build_reps: 1,
            },
            &|| (0, 0),
        )
    }

    #[test]
    fn diff_of_identical_docs_reports_zero_regressions() {
        let doc = smoke_doc();
        let report = diff(&doc, &doc, 10.0).unwrap();
        assert_eq!(report.regressions, 0);
        assert_eq!(report.improvements, 0);
        assert!(report.incomparable.is_empty());
        assert!(!report.lines.is_empty());
        assert!(report.lines.iter().all(|l| l.change_pct == 0.0));
    }

    #[test]
    fn smoke_doc_validates_and_roundtrips() {
        let doc = smoke_doc();
        validate(&doc).unwrap();
        let text = doc.render_pretty(2);
        let back = Json::parse(&text).unwrap();
        assert_eq!(back, doc);
        validate(&back).unwrap();
    }

    #[test]
    fn diff_flags_a_regression_and_context_mismatch() {
        let doc = smoke_doc();
        let mut worse = doc.clone();
        // Inflate one counter well past the threshold.
        {
            let q = worse
                .get_mut("problems")
                .and_then(|p| p.get_mut("orp"))
                .and_then(|p| p.get_mut("query"))
                .unwrap();
            let nodes = q.get("nodes_visited").unwrap().as_f64().unwrap();
            q.set("nodes_visited", Json::Num(nodes * 10.0));
        }
        // Change another problem's workload context: incomparable.
        worse
            .get_mut("problems")
            .and_then(|p| p.get_mut("rr"))
            .unwrap()
            .set("n", Json::Num(999_999.0));
        let report = diff(&doc, &worse, 10.0).unwrap();
        assert!(report.regressions >= 1, "inflated counter must be flagged");
        let line = report
            .lines
            .iter()
            .find(|l| l.problem == "orp" && l.metric == "query.nodes_visited")
            .unwrap();
        assert_eq!(line.verdict, Verdict::Regressed);
        assert!(line.change_pct > 100.0);
        assert_eq!(report.incomparable, vec!["rr".to_string()]);
        assert!(report.lines.iter().all(|l| l.problem != "rr"));
    }

    #[test]
    fn validate_rejects_malformed_documents() {
        assert!(validate(&Json::obj()).is_err());
        let mut doc = Json::obj();
        doc.set("format", Json::Str(FORMAT.to_string()));
        doc.set("schema_version", Json::Num(99.0));
        assert!(validate(&doc).is_err());
    }
}
