//! A minimal JSON value type, parser, and writer.
//!
//! The workspace is deliberately std-only (no serde), but the bench
//! trajectory files (`BENCH_*.json`) and the chrome-trace exports need
//! to be written *and* read back — `bench diff` compares two trajectory
//! files, and the integration tests validate exported traces. This
//! module implements exactly the subset needed: the full JSON data
//! model with objects kept in **insertion order**, so a document
//! serializes byte-identically run after run (the byte-stability
//! requirement on `BENCH_0.json`).
//!
//! Numbers are held as `f64`; every integer the harness records (event
//! counts, allocation bytes) is far below 2^53, so round-tripping is
//! exact, and integral values are rendered without a decimal point.

use std::fmt::Write as _;

/// A JSON value. Object keys keep insertion order.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (integral values render without a decimal point).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An empty object.
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Inserts (or replaces) `key` in an object; panics on non-objects.
    pub fn set(&mut self, key: &str, value: Json) {
        let Json::Obj(entries) = self else {
            panic!("Json::set on non-object");
        };
        if let Some(e) = entries.iter_mut().find(|(k, _)| k == key) {
            e.1 = value;
        } else {
            entries.push((key.to_string(), value));
        }
    }

    /// Object field lookup (`None` on non-objects and missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Mutable object field lookup (`None` on non-objects and missing
    /// keys).
    pub fn get_mut(&mut self, key: &str) -> Option<&mut Json> {
        match self {
            Json::Obj(entries) => entries.iter_mut().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a string, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The object entries in insertion order, if it is an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(entries) => Some(entries),
            _ => None,
        }
    }

    /// Serializes compactly (no whitespace), deterministically.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Serializes with `indent`-space indentation and a trailing
    /// newline — the stable on-disk format of `BENCH_*.json`.
    pub fn render_pretty(&self, indent: usize) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(indent), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        let (nl, pad, pad_in) = match indent {
            Some(w) => ("\n", " ".repeat(w * depth), " ".repeat(w * (depth + 1))),
            None => ("", String::new(), String::new()),
        };
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::Num(n) => write_num(out, *n),
            Json::Str(s) => write_str(out, s),
            Json::Arr(items) if items.is_empty() => out.push_str("[]"),
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad_in);
                    v.write(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push(']');
            }
            Json::Obj(entries) if entries.is_empty() => out.push_str("{}"),
            Json::Obj(entries) => {
                out.push('{');
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad_in);
                    write_str(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push('}');
            }
        }
    }

    /// Parses a JSON document (the full text must be one value).
    ///
    /// # Errors
    ///
    /// A human-readable message with the byte offset of the problem.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(value)
    }
}

fn write_num(out: &mut String, n: f64) {
    if !n.is_finite() {
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() < 9e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), String> {
    if *pos < bytes.len() && bytes[*pos] == b {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", b as char, *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => {
            *pos += 1;
            let mut entries = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(entries));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, b':')?;
                let value = parse_value(bytes, pos)?;
                entries.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(entries));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
                }
            }
        }
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_lit(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("invalid number {text:?} at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                            16,
                        )
                        .map_err(|e| e.to_string())?;
                        // Surrogate pairs are not produced by our
                        // writers; map lone surrogates to U+FFFD.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("invalid escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (the input is a &str, so
                // boundaries are valid).
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_document() {
        let text = r#"{"a":1,"b":[true,null,"x\ny"],"c":{"d":2.5,"e":-3}}"#;
        let v = Json::parse(text).unwrap();
        assert_eq!(v.render(), text);
        assert_eq!(v.get("a").unwrap().as_f64(), Some(1.0));
        assert_eq!(v.get("c").unwrap().get("d").unwrap().as_f64(), Some(2.5));
        assert_eq!(v.get("b").unwrap().as_arr().unwrap().len(), 3);
    }

    #[test]
    fn object_keys_keep_insertion_order() {
        let mut o = Json::obj();
        o.set("zebra", Json::Num(1.0));
        o.set("alpha", Json::Num(2.0));
        o.set("zebra", Json::Num(3.0));
        assert_eq!(o.render(), r#"{"zebra":3,"alpha":2}"#);
    }

    #[test]
    fn integral_floats_render_without_point() {
        assert_eq!(Json::Num(42.0).render(), "42");
        assert_eq!(Json::Num(0.5).render(), "0.5");
        assert_eq!(Json::Num(-7.0).render(), "-7");
    }

    #[test]
    fn pretty_rendering_is_reparseable() {
        let mut o = Json::obj();
        o.set("list", Json::Arr(vec![Json::Num(1.0), Json::Num(2.0)]));
        o.set("nested", {
            let mut n = Json::obj();
            n.set("k", Json::Str("v".to_string()));
            n
        });
        let pretty = o.render_pretty(2);
        assert!(pretty.ends_with('\n'));
        assert_eq!(Json::parse(&pretty).unwrap(), o);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("12 34").is_err());
        assert!(Json::parse("\"unterminated").is_err());
    }

    #[test]
    fn escapes_roundtrip() {
        let v = Json::Str("quote\" slash\\ tab\t nl\n".to_string());
        assert_eq!(Json::parse(&v.render()).unwrap(), v);
    }
}
