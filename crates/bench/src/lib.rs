//! Shared machinery for the experiment harness and criterion benches.
//!
//! The paper has no empirical section; its evaluation artifacts are the
//! bound matrix of Table 1, the supporting lemmas/propositions, and the
//! structural Figures 1–2. The harness (`src/bin/harness.rs`)
//! regenerates an empirical counterpart for each — see the experiment
//! index in `DESIGN.md` and the recorded results in `EXPERIMENTS.md`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod json;
pub mod trajectory;

use std::time::{Duration, Instant};

use rand::{rngs::StdRng, Rng, SeedableRng};
use skq_core::dataset::Dataset;
use skq_geom::Point;
use skq_invidx::Keyword;
use skq_workload::ksi::planted_instance;

/// Wall-clock summary of repeated runs of a closure (see [`measure`]).
///
/// Harness tables print [`median`](Self::median) (the robust central
/// tendency the tables always used); the bench trajectory records all
/// three order statistics plus the rep count.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Measurement {
    /// Fastest observed run.
    pub min: Duration,
    /// Median run.
    pub median: Duration,
    /// 90th-percentile run (the slowest run for `reps < 10`).
    pub p90: Duration,
    /// Number of repetitions measured.
    pub reps: usize,
}

/// Wall-clock time of `reps` runs of `f`, summarized as a
/// [`Measurement`].
pub fn measure(reps: usize, mut f: impl FnMut()) -> Measurement {
    assert!(reps >= 1);
    let mut samples: Vec<Duration> = (0..reps)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed()
        })
        .collect();
    samples.sort_unstable();
    let p90 = ((reps as f64 * 0.9).ceil() as usize).clamp(1, reps) - 1;
    Measurement {
        min: samples[0],
        median: samples[reps / 2],
        p90: samples[p90],
        reps,
    }
}

/// Ordinary-least-squares slope of `ln y` against `ln x` — the fitted
/// polynomial exponent of a scaling curve. Pairs with non-positive
/// coordinates are skipped.
pub fn fit_exponent(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len());
    let pts: Vec<(f64, f64)> = xs
        .iter()
        .zip(ys)
        .filter(|(&x, &y)| x > 0.0 && y > 0.0)
        .map(|(&x, &y)| (x.ln(), y.ln()))
        .collect();
    assert!(pts.len() >= 2, "need at least two positive points");
    let n = pts.len() as f64;
    let sx: f64 = pts.iter().map(|p| p.0).sum();
    let sy: f64 = pts.iter().map(|p| p.1).sum();
    let sxx: f64 = pts.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = pts.iter().map(|p| p.0 * p.1).sum();
    (n * sxy - sx * sy) / (n * sxx - sx * sx)
}

/// Pretty-prints a markdown table.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Self {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header count).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len());
        self.rows.push(cells);
    }

    /// Renders the table as markdown.
    pub fn print(&self) {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let fmt_row = |cells: &[String]| {
            let body: Vec<String> = cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>w$}", c, w = widths[i]))
                .collect();
            format!("| {} |", body.join(" | "))
        };
        println!("{}", fmt_row(&self.headers));
        let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        println!("{}", fmt_row(&sep));
        for row in &self.rows {
            println!("{}", fmt_row(row));
        }
    }
}

/// Formats a duration in microseconds with 1 decimal.
pub fn us(d: Duration) -> String {
    format!("{:.1}", d.as_secs_f64() * 1e6)
}

/// A spatial dataset with *planted* keyword co-occurrence: `k`
/// designated keywords each appear in a constant fraction of the
/// documents, but all `k` co-occur in exactly `planted` objects (spread
/// uniformly in space). This pins `OUT` for full-space queries while
/// keeping both naive baselines expensive — the regime Table 1's bounds
/// speak about.
pub struct PlantedSpatial {
    /// The dataset (points + documents).
    pub dataset: Dataset,
    /// The `k` designated query keywords.
    pub query_keywords: Vec<Keyword>,
    /// Ids of the planted objects (the full-space query answer).
    pub expected: Vec<u32>,
}

/// Builds a [`PlantedSpatial`] instance with `n` objects in `[0,
/// extent]^dim`.
pub fn planted_spatial(
    n: usize,
    dim: usize,
    k: usize,
    planted: usize,
    extent: f64,
    seed: u64,
) -> PlantedSpatial {
    let inst = planted_instance(n, (3 * k).max(8), k, planted, 6, seed);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed);
    let points: Vec<Point> = (0..n)
        .map(|_| {
            let coords: Vec<f64> = (0..dim)
                .map(|_| rng.gen_range(0.0..extent).round())
                .collect();
            Point::new(&coords)
        })
        .collect();
    let dataset = Dataset::new(points, inst.docs);
    PlantedSpatial {
        dataset,
        query_keywords: inst.query,
        expected: inst.expected,
    }
}

/// A planted k-SI instance with *shuffled* element ids.
///
/// `planted_instance` places the intersection at ids `0..planted`,
/// which a 1-dimensional tree over ids isolates in a single subtree —
/// the framework's best case. Shuffling spreads the intersection
/// uniformly, the honest (and worst-case) layout for measuring query
/// cost.
pub struct ShuffledKsi {
    /// Per-element membership documents.
    pub docs: Vec<skq_invidx::Document>,
    /// The designated query sets.
    pub query: Vec<Keyword>,
    /// The (sorted) intersection of the designated sets.
    pub expected: Vec<u32>,
}

/// Builds a [`ShuffledKsi`] instance.
pub fn shuffled_planted(
    n: usize,
    num_sets: usize,
    k: usize,
    planted: usize,
    max_membership: usize,
    seed: u64,
) -> ShuffledKsi {
    let inst = planted_instance(n, num_sets, k, planted, max_membership, seed);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x7a3f);
    let mut perm: Vec<usize> = (0..n).collect();
    // Fisher–Yates.
    for i in (1..n).rev() {
        let j = rng.gen_range(0..=i);
        perm.swap(i, j);
    }
    // perm[old] = new position.
    let mut docs = vec![None; n];
    for (old, d) in inst.docs.into_iter().enumerate() {
        docs[perm[old]] = Some(d);
    }
    let mut expected: Vec<u32> = inst
        .expected
        .iter()
        .map(|&e| perm[e as usize] as u32)
        .collect();
    expected.sort_unstable();
    ShuffledKsi {
        docs: docs.into_iter().map(Option::unwrap).collect(),
        query: inst.query,
        expected,
    }
}

/// A spatial dataset whose `k` designated keywords each have frequency
/// about `frac · N^{1−1/k}` — *small at the root* for `frac < 1` —
/// with an empty joint intersection. This is the worst case of the
/// paper's `O(N^{1−1/k})` emptiness bound: the query must scan a
/// materialized list of that length (no bit-table shortcut applies),
/// so query time scales as `N^{1−1/k}` exactly.
pub fn borderline_spatial(n: usize, dim: usize, k: usize, frac: f64, seed: u64) -> PlantedSpatial {
    let mut rng = StdRng::seed_from_u64(seed);
    let filler_vocab = 1000u32;
    // Build docs: filler keywords k..k+vocab; designated keywords 0..k.
    let mut docs: Vec<Vec<Keyword>> = (0..n)
        .map(|_| {
            (0..rng.gen_range(2..6))
                .map(|_| k as u32 + rng.gen_range(0..filler_vocab))
                .collect()
        })
        .collect();
    let approx_n: f64 = docs.iter().map(|d| d.len() as f64).sum::<f64>() + 1.0;
    let target = (frac * approx_n.powf(1.0 - 1.0 / k as f64)) as usize;
    // Assign each designated keyword to `target` objects; partition the
    // object space so the joint intersection is empty (each object gets
    // at most one designated keyword).
    let mut ids: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = rng.gen_range(0..=i);
        ids.swap(i, j);
    }
    assert!(k * target <= n, "n too small for the borderline frequency");
    for w in 0..k {
        for &o in &ids[w * target..(w + 1) * target] {
            docs[o].push(w as u32);
        }
    }
    let points: Vec<Point> = (0..n)
        .map(|_| {
            let coords: Vec<f64> = (0..dim)
                .map(|_| rng.gen_range(0.0..1e6f64).round())
                .collect();
            Point::new(&coords)
        })
        .collect();
    let dataset = Dataset::new(
        points,
        docs.into_iter().map(skq_invidx::Document::new).collect(),
    );
    PlantedSpatial {
        dataset,
        query_keywords: (0..k as u32).collect(),
        expected: Vec::new(),
    }
}

/// A spatial dataset where *every* object contains the two query
/// keywords (plus noise): keyword pruning never fires, exposing the
/// bare geometric crossing structure of the tree (used by experiment
/// F1 to measure Lemma 10's crossing sensitivity).
pub fn omnipresent_spatial(n: usize, dim: usize, seed: u64) -> PlantedSpatial {
    let mut rng = StdRng::seed_from_u64(seed);
    let parts: Vec<(Point, Vec<Keyword>)> = (0..n)
        .map(|_| {
            let coords: Vec<f64> = (0..dim).map(|_| rng.gen_range(0.0..1e6)).collect();
            let mut doc = vec![0u32, 1u32];
            for _ in 0..rng.gen_range(0..3) {
                doc.push(2 + rng.gen_range(0..50));
            }
            (Point::new(&coords), doc)
        })
        .collect();
    PlantedSpatial {
        dataset: Dataset::from_parts(parts),
        query_keywords: vec![0, 1],
        expected: (0..n as u32).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shuffled_planted_preserves_intersection() {
        let inst = shuffled_planted(3000, 8, 3, 25, 6, 9);
        let inv = skq_invidx::InvertedIndex::build(&inst.docs);
        assert_eq!(inv.intersect(&inst.query), inst.expected);
        assert_eq!(inst.expected.len(), 25);
        // Spread check: not all planted ids in the first tenth.
        assert!(inst.expected.iter().any(|&e| e > 1500));
    }

    #[test]
    fn borderline_frequencies_near_target() {
        let ps = borderline_spatial(50_000, 2, 2, 0.8, 3);
        let n = ps.dataset.input_size() as f64;
        let target = 0.8 * n.sqrt();
        for &w in &ps.query_keywords {
            let freq = (0..ps.dataset.len())
                .filter(|&i| ps.dataset.doc(i).contains(w))
                .count() as f64;
            assert!(
                (freq - target).abs() < 0.2 * target,
                "freq {freq} vs target {target}"
            );
        }
        // Empty joint intersection.
        assert!((0..ps.dataset.len()).all(|i| !ps.dataset.doc(i).contains_all(&ps.query_keywords)));
    }

    #[test]
    fn exponent_fit_recovers_power_law() {
        let xs: Vec<f64> = vec![1e3, 1e4, 1e5, 1e6];
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 * x.powf(0.5)).collect();
        let e = fit_exponent(&xs, &ys);
        assert!((e - 0.5).abs() < 1e-9, "fitted {e}");
    }

    #[test]
    fn planted_spatial_has_exact_out() {
        let ps = planted_spatial(5_000, 2, 3, 42, 1000.0, 7);
        let matches: Vec<u32> = (0..ps.dataset.len() as u32)
            .filter(|&i| ps.dataset.doc(i as usize).contains_all(&ps.query_keywords))
            .collect();
        assert_eq!(matches, ps.expected);
        assert_eq!(matches.len(), 42);
    }

    #[test]
    fn measure_orders_its_statistics() {
        let m = measure(5, || {
            std::hint::black_box((0..1000).sum::<u64>());
        });
        assert_eq!(m.reps, 5);
        assert!(m.min <= m.median);
        assert!(m.median <= m.p90);
        assert!(m.p90.as_nanos() < 1_000_000_000);
    }

    #[test]
    fn measure_single_rep_degenerates() {
        let m = measure(1, || {});
        assert_eq!(m.min, m.median);
        assert_eq!(m.median, m.p90);
        assert_eq!(m.reps, 1);
    }
}
