//! The experiment harness: regenerates an empirical counterpart for
//! every evaluation artifact of the paper (Table 1's bound matrix,
//! Lemma 9/10's crossing analysis = Figure 1, and §4's type-1/type-2
//! structure = Figure 2). Output is markdown, recorded in
//! EXPERIMENTS.md.
//!
//! Usage:
//!   harness [all|e1|e2|e3|e4|e5|e6|e7|e8|e9|e10|f1|f2|x1|x2|x3] [--quick]
//!           [--metrics out.prom] [--trace out.json]
//!
//! `--trace` captures every instrumented build/query span that runs
//! during the selected experiments as a chrome-trace JSON file
//! (loadable in `ui.perfetto.dev`). Artifact-write failures exit with
//! code 2 and a one-line message.

use std::env;
use std::process::ExitCode;
use std::time::Duration;

use skq_bench::{
    borderline_spatial, fit_exponent, measure, omnipresent_spatial, planted_spatial,
    shuffled_planted, us, Table,
};
use skq_core::ksi::KsiIndex;
use skq_core::lc::LcKwIndex;
use skq_core::naive::{FullScan, KeywordsFirst, StructuredFirst};
use skq_core::nn_l2::L2NnIndex;
use skq_core::nn_linf::LinfNnIndex;
use skq_core::orp::OrpKwIndex;
use skq_core::rr::RrKwIndex;
use skq_core::sp::{SpKwIndex, SpStrategy};
use skq_core::srp::SrpKwIndex;
use skq_geom::{Ball, Point, Rect};
use skq_invidx::{InvertedIndex, Keyword};
use skq_workload::queries::QueryGen;

use rand::{rngs::StdRng, Rng, SeedableRng};

type Experiment = (&'static str, fn(&Config));

struct Config {
    quick: bool,
}

impl Config {
    /// Object-count sweep used by the N-scaling experiments.
    fn sizes(&self) -> Vec<usize> {
        if self.quick {
            vec![10_000, 30_000]
        } else {
            vec![20_000, 60_000, 180_000]
        }
    }
    fn reps(&self) -> usize {
        if self.quick {
            5
        } else {
            9
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let metrics_path = args
        .iter()
        .position(|a| a == "--metrics")
        .and_then(|i| args.get(i + 1));
    let trace_path = args
        .iter()
        .position(|a| a == "--trace")
        .and_then(|i| args.get(i + 1));
    let which = args
        .iter()
        .find(|a| !a.starts_with("--") && Some(*a) != metrics_path && Some(*a) != trace_path)
        .map(String::as_str)
        .unwrap_or("all");
    let cfg = Config { quick };
    if trace_path.is_some() {
        skq_obs::trace::enable();
    }

    let all: Vec<Experiment> = vec![
        ("e1", e1),
        ("e2", e2),
        ("e3", e3),
        ("e4", e4),
        ("e5", e5),
        ("e6", e6),
        ("e7", e7),
        ("e8", e8),
        ("e9", e9),
        ("e10", e10),
        ("f1", f1),
        ("f2", f2),
        ("x1", x1),
        ("x2", x2),
        ("x3", x3),
    ];
    match which {
        "all" => {
            for (name, f) in &all {
                println!(
                    "\n\n================ {} ================",
                    name.to_uppercase()
                );
                f(&cfg);
            }
        }
        name => {
            let f = all
                .iter()
                .find(|(n, _)| *n == name)
                .unwrap_or_else(|| panic!("unknown experiment {name}"))
                .1;
            f(&cfg);
        }
    }

    // Observability snapshot: everything the instrumented build/query
    // paths recorded while the experiments ran. `--metrics <path>`
    // additionally writes the machine-readable Prometheus form.
    println!("\n\n================ METRICS SNAPSHOT ================");
    print!("{}", skq_obs::global().report());
    if let Some(path) = trace_path {
        skq_obs::trace::disable();
        if let Err(msg) = write_artifact(path, &skq_obs::trace::export_chrome()) {
            eprintln!("harness: {msg}");
            return ExitCode::from(2);
        }
        println!(
            "(wrote {} trace events to {path} — load in ui.perfetto.dev)",
            skq_obs::trace::event_count()
        );
    }
    if let Some(path) = metrics_path {
        if let Err(msg) = write_artifact(path, &skq_obs::global().render_prometheus()) {
            eprintln!("harness: {msg}");
            return ExitCode::from(2);
        }
        println!("(wrote Prometheus snapshot to {path})");
    }
    ExitCode::SUCCESS
}

/// Writes an output artifact, creating missing parent directories.
fn write_artifact(path: &str, contents: &str) -> Result<(), String> {
    let p = std::path::Path::new(path);
    if let Some(parent) = p.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)
                .map_err(|e| format!("creating {}: {e}", parent.display()))?;
        }
    }
    std::fs::write(p, contents).map_err(|e| format!("writing {path}: {e}"))
}

/// Median query time over `queries` random full-space ORP queries.
fn orp_query_time(index: &OrpKwIndex, q: &Rect, kws: &[Keyword], reps: usize) -> Duration {
    measure(reps, || {
        std::hint::black_box(index.query(std::hint::black_box(q), kws));
    })
    .median
}

// ====================================================================
// E1 — Table 1, rows 1–2: ORP-KW query time scaling.
// ====================================================================
fn e1(cfg: &Config) {
    println!("## E1 — ORP-KW (Theorems 1–2): time vs N at OUT = 0, and vs OUT\n");
    println!("### E1a-adaptive — frequent keywords, empty intersection");
    println!("The k query keywords are individually frequent (Θ(N) naive");
    println!("candidates) but never co-occur: the root emptiness bit table");
    println!("prunes everything, so the index is output-adaptive and far");
    println!("below its worst-case bound.\n");

    for dim in [2usize, 3] {
        let mut t = Table::new(&[
            "d",
            "k",
            "N",
            "index µs",
            "kw-only µs",
            "struct-only µs",
            "scan µs",
        ]);
        let mut fits: Vec<String> = Vec::new();
        for k in [2usize, 3, 4] {
            let mut ns = Vec::new();
            let mut times = Vec::new();
            for &n in &cfg.sizes() {
                let ps = planted_spatial(n, dim, k, 0, 1e6, 42 + n as u64);
                let dataset = &ps.dataset;
                let index = OrpKwIndex::build(dataset, k);
                let kf = KeywordsFirst::build(dataset);
                let sf = StructuredFirst::build(dataset);
                let fs = FullScan::new(dataset);
                let q = Rect::full(dim);
                let kws = &ps.query_keywords;
                let ti = orp_query_time(&index, &q, kws, cfg.reps());
                let tk = measure(cfg.reps(), || {
                    std::hint::black_box(kf.query_rect(&q, kws));
                })
                .median;
                let ts = measure(3, || {
                    std::hint::black_box(sf.query_rect(&q, kws));
                })
                .median;
                let tf = measure(3, || {
                    std::hint::black_box(fs.query_rect(&q, kws));
                })
                .median;
                let big_n = dataset.input_size() as f64;
                ns.push(big_n);
                times.push(ti.as_secs_f64());
                t.row(vec![
                    dim.to_string(),
                    k.to_string(),
                    format!("{}", big_n as u64),
                    us(ti),
                    us(tk),
                    us(ts),
                    us(tf),
                ]);
            }
            fits.push(format!(
                "  d={dim} k={k}: fitted exponent {:.2} (theory 1 − 1/k = {:.2})",
                fit_exponent(&ns, &times),
                1.0 - 1.0 / k as f64
            ));
        }
        t.print();
        println!("\nindex time vs N, log-log slope:");
        for f in fits {
            println!("{f}");
        }
        println!();
    }

    // Worst case of the bound: borderline-frequency keywords (count
    // just below N^(1-1/k)) take the small-keyword materialized-list
    // path at the root; the scan length IS the bound.
    println!("### E1a-worst — borderline-frequency keywords (count ≈ 0.8·N^(1−1/k)), OUT = 0\n");
    println!("Cost is reported both as wall-clock and as the paper's own measure —");
    println!("objects examined — which is cache-noise free.\n");
    let mut t = Table::new(&[
        "k",
        "N",
        "index µs",
        "examined",
        "N^(1-1/k)",
        "kw-only µs",
        "scan µs",
    ]);
    let mut fits = Vec::new();
    for k in [2usize, 3] {
        let mut ns = Vec::new();
        let mut ops = Vec::new();
        for &n in &cfg.sizes() {
            let ps = borderline_spatial(n * 8, 2, k, 0.8, 17 + n as u64);
            let index = OrpKwIndex::build(&ps.dataset, k);
            let kf = KeywordsFirst::build(&ps.dataset);
            let fs = FullScan::new(&ps.dataset);
            let q = Rect::full(2);
            let kws = &ps.query_keywords;
            let (hits, stats) = index.query_with_stats(&q, kws);
            assert!(hits.is_empty());
            let ti = orp_query_time(&index, &q, kws, cfg.reps());
            let tk = measure(cfg.reps(), || {
                std::hint::black_box(kf.query_rect(&q, kws));
            })
            .median;
            let tf = measure(3, || {
                std::hint::black_box(fs.query_rect(&q, kws));
            })
            .median;
            let big_n = ps.dataset.input_size() as f64;
            ns.push(big_n);
            ops.push(stats.objects_examined() as f64);
            t.row(vec![
                k.to_string(),
                format!("{}", big_n as u64),
                us(ti),
                stats.objects_examined().to_string(),
                format!("{:.0}", big_n.powf(1.0 - 1.0 / k as f64)),
                us(tk),
                us(tf),
            ]);
        }
        fits.push(format!(
            "  k={k}: examined-objects exponent {:.2} (theory 1 − 1/k = {:.2})",
            fit_exponent(&ns, &ops),
            1.0 - 1.0 / k as f64
        ));
    }
    t.print();
    println!("\nobjects examined vs N, log-log slope:");
    for f in fits {
        println!("{f}");
    }
    println!();

    // Part (b): time vs OUT at fixed N.
    println!("### E1b — time vs OUT at fixed N (d = 2, k = 2, 3)\n");
    let n = if cfg.quick { 50_000 } else { 150_000 };
    let mut t = Table::new(&["k", "OUT", "index µs", "examined", "√(N·OUT)", "kw-only µs"]);
    let mut slopes = Vec::new();
    for k in [2usize, 3] {
        let mut outs = Vec::new();
        let mut ops = Vec::new();
        for planted in [10usize, 100, 1_000, 10_000] {
            let ps = planted_spatial(n, 2, k, planted, 1e6, 77);
            let index = OrpKwIndex::build(&ps.dataset, k);
            let kf = KeywordsFirst::build(&ps.dataset);
            let q = Rect::full(2);
            let (_, stats) = index.query_with_stats(&q, &ps.query_keywords);
            let ti = orp_query_time(&index, &q, &ps.query_keywords, cfg.reps());
            let tk = measure(cfg.reps(), || {
                std::hint::black_box(kf.query_rect(&q, &ps.query_keywords));
            })
            .median;
            outs.push(planted as f64);
            ops.push(stats.objects_examined() as f64);
            let big_n = ps.dataset.input_size() as f64;
            t.row(vec![
                k.to_string(),
                planted.to_string(),
                us(ti),
                stats.objects_examined().to_string(),
                format!(
                    "{:.0}",
                    big_n.powf(1.0 - 1.0 / k as f64) * (planted as f64).powf(1.0 / k as f64)
                ),
                us(tk),
            ]);
        }
        slopes.push(format!(
            "k={k}: examined-objects vs OUT slope {:.2} — the adaptive growth \
             ~OUT·log(N/OUT) stays below the worst-case envelope \
             N^(1-1/k)·OUT^(1/k) + OUT at every point (see the √(N·OUT) column)",
            fit_exponent(&outs, &ops)
        ));
    }
    t.print();
    for sl in slopes {
        println!("{sl}");
    }
}

// ====================================================================
// E2 — Table 1, row 3: ORP-KW through LC-KW (linear space, +log N).
// ====================================================================
fn e2(cfg: &Config) {
    println!("## E2 — ORP-KW via LC-KW (Theorem 5, d ≤ k): linear space, log N additive term\n");
    let mut t = Table::new(&["N", "orp words/N", "lc words/N", "orp µs", "lc-rect µs"]);
    for &n in &cfg.sizes() {
        let ps = planted_spatial(n, 2, 2, 100, 1e6, 3);
        let orp = OrpKwIndex::build(&ps.dataset, 2);
        let lc = LcKwIndex::build(&ps.dataset, 2);
        let mut gen = QueryGen::new(&ps.dataset, 5);
        let q = gen.rect(0.25);
        let kws = &ps.query_keywords;
        let to = measure(cfg.reps(), || {
            std::hint::black_box(orp.query(&q, kws));
        })
        .median;
        let tl = measure(cfg.reps(), || {
            std::hint::black_box(lc.query_rect(&q, kws));
        })
        .median;
        let big_n = ps.dataset.input_size() as f64;
        t.row(vec![
            format!("{}", big_n as u64),
            format!("{:.1}", orp.space_words() as f64 / big_n),
            format!("{:.1}", lc.space_words() as f64 / big_n),
            us(to),
            us(tl),
        ]);
    }
    t.print();
}

// ====================================================================
// E3 — Table 1, row 4: RR-KW (rectangle intersection reporting).
// ====================================================================
fn e3(cfg: &Config) {
    println!("## E3 — RR-KW (Corollary 3): d = 1 intervals and d = 2 boxes\n");
    println!("Worst-case (borderline-frequency) documents: the query pays the");
    println!("materialized-list scan of length ≈ N^(1−1/k).\n");
    for dim in [1usize, 2] {
        let mut t = Table::new(&["d", "N", "index µs", "examined", "scan µs", "OUT"]);
        let mut ns = Vec::new();
        let mut ops = Vec::new();
        for &n in &cfg.sizes() {
            // Borderline-frequency designated keywords over random boxes.
            let bl = borderline_spatial(n * 2, 1, 2, 0.8, 11 + n as u64);
            let mut rng = StdRng::seed_from_u64(13);
            let rects: Vec<(Rect, Vec<Keyword>)> = (0..bl.dataset.len())
                .map(|i| {
                    let lo: Vec<f64> = (0..dim).map(|_| rng.gen_range(0.0..1e6)).collect();
                    let hi: Vec<f64> = lo.iter().map(|l| l + rng.gen_range(1.0..2e4)).collect();
                    (Rect::new(&lo, &hi), bl.dataset.doc(i).keywords().to_vec())
                })
                .collect();
            let index = RrKwIndex::build(&rects, 2);
            let q = {
                let lo: Vec<f64> = (0..dim).map(|_| 4e5).collect();
                let hi: Vec<f64> = (0..dim).map(|_| 6e5).collect();
                Rect::new(&lo, &hi)
            };
            let kws = &bl.query_keywords;
            let (hits, stats) = index.query_with_stats(&q, kws);
            let out_len = hits.len();
            let ti = measure(cfg.reps(), || {
                std::hint::black_box(index.query(&q, kws));
            })
            .median;
            let ts = measure(3, || {
                std::hint::black_box(skq_core::rr::rr_bruteforce(&rects, &q, kws));
            })
            .median;
            let big_n: usize = rects.iter().map(|(_, k)| k.len()).sum();
            ns.push(big_n as f64);
            ops.push(stats.objects_examined() as f64);
            t.row(vec![
                dim.to_string(),
                big_n.to_string(),
                us(ti),
                stats.objects_examined().to_string(),
                us(ts),
                out_len.to_string(),
            ]);
        }
        t.print();
        println!(
            "d={dim}: examined-objects vs N slope {:.2} (theory 1 − 1/k = 0.50)\n",
            fit_exponent(&ns, &ops)
        );
    }
}

// ====================================================================
// E4 — Table 1, row 5: L∞NN-KW.
// ====================================================================
fn e4(cfg: &Config) {
    println!("## E4 — L∞NN-KW (Corollary 4): time vs t and vs N\n");
    let n = if cfg.quick { 40_000 } else { 120_000 };
    let ps = planted_spatial(n, 2, 2, 20_000, 1e6, 21);
    let index = LinfNnIndex::build(&ps.dataset, 2);
    let kf = KeywordsFirst::build(&ps.dataset);
    let q = Point::new2(5e5, 5e5);
    let kws = &ps.query_keywords;

    let mut t = Table::new(&["t", "index µs", "kw-only µs"]);
    let mut ts_axis = Vec::new();
    let mut times = Vec::new();
    for t_arg in [1usize, 4, 16, 64, 256] {
        let ti = measure(cfg.reps(), || {
            std::hint::black_box(index.query(&q, t_arg, kws));
        })
        .median;
        let tk = measure(cfg.reps(), || {
            std::hint::black_box(kf.nn_linf(&q, t_arg, kws));
        })
        .median;
        ts_axis.push(t_arg as f64);
        times.push(ti.as_secs_f64());
        t.row(vec![t_arg.to_string(), us(ti), us(tk)]);
    }
    t.print();
    println!(
        "time vs t slope {:.2} (theory t^(1/k) = t^0.5 inside a log N · N^(1-1/k) frame)\n",
        fit_exponent(&ts_axis, &times)
    );

    let mut t = Table::new(&["N", "index µs (t=16)", "kw-only µs"]);
    let mut ns = Vec::new();
    let mut times = Vec::new();
    for &n in &cfg.sizes() {
        let ps = planted_spatial(n, 2, 2, n / 10, 1e6, 22);
        let index = LinfNnIndex::build(&ps.dataset, 2);
        let kf = KeywordsFirst::build(&ps.dataset);
        let ti = measure(cfg.reps(), || {
            std::hint::black_box(index.query(&q, 16, &ps.query_keywords));
        })
        .median;
        let tk = measure(cfg.reps(), || {
            std::hint::black_box(kf.nn_linf(&q, 16, &ps.query_keywords));
        })
        .median;
        let big_n = ps.dataset.input_size() as f64;
        ns.push(big_n);
        times.push(ti.as_secs_f64());
        t.row(vec![format!("{}", big_n as u64), us(ti), us(tk)]);
    }
    t.print();
    println!(
        "time vs N slope {:.2} (theory ≈ 1 − 1/k = 0.50, × log N)",
        fit_exponent(&ns, &times)
    );
}

// ====================================================================
// E5 — Table 1, rows 6–7: LC-KW, with the Willard/kd ablation.
// ====================================================================
fn e5(cfg: &Config) {
    println!("## E5 — LC-KW (Theorem 5): halfplane + keywords, Willard vs kd cells\n");
    println!("Worst-case (borderline-frequency) keywords; 'examined' is the");
    println!("operation count, whose N-scaling is the crossing-sensitivity story.\n");
    let mut t = Table::new(&[
        "N",
        "willard µs",
        "w-exam",
        "kd-cells µs",
        "kd-exam",
        "kw-only µs",
        "struct-only µs",
        "scan µs",
    ]);
    let mut ns = Vec::new();
    let mut tw = Vec::new();
    let mut tk_ = Vec::new();
    for &n in &cfg.sizes() {
        let ps = borderline_spatial(n * 2, 2, 2, 0.8, 31 + n as u64);
        let willard = SpKwIndex::build_with_strategy(&ps.dataset, 2, SpStrategy::Willard);
        let kdcells = SpKwIndex::build_with_strategy(&ps.dataset, 2, SpStrategy::Kd);
        let kf = KeywordsFirst::build(&ps.dataset);
        let sf = StructuredFirst::build(&ps.dataset);
        let fs = FullScan::new(&ps.dataset);
        let mut gen = QueryGen::new(&ps.dataset, 33);
        let q = gen.halfspaces(1);
        let kws = &ps.query_keywords;
        let (_, sw) = willard.query_with_stats(&q, kws);
        let (_, sk) = kdcells.query_with_stats(&q, kws);
        let t1 = measure(cfg.reps(), || {
            std::hint::black_box(willard.query_polytope(&q, kws));
        })
        .median;
        let t2 = measure(cfg.reps(), || {
            std::hint::black_box(kdcells.query_polytope(&q, kws));
        })
        .median;
        let t3 = measure(cfg.reps(), || {
            std::hint::black_box(kf.query_polytope(&q, kws));
        })
        .median;
        let t4 = measure(3, || {
            std::hint::black_box(sf.query_polytope(&q, kws));
        })
        .median;
        let t5 = measure(3, || {
            std::hint::black_box(fs.query_polytope(&q, kws));
        })
        .median;
        let big_n = ps.dataset.input_size() as f64;
        ns.push(big_n);
        tw.push(sw.objects_examined() as f64);
        tk_.push(sk.objects_examined() as f64);
        t.row(vec![
            format!("{}", big_n as u64),
            us(t1),
            sw.objects_examined().to_string(),
            us(t2),
            sk.objects_examined().to_string(),
            us(t3),
            us(t4),
            us(t5),
        ]);
    }
    t.print();
    println!(
        "\nwillard examined slope {:.2} (theory ≤ 1 − 1/k = 0.50 here; crossing constant N^0.79 vs Chan's N^0.5 affects the geometric term)",
        fit_exponent(&ns, &tw)
    );
    println!(
        "kd-cells examined slope {:.2} (paper §3.5: N^(1-1/max(k,d)) = N^0.5 for k=d=2)",
        fit_exponent(&ns, &tk_)
    );

    // E5b — the partitioner ablation proper: omnipresent keywords make
    // keyword pruning inert, so the visited-node count is exactly the
    // halfplane crossing structure of the partition tree.
    println!("\n### E5b — partitioner ablation: crossing structure under a halfplane\n");
    println!("Every object has both query keywords; visited nodes = geometric work.\n");
    let mut t = Table::new(&[
        "N",
        "willard visited",
        "willard µs",
        "kd visited",
        "kd µs",
        "OUT",
    ]);
    let mut ns = Vec::new();
    let mut vw = Vec::new();
    let mut vk = Vec::new();
    for &n in &cfg.sizes() {
        let ps = omnipresent_spatial(n, 2, 35 + n as u64);
        let willard = SpKwIndex::build_with_strategy(&ps.dataset, 2, SpStrategy::Willard);
        let kdcells = SpKwIndex::build_with_strategy(&ps.dataset, 2, SpStrategy::Kd);
        // Halfplanes of varied orientation through the data extent:
        // the crossing-node count (worst observed) is the structural
        // quantity the partition-tree analysis bounds — output size
        // does not inflate it.
        let kws = &ps.query_keywords;
        let mut worst_w = (0u64, 0u64, 0usize, std::time::Duration::ZERO);
        let mut worst_k = (0u64, 0u64, std::time::Duration::ZERO);
        let mut rng = StdRng::seed_from_u64(36);
        for _ in 0..8 {
            let theta: f64 = rng.gen_range(0.0..std::f64::consts::PI);
            let (a, b) = (theta.cos(), theta.sin());
            let c = a * rng.gen_range(2e5..8e5) + b * rng.gen_range(2e5..8e5);
            let q = skq_geom::ConvexPolytope::from_halfspace(skq_geom::Halfspace::new(&[a, b], c));
            let (hits, sw) = willard.query_with_stats(&q, kws);
            let (_, sk) = kdcells.query_with_stats(&q, kws);
            if sw.crossing_nodes > worst_w.1 {
                let t1 = measure(3, || {
                    std::hint::black_box(willard.query_polytope(&q, kws));
                })
                .median;
                worst_w = (sw.nodes_visited, sw.crossing_nodes, hits.len(), t1);
            }
            if sk.crossing_nodes > worst_k.1 {
                let t2 = measure(3, || {
                    std::hint::black_box(kdcells.query_polytope(&q, kws));
                })
                .median;
                worst_k = (sk.nodes_visited, sk.crossing_nodes, t2);
            }
        }
        let big_n = ps.dataset.input_size() as f64;
        ns.push(big_n);
        vw.push(worst_w.1 as f64);
        vk.push(worst_k.1 as f64);
        t.row(vec![
            format!("{}", big_n as u64),
            format!("{} ({} crossing)", worst_w.0, worst_w.1),
            us(worst_w.3),
            format!("{} ({} crossing)", worst_k.0, worst_k.1),
            us(worst_k.2),
            worst_w.2.to_string(),
        ]);
    }
    t.print();
    println!(
        "\nwillard crossing-node slope {:.2} (upper bound N^log4(3) = N^0.79; typical \
         halfplanes sit well below the worst case)",
        fit_exponent(&ns, &vw)
    );
    println!(
        "kd-cells crossing-node slope {:.2} (kd has no sublinear guarantee for \
         arbitrary lines — the growth gap vs willard is the ablation signal)",
        fit_exponent(&ns, &vk)
    );
}

// ====================================================================
// E6 — Table 1, rows 8–9: SRP-KW.
// ====================================================================
fn e6(cfg: &Config) {
    println!("## E6 — SRP-KW (Corollary 6): balls via lifting\n");
    let mut t = Table::new(&["N", "index µs", "kw-only µs", "scan µs", "OUT"]);
    let mut ns = Vec::new();
    let mut times = Vec::new();
    for &n in &cfg.sizes() {
        let ps = planted_spatial(n, 2, 2, 200, 1e6, 41);
        let index = SrpKwIndex::build(&ps.dataset, 2);
        let kf = KeywordsFirst::build(&ps.dataset);
        let fs = FullScan::new(&ps.dataset);
        let ball = Ball::new(Point::new2(5e5, 5e5), 2e5);
        let kws = &ps.query_keywords;
        let out_len = index.query(&ball, kws).len();
        let t1 = measure(cfg.reps(), || {
            std::hint::black_box(index.query(&ball, kws));
        })
        .median;
        let t2 = measure(cfg.reps(), || {
            std::hint::black_box(kf.query_ball(&ball, kws));
        })
        .median;
        let t3 = measure(3, || {
            std::hint::black_box(fs.query_ball(&ball, kws));
        })
        .median;
        let big_n = ps.dataset.input_size() as f64;
        ns.push(big_n);
        times.push(t1.as_secs_f64());
        t.row(vec![
            format!("{}", big_n as u64),
            us(t1),
            us(t2),
            us(t3),
            out_len.to_string(),
        ]);
    }
    t.print();
    println!(
        "index time vs N slope {:.2} (theory: N^(1-1/(d+1)) = N^0.67 via kd cells on the lifted set)",
        fit_exponent(&ns, &times)
    );
}

// ====================================================================
// E7 — Table 1, rows 10–11: L2NN-KW.
// ====================================================================
fn e7(cfg: &Config) {
    println!("## E7 — L2NN-KW (Corollary 7): time vs t\n");
    let n = if cfg.quick { 30_000 } else { 80_000 };
    let ps = planted_spatial(n, 2, 2, 10_000, 1e6, 51);
    let index = L2NnIndex::build(&ps.dataset, 2);
    let kf = KeywordsFirst::build(&ps.dataset);
    let q = Point::new2(5e5, 5e5);
    let kws = &ps.query_keywords;
    let mut t = Table::new(&["t", "index µs", "kw-only µs"]);
    let mut ts_axis = Vec::new();
    let mut times = Vec::new();
    for t_arg in [1usize, 4, 16, 64] {
        let t1 = measure(cfg.reps(), || {
            std::hint::black_box(index.query(&q, t_arg, kws));
        })
        .median;
        let t2 = measure(cfg.reps(), || {
            std::hint::black_box(kf.nn_l2(&q, t_arg, kws));
        })
        .median;
        ts_axis.push(t_arg as f64);
        times.push(t1.as_secs_f64());
        t.row(vec![t_arg.to_string(), us(t1), us(t2)]);
    }
    t.print();
    println!(
        "time vs t slope {:.2} (theory t^(1/k) = t^0.5 inside log-factor frames)",
        fit_exponent(&ts_axis, &times)
    );
}

// ====================================================================
// E8 — Table 1, space column: measured words / N.
// ====================================================================
fn e8(cfg: &Config) {
    println!("## E8 — space: words per unit of N (flat ⇒ linear space)\n");
    let mut t = Table::new(&[
        "N",
        "orp-2d",
        "orp-3d (dimred)",
        "rr-1d",
        "sp-willard",
        "srp",
        "ksi",
        "inverted",
    ]);
    for &n in &cfg.sizes() {
        let ps2 = planted_spatial(n, 2, 2, 100, 1e6, 61);
        let ps3 = planted_spatial(n, 3, 2, 100, 1e6, 62);
        let big_n = ps2.dataset.input_size() as f64;
        let orp2 = OrpKwIndex::build(&ps2.dataset, 2);
        let orp3 = OrpKwIndex::build(&ps3.dataset, 2);
        let rects: Vec<(Rect, Vec<Keyword>)> = (0..ps2.dataset.len())
            .map(|i| {
                let x = ps2.dataset.point(i).get(0);
                (
                    Rect::new(&[x], &[x + 100.0]),
                    ps2.dataset.doc(i).keywords().to_vec(),
                )
            })
            .collect();
        let rr = RrKwIndex::build(&rects, 2);
        let sp = SpKwIndex::build_with_strategy(&ps2.dataset, 2, SpStrategy::Willard);
        let srp = SrpKwIndex::build(&ps2.dataset, 2);
        let ksi = KsiIndex::build(ps2.dataset.docs(), 2);
        let inv = InvertedIndex::build(ps2.dataset.docs());
        t.row(vec![
            format!("{}", big_n as u64),
            format!("{:.1}", orp2.space_words() as f64 / big_n),
            format!(
                "{:.1}",
                orp3.space_words() as f64 / ps3.dataset.input_size() as f64
            ),
            format!("{:.1}", rr.space_words() as f64 / big_n),
            format!("{:.1}", sp.space_words() as f64 / big_n),
            format!("{:.1}", srp.space_words() as f64 / big_n),
            format!("{:.1}", ksi.space_words() as f64 / big_n),
            format!("{:.1}", 2.0 * inv.input_size() as f64 / big_n),
        ]);
    }
    t.print();
    println!("\nexpect columns flat in N; orp-3d may grow like (log log N)^(d-2).");
}

// ====================================================================
// E9 — §1.2 / bound (4): pure k-SI against the inverted index.
// ====================================================================
fn e9(cfg: &Config) {
    println!("## E9 — k-SI (§1.2): framework vs galloping merge, bound (4) shape\n");
    let n = if cfg.quick { 60_000 } else { 200_000 };
    for k in [2usize, 3] {
        let mut t = Table::new(&[
            "k",
            "OUT",
            "framework µs",
            "examined",
            "bound",
            "exam/bound",
            "inverted µs",
        ]);
        for planted in [0usize, 10, 100, 1_000, 10_000] {
            let inst = shuffled_planted(n, 8, k, planted, 6, 71);
            let ksi = KsiIndex::build(&inst.docs, k);
            let inv = InvertedIndex::build(&inst.docs);
            let (_, stats) = ksi.intersect_with_stats(&inst.query);
            let t1 = measure(cfg.reps(), || {
                std::hint::black_box(ksi.intersect(&inst.query));
            })
            .median;
            let t2 = measure(cfg.reps(), || {
                std::hint::black_box(inv.intersect(&inst.query));
            })
            .median;
            // Bound (4): N^(1-1/k) + N^(1-1/k)·OUT^(1/k) + OUT. The
            // examined-object count must stay below a constant multiple
            // of it (adaptive instances land far below).
            let big_n = ksi.input_size() as f64;
            let bound = big_n.powf(1.0 - 1.0 / k as f64)
                * (1.0 + (planted as f64).powf(1.0 / k as f64))
                + planted as f64;
            t.row(vec![
                k.to_string(),
                planted.to_string(),
                us(t1),
                stats.objects_examined().to_string(),
                format!("{:.0}", bound),
                format!("{:.3}", stats.objects_examined() as f64 / bound),
                us(t2),
            ]);
        }
        t.print();
        println!();
    }
    println!("exam/bound stays below a constant for every OUT ⇒ bound (4) holds;");
    println!("frequent-keyword instances sit far below it (the index is adaptive).");

    // Tightness of the N^(1-1/k) term: the borderline instance forces
    // the full materialized-list scan.
    println!("\nworst-case N-term utilization (borderline-frequency keywords):");
    for k in [2usize, 3] {
        let bl = borderline_spatial(n, 1, k, 0.8, 73);
        let ksi = KsiIndex::build(bl.dataset.docs(), k);
        let (hits, stats) = ksi.intersect_with_stats(&bl.query_keywords);
        assert!(hits.is_empty());
        let bound = (ksi.input_size() as f64).powf(1.0 - 1.0 / k as f64);
        println!(
            "  k={k}: examined {} / N^(1-1/k) {:.0} = {:.2}",
            stats.objects_examined(),
            bound,
            stats.objects_examined() as f64 / bound
        );
    }
}

// ====================================================================
// E10 — Lemma 8 flavour: where does each strategy win?
// ====================================================================
fn e10(cfg: &Config) {
    println!("## E10 — crossover analysis: index wins iff OUT = o(N)\n");
    let n = if cfg.quick { 60_000 } else { 150_000 };
    let mut t = Table::new(&["OUT/N", "OUT", "framework µs", "inverted µs", "winner"]);
    for frac_inv in [100_000usize, 10_000, 1_000, 100, 10, 4, 2] {
        let planted = (n / frac_inv).max(if frac_inv == 100_000 { 0 } else { 1 });
        let inst = shuffled_planted(n, 8, 2, planted, 6, 81);
        let ksi = KsiIndex::build(&inst.docs, 2);
        let inv = InvertedIndex::build(&inst.docs);
        let t1 = measure(cfg.reps(), || {
            std::hint::black_box(ksi.intersect(&inst.query));
        })
        .median;
        let t2 = measure(cfg.reps(), || {
            std::hint::black_box(inv.intersect(&inst.query));
        })
        .median;
        t.row(vec![
            format!("{:.1e}", planted as f64 / n as f64),
            planted.to_string(),
            us(t1),
            us(t2),
            if t1 < t2 { "framework" } else { "inverted" }.to_string(),
        ]);
    }
    t.print();
    println!("\nexpected: framework wins until OUT approaches a constant fraction of N,");
    println!("where both must pay Θ(OUT) anyway (the Lemma 8 discussion).");
}

// ====================================================================
// X1 — extension: the dynamic index (logarithmic method).
// ====================================================================
fn x1(cfg: &Config) {
    use skq_core::dynamic::DynamicOrpKw;
    println!("## X1 — dynamic ORP-KW (extension): update cost and query overhead\n");
    println!("Bentley–Saxe blocks over the static Theorem-1 index; queries touch");
    println!("O(log n) blocks, inserts amortize to O(log n) rebuild work per object.\n");
    let mut t = Table::new(&[
        "n inserted",
        "insert µs/op",
        "blocks",
        "dyn query µs",
        "static query µs",
    ]);
    for &n in &cfg.sizes() {
        let ps = planted_spatial(n, 2, 2, n / 100, 1e6, 111);
        // Dynamic: feed one by one.
        let t0 = std::time::Instant::now();
        let mut dynamic = DynamicOrpKw::new(2, 2);
        let mut handles = Vec::with_capacity(n);
        for i in 0..n {
            handles
                .push(dynamic.insert(*ps.dataset.point(i), ps.dataset.doc(i).keywords().to_vec()));
        }
        let per_op = t0.elapsed().as_secs_f64() * 1e6 / n as f64;
        // Static: one build.
        let static_index = OrpKwIndex::build(&ps.dataset, 2);
        let mut gen = QueryGen::new(&ps.dataset, 112);
        let q = gen.rect(0.05);
        let kws = &ps.query_keywords;
        let td = measure(cfg.reps(), || {
            std::hint::black_box(dynamic.query(&q, kws));
        })
        .median;
        let ts = measure(cfg.reps(), || {
            std::hint::black_box(static_index.query(&q, kws));
        })
        .median;
        // Sanity: identical answer sizes.
        assert_eq!(
            dynamic.query(&q, kws).len(),
            static_index.query(&q, kws).len()
        );
        t.row(vec![
            n.to_string(),
            format!("{per_op:.2}"),
            dynamic.num_blocks().to_string(),
            us(td),
            us(ts),
        ]);
    }
    t.print();
    println!("\nexpect: dyn query ≈ static × O(#blocks) in the worst case, much less in");
    println!("practice (most blocks are small); insert cost flat-ish (amortized log).");
}

// ====================================================================
// X2 — extension: sink-based emission modes (collect / count / limit).
// ====================================================================
fn x2(cfg: &Config) {
    use skq_core::sink::{CountSink, LimitSink, ResultSink};
    use skq_core::stats::QueryStats;
    println!("## X2 — result emission modes: collect vs count vs limit-10\n");
    println!("One traversal, three sinks: collecting materializes the result");
    println!("vector, counting touches no result memory at all, and a limit");
    println!("sink stops the traversal at the t-th hit (the threshold-query");
    println!("primitive behind the NN binary searches).\n");
    let mut t = Table::new(&["N", "OUT", "collect µs", "count µs", "limit-10 µs"]);
    for &n in &cfg.sizes() {
        let ps = planted_spatial(n, 2, 2, n / 20, 1e6, 211);
        let index = OrpKwIndex::build(&ps.dataset, 2);
        let q = Rect::full(2);
        let kws = &ps.query_keywords;
        let out_len = index.query(&q, kws).len();
        let tc = measure(cfg.reps(), || {
            std::hint::black_box(index.query(std::hint::black_box(&q), kws));
        })
        .median;
        let tn = measure(cfg.reps(), || {
            let mut sink = CountSink::new();
            let mut stats = QueryStats::new();
            let _ = index.query_sink(std::hint::black_box(&q), kws, &mut sink, &mut stats);
            std::hint::black_box(sink.count());
        })
        .median;
        let tl = measure(cfg.reps(), || {
            let mut sink = LimitSink::new(CountSink::new(), 10);
            let mut stats = QueryStats::new();
            let _ = index.query_sink(std::hint::black_box(&q), kws, &mut sink, &mut stats);
            std::hint::black_box(sink.emitted());
        })
        .median;
        t.row(vec![
            ps.dataset.input_size().to_string(),
            out_len.to_string(),
            us(tc),
            us(tn),
            us(tl),
        ]);
    }
    t.print();
    println!("\nexpect: count ≈ collect (same traversal; the saving is result");
    println!("memory, not time), and limit-10 far below both once OUT is");
    println!("large (the traversal stops at the 10th hit).");
}

// ====================================================================
// X3 — extension: guarded-query overhead (deadline/cancel/budget).
// ====================================================================
fn x3(cfg: &Config) {
    use skq_core::guard::{CancelToken, GuardedSink, QueryGuard};
    use skq_core::sink::ResultSink;
    use skq_core::stats::QueryStats;
    println!("## X3 — fault-tolerance tax: plain sink vs GuardedSink\n");
    println!("The robustness layer checks a deadline, a cancellation token and");
    println!("a result budget at every emission. This measures what those");
    println!("checks cost on a traversal where no limit ever trips — the");
    println!("steady-state overhead a service pays for guarded queries.\n");
    let mut t = Table::new(&[
        "N",
        "OUT",
        "plain µs",
        "empty guard µs",
        "armed guard µs",
        "tax %",
    ]);
    for &n in &cfg.sizes() {
        let ps = planted_spatial(n, 2, 2, n / 20, 1e6, 223);
        let index = OrpKwIndex::build(&ps.dataset, 2);
        let q = Rect::full(2);
        let kws = &ps.query_keywords;
        let out_len = index.query(&q, kws).len();
        let tp = measure(cfg.reps(), || {
            let mut out: Vec<u32> = Vec::new();
            let mut stats = QueryStats::new();
            let _ = index.query_sink(std::hint::black_box(&q), kws, &mut out, &mut stats);
            std::hint::black_box(out.len());
        })
        .median;
        let te = measure(cfg.reps(), || {
            let guard = QueryGuard::new();
            let mut sink = GuardedSink::new(Vec::new(), &guard);
            let mut stats = QueryStats::new();
            let _ = index.query_sink(std::hint::black_box(&q), kws, &mut sink, &mut stats);
            std::hint::black_box(sink.emitted());
        })
        .median;
        // All three limits armed, none of them close to tripping.
        let ta = measure(cfg.reps(), || {
            let guard = QueryGuard::new()
                .with_deadline(Duration::from_secs(3600))
                .with_cancel(CancelToken::new())
                .with_max_results(usize::MAX);
            let mut sink = GuardedSink::new(Vec::new(), &guard);
            let mut stats = QueryStats::new();
            let _ = index.query_sink(std::hint::black_box(&q), kws, &mut sink, &mut stats);
            std::hint::black_box(sink.emitted());
        })
        .median;
        let tax = (ta.as_secs_f64() / tp.as_secs_f64() - 1.0) * 100.0;
        t.row(vec![
            ps.dataset.input_size().to_string(),
            out_len.to_string(),
            us(tp),
            us(te),
            us(ta),
            format!("{tax:+.1}"),
        ]);
    }
    t.print();
    println!("\nexpect: the empty guard is nearly free (one latched-reason");
    println!("branch per emission); the armed guard adds an Instant::now()");
    println!("call per emission, a few percent on emission-dense queries and");
    println!("noise on traversal-dominated ones.");
}

// ====================================================================
// F1 — Figure 1 / Lemmas 9–10: crossing analysis of the kd framework.
// ====================================================================
fn f1(cfg: &Config) {
    println!("## F1 — crossing sensitivity (Figure 1, Lemmas 9–10)\n");
    let mut t = Table::new(&[
        "N",
        "crossing (line)",
        "√N",
        "covered (line)",
        "crossing (window)",
    ]);
    let mut ns = Vec::new();
    let mut crossings = Vec::new();
    for &n in &cfg.sizes() {
        // Every object holds both query keywords: keyword pruning never
        // fires and the bare geometric crossing structure is exposed.
        let ps = omnipresent_spatial(n, 2, 91 + n as u64);
        let index = OrpKwIndex::build(&ps.dataset, 2);
        let kws = &ps.query_keywords;
        let mut gen = QueryGen::new(&ps.dataset, 92);
        let mut max_cross_line = 0u64;
        let mut max_cov_line = 0u64;
        let mut max_cross_window = 0u64;
        let mut rng = StdRng::seed_from_u64(97);
        for _ in 0..10 {
            // A vertical line *through a data coordinate*: in rank space a
            // random real x hits no rank at all (an empty slab), so anchor
            // the line on an actual object's x.
            let x = ps.dataset.point(rng.gen_range(0..ps.dataset.len())).get(0);
            let line = Rect::new(&[x, f64::NEG_INFINITY], &[x, f64::INFINITY]);
            let (_, s) = index.query_with_stats(&line, kws);
            max_cross_line = max_cross_line.max(s.crossing_nodes);
            max_cov_line = max_cov_line.max(s.covered_nodes);
            let w = gen.rect(0.1);
            let (_, s) = index.query_with_stats(&w, kws);
            max_cross_window = max_cross_window.max(s.crossing_nodes);
        }
        let big_n = ps.dataset.input_size() as f64;
        ns.push(big_n);
        crossings.push(max_cross_line as f64);
        t.row(vec![
            format!("{}", big_n as u64),
            max_cross_line.to_string(),
            format!("{:.0}", big_n.sqrt()),
            max_cov_line.to_string(),
            max_cross_window.to_string(),
        ]);
    }
    t.print();
    println!(
        "\ncrossing-node count vs N slope {:.2} (Lemma 10 theory: 0.50)",
        fit_exponent(&ns, &crossings)
    );

    // The per-level picture of Figure 1: crossing nodes thin out with
    // depth after compaction; report one sample histogram and the
    // geometric-sum check Σ crossing(level)·2^(−level/2) = O(√N) scale.
    let ps = omnipresent_spatial(cfg.sizes()[cfg.sizes().len() - 1], 2, 93);
    let index = OrpKwIndex::build(&ps.dataset, 2);
    let anchor_x = ps.dataset.point(ps.dataset.len() / 2).get(0);
    let line = Rect::new(&[anchor_x, f64::NEG_INFINITY], &[anchor_x, f64::INFINITY]);
    let (_, s) = index.query_with_stats(&line, &ps.query_keywords);
    println!("\nsample per-level crossing histogram for one vertical line:");
    println!("{:?}", s.crossing_by_level);
    // Lemma 10 bounds Σ over the *leaves* of T_cross of (1/2)^(ℓ/2);
    // the deepest histogram level is exactly those leaves here.
    if let Some((l, &c)) = s
        .crossing_by_level
        .iter()
        .enumerate()
        .rev()
        .find(|(_, &c)| c > 0)
    {
        println!(
            "T_cross leaves: {c} nodes at level {l} ⇒ Σ 2^(−ℓ/2) = {:.2} (Lemma 10: ≤ 2)",
            c as f64 * 0.5f64.powf(l as f64 / 2.0)
        );
    }

    // Fully-covering queries have no crossing nodes at all.
    let (_, s) = index.query_with_stats(&Rect::full(2), &ps.query_keywords);
    println!(
        "full-space query: crossing = {}, covered = {} (crossing must be ~0)",
        s.crossing_nodes, s.covered_nodes
    );
}

// ====================================================================
// F2 — Figure 2 / Propositions 1–3: dimension-reduction structure.
// ====================================================================
fn f2(cfg: &Config) {
    println!("## F2 — dimension-reduction tree structure (Figure 2, Props 1–3)\n");
    let mut t = Table::new(&[
        "N",
        "levels",
        "log2 log2 N",
        "nodes",
        "max type-2/level",
        "max type-1/level",
    ]);
    for &n in &cfg.sizes() {
        let ps = planted_spatial(n, 3, 2, 200, 1e6, 95);
        let tree = skq_core::dimred::DimRedTree::build(&ps.dataset, 2);
        let index = OrpKwIndex::build(&ps.dataset, 2);
        let mut gen = QueryGen::new(&ps.dataset, 96);
        let mut max_t2 = 0u64;
        let mut max_t1 = 0u64;
        for _ in 0..20 {
            let q = gen.rect(0.2);
            let (_, s) = index.query_with_stats(&q, &ps.query_keywords);
            max_t2 = max_t2.max(s.type2_by_level.iter().copied().max().unwrap_or(0));
            max_t1 = max_t1.max(s.type1_by_level.iter().copied().max().unwrap_or(0));
        }
        let big_n = ps.dataset.input_size() as f64;
        t.row(vec![
            format!("{}", big_n as u64),
            tree.num_levels().to_string(),
            format!("{:.1}", big_n.log2().log2()),
            tree.num_nodes().to_string(),
            max_t2.to_string(),
            max_t1.to_string(),
        ]);
    }
    t.print();
    println!("\nProposition 1: levels = O(log log N); §4 analysis: ≤ 2 type-2 nodes per level.");
}
