//! Criterion bench for Table 1 rows 6–7: LC-KW halfspace queries, with
//! the Willard-vs-kd-cells partitioner ablation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use skq_bench::planted_spatial;
use skq_core::naive::{KeywordsFirst, StructuredFirst};
use skq_core::sp::{SpKwIndex, SpStrategy};
use skq_geom::{ConvexPolytope, Halfspace};

fn bench_lc(c: &mut Criterion) {
    let mut g = c.benchmark_group("lc_kw/halfplane");
    for n in [20_000usize, 60_000] {
        let ps = planted_spatial(n, 2, 2, 0, 1e6, 31);
        let willard = SpKwIndex::build_with_strategy(&ps.dataset, 2, SpStrategy::Willard);
        let kdcells = SpKwIndex::build_with_strategy(&ps.dataset, 2, SpStrategy::Kd);
        let kf = KeywordsFirst::build(&ps.dataset);
        let sf = StructuredFirst::build(&ps.dataset);
        // x + y ≤ 10^6: cuts the data diagonally in half.
        let q = ConvexPolytope::from_halfspace(Halfspace::new(&[1.0, 1.0], 1e6));
        let kws = ps.query_keywords.clone();
        g.bench_with_input(BenchmarkId::new("willard", n), &n, |b, _| {
            b.iter(|| willard.query_polytope(&q, &kws))
        });
        g.bench_with_input(BenchmarkId::new("kd_cells", n), &n, |b, _| {
            b.iter(|| kdcells.query_polytope(&q, &kws))
        });
        g.bench_with_input(BenchmarkId::new("keywords_only", n), &n, |b, _| {
            b.iter(|| kf.query_polytope(&q, &kws))
        });
        g.bench_with_input(BenchmarkId::new("structured_only", n), &n, |b, _| {
            b.iter(|| sf.query_polytope(&q, &kws))
        });
    }
    g.finish();
}

fn bench_lc_3d(c: &mut Criterion) {
    let mut g = c.benchmark_group("lc_kw/3d_two_constraints");
    let ps = planted_spatial(40_000, 3, 2, 0, 1e6, 32);
    let index = SpKwIndex::build(&ps.dataset, 2);
    let q = ConvexPolytope::new(vec![
        Halfspace::new(&[1.0, 1.0, 1.0], 1.5e6),
        Halfspace::new(&[-1.0, 0.0, 1.0], 2e5),
    ]);
    let kws = ps.query_keywords.clone();
    g.bench_function("index", |b| b.iter(|| index.query_polytope(&q, &kws)));
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15);
    targets = bench_lc, bench_lc_3d
}
criterion_main!(benches);
