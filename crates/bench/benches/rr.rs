//! Criterion bench for Table 1 row 4: RR-KW (rectangle intersection
//! reporting with keywords), d = 1 (temporal) and d = 2.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::{rngs::StdRng, Rng, SeedableRng};
use skq_core::rr::{rr_bruteforce, RrKwIndex};
use skq_geom::Rect;
use skq_invidx::Keyword;
use skq_workload::ksi::planted_instance;

fn make_rects(n: usize, dim: usize, seed: u64) -> (Vec<(Rect, Vec<Keyword>)>, Vec<Keyword>) {
    let inst = planted_instance(n, 8, 2, 0, 6, seed);
    let mut rng = StdRng::seed_from_u64(seed + 1);
    let rects = inst
        .docs
        .iter()
        .map(|d| {
            let lo: Vec<f64> = (0..dim).map(|_| rng.gen_range(0.0..1e6)).collect();
            let hi: Vec<f64> = lo.iter().map(|l| l + rng.gen_range(1.0..2e4)).collect();
            (Rect::new(&lo, &hi), d.keywords().to_vec())
        })
        .collect();
    (rects, inst.query)
}

fn bench_rr(c: &mut Criterion) {
    for dim in [1usize, 2] {
        let mut g = c.benchmark_group(format!("rr_kw/d{dim}"));
        for n in [20_000usize, 60_000] {
            let (rects, kws) = make_rects(n, dim, 7 + n as u64);
            let index = RrKwIndex::build(&rects, 2);
            let q = Rect::new(&vec![4e5; dim], &vec![6e5; dim]);
            g.bench_with_input(BenchmarkId::new("index", n), &n, |b, _| {
                b.iter(|| index.query(&q, &kws))
            });
            g.bench_with_input(BenchmarkId::new("scan", n), &n, |b, _| {
                b.iter(|| rr_bruteforce(&rects, &q, &kws))
            });
        }
        g.finish();
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_rr
}
criterion_main!(benches);
