//! Criterion bench for §1.2: pure k-set intersection, the hardness
//! core of every problem in the paper — framework vs galloping merge,
//! reporting and emptiness.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use skq_core::ksi::KsiIndex;
use skq_invidx::InvertedIndex;
use skq_workload::ksi::planted_instance;

fn bench_reporting(c: &mut Criterion) {
    let mut g = c.benchmark_group("ksi/reporting");
    let n = 100_000;
    for out in [0usize, 100, 10_000] {
        let inst = planted_instance(n, 8, 3, out, 6, 71);
        let ksi = KsiIndex::build(&inst.docs, 3);
        let inv = InvertedIndex::build(&inst.docs);
        g.bench_with_input(BenchmarkId::new("framework", out), &out, |b, _| {
            b.iter(|| ksi.intersect(&inst.query))
        });
        g.bench_with_input(BenchmarkId::new("inverted", out), &out, |b, _| {
            b.iter(|| inv.intersect(&inst.query))
        });
    }
    g.finish();
}

fn bench_emptiness(c: &mut Criterion) {
    let mut g = c.benchmark_group("ksi/emptiness");
    for n in [30_000usize, 100_000] {
        let inst = planted_instance(n, 8, 3, 0, 6, 72);
        let ksi = KsiIndex::build(&inst.docs, 3);
        let inv = InvertedIndex::build(&inst.docs);
        g.bench_with_input(BenchmarkId::new("framework", n), &n, |b, _| {
            b.iter(|| ksi.intersection_is_empty(&inst.query))
        });
        g.bench_with_input(BenchmarkId::new("inverted", n), &n, |b, _| {
            b.iter(|| inv.intersection_is_empty(&inst.query))
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_reporting, bench_emptiness
}
criterion_main!(benches);
