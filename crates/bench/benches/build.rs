//! Criterion bench for index construction: every index type across N,
//! plus the leaf-capacity ablation of the framework.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use skq_bench::planted_spatial;
use skq_core::framework::{FrameworkConfig, KdPartitioner, TransformedIndex};
use skq_core::ksi::KsiIndex;
use skq_core::orp::OrpKwIndex;
use skq_core::sp::{SpKwIndex, SpStrategy};
use skq_core::srp::SrpKwIndex;

fn bench_build(c: &mut Criterion) {
    let mut g = c.benchmark_group("build");
    g.sample_size(10);
    for n in [10_000usize, 30_000] {
        let ps2 = planted_spatial(n, 2, 2, 100, 1e6, 61);
        let ps3 = planted_spatial(n, 3, 2, 100, 1e6, 62);
        g.bench_with_input(BenchmarkId::new("orp_2d", n), &n, |b, _| {
            b.iter(|| OrpKwIndex::build(&ps2.dataset, 2))
        });
        g.bench_with_input(BenchmarkId::new("orp_3d_dimred", n), &n, |b, _| {
            b.iter(|| OrpKwIndex::build(&ps3.dataset, 2))
        });
        g.bench_with_input(BenchmarkId::new("sp_willard", n), &n, |b, _| {
            b.iter(|| SpKwIndex::build_with_strategy(&ps2.dataset, 2, SpStrategy::Willard))
        });
        g.bench_with_input(BenchmarkId::new("sp_kd", n), &n, |b, _| {
            b.iter(|| SpKwIndex::build_with_strategy(&ps2.dataset, 2, SpStrategy::Kd))
        });
        g.bench_with_input(BenchmarkId::new("srp", n), &n, |b, _| {
            b.iter(|| SrpKwIndex::build(&ps2.dataset, 2))
        });
        g.bench_with_input(BenchmarkId::new("ksi", n), &n, |b, _| {
            b.iter(|| KsiIndex::build(ps2.dataset.docs(), 2))
        });
    }
    g.finish();
}

/// Leaf-capacity ablation: smaller leaves mean more nodes (more space,
/// slower builds) but less per-leaf scanning; the default 24 sits at
/// the flat part of the query-time curve.
fn bench_leaf_weight(c: &mut Criterion) {
    use skq_geom::{Point, RankSpace, Rect, Region};
    let ps = planted_spatial(30_000, 2, 2, 300, 1e6, 63);
    let rank = RankSpace::build(ps.dataset.points());
    let rank_points: Vec<Point> = (0..ps.dataset.len()).map(|i| rank.point(i)).collect();
    let weights: Vec<u64> = (0..ps.dataset.len())
        .map(|i| ps.dataset.weight(i))
        .collect();
    let mut g = c.benchmark_group("ablation/leaf_weight");
    g.sample_size(15);
    for leaf in [8u64, 24, 96, 384] {
        let tree = TransformedIndex::build(
            KdPartitioner::new(rank_points.clone(), weights.clone()),
            ps.dataset.docs().to_vec(),
            2,
            FrameworkConfig { leaf_weight: leaf },
        );
        let _rq = rank.rect(&Rect::full(2)).expect("non-empty");
        let kws = ps.query_keywords.clone();
        g.bench_with_input(BenchmarkId::new("query", leaf), &leaf, |b, _| {
            b.iter(|| {
                let mut out = Vec::new();
                let mut stats = skq_core::stats::QueryStats::new();
                tree.query(
                    &kws,
                    &|cell| {
                        let _ = cell;
                        Region::Covered
                    },
                    &|_| true,
                    usize::MAX,
                    &mut out,
                    &mut stats,
                );
                out
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_build, bench_leaf_weight
}
criterion_main!(benches);
