//! Criterion bench for Table 1 rows 8–9: SRP-KW ball queries via the
//! lifting reduction.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use skq_bench::planted_spatial;
use skq_core::naive::{FullScan, KeywordsFirst};
use skq_core::srp::SrpKwIndex;
use skq_geom::{Ball, Point};

fn bench_srp(c: &mut Criterion) {
    let mut g = c.benchmark_group("srp_kw/ball");
    for n in [20_000usize, 60_000] {
        let ps = planted_spatial(n, 2, 2, 200, 1e6, 41);
        let index = SrpKwIndex::build(&ps.dataset, 2);
        let kf = KeywordsFirst::build(&ps.dataset);
        let fs = FullScan::new(&ps.dataset);
        let ball = Ball::new(Point::new2(5e5, 5e5), 2e5);
        let kws = ps.query_keywords.clone();
        g.bench_with_input(BenchmarkId::new("index", n), &n, |b, _| {
            b.iter(|| index.query(&ball, &kws))
        });
        g.bench_with_input(BenchmarkId::new("keywords_only", n), &n, |b, _| {
            b.iter(|| kf.query_ball(&ball, &kws))
        });
        g.bench_with_input(BenchmarkId::new("full_scan", n), &n, |b, _| {
            b.iter(|| fs.query_ball(&ball, &kws))
        });
    }
    g.finish();
}

fn bench_srp_radius(c: &mut Criterion) {
    let mut g = c.benchmark_group("srp_kw/vs_radius");
    let ps = planted_spatial(60_000, 2, 2, 2_000, 1e6, 42);
    let index = SrpKwIndex::build(&ps.dataset, 2);
    let kws = ps.query_keywords.clone();
    for r in [1e4, 1e5, 5e5] {
        let ball = Ball::new(Point::new2(5e5, 5e5), r);
        g.bench_with_input(BenchmarkId::new("index", r as u64), &r, |b, _| {
            b.iter(|| index.query(&ball, &kws))
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15);
    targets = bench_srp, bench_srp_radius
}
criterion_main!(benches);
