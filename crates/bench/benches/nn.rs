//! Criterion bench for Table 1 rows 5 and 10–11: the two
//! nearest-neighbour-with-keywords problems, across t.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use skq_bench::planted_spatial;
use skq_core::naive::KeywordsFirst;
use skq_core::nn_l2::L2NnIndex;
use skq_core::nn_linf::LinfNnIndex;
use skq_geom::Point;

fn bench_linf(c: &mut Criterion) {
    let ps = planted_spatial(60_000, 2, 2, 6_000, 1e6, 21);
    let index = LinfNnIndex::build(&ps.dataset, 2);
    let kf = KeywordsFirst::build(&ps.dataset);
    let q = Point::new2(5e5, 5e5);
    let kws = ps.query_keywords.clone();
    let mut g = c.benchmark_group("nn_kw/linf_vs_t");
    for t in [1usize, 16, 256] {
        g.bench_with_input(BenchmarkId::new("index", t), &t, |b, &t| {
            b.iter(|| index.query(&q, t, &kws))
        });
        g.bench_with_input(BenchmarkId::new("keywords_only", t), &t, |b, &t| {
            b.iter(|| kf.nn_linf(&q, t, &kws))
        });
    }
    g.finish();
}

fn bench_l2(c: &mut Criterion) {
    let ps = planted_spatial(60_000, 2, 2, 6_000, 1e6, 22);
    let index = L2NnIndex::build(&ps.dataset, 2);
    let kf = KeywordsFirst::build(&ps.dataset);
    let q = Point::new2(5e5, 5e5);
    let kws = ps.query_keywords.clone();
    let mut g = c.benchmark_group("nn_kw/l2_vs_t");
    for t in [1usize, 16, 64] {
        g.bench_with_input(BenchmarkId::new("index", t), &t, |b, &t| {
            b.iter(|| index.query(&q, t, &kws))
        });
        g.bench_with_input(BenchmarkId::new("keywords_only", t), &t, |b, &t| {
            b.iter(|| kf.nn_l2(&q, t, &kws))
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15);
    targets = bench_linf, bench_l2
}
criterion_main!(benches);
