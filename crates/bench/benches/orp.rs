//! Criterion bench for Table 1 rows 1–3: ORP-KW query time, index vs
//! both naive baselines, across N, k, d, and OUT.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use skq_bench::planted_spatial;
use skq_core::naive::{FullScan, KeywordsFirst, StructuredFirst};
use skq_core::orp::OrpKwIndex;
use skq_geom::Rect;

fn bench_orp_vs_n(c: &mut Criterion) {
    let mut g = c.benchmark_group("orp_kw/out0_vs_n");
    for n in [20_000usize, 60_000] {
        let ps = planted_spatial(n, 2, 2, 0, 1e6, 42);
        let index = OrpKwIndex::build(&ps.dataset, 2);
        let kf = KeywordsFirst::build(&ps.dataset);
        let sf = StructuredFirst::build(&ps.dataset);
        let fs = FullScan::new(&ps.dataset);
        let q = Rect::full(2);
        let kws = ps.query_keywords.clone();
        g.bench_with_input(BenchmarkId::new("index", n), &n, |b, _| {
            b.iter(|| index.query(&q, &kws))
        });
        g.bench_with_input(BenchmarkId::new("keywords_only", n), &n, |b, _| {
            b.iter(|| kf.query_rect(&q, &kws))
        });
        g.bench_with_input(BenchmarkId::new("structured_only", n), &n, |b, _| {
            b.iter(|| sf.query_rect(&q, &kws))
        });
        g.bench_with_input(BenchmarkId::new("full_scan", n), &n, |b, _| {
            b.iter(|| fs.query_rect(&q, &kws))
        });
    }
    g.finish();
}

fn bench_orp_vs_k(c: &mut Criterion) {
    let mut g = c.benchmark_group("orp_kw/out0_vs_k");
    for k in [2usize, 3, 4] {
        let ps = planted_spatial(40_000, 2, k, 0, 1e6, 43);
        let index = OrpKwIndex::build(&ps.dataset, k);
        let q = Rect::full(2);
        let kws = ps.query_keywords.clone();
        g.bench_with_input(BenchmarkId::new("index", k), &k, |b, _| {
            b.iter(|| index.query(&q, &kws))
        });
    }
    g.finish();
}

fn bench_orp_vs_out(c: &mut Criterion) {
    let mut g = c.benchmark_group("orp_kw/vs_out");
    for out in [0usize, 100, 10_000] {
        let ps = planted_spatial(60_000, 2, 2, out, 1e6, 44);
        let index = OrpKwIndex::build(&ps.dataset, 2);
        let q = Rect::full(2);
        let kws = ps.query_keywords.clone();
        g.bench_with_input(BenchmarkId::new("index", out), &out, |b, _| {
            b.iter(|| index.query(&q, &kws))
        });
    }
    g.finish();
}

fn bench_orp_3d_dimred(c: &mut Criterion) {
    let mut g = c.benchmark_group("orp_kw/dimred_3d");
    for n in [20_000usize, 60_000] {
        let ps = planted_spatial(n, 3, 2, 0, 1e6, 45);
        let index = OrpKwIndex::build(&ps.dataset, 2);
        let q = Rect::full(3);
        let kws = ps.query_keywords.clone();
        g.bench_with_input(BenchmarkId::new("index", n), &n, |b, _| {
            b.iter(|| index.query(&q, &kws))
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_orp_vs_n, bench_orp_vs_k, bench_orp_vs_out, bench_orp_3d_dimred
}
criterion_main!(benches);
