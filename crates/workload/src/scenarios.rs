//! Preset workload scenarios.
//!
//! The spatial-keyword literature the paper addresses evaluates on a
//! handful of recurring workload shapes; these presets capture them as
//! one-call constructors so examples, tests, and user experiments don't
//! re-derive generator configurations.

use skq_core::dataset::Dataset;

use crate::spatial::{KeywordModel, SpatialKeywordConfig, SpatialModel};

/// A city of points of interest: clustered geometry (neighbourhoods),
/// Zipf-distributed tags with spatial correlation ("beach" tags cluster
/// near the beach). The canonical geo-textual workload.
pub fn city(num_objects: usize, seed: u64) -> Dataset {
    SpatialKeywordConfig {
        num_objects,
        dim: 2,
        vocab: (num_objects / 100).clamp(50, 5_000),
        doc_len: (3, 8),
        extent: 100_000.0,
        integer_coords: true,
        spatial: SpatialModel::Clustered {
            count: (num_objects / 4_000).max(3),
            spread: 0.04,
        },
        keywords: KeywordModel::ZipfCorrelated(0.9),
    }
    .generate(seed)
}

/// A web-document collection projected onto two structured attributes
/// (e.g. publication time × length): uniform geometry, heavy Zipf
/// vocabulary, longer documents.
pub fn web_docs(num_objects: usize, seed: u64) -> Dataset {
    SpatialKeywordConfig {
        num_objects,
        dim: 2,
        vocab: (num_objects / 10).clamp(200, 50_000),
        doc_len: (5, 12),
        extent: 1_000_000.0,
        integer_coords: false,
        spatial: SpatialModel::Uniform,
        keywords: KeywordModel::Zipf(1.1),
    }
    .generate(seed)
}

/// A sensor network: 3D positions (x, y, elevation), small uniform
/// vocabulary of status tags, short documents — the regime where the
/// dimension-reduction tree (Theorem 2) is exercised.
pub fn sensor_net(num_objects: usize, seed: u64) -> Dataset {
    SpatialKeywordConfig {
        num_objects,
        dim: 3,
        vocab: 64,
        doc_len: (2, 5),
        extent: 10_000.0,
        integer_coords: true,
        spatial: SpatialModel::Uniform,
        keywords: KeywordModel::Uniform,
    }
    .generate(seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn city_shape() {
        let d = city(5_000, 1);
        assert_eq!(d.len(), 5_000);
        assert_eq!(d.dim(), 2);
        // Integer coordinates and clustered spread.
        assert!(d.point(0).coords().iter().all(|c| c.fract() == 0.0));
        assert!(d.input_size() >= 15_000);
    }

    #[test]
    fn web_docs_shape() {
        let d = web_docs(2_000, 2);
        assert_eq!(d.dim(), 2);
        // Long documents on average.
        assert!(d.input_size() as f64 / d.len() as f64 >= 5.0);
    }

    #[test]
    fn sensor_net_shape() {
        let d = sensor_net(2_000, 3);
        assert_eq!(d.dim(), 3);
        assert!(d.num_keywords() <= 64);
    }

    #[test]
    fn scenarios_are_deterministic() {
        let a = city(500, 9);
        let b = city(500, 9);
        for i in 0..a.len() {
            assert_eq!(a.point(i), b.point(i));
            assert_eq!(a.doc(i), b.doc(i));
        }
    }
}
