//! Zipf-distributed keyword sampling.
//!
//! Real text corpora have heavily skewed keyword frequencies; the
//! large/small classification at the heart of the paper's framework
//! reacts directly to that skew (frequent keywords go "large" near the
//! root, rare ones materialize early), so the experiments exercise both
//! uniform and Zipfian documents.

use rand::Rng;

/// A sampler over `0..n` with `P(i) ∝ 1/(i+1)^s`.
#[derive(Clone, Debug)]
pub struct Zipf {
    /// Cumulative (unnormalized) weights.
    cumulative: Vec<f64>,
}

impl Zipf {
    /// Creates a sampler over `0..n` with exponent `s ≥ 0`
    /// (`s = 0` is uniform).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `s` is negative/NaN.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf needs a non-empty support");
        assert!(s >= 0.0, "exponent must be non-negative");
        let mut cumulative = Vec::with_capacity(n);
        let mut acc = 0.0;
        for i in 0..n {
            acc += 1.0 / ((i + 1) as f64).powf(s);
            cumulative.push(acc);
        }
        Self { cumulative }
    }

    /// The support size `n`.
    pub fn n(&self) -> usize {
        self.cumulative.len()
    }

    /// Draws one value in `0..n`.
    pub fn sample(&self, rng: &mut impl Rng) -> u32 {
        let total = *self.cumulative.last().expect("non-empty");
        let x: f64 = rng.gen_range(0.0..total);
        self.cumulative.partition_point(|&c| c <= x) as u32
    }

    /// The probability of value `i`.
    pub fn probability(&self, i: usize) -> f64 {
        let total = *self.cumulative.last().expect("non-empty");
        let prev = if i == 0 { 0.0 } else { self.cumulative[i - 1] };
        (self.cumulative[i] - prev) / total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn uniform_when_s_zero() {
        let z = Zipf::new(4, 0.0);
        for i in 0..4 {
            assert!((z.probability(i) - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn skewed_prefers_small_ids() {
        let z = Zipf::new(100, 1.0);
        assert!(z.probability(0) > 10.0 * z.probability(50));
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = [0u32; 100];
        for _ in 0..20_000 {
            counts[z.sample(&mut rng) as usize] += 1;
        }
        assert!(counts[0] > counts[10]);
        assert!(counts[0] > counts[99] * 5);
    }

    #[test]
    fn samples_cover_support() {
        let z = Zipf::new(5, 1.5);
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 5];
        for _ in 0..5_000 {
            seen[z.sample(&mut rng) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn probabilities_sum_to_one() {
        let z = Zipf::new(37, 0.8);
        let sum: f64 = (0..37).map(|i| z.probability(i)).sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }
}
