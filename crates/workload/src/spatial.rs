//! Spatial-keyword dataset generation.

use rand::{rngs::StdRng, Rng, SeedableRng};
use skq_core::dataset::Dataset;
use skq_geom::Point;
use skq_invidx::Keyword;

use crate::zipf::Zipf;

/// How points are placed in `[0, extent]^d`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum SpatialModel {
    /// Independent uniform coordinates.
    Uniform,
    /// Gaussian clusters around `count` random centers with the given
    /// relative standard deviation (fraction of the extent).
    Clustered {
        /// Number of cluster centers.
        count: usize,
        /// Standard deviation as a fraction of the extent.
        spread: f64,
    },
}

/// How documents are drawn.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum KeywordModel {
    /// Keywords uniform over the vocabulary.
    Uniform,
    /// Zipf-distributed keyword frequencies with the given exponent.
    Zipf(f64),
    /// Zipf frequencies plus spatial correlation: each keyword has a
    /// "home region" and is boosted for points inside it, mimicking
    /// geo-tags ("beach" clusters on the coast).
    ZipfCorrelated(f64),
}

/// Configuration for a synthetic spatial-keyword dataset.
#[derive(Clone, Debug)]
pub struct SpatialKeywordConfig {
    /// Number of objects `|D|`.
    pub num_objects: usize,
    /// Dimensionality `d`.
    pub dim: usize,
    /// Vocabulary size `W`.
    pub vocab: usize,
    /// Document length range (inclusive); `N ≈ num_objects · avg len`.
    pub doc_len: (usize, usize),
    /// Coordinate extent: points live in `[0, extent]^d`.
    pub extent: f64,
    /// Round coordinates to integers (required by L2NN-KW).
    pub integer_coords: bool,
    /// Point placement.
    pub spatial: SpatialModel,
    /// Document distribution.
    pub keywords: KeywordModel,
}

impl Default for SpatialKeywordConfig {
    fn default() -> Self {
        Self {
            num_objects: 10_000,
            dim: 2,
            vocab: 1_000,
            doc_len: (3, 8),
            extent: 1_000_000.0,
            integer_coords: false,
            spatial: SpatialModel::Uniform,
            keywords: KeywordModel::Zipf(1.0),
        }
    }
}

impl SpatialKeywordConfig {
    /// Generates the dataset deterministically from `seed`.
    pub fn generate(&self, seed: u64) -> Dataset {
        assert!(self.num_objects > 0 && self.dim >= 1 && self.vocab >= 1);
        assert!(self.doc_len.0 >= 1 && self.doc_len.0 <= self.doc_len.1);
        let mut rng = StdRng::seed_from_u64(seed);

        // Cluster centers (if clustered).
        let centers: Vec<Vec<f64>> = match self.spatial {
            SpatialModel::Uniform => Vec::new(),
            SpatialModel::Clustered { count, .. } => (0..count.max(1))
                .map(|_| {
                    (0..self.dim)
                        .map(|_| rng.gen_range(0.0..self.extent))
                        .collect()
                })
                .collect(),
        };

        // Keyword frequency model and (for the correlated model) each
        // keyword's home region center and radius.
        let zipf = match self.keywords {
            KeywordModel::Uniform => Zipf::new(self.vocab, 0.0),
            KeywordModel::Zipf(s) | KeywordModel::ZipfCorrelated(s) => Zipf::new(self.vocab, s),
        };
        let homes: Vec<(Vec<f64>, f64)> = match self.keywords {
            KeywordModel::ZipfCorrelated(_) => (0..self.vocab)
                .map(|_| {
                    let c: Vec<f64> = (0..self.dim)
                        .map(|_| rng.gen_range(0.0..self.extent))
                        .collect();
                    let r = rng.gen_range(0.1..0.5) * self.extent;
                    (c, r)
                })
                .collect(),
            _ => Vec::new(),
        };

        let parts: Vec<(Point, Vec<Keyword>)> = (0..self.num_objects)
            .map(|_| {
                let coords: Vec<f64> = match self.spatial {
                    SpatialModel::Uniform => (0..self.dim)
                        .map(|_| rng.gen_range(0.0..self.extent))
                        .collect(),
                    SpatialModel::Clustered { spread, .. } => {
                        let c = &centers[rng.gen_range(0..centers.len())];
                        (0..self.dim)
                            .map(|d| {
                                let g = gaussian(&mut rng) * spread * self.extent;
                                (c[d] + g).clamp(0.0, self.extent)
                            })
                            .collect()
                    }
                };
                let coords: Vec<f64> = if self.integer_coords {
                    coords.iter().map(|c| c.round()).collect()
                } else {
                    coords
                };
                let point = Point::new(&coords);

                let len = rng.gen_range(self.doc_len.0..=self.doc_len.1);
                let mut doc = Vec::with_capacity(len);
                let mut guard = 0;
                while doc.len() < len && guard < len * 50 {
                    guard += 1;
                    let w = zipf.sample(&mut rng);
                    if let KeywordModel::ZipfCorrelated(_) = self.keywords {
                        // Accept w only with high probability inside its
                        // home region, low outside.
                        let (home, radius) = &homes[w as usize];
                        let dist_sq: f64 = coords
                            .iter()
                            .zip(home)
                            .map(|(a, b)| (a - b) * (a - b))
                            .sum();
                        let inside = dist_sq <= radius * radius;
                        let accept = if inside { 0.95 } else { 0.15 };
                        if rng.gen_range(0.0..1.0) > accept {
                            continue;
                        }
                    }
                    if !doc.contains(&w) {
                        doc.push(w);
                    }
                }
                if doc.is_empty() {
                    doc.push(zipf.sample(&mut rng)); // documents are non-empty
                }
                (point, doc)
            })
            .collect();
        Dataset::from_parts(parts)
    }
}

/// A standard-normal sample (Box–Muller).
fn gaussian(rng: &mut impl Rng) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let cfg = SpatialKeywordConfig {
            num_objects: 100,
            ..Default::default()
        };
        let a = cfg.generate(7);
        let b = cfg.generate(7);
        assert_eq!(a.len(), b.len());
        for i in 0..a.len() {
            assert_eq!(a.point(i), b.point(i));
            assert_eq!(a.doc(i), b.doc(i));
        }
        let c = cfg.generate(8);
        let differs = (0..a.len()).any(|i| a.point(i) != c.point(i));
        assert!(differs, "different seeds should differ");
    }

    #[test]
    fn respects_sizes() {
        let cfg = SpatialKeywordConfig {
            num_objects: 500,
            dim: 3,
            vocab: 50,
            doc_len: (2, 4),
            ..Default::default()
        };
        let d = cfg.generate(1);
        assert_eq!(d.len(), 500);
        assert_eq!(d.dim(), 3);
        assert!(d.input_size() >= 500 && d.input_size() <= 2000);
        assert!(d.num_keywords() <= 50);
    }

    #[test]
    fn integer_coords_rounded() {
        let cfg = SpatialKeywordConfig {
            num_objects: 50,
            integer_coords: true,
            extent: 1000.0,
            ..Default::default()
        };
        let d = cfg.generate(2);
        for i in 0..d.len() {
            for &c in d.point(i).coords() {
                assert_eq!(c.fract(), 0.0);
            }
        }
    }

    #[test]
    fn clustered_points_concentrate() {
        let cfg = SpatialKeywordConfig {
            num_objects: 2000,
            extent: 1000.0,
            spatial: SpatialModel::Clustered {
                count: 3,
                spread: 0.01,
            },
            ..Default::default()
        };
        let d = cfg.generate(3);
        // With 3 tight clusters, pairwise coordinate variance along each
        // axis is far below the uniform variance (extent²/12).
        let mean: f64 = (0..d.len()).map(|i| d.point(i).get(0)).sum::<f64>() / d.len() as f64;
        let var: f64 = (0..d.len())
            .map(|i| (d.point(i).get(0) - mean).powi(2))
            .sum::<f64>()
            / d.len() as f64;
        // Not a strict bound — just "clearly not uniform".
        assert!(var < 1000.0f64.powi(2) / 4.0);
    }

    #[test]
    fn zipf_documents_are_skewed() {
        let cfg = SpatialKeywordConfig {
            num_objects: 3000,
            vocab: 100,
            keywords: KeywordModel::Zipf(1.2),
            ..Default::default()
        };
        let d = cfg.generate(4);
        let mut counts = vec![0usize; 100];
        for i in 0..d.len() {
            for &w in d.doc(i).keywords() {
                counts[w as usize] += 1;
            }
        }
        assert!(counts[0] > counts[50].max(1) * 3);
    }

    #[test]
    fn correlated_keywords_cluster_spatially() {
        let cfg = SpatialKeywordConfig {
            num_objects: 4000,
            vocab: 20,
            extent: 1000.0,
            keywords: KeywordModel::ZipfCorrelated(0.5),
            ..Default::default()
        };
        let d = cfg.generate(5);
        // For the most frequent keyword, the variance of the positions of
        // its holders should be below uniform variance (it concentrates
        // in its home region).
        let mut counts = [0usize; 20];
        for i in 0..d.len() {
            for &w in d.doc(i).keywords() {
                counts[w as usize] += 1;
            }
        }
        let top = counts
            .iter()
            .enumerate()
            .max_by_key(|(_, &c)| c)
            .map(|(w, _)| w as u32)
            .unwrap();
        let holders: Vec<usize> = (0..d.len()).filter(|&i| d.doc(i).contains(top)).collect();
        assert!(holders.len() > 100);
        let mean: f64 =
            holders.iter().map(|&i| d.point(i).get(0)).sum::<f64>() / holders.len() as f64;
        let var: f64 = holders
            .iter()
            .map(|&i| (d.point(i).get(0) - mean).powi(2))
            .sum::<f64>()
            / holders.len() as f64;
        let uniform_var = 1000.0f64.powi(2) / 12.0;
        assert!(var < uniform_var, "var {var} vs uniform {uniform_var}");
    }
}
