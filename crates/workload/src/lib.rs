//! Seeded synthetic workloads for structured keyword search.
//!
//! The paper is a theory paper with no empirical section, so the
//! experiment harness validates its bounds on synthetic data. The
//! generators here are designed so that every quantity the bounds are
//! stated in — the input size `N`, the number of query keywords `k`,
//! the output size `OUT`, and geometric selectivity — can be swept
//! *independently*:
//!
//! * [`SpatialKeywordConfig`] — datasets of points with documents:
//!   uniform or clustered geometry, uniform or Zipf keyword
//!   frequencies, optional spatial correlation of keywords (tags that
//!   concentrate in regions, as in real POI data);
//! * [`queries`] — query generators with controlled selectivity;
//! * [`ksi`] — planted `k`-set-intersection instances with an exact,
//!   chosen intersection size;
//! * [`scenarios`] — one-call presets for the recurring workload shapes
//!   of the spatial-keyword literature (city POIs, web documents,
//!   sensor networks).
//!
//! Everything is deterministic given a seed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ksi;
pub mod queries;
pub mod scenarios;
pub mod spatial;
pub mod zipf;

pub use spatial::{KeywordModel, SpatialKeywordConfig, SpatialModel};
pub use zipf::Zipf;
