//! Planted `k`-set-intersection instances.
//!
//! The tightness discussion (§1.2, Lemma 8) is about how query time
//! scales with the intersection size `OUT`; these instances let the
//! harness dial `OUT` exactly: `k` designated sets share exactly
//! `planted` elements, and the remaining mass is spread so that any
//! proper subset of the designated sets has a much larger intersection
//! (making the instance hard for merge-based strategies).

use rand::{rngs::StdRng, Rng, SeedableRng};
use skq_invidx::{Document, Keyword};

/// A planted k-SI instance as per-element membership documents.
#[derive(Debug)]
pub struct PlantedKsi {
    /// `docs[e]` lists the sets containing element `e`.
    pub docs: Vec<Document>,
    /// The ids of the `k` designated query sets.
    pub query: Vec<Keyword>,
    /// The exact intersection of the designated sets.
    pub expected: Vec<u32>,
}

/// Builds an instance with `num_sets` sets over `n` elements, where the
/// first `k` sets intersect in exactly `planted` elements. Each element
/// belongs to between 1 and `max_membership` sets.
///
/// # Panics
///
/// Panics if `planted > n`, `k > num_sets`, or sizes are zero.
pub fn planted_instance(
    n: usize,
    num_sets: usize,
    k: usize,
    planted: usize,
    max_membership: usize,
    seed: u64,
) -> PlantedKsi {
    assert!(n > 0 && num_sets >= k && k >= 2 && planted <= n);
    assert!(max_membership >= 1);
    let mut rng = StdRng::seed_from_u64(seed);
    let query: Vec<Keyword> = (0..k as Keyword).collect();

    let mut docs: Vec<Vec<Keyword>> = Vec::with_capacity(n);
    let mut expected = Vec::with_capacity(planted);
    for e in 0..n {
        if e < planted {
            // Planted elements: in all k designated sets.
            let mut d: Vec<Keyword> = query.clone();
            for _ in 0..rng.gen_range(0..max_membership.saturating_sub(k) + 1) {
                d.push(rng.gen_range(0..num_sets) as Keyword);
            }
            expected.push(e as u32);
            docs.push(d);
        } else {
            // Distractors: member of several sets but *never* all k
            // designated ones — drop one designated set at random.
            let skip = rng.gen_range(0..k) as Keyword;
            let mut d = Vec::new();
            for _ in 0..rng.gen_range(1..=max_membership) {
                let s = rng.gen_range(0..num_sets) as Keyword;
                if s != skip {
                    d.push(s);
                }
            }
            if d.is_empty() {
                // Keep documents non-empty with a non-designated set if
                // possible, else any set other than `skip`.
                let fallback = if num_sets > k {
                    rng.gen_range(k..num_sets) as Keyword
                } else {
                    (skip + 1) % k as Keyword
                };
                d.push(fallback);
            }
            docs.push(d);
        }
    }
    PlantedKsi {
        docs: docs.into_iter().map(Document::new).collect(),
        query,
        expected,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skq_invidx::InvertedIndex;

    #[test]
    fn intersection_is_exactly_planted() {
        for planted in [0, 1, 17, 100] {
            let inst = planted_instance(2000, 10, 3, planted, 6, 42);
            let inv = InvertedIndex::build(&inst.docs);
            let got = inv.intersect(&inst.query);
            assert_eq!(got, inst.expected, "planted={planted}");
            assert_eq!(got.len(), planted);
        }
    }

    #[test]
    fn pairwise_intersections_are_large() {
        // The instance must be hard: dropping one designated set leaves
        // a much bigger intersection than the planted k-way one.
        let inst = planted_instance(5000, 6, 3, 10, 5, 7);
        let inv = InvertedIndex::build(&inst.docs);
        let pair = inv.intersect(&inst.query[..2]);
        assert!(
            pair.len() > 20 * inst.expected.len(),
            "pairwise {} vs planted {}",
            pair.len(),
            inst.expected.len()
        );
    }

    #[test]
    fn documents_nonempty_and_within_bounds() {
        let inst = planted_instance(1000, 8, 2, 5, 4, 3);
        for d in &inst.docs {
            assert!(!d.is_empty());
            assert!(d.len() <= 8);
        }
    }
}
