//! Query generation with controlled selectivity.

use rand::{rngs::StdRng, Rng, SeedableRng};
use skq_core::dataset::Dataset;
use skq_geom::{Ball, ConvexPolytope, Halfspace, Point, Rect};
use skq_invidx::Keyword;

/// A deterministic query generator bound to a dataset.
pub struct QueryGen {
    rng: StdRng,
    extent: Vec<(f64, f64)>,
    keyword_freq: Vec<(Keyword, usize)>,
    dim: usize,
}

impl QueryGen {
    /// Creates a generator; `seed` fixes the query sequence.
    pub fn new(dataset: &Dataset, seed: u64) -> Self {
        let dim = dataset.dim();
        let extent: Vec<(f64, f64)> = (0..dim)
            .map(|d| {
                let lo = dataset
                    .points()
                    .iter()
                    .map(|p| p.get(d))
                    .fold(f64::INFINITY, f64::min);
                let hi = dataset
                    .points()
                    .iter()
                    .map(|p| p.get(d))
                    .fold(f64::NEG_INFINITY, f64::max);
                (lo, hi)
            })
            .collect();
        let mut counts = std::collections::HashMap::new();
        for doc in dataset.docs() {
            for &w in doc.keywords() {
                *counts.entry(w).or_insert(0usize) += 1;
            }
        }
        let mut keyword_freq: Vec<(Keyword, usize)> = counts.into_iter().collect();
        keyword_freq.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        Self {
            rng: StdRng::seed_from_u64(seed),
            extent,
            keyword_freq,
            dim,
        }
    }

    /// The number of distinct keywords occurring in the dataset.
    pub fn distinct_keywords(&self) -> usize {
        self.keyword_freq.len()
    }

    /// A rectangle whose side on each dimension is `selectivity^(1/d)`
    /// of the extent — for uniform data its point-selectivity is about
    /// `selectivity`.
    pub fn rect(&mut self, selectivity: f64) -> Rect {
        assert!((0.0..=1.0).contains(&selectivity));
        let frac = selectivity.powf(1.0 / self.dim as f64);
        let mut lo = Vec::with_capacity(self.dim);
        let mut hi = Vec::with_capacity(self.dim);
        for d in 0..self.dim {
            let (elo, ehi) = self.extent[d];
            let side = (ehi - elo) * frac;
            let start = self
                .rng
                .gen_range(elo..(ehi - side).max(elo + f64::MIN_POSITIVE));
            lo.push(start);
            hi.push(start + side);
        }
        Rect::new(&lo, &hi)
    }

    /// A ball with volume-fraction roughly `selectivity` (radius chosen
    /// as for [`rect`](Self::rect) halved).
    pub fn ball(&mut self, selectivity: f64) -> Ball {
        let frac = selectivity.powf(1.0 / self.dim as f64);
        let center = self.point();
        let (elo, ehi) = self.extent[0];
        Ball::new(center, (ehi - elo) * frac / 2.0)
    }

    /// A uniform point inside the data extent.
    pub fn point(&mut self) -> Point {
        let coords: Vec<f64> = (0..self.dim)
            .map(|d| {
                let (lo, hi) = self.extent[d];
                self.rng.gen_range(lo..=hi)
            })
            .collect();
        Point::new(&coords)
    }

    /// A uniform integer point inside the data extent (for L2NN-KW).
    pub fn integer_point(&mut self) -> Point {
        let coords: Vec<f64> = (0..self.dim)
            .map(|d| {
                let (lo, hi) = self.extent[d];
                self.rng.gen_range(lo..=hi).round()
            })
            .collect();
        Point::new(&coords)
    }

    /// `s` random halfspaces through the data extent.
    pub fn halfspaces(&mut self, s: usize) -> ConvexPolytope {
        let hs: Vec<Halfspace> = (0..s)
            .map(|_| {
                let coeffs: Vec<f64> = (0..self.dim)
                    .map(|_| self.rng.gen_range(-1.0..1.0))
                    .collect();
                // Pass the plane near a random data-extent point so it
                // actually cuts the data.
                let p = self.point();
                let bound = p.dot(&coeffs);
                Halfspace::new(&coeffs, bound)
            })
            .collect();
        ConvexPolytope::new(hs)
    }

    /// `k` distinct keywords drawn from a frequency band:
    /// `band ∈ [0, 1]` picks from the most frequent (`0.0`) to the
    /// rarest (`1.0`) portion of the vocabulary. Returns `None` if the
    /// dataset has fewer than `k` distinct keywords.
    pub fn keywords(&mut self, k: usize, band: f64) -> Option<Vec<Keyword>> {
        let m = self.keyword_freq.len();
        if m < k {
            return None;
        }
        // Window of the frequency-ranked vocabulary to draw from.
        let window = (m / 4).max(k);
        let start = ((m - window) as f64 * band) as usize;
        let mut out = Vec::with_capacity(k);
        let mut guard = 0;
        while out.len() < k && guard < 1000 {
            guard += 1;
            let idx = start + self.rng.gen_range(0..window);
            let w = self.keyword_freq[idx.min(m - 1)].0;
            if !out.contains(&w) {
                out.push(w);
            }
        }
        if out.len() == k {
            Some(out)
        } else {
            None
        }
    }

    /// The most frequent `k` distinct keywords (maximizes candidate
    /// sizes, i.e. stresses the "large keyword" path).
    pub fn top_keywords(&self, k: usize) -> Option<Vec<Keyword>> {
        if self.keyword_freq.len() < k {
            return None;
        }
        Some(self.keyword_freq[..k].iter().map(|&(w, _)| w).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spatial::SpatialKeywordConfig;

    fn dataset() -> Dataset {
        SpatialKeywordConfig {
            num_objects: 2000,
            vocab: 100,
            extent: 1000.0,
            ..Default::default()
        }
        .generate(1)
    }

    #[test]
    fn rect_selectivity_is_roughly_right() {
        let d = dataset();
        let mut gen = QueryGen::new(&d, 2);
        let mut total = 0usize;
        let trials = 50;
        for _ in 0..trials {
            let q = gen.rect(0.1);
            total += (0..d.len()).filter(|&i| q.contains(d.point(i))).count();
        }
        let avg = total as f64 / trials as f64 / d.len() as f64;
        assert!((0.02..0.3).contains(&avg), "selectivity {avg}");
    }

    #[test]
    fn keywords_distinct_and_banded() {
        let d = dataset();
        let mut gen = QueryGen::new(&d, 3);
        let frequent = gen.keywords(3, 0.0).unwrap();
        let rare = gen.keywords(3, 1.0).unwrap();
        assert_eq!(frequent.len(), 3);
        for w in &frequent {
            assert_eq!(frequent.iter().filter(|x| *x == w).count(), 1);
        }
        // Frequent band keywords occur more often on average.
        let count = |ws: &[Keyword]| -> usize {
            ws.iter()
                .map(|&w| (0..d.len()).filter(|&i| d.doc(i).contains(w)).count())
                .sum()
        };
        assert!(count(&frequent) > count(&rare));
    }

    #[test]
    fn top_keywords_are_most_frequent() {
        let d = dataset();
        let gen = QueryGen::new(&d, 4);
        let top = gen.top_keywords(2).unwrap();
        let count = |w: Keyword| (0..d.len()).filter(|&i| d.doc(i).contains(w)).count();
        let c0 = count(top[0]);
        for w in 0..100u32 {
            assert!(count(w) <= c0);
        }
    }

    #[test]
    fn balls_and_halfspaces_cut_the_data() {
        let d = dataset();
        let mut gen = QueryGen::new(&d, 5);
        // Balls with moderate selectivity select some but not all points.
        let mut any_mid = false;
        for _ in 0..20 {
            let b = gen.ball(0.1);
            let inside = (0..d.len()).filter(|&i| b.contains(d.point(i))).count();
            if inside > 0 && inside < d.len() {
                any_mid = true;
            }
        }
        assert!(any_mid, "every ball was degenerate");
        // Halfspaces pass through the extent: neither empty nor full.
        let mut any_cut = false;
        for _ in 0..20 {
            let q = gen.halfspaces(1);
            let inside = (0..d.len()).filter(|&i| q.contains(d.point(i))).count();
            if inside > d.len() / 20 && inside < d.len() * 19 / 20 {
                any_cut = true;
            }
        }
        assert!(any_cut, "every halfspace missed the data");
    }

    #[test]
    fn deterministic_sequences() {
        let d = dataset();
        let mut a = QueryGen::new(&d, 9);
        let mut b = QueryGen::new(&d, 9);
        for _ in 0..5 {
            assert_eq!(a.rect(0.05), b.rect(0.05));
            assert_eq!(a.point(), b.point());
        }
    }
}
