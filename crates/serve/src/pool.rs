//! The worker pool: request admission, guarded execution against the
//! current snapshot, panic isolation, and supervised respawn.
//!
//! A [`Server`] owns a [`SnapshotCell`] of the suite, a
//! [`ShardedQueue`] of jobs, and N worker threads. The request path is
//! (DESIGN.md §14):
//!
//! 1. [`Server::submit`] builds a [`skq_core::QueryGuard`] at arrival
//!    time (so a deadline covers queue wait, not just execution) and
//!    enqueues a job, or sheds it with
//!    [`SkqError::Overloaded`] when the queue is full.
//! 2. A worker pops the job, re-checks the guard (admission control: a
//!    request whose deadline lapsed while queued is shed without
//!    touching the index), clones the current snapshot `Arc`, and runs
//!    the query under `catch_unwind` so one poisonous request cannot
//!    take the worker down.
//! 3. The typed outcome travels back over a rendezvous channel; the
//!    caller collects it from the returned [`Pending`].
//!
//! Worker threads themselves run under a supervisor: a panic that
//! escapes the request isolation (e.g. the `serve::worker` fail point)
//! is caught and the serve loop re-entered, bumping
//! `skq_serve_worker_respawns_total` — the pool never shrinks.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use skq_core::concurrency::{available_threads, effective_threads};
use skq_core::error::validate;
use skq_core::failpoints;
use skq_core::sink::{CountSink, ResultSink as _};
use skq_core::suite::OrpKwSuite;
use skq_core::{CancelToken, GuardedSink, QueryGuard, QueryStats, SkqError, TruncatedReason};
use skq_geom::Rect;
use skq_invidx::Keyword;

use crate::queue::ShardedQueue;
use crate::snapshot::{SnapshotCell, Versioned};

/// The brownout ladder: graceful degradation levels entered *before*
/// admission control starts shedding with [`SkqError::Overloaded`].
///
/// As the queue fills past `limited_depth` of capacity, new requests
/// get their result budget clamped to `limited_results` ("limited");
/// past `count_only_depth` they are answered with a count and no
/// result ids at all ("count_only") — the cheapest honest answer the
/// suite can produce. Each reply says which rung served it via
/// [`Reply::degraded`], so clients can distinguish a short answer
/// from a small one.
#[derive(Clone, Copy, Debug)]
pub struct BrownoutConfig {
    /// Queue-depth fraction (of capacity) past which requests run with
    /// a clamped result budget.
    pub limited_depth: f64,
    /// Queue-depth fraction past which requests are answered
    /// count-only.
    pub count_only_depth: f64,
    /// The clamped result budget at the "limited" rung.
    pub limited_results: usize,
}

impl Default for BrownoutConfig {
    fn default() -> Self {
        Self {
            limited_depth: 0.5,
            count_only_depth: 0.85,
            limited_results: 128,
        }
    }
}

/// Sizing and default-limit knobs for a [`Server`].
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Worker threads (0 is clamped to 1 by
    /// [`effective_threads`]).
    pub workers: usize,
    /// Job-queue capacity; a full queue sheds new requests with
    /// [`SkqError::Overloaded`]. 0 rejects every request.
    pub queue_capacity: usize,
    /// Queue stripes; 0 means one per worker.
    pub queue_stripes: usize,
    /// Deadline applied to requests that don't carry their own.
    pub default_deadline: Option<Duration>,
    /// Result budget applied to requests that don't carry their own.
    pub default_max_results: Option<usize>,
    /// Graceful-degradation ladder; `None` (the default) goes straight
    /// from full service to shedding.
    pub brownout: Option<BrownoutConfig>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            workers: available_threads(),
            queue_capacity: 1024,
            queue_stripes: 0,
            default_deadline: None,
            default_max_results: None,
            brownout: None,
        }
    }
}

/// One query request: a rectangle, keywords, and optional per-request
/// limits overriding the server defaults.
#[derive(Clone)]
pub struct Request {
    /// The geometric predicate.
    pub rect: Rect,
    /// The keyword conjunction (any count the suite routes).
    pub keywords: Vec<Keyword>,
    /// Deadline measured from submission; `None` uses the server
    /// default.
    pub deadline: Option<Duration>,
    /// Result budget; `None` uses the server default.
    pub max_results: Option<usize>,
    /// Cooperative cancellation (keep a clone to trip it mid-flight).
    pub cancel: Option<CancelToken>,
}

impl Request {
    /// A request with no per-request limits.
    pub fn new(rect: Rect, keywords: Vec<Keyword>) -> Self {
        Self {
            rect,
            keywords,
            deadline: None,
            max_results: None,
            cancel: None,
        }
    }
}

/// A successful answer.
#[derive(Clone, Debug)]
pub struct Reply {
    /// Matching object ids, sorted.
    pub ids: Vec<u32>,
    /// Execution statistics from the suite traversal.
    pub stats: QueryStats,
    /// The snapshot generation that served this request — lets a
    /// client correlate answers with rotations.
    pub generation: u64,
    /// Which brownout rung served this request: `None` for full
    /// service, `Some("limited")` for a clamped result budget,
    /// `Some("count_only")` for a count with no ids (`stats.emitted`
    /// carries the count).
    pub degraded: Option<&'static str>,
}

/// A submitted request's handle; redeem it with
/// [`wait`](Pending::wait).
#[derive(Debug)]
pub struct Pending {
    rx: Receiver<Result<Reply, SkqError>>,
}

impl Pending {
    /// Blocks until the worker replies.
    ///
    /// # Errors
    ///
    /// Whatever the worker produced ([`SkqError::DeadlineExceeded`],
    /// [`SkqError::Cancelled`], [`SkqError::InvalidQuery`], …), or
    /// [`SkqError::Internal`] if the worker died before replying (its
    /// send half was dropped mid-panic).
    pub fn wait(self) -> Result<Reply, SkqError> {
        self.rx
            .recv()
            .unwrap_or_else(|_| Err(SkqError::Internal("worker lost before replying".into())))
    }
}

struct Job {
    rect: Rect,
    keywords: Vec<Keyword>,
    guard: QueryGuard,
    /// Brownout rung assigned at admission (see [`BrownoutConfig`]).
    degraded: Option<&'static str>,
    enqueued: Instant,
    respond: SyncSender<Result<Reply, SkqError>>,
}

struct Shared {
    snapshots: SnapshotCell<OrpKwSuite>,
    queue: ShardedQueue<Job>,
    shutdown: AtomicBool,
    config: ServerConfig,
}

/// A running worker pool serving guarded queries against a rotating
/// suite snapshot. Dropping the server shuts it down (draining the
/// queue first).
pub struct Server {
    shared: Arc<Shared>,
    workers: Mutex<Vec<JoinHandle<()>>>,
    worker_count: usize,
}

impl Server {
    /// Builds the pool and starts its worker threads, serving `suite`
    /// as generation 1.
    pub fn start(suite: OrpKwSuite, config: ServerConfig) -> Self {
        let worker_count = effective_threads(config.workers);
        let stripes = if config.queue_stripes == 0 {
            worker_count
        } else {
            config.queue_stripes
        };
        let shared = Arc::new(Shared {
            snapshots: SnapshotCell::new(suite),
            queue: ShardedQueue::new(stripes, config.queue_capacity),
            shutdown: AtomicBool::new(false),
            config,
        });
        let workers = (0..worker_count)
            .map(|worker| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || supervisor(&shared, worker))
            })
            .collect();
        Self {
            shared,
            workers: Mutex::new(workers),
            worker_count,
        }
    }

    /// Enqueues a request. The returned [`Pending`] resolves when a
    /// worker has executed (or shed) it.
    ///
    /// # Errors
    ///
    /// * [`SkqError::Overloaded`] — the job queue is at capacity; the
    ///   request was shed without queueing (admission control).
    /// * [`SkqError::Internal`] — the server is shut down.
    pub fn submit(&self, req: Request) -> Result<Pending, SkqError> {
        if self.shared.queue.is_closed() {
            return Err(SkqError::Internal("server is shut down".into()));
        }
        // Brownout: pick the degradation rung from the queue depth
        // observed at admission, before shedding would kick in.
        let degraded = self.shared.config.brownout.as_ref().and_then(|b| {
            let frac =
                self.shared.queue.len() as f64 / (self.shared.config.queue_capacity.max(1)) as f64;
            if frac >= b.count_only_depth {
                Some("count_only")
            } else if frac >= b.limited_depth {
                Some("limited")
            } else {
                None
            }
        });
        if let Some(level) = degraded {
            skq_obs::global()
                .counter("skq_serve_brownout_total", &[("level", level)])
                .inc();
        }
        // Build the guard now: its deadline clock starts at arrival,
        // so time spent queued counts against the budget.
        let mut guard = QueryGuard::new();
        if let Some(d) = req.deadline.or(self.shared.config.default_deadline) {
            guard = guard.with_deadline(d);
        }
        let mut max_results = req.max_results.or(self.shared.config.default_max_results);
        if degraded == Some("limited") {
            let clamp = self
                .shared
                .config
                .brownout
                .map_or(usize::MAX, |b| b.limited_results);
            max_results = Some(max_results.map_or(clamp, |n| n.min(clamp)));
        }
        if let Some(n) = max_results {
            guard = guard.with_max_results(n);
        }
        if let Some(token) = req.cancel {
            guard = guard.with_cancel(token);
        }
        let (tx, rx) = sync_channel(1);
        let job = Job {
            rect: req.rect,
            keywords: req.keywords,
            guard,
            degraded,
            enqueued: Instant::now(),
            respond: tx,
        };
        let registry = skq_obs::global();
        if self.shared.queue.try_push(job).is_err() {
            let queue_depth = self.shared.queue.len();
            registry
                .counter("skq_serve_shed_total", &[("reason", "overloaded")])
                .inc();
            registry
                .counter("skq_serve_requests_total", &[("status", "overloaded")])
                .inc();
            return Err(SkqError::Overloaded { queue_depth });
        }
        registry
            .gauge("skq_serve_queue_depth", &[])
            .set(self.shared.queue.len() as f64);
        Ok(Pending { rx })
    }

    /// Submits and waits: the blocking convenience wrapper over
    /// [`submit`](Self::submit) + [`Pending::wait`].
    ///
    /// # Errors
    ///
    /// Everything [`submit`](Self::submit) and [`Pending::wait`] can
    /// return.
    pub fn query(&self, req: Request) -> Result<Reply, SkqError> {
        self.submit(req)?.wait()
    }

    /// Publishes a freshly built suite as the next snapshot generation
    /// (returned). In-flight requests keep the generation they
    /// started on; no reader blocks for longer than an `Arc` clone.
    pub fn publish(&self, suite: OrpKwSuite) -> u64 {
        self.shared.snapshots.publish(suite)
    }

    /// Decodes a persisted snapshot (the `skq-store` paged format,
    /// DESIGN.md §15) and publishes it as the next generation — a warm
    /// restart: a saved suite rotates in without a rebuild and without
    /// the server holding both the bytes and the decode result for
    /// longer than the load itself.
    ///
    /// # Errors
    ///
    /// Everything [`OrpKwSuite::try_load`] can return —
    /// [`SkqError::Corrupted`] on malformed bytes, [`SkqError::Store`]
    /// on an incompatible writer. On error nothing is published; the
    /// current generation keeps serving.
    pub fn publish_loaded(&self, bytes: &[u8]) -> Result<u64, SkqError> {
        let suite = OrpKwSuite::try_load(bytes)?;
        Ok(self.publish(suite))
    }

    /// The latest fully published snapshot generation.
    pub fn epoch(&self) -> u64 {
        self.shared.snapshots.epoch()
    }

    /// Clones the current snapshot, exactly as a worker would (used by
    /// the rotation tests to validate what's being served).
    pub fn snapshot(&self) -> Arc<Versioned<OrpKwSuite>> {
        self.shared.snapshots.current()
    }

    /// Jobs currently queued (racy by nature).
    pub fn queue_depth(&self) -> usize {
        self.shared.queue.len()
    }

    /// Number of worker threads in the pool.
    pub fn worker_count(&self) -> usize {
        self.worker_count
    }

    /// Stops accepting requests, drains the queue, and joins every
    /// worker. Idempotent; also runs on drop.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.queue.close();
        let mut workers = self.workers.lock().unwrap_or_else(PoisonError::into_inner);
        for handle in workers.drain(..) {
            drop(handle.join());
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Keeps one worker slot alive: re-enters the serve loop whenever a
/// panic escapes the per-request isolation, so the pool's width is
/// invariant under poisonous jobs.
fn supervisor(shared: &Shared, worker: usize) {
    loop {
        if catch_unwind(AssertUnwindSafe(|| serve_loop(shared, worker))).is_ok() {
            // Clean exit: the queue is closed and drained.
            return;
        }
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        skq_obs::global()
            .counter("skq_serve_worker_respawns_total", &[])
            .inc();
    }
}

fn serve_loop(shared: &Shared, worker: usize) {
    while let Some(job) = shared.queue.pop(worker) {
        skq_obs::global()
            .gauge("skq_serve_queue_depth", &[])
            .set(shared.queue.len() as f64);
        // Chaos-only: an armed worker-level fail point must become a
        // real panic so the supervisor's respawn path is the thing
        // tested (the popped job dies with the unwind, exactly like a
        // worker crash between pop and reply).
        #[allow(clippy::disallowed_macros)]
        if let Err(e) = failpoints::check("serve::worker") {
            panic!("{e}");
        }
        process(shared, job);
    }
}

fn process(shared: &Shared, job: Job) {
    let span = skq_obs::Span::enter("serve.request");
    let registry = skq_obs::global();
    registry
        .histogram("skq_serve_queue_wait_microseconds", &[])
        .observe(job.enqueued.elapsed().as_micros() as u64);
    let outcome = run_request(shared, &job);
    let status = match &outcome {
        Ok(_) => "ok",
        Err(e) => e.kind(),
    };
    registry
        .counter("skq_serve_requests_total", &[("status", status)])
        .inc();
    registry
        .histogram("skq_serve_request_latency_microseconds", &[])
        .observe(job.enqueued.elapsed().as_micros() as u64);
    drop(span);
    // The caller may have dropped its `Pending`; a dead letter is fine.
    drop(job.respond.send(outcome));
}

fn run_request(shared: &Shared, job: &Job) -> Result<Reply, SkqError> {
    // Admission control: a deadline that lapsed (or a cancellation
    // that arrived) while the job sat queued sheds it before any index
    // work. The same counters the guarded sink would bump fire here,
    // so dashboards see one consistent signal for guard trips.
    if let Err(e) = job.guard.check() {
        let registry = skq_obs::global();
        match &e {
            SkqError::DeadlineExceeded => {
                registry.counter("skq_query_deadline_exceeded", &[]).inc();
            }
            SkqError::Cancelled => {
                registry.counter("skq_query_cancelled", &[]).inc();
            }
            _ => {}
        }
        registry
            .counter("skq_serve_shed_total", &[("reason", e.kind())])
            .inc();
        return Err(e);
    }
    let snap = shared.snapshots.current();
    match catch_unwind(AssertUnwindSafe(|| execute(&snap, job))) {
        Ok(outcome) => outcome,
        Err(_) => {
            skq_obs::global()
                .counter("skq_serve_worker_panics_total", &[])
                .inc();
            Err(SkqError::Internal("request execution panicked".into()))
        }
    }
}

fn execute(snap: &Versioned<OrpKwSuite>, job: &Job) -> Result<Reply, SkqError> {
    failpoints::check("serve::request")?;
    if job.degraded == Some("count_only") {
        return execute_count_only(snap, job);
    }
    let (ids, stats) = snap
        .value
        .try_query_guarded(&job.rect, &job.keywords, &job.guard)?;
    Ok(Reply {
        ids,
        stats,
        generation: snap.generation,
        degraded: job.degraded,
    })
}

/// The deepest brownout rung: answer with a guarded count and no
/// result ids. `stats.emitted` carries the count; deadline and
/// cancellation still produce their typed errors so a browned-out
/// request is cheap, not unbounded.
fn execute_count_only(snap: &Versioned<OrpKwSuite>, job: &Job) -> Result<Reply, SkqError> {
    validate::rect_query(&job.rect, snap.value.dim())?;
    let mut stats = QueryStats::default();
    let mut sink = GuardedSink::new(CountSink::new(), &job.guard);
    let _ = snap
        .value
        .query_sink(&job.rect, &job.keywords, &mut sink, &mut stats);
    match sink.truncated_reason() {
        Some(TruncatedReason::DeadlineExceeded) => return Err(SkqError::DeadlineExceeded),
        Some(TruncatedReason::Cancelled) => return Err(SkqError::Cancelled),
        Some(TruncatedReason::Limit) | None => {}
    }
    stats.emitted = sink.emitted();
    stats.truncated = sink.truncated_reason().is_some();
    stats.truncated_reason = sink.truncated_reason();
    Ok(Reply {
        ids: Vec::new(),
        stats,
        generation: snap.generation,
        degraded: job.degraded,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use skq_workload::scenarios;

    fn small_server(workers: usize) -> Server {
        let dataset = scenarios::city(300, 11);
        Server::start(
            OrpKwSuite::build(&dataset, 2),
            ServerConfig {
                workers,
                queue_capacity: 64,
                ..ServerConfig::default()
            },
        )
    }

    #[test]
    fn serves_a_query_and_matches_direct_execution() {
        let dataset = scenarios::city(300, 11);
        let suite = OrpKwSuite::build(&dataset, 2);
        // Replies are sorted (the guarded path sorts before returning);
        // the direct query emits in traversal order.
        let mut expected = suite.query(&Rect::full(2), &[0, 1]);
        expected.sort_unstable();
        let server = Server::start(suite, ServerConfig::default());
        let reply = server
            .query(Request::new(Rect::full(2), vec![0, 1]))
            .unwrap();
        assert_eq!(reply.ids, expected);
        assert_eq!(reply.generation, 1);
        server.shutdown();
    }

    #[test]
    fn invalid_query_comes_back_typed() {
        let server = small_server(2);
        let err = server
            .query(Request::new(Rect::full(3), vec![0, 1]))
            .unwrap_err();
        assert!(matches!(err, SkqError::InvalidQuery(_)), "{err}");
    }

    #[test]
    fn shutdown_rejects_new_requests() {
        let server = small_server(1);
        server.shutdown();
        let err = server
            .query(Request::new(Rect::full(2), vec![0, 1]))
            .unwrap_err();
        assert!(matches!(err, SkqError::Internal(_)), "{err}");
    }

    #[test]
    fn zero_workers_clamps_to_one() {
        let server = small_server(0);
        assert_eq!(server.worker_count(), 1);
        let reply = server
            .query(Request::new(Rect::full(2), vec![0, 1]))
            .unwrap();
        assert_eq!(reply.generation, 1);
    }

    #[test]
    fn brownout_count_only_answers_with_a_count() {
        let dataset = scenarios::city(300, 11);
        let suite = OrpKwSuite::build(&dataset, 2);
        let mut expected = suite.query(&Rect::full(2), &[0, 1]);
        expected.sort_unstable();
        // Depth thresholds of 0 put every request on the deepest rung,
        // making the ladder deterministic under test.
        let server = Server::start(
            OrpKwSuite::build(&dataset, 2),
            ServerConfig {
                brownout: Some(BrownoutConfig {
                    limited_depth: 0.0,
                    count_only_depth: 0.0,
                    limited_results: 8,
                }),
                ..ServerConfig::default()
            },
        );
        let reply = server
            .query(Request::new(Rect::full(2), vec![0, 1]))
            .unwrap();
        assert_eq!(reply.degraded, Some("count_only"));
        assert!(reply.ids.is_empty());
        assert_eq!(reply.stats.emitted, expected.len() as u64);
    }

    #[test]
    fn brownout_limited_clamps_the_result_budget() {
        let dataset = scenarios::city(300, 11);
        let server = Server::start(
            OrpKwSuite::build(&dataset, 2),
            ServerConfig {
                brownout: Some(BrownoutConfig {
                    limited_depth: 0.0,
                    count_only_depth: 2.0,
                    limited_results: 3,
                }),
                ..ServerConfig::default()
            },
        );
        let reply = server
            .query(Request::new(Rect::full(2), vec![0, 1]))
            .unwrap();
        assert_eq!(reply.degraded, Some("limited"));
        assert!(reply.ids.len() <= 3);
    }

    #[test]
    fn publish_bumps_the_served_generation() {
        let dataset = scenarios::city(300, 11);
        let server = Server::start(OrpKwSuite::build(&dataset, 2), ServerConfig::default());
        assert_eq!(server.publish(OrpKwSuite::build(&dataset, 2)), 2);
        let reply = server
            .query(Request::new(Rect::full(2), vec![0, 1]))
            .unwrap();
        assert_eq!(reply.generation, 2);
    }
}
