//! `skq-crash` — kill-and-recover chaos driver for the WAL/checkpoint
//! stack (DESIGN §16), used by the `crash-smoke` CI job.
//!
//! Two subcommands over the same deterministic, seeded op stream:
//!
//! * `run` executes inserts/deletes against a [`DurableDynamic`] in
//!   `--dir`; with `--abort-at K --site S` it arms the named fail
//!   point (as `FailAction::Abort`) just before op `K`, so the process
//!   dies mid-stream exactly like a power cut — no unwinding, no
//!   destructors, no clean shutdown.
//! * `verify` recovers the directory, learns how many ops survived
//!   from the recovery report, replays that prefix of the same seeded
//!   stream into an in-memory oracle, and hard-compares the recovered
//!   live set plus rect / ball / NN query answers against brute force.
//!
//! Exit codes: 0 verified, 1 run failed, 2 usage, 3 state or answer
//! mismatch.

use std::path::PathBuf;
use std::process::ExitCode;

use skq_core::dynamic::ObjectHandle;
use skq_core::nn_linf::LinfNnIndex;
use skq_core::srp::SrpKwIndex;
use skq_core::suite::OrpKwSuite;
use skq_core::Dataset;
use skq_geom::{Ball, Point, Rect};
use skq_invidx::{Document, Keyword};
use skq_store::{DurabilityConfig, DurableDynamic};

/// Keyword vocabulary: every object gets 2 distinct keywords from
/// here, every query asks for 2.
const VOCAB: u32 = 6;

/// xorshift64* — deterministic, dependency-free.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.wrapping_mul(2685821657736338717).max(1))
    }
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(2685821657736338717)
    }
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

/// One op of the deterministic stream.
enum Op {
    Insert(Point, Vec<Keyword>),
    /// Delete the live object at this index of the oracle's live list.
    Delete(usize),
}

/// The in-memory oracle: the exact state the durable index must have
/// after a prefix of the stream. Ids mirror `DynamicOrpKw`'s handle
/// allocation (dense, in insert order).
struct Oracle {
    live: Vec<(u64, Point, Vec<Keyword>)>,
    next_id: u64,
}

impl Oracle {
    fn new() -> Self {
        Oracle {
            live: Vec::new(),
            next_id: 0,
        }
    }

    /// Generates op number `step` (0-based) for the current state.
    fn gen_op(&self, rng: &mut Rng) -> Op {
        let roll = rng.below(100);
        if roll < 80 || self.live.is_empty() {
            // Integer-grid coordinates: query boundaries at
            // half-integers can then never tie with a point.
            let x = rng.below(64) as f64;
            let y = rng.below(64) as f64;
            let a = rng.below(u64::from(VOCAB)) as Keyword;
            let b = (a + 1 + rng.below(u64::from(VOCAB) - 1) as Keyword) % VOCAB;
            Op::Insert(Point::new2(x, y), vec![a.min(b), a.max(b)])
        } else {
            Op::Delete(rng.below(self.live.len() as u64) as usize)
        }
    }

    fn apply(&mut self, op: &Op) {
        match op {
            Op::Insert(p, kws) => {
                self.live.push((self.next_id, *p, kws.clone()));
                self.next_id += 1;
            }
            Op::Delete(i) => {
                self.live.remove(*i);
            }
        }
    }
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: skq-crash run    --dir DIR --seed S --ops N [--ckpt-ops C] \
         [--abort-at K --site wal_append|fsync|checkpoint]\n       \
         skq-crash verify --dir DIR --seed S --ops N [--ckpt-ops C] --min-surviving M"
    );
    ExitCode::from(2)
}

struct Args {
    dir: PathBuf,
    seed: u64,
    ops: u64,
    ckpt_ops: u64,
    abort_at: Option<u64>,
    site: String,
    min_surviving: u64,
}

fn parse(args: &[String]) -> Option<Args> {
    let mut out = Args {
        dir: PathBuf::new(),
        seed: 1,
        ops: 1000,
        ckpt_ops: 64,
        abort_at: None,
        site: "wal_append".to_string(),
        min_surviving: 0,
    };
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let value = it.next()?;
        match flag.as_str() {
            "--dir" => out.dir = PathBuf::from(value),
            "--seed" => out.seed = value.parse().ok()?,
            "--ops" => out.ops = value.parse().ok()?,
            "--ckpt-ops" => out.ckpt_ops = value.parse().ok()?,
            "--abort-at" => out.abort_at = Some(value.parse().ok()?),
            "--site" => out.site = value.clone(),
            "--min-surviving" => out.min_surviving = value.parse().ok()?,
            _ => return None,
        }
    }
    if out.dir.as_os_str().is_empty() {
        return None;
    }
    Some(out)
}

fn config(ckpt_ops: u64) -> DurabilityConfig {
    let mut config = DurabilityConfig::default();
    config.checkpoint.every_ops = ckpt_ops;
    config.checkpoint.every_bytes = u64::MAX;
    config
}

/// Arms the chosen fail-point site to abort the process on next hit.
fn arm_abort(site: &str) -> Result<(), String> {
    let full = match site {
        "wal_append" => "store::wal_append",
        "fsync" => "store::fsync",
        "checkpoint" => "store::checkpoint",
        other => return Err(format!("unknown --site {other}")),
    };
    #[cfg(feature = "failpoints")]
    {
        skq_core::failpoints::inject(full, skq_core::failpoints::FailAction::Abort, Some(1));
        Ok(())
    }
    #[cfg(not(feature = "failpoints"))]
    {
        let _ = full;
        Err("--abort-at requires a build with --features failpoints".to_string())
    }
}

fn cmd_run(a: &Args) -> Result<(), String> {
    let (mut durable, _) =
        DurableDynamic::open(&a.dir, 2, 2, config(a.ckpt_ops)).map_err(|e| format!("open: {e}"))?;
    let mut rng = Rng::new(a.seed);
    let mut oracle = Oracle::new();
    let mut handles: Vec<ObjectHandle> = Vec::new();
    for step in 0..a.ops {
        if a.abort_at == Some(step) {
            arm_abort(&a.site)?;
        }
        let op = oracle.gen_op(&mut rng);
        match &op {
            Op::Insert(p, kws) => {
                let h = durable
                    .insert(*p, kws.clone())
                    .map_err(|e| format!("insert at op {step}: {e}"))?;
                handles.push(h);
            }
            Op::Delete(i) => {
                let id = oracle.live[*i].0;
                let h = handles[id as usize];
                durable
                    .delete(h)
                    .map_err(|e| format!("delete at op {step}: {e}"))?;
            }
        }
        oracle.apply(&op);
    }
    println!("acked={}", a.ops);
    Ok(())
}

/// Brute-force rect answers over the oracle, as dense suite ids
/// (position in the id-sorted live list).
fn brute_rect(live: &[(u64, Point, Vec<Keyword>)], q: &Rect, kws: &[Keyword]) -> Vec<u32> {
    live.iter()
        .enumerate()
        .filter(|(_, (_, p, okw))| {
            kws.iter().all(|k| okw.contains(k))
                && (0..2).all(|d| q.lo(d) <= p.get(d) && p.get(d) <= q.hi(d))
        })
        .map(|(i, _)| i as u32)
        .collect()
}

fn cmd_verify(a: &Args) -> Result<(), ExitCode> {
    let fail = |msg: String| {
        eprintln!("skq-crash: {msg}");
        ExitCode::from(3)
    };
    let (durable, report) = DurableDynamic::open(&a.dir, 2, 2, config(a.ckpt_ops))
        .map_err(|e| fail(format!("recovery failed: {e}")))?;
    if report.skipped != 0 {
        return Err(fail(format!("{} poisoned records skipped", report.skipped)));
    }
    if report.last_lsn < a.min_surviving {
        return Err(fail(format!(
            "only {} ops survived, expected at least {}",
            report.last_lsn, a.min_surviving
        )));
    }
    // Replay budget: with checkpoints every C ops and the WAL retained
    // back to the previous checkpoint, a recovery replays at most 2C
    // records even when the crash also killed a checkpoint attempt.
    if report.replayed > 2 * a.ckpt_ops {
        return Err(fail(format!(
            "replayed {} records, budget is 2×{}",
            report.replayed, a.ckpt_ops
        )));
    }

    // Re-derive the surviving prefix of the op stream. Each acked op
    // appended exactly one record, so `last_lsn` ops survived (the
    // last one possibly written-but-unacknowledged — still a valid
    // history, and exactly what the WAL says happened).
    let mut rng = Rng::new(a.seed);
    let mut oracle = Oracle::new();
    for _ in 0..report.last_lsn {
        let op = oracle.gen_op(&mut rng);
        oracle.apply(&op);
    }
    let mut expect = oracle.live.clone();
    expect.sort_by_key(|(id, _, _)| *id);
    let mut got = durable.index().live_objects();
    got.sort_by_key(|(id, _, _)| *id);
    if got.len() != expect.len() {
        return Err(fail(format!(
            "recovered {} live objects, oracle has {}",
            got.len(),
            expect.len()
        )));
    }
    for ((gid, gp, gkw), (eid, ep, ekw)) in got.iter().zip(&expect) {
        if gid != eid || gp.coords() != ep.coords() || gkw != ekw {
            return Err(fail(format!(
                "object mismatch: got id {gid}, oracle id {eid}"
            )));
        }
    }

    if expect.is_empty() {
        println!("verified: empty surviving state ({} ops)", report.last_lsn);
        return Ok(());
    }

    // Build the full query surface from the recovered objects and
    // cross-check rect / ball / NN answers against brute force.
    let points: Vec<Point> = got.iter().map(|(_, p, _)| *p).collect();
    let docs: Vec<Document> = got
        .iter()
        .map(|(_, _, kw)| Document::new(kw.clone()))
        .collect();
    let dataset = Dataset::try_new(points, docs).map_err(|e| fail(format!("dataset: {e}")))?;
    let suite =
        OrpKwSuite::try_build(&dataset, 2).map_err(|e| fail(format!("suite build: {e}")))?;
    let srp = SrpKwIndex::try_build(&dataset, 2).map_err(|e| fail(format!("srp build: {e}")))?;
    let nn = LinfNnIndex::try_build(&dataset, 2).map_err(|e| fail(format!("nn build: {e}")))?;

    let mut qrng = Rng::new(a.seed ^ 0x9e3779b97f4a7c15);
    for round in 0..50 {
        let a_kw = qrng.below(u64::from(VOCAB)) as Keyword;
        let b_kw = (a_kw + 1 + qrng.below(u64::from(VOCAB) - 1) as Keyword) % VOCAB;
        let kws = vec![a_kw.min(b_kw), a_kw.max(b_kw)];
        // Half-integer bounds: no point can sit on the boundary.
        let lo = (qrng.below(64) as f64 - 0.5, qrng.below(64) as f64 - 0.5);
        let span = (qrng.below(32) as f64, qrng.below(32) as f64);
        let rect = Rect::new(&[lo.0, lo.1], &[lo.0 + span.0 + 1.0, lo.1 + span.1 + 1.0]);
        let mut got_ids = suite.query(&rect, &kws);
        got_ids.sort_unstable();
        let mut want = brute_rect(&expect, &rect, &kws);
        want.sort_unstable();
        if got_ids != want {
            return Err(fail(format!(
                "rect answer mismatch in round {round}: got {}, want {}",
                got_ids.len(),
                want.len()
            )));
        }

        // Ball: half-integer radius — grid distances² are integers, so
        // no boundary ties.
        let center = Point::new2(qrng.below(64) as f64, qrng.below(64) as f64);
        let radius = qrng.below(24) as f64 + 0.5;
        let mut ball_ids = srp.query(&Ball::new(center, radius), &kws);
        ball_ids.sort_unstable();
        let mut ball_want: Vec<u32> = expect
            .iter()
            .enumerate()
            .filter(|(_, (_, p, okw))| {
                kws.iter().all(|k| okw.contains(k)) && p.l2_sq(&center) <= radius * radius
            })
            .map(|(i, _)| i as u32)
            .collect();
        ball_want.sort_unstable();
        if ball_ids != ball_want {
            return Err(fail(format!(
                "ball answer mismatch in round {round}: got {}, want {}",
                ball_ids.len(),
                ball_want.len()
            )));
        }

        // NN: L∞ distances can tie on the grid, so compare the sorted
        // distance profile, not the id set.
        let t = 1 + qrng.below(5) as usize;
        let nn_ids = nn.query(&center, t, &kws);
        let mut nn_dists: Vec<f64> = nn_ids
            .iter()
            .map(|&i| expect[i as usize].1.linf(&center))
            .collect();
        nn_dists.sort_by(f64::total_cmp);
        let mut all: Vec<f64> = expect
            .iter()
            .filter(|(_, _, okw)| kws.iter().all(|k| okw.contains(k)))
            .map(|(_, p, _)| p.linf(&center))
            .collect();
        all.sort_by(f64::total_cmp);
        all.truncate(t);
        if nn_dists != all {
            return Err(fail(format!(
                "NN distance profile mismatch in round {round}: got {nn_dists:?}, want {all:?}"
            )));
        }
    }

    println!(
        "verified: {} ops survived, {} live objects, checkpoint lsn {}, {} replayed",
        report.last_lsn,
        expect.len(),
        report.checkpoint_lsn,
        report.replayed
    );
    Ok(())
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = argv.split_first() else {
        return usage();
    };
    let Some(args) = parse(rest) else {
        return usage();
    };
    match cmd.as_str() {
        "run" => match cmd_run(&args) {
            Ok(()) => ExitCode::SUCCESS,
            Err(msg) => {
                eprintln!("skq-crash: {msg}");
                ExitCode::FAILURE
            }
        },
        "verify" => match cmd_verify(&args) {
            Ok(()) => ExitCode::SUCCESS,
            Err(code) => code,
        },
        _ => usage(),
    }
}
