//! `skq-load` — a closed-loop load generator for the serving layer.
//!
//! Replays an `skq-workload` scenario against an in-process
//! [`skq_serve::Server`] at a target QPS, optionally rotating snapshots
//! concurrently, and reports latency percentiles from the `skq-obs`
//! histograms the request path records into.
//!
//! ```text
//! skq-load [--scenario city|web|sensors] [--n OBJECTS] [--seed S]
//!          [--requests R] [--qps Q] [--threads W] [--k K]
//!          [--deadline-ms MS] [--rotate-ms MS] [--chaos]
//!          [--retries N] [--backoff-us B] [--brownout]
//!          [--json PATH] [--trace PATH]
//! ```
//!
//! * `--qps 0` (the default) submits as fast as the queue admits.
//! * `--rotate-ms MS` runs a publisher thread rebuilding and
//!   publishing the suite every `MS` milliseconds — the rotation path
//!   under live traffic.
//! * `--chaos` (needs `--features failpoints`) arms the
//!   `serve::request` fail point for 1 in 10 requests and verifies the
//!   injected failures come back as typed errors, nothing panics, and
//!   everything else succeeds.
//! * `--retries N` re-submits a request shed with `Overloaded` up to
//!   `N` times, sleeping a jittered exponential backoff starting at
//!   `--backoff-us B` (default 500µs) between attempts.
//! * `--brownout` enables the server's degradation ladder
//!   ([`skq_serve::BrownoutConfig`]): deep queues serve clamped or
//!   count-only answers before admission control sheds.
//! * `--trace PATH` writes a chrome://tracing file of the run.
//!
//! Exit codes: 0 success, 2 usage error, 4 dropped/failed requests
//! (beyond what `--chaos` deliberately injected).

use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use skq_bench::json::Json;
use skq_core::suite::OrpKwSuite;
use skq_core::SkqError;
use skq_serve::{BrownoutConfig, Request, Server, ServerConfig};
use skq_workload::queries::QueryGen;
use skq_workload::scenarios;

const USAGE: &str = "usage: skq-load [--scenario city|web|sensors] [--n OBJECTS] [--seed S]
  [--requests R] [--qps Q] [--threads W] [--k K] [--deadline-ms MS]
  [--rotate-ms MS] [--chaos] [--retries N] [--backoff-us B] [--brownout]
  [--json PATH] [--trace PATH]";

struct Options {
    scenario: String,
    n: usize,
    seed: u64,
    requests: usize,
    qps: u64,
    threads: usize,
    k: usize,
    deadline_ms: u64,
    rotate_ms: u64,
    chaos: bool,
    retries: u32,
    backoff_us: u64,
    brownout: bool,
    json: Option<String>,
    trace: Option<String>,
}

impl Default for Options {
    fn default() -> Self {
        Self {
            scenario: "city".into(),
            n: 20_000,
            seed: 42,
            requests: 400,
            qps: 0,
            threads: 4,
            k: 2,
            deadline_ms: 0,
            rotate_ms: 0,
            chaos: false,
            retries: 0,
            backoff_us: 500,
            brownout: false,
            json: None,
            trace: None,
        }
    }
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options::default();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--scenario" => opts.scenario = value("--scenario")?,
            "--n" => opts.n = parse_num(&value("--n")?, "--n")?,
            "--seed" => opts.seed = parse_num(&value("--seed")?, "--seed")?,
            "--requests" => opts.requests = parse_num(&value("--requests")?, "--requests")?,
            "--qps" => opts.qps = parse_num(&value("--qps")?, "--qps")?,
            "--threads" => opts.threads = parse_num(&value("--threads")?, "--threads")?,
            "--k" => opts.k = parse_num(&value("--k")?, "--k")?,
            "--deadline-ms" => {
                opts.deadline_ms = parse_num(&value("--deadline-ms")?, "--deadline-ms")?;
            }
            "--rotate-ms" => opts.rotate_ms = parse_num(&value("--rotate-ms")?, "--rotate-ms")?,
            "--chaos" => opts.chaos = true,
            "--retries" => opts.retries = parse_num(&value("--retries")?, "--retries")?,
            "--backoff-us" => opts.backoff_us = parse_num(&value("--backoff-us")?, "--backoff-us")?,
            "--brownout" => opts.brownout = true,
            "--json" => opts.json = Some(value("--json")?),
            "--trace" => opts.trace = Some(value("--trace")?),
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(opts)
}

fn parse_num<T: std::str::FromStr>(text: &str, flag: &str) -> Result<T, String> {
    text.parse()
        .map_err(|_| format!("{flag}: not a number: {text}"))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("skq-load: {msg}\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    match run(&opts) {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("skq-load: {msg}");
            ExitCode::from(2)
        }
    }
}

fn build_dataset(opts: &Options, seed: u64) -> Result<skq_core::Dataset, String> {
    match opts.scenario.as_str() {
        "city" => Ok(scenarios::city(opts.n, seed)),
        "web" => Ok(scenarios::web_docs(opts.n, seed)),
        "sensors" => Ok(scenarios::sensor_net(opts.n, seed)),
        other => Err(format!("unknown scenario {other} (city|web|sensors)")),
    }
}

/// How many requests `--chaos` arms the `serve::request` fail point
/// for: one in this many.
const CHAOS_EVERY: usize = 10;

fn run(opts: &Options) -> Result<ExitCode, String> {
    #[cfg(not(feature = "failpoints"))]
    if opts.chaos {
        return Err("--chaos requires building with --features failpoints".into());
    }
    let chaos_budget = if opts.chaos {
        opts.requests / CHAOS_EVERY
    } else {
        0
    };
    #[cfg(feature = "failpoints")]
    if opts.chaos {
        skq_core::failpoints::inject(
            "serve::request",
            skq_core::failpoints::FailAction::Err,
            Some(chaos_budget),
        );
    }

    if opts.trace.is_some() {
        skq_obs::trace::enable();
    }

    let dataset = build_dataset(opts, opts.seed)?;
    let k_max = opts.k.clamp(2, 8);
    let suite = OrpKwSuite::build(&dataset, k_max);
    let server = Arc::new(Server::start(
        suite,
        ServerConfig {
            workers: opts.threads,
            // Closed-loop replay: size the queue so pacing, not
            // admission control, is the only throttle.
            queue_capacity: opts.requests.max(64),
            queue_stripes: 0,
            default_deadline: (opts.deadline_ms > 0)
                .then(|| Duration::from_millis(opts.deadline_ms)),
            default_max_results: None,
            brownout: opts.brownout.then(BrownoutConfig::default),
        },
    ));

    // Pregenerate the whole request mix so pacing measures the server,
    // not the generator.
    let mut gen = QueryGen::new(&dataset, opts.seed);
    let mut requests = Vec::with_capacity(opts.requests);
    for _ in 0..opts.requests {
        let rect = gen.rect(0.05);
        let keywords = gen
            .keywords(opts.k, 0.5)
            .or_else(|| gen.top_keywords(opts.k))
            .ok_or_else(|| format!("scenario has fewer than {} keywords", opts.k))?;
        requests.push(Request::new(rect, keywords));
    }

    // Optional concurrent rotation: a publisher thread rebuilds the
    // suite from the same dataset (so answers stay comparable) and
    // publishes it on a cadence while the replay runs.
    let stop_rotating = Arc::new(AtomicBool::new(false));
    let rotator = (opts.rotate_ms > 0).then(|| {
        let stop_rotating = Arc::clone(&stop_rotating);
        let server = Arc::clone(&server);
        let period = Duration::from_millis(opts.rotate_ms);
        let dataset = dataset.clone();
        std::thread::spawn(move || {
            while !stop_rotating.load(Ordering::Acquire) {
                std::thread::sleep(period);
                if stop_rotating.load(Ordering::Acquire) {
                    break;
                }
                server.publish(OrpKwSuite::build(&dataset, k_max));
            }
        })
    });

    let epoch_before = server.epoch();
    let span = skq_obs::Span::enter("load.replay");
    let started = Instant::now();
    let interval = (opts.qps > 0).then(|| Duration::from_nanos(1_000_000_000 / opts.qps.max(1)));

    let mut pendings = Vec::with_capacity(opts.requests);
    let mut dropped = 0usize;
    let mut retried = 0usize;
    // Deterministic jitter source for the backoff (xorshift64*), so
    // replays with the same seed sleep the same schedule.
    let mut jitter = opts.seed.wrapping_mul(0x9e3779b97f4a7c15) | 1;
    for (i, req) in requests.into_iter().enumerate() {
        if let Some(interval) = interval {
            let due = started + interval * (i as u32);
            let now = Instant::now();
            if due > now {
                std::thread::sleep(due - now);
            }
        }
        // Retry budget on Overloaded: jittered exponential backoff —
        // each attempt doubles the base delay, and the ±50% jitter
        // decorrelates clients that shed together.
        let mut attempt = 0u32;
        loop {
            match server.submit(req.clone()) {
                Ok(pending) => {
                    pendings.push(pending);
                    break;
                }
                Err(SkqError::Overloaded { .. }) if attempt < opts.retries => {
                    attempt += 1;
                    retried += 1;
                    jitter ^= jitter << 13;
                    jitter ^= jitter >> 7;
                    jitter ^= jitter << 17;
                    let base = opts.backoff_us.saturating_mul(1 << attempt.min(16));
                    let delay = base / 2 + jitter % base.max(1);
                    std::thread::sleep(Duration::from_micros(delay));
                }
                Err(_) => {
                    dropped += 1;
                    break;
                }
            }
        }
    }

    let mut ok = 0usize;
    let mut injected = 0usize;
    let mut failed: Vec<String> = Vec::new();
    for pending in pendings {
        match pending.wait() {
            Ok(_) => ok += 1,
            Err(SkqError::Internal(msg)) if msg.contains("fail point serve::request") => {
                injected += 1;
            }
            Err(e) => failed.push(e.kind().to_string()),
        }
    }
    let elapsed = span.elapsed();
    drop(span);
    stop_rotating.store(true, Ordering::Release);
    if let Some(handle) = rotator {
        drop(handle.join());
    }

    let epoch_after = server.epoch();
    server.shutdown();

    let registry = skq_obs::global();
    let latency = registry.histogram("skq_serve_request_latency_microseconds", &[]);
    let queue_wait = registry.histogram("skq_serve_queue_wait_microseconds", &[]);
    let achieved_qps = ok as f64 / elapsed.as_secs_f64().max(1e-9);

    println!(
        "skq-load: scenario={} n={} requests={} workers={} elapsed={:.2}s qps={:.0}",
        opts.scenario,
        opts.n,
        opts.requests,
        server.worker_count(),
        elapsed.as_secs_f64(),
        achieved_qps,
    );
    println!(
        "  ok={ok} injected={injected}/{chaos_budget} failed={} dropped={dropped} retried={retried}",
        failed.len(),
    );
    println!(
        "  latency_us: p50={} p90={} p99={} mean={:.0} max<={}",
        latency.p50(),
        latency.p90(),
        latency.p99(),
        latency.mean(),
        latency.max_edge(),
    );
    println!(
        "  queue_wait_us: p50={} p99={}  epochs: {epoch_before} -> {epoch_after}",
        queue_wait.p50(),
        queue_wait.p99(),
    );

    if let Some(path) = &opts.trace {
        std::fs::write(path, skq_obs::trace::export_chrome())
            .map_err(|e| format!("writing {path}: {e}"))?;
        println!("  trace: {path} ({} events)", skq_obs::trace::event_count());
    }

    if let Some(path) = &opts.json {
        let mut report = Json::obj();
        report.set("format", Json::Str("skq-load-report".into()));
        report.set("scenario", Json::Str(opts.scenario.clone()));
        report.set("n", Json::Num(opts.n as f64));
        report.set("requests", Json::Num(opts.requests as f64));
        report.set("workers", Json::Num(server.worker_count() as f64));
        report.set("ok", Json::Num(ok as f64));
        report.set("injected", Json::Num(injected as f64));
        report.set("failed", Json::Num(failed.len() as f64));
        report.set("dropped", Json::Num(dropped as f64));
        report.set("retried", Json::Num(retried as f64));
        report.set("elapsed_seconds", Json::Num(elapsed.as_secs_f64()));
        report.set("achieved_qps", Json::Num(achieved_qps));
        let mut lat = Json::obj();
        lat.set("p50_us", Json::Num(latency.p50() as f64));
        lat.set("p90_us", Json::Num(latency.p90() as f64));
        lat.set("p99_us", Json::Num(latency.p99() as f64));
        lat.set("mean_us", Json::Num(latency.mean()));
        report.set("latency", lat);
        report.set("epoch_before", Json::Num(epoch_before as f64));
        report.set("epoch_after", Json::Num(epoch_after as f64));
        std::fs::write(path, report.render_pretty(2))
            .map_err(|e| format!("writing {path}: {e}"))?;
        println!("  json: {path}");
    }

    if !failed.is_empty() || dropped > 0 || injected != chaos_budget {
        eprintln!(
            "skq-load: FAILED ({} failed, {dropped} dropped, {injected}/{chaos_budget} injected)",
            failed.len()
        );
        return Ok(ExitCode::from(4));
    }
    Ok(ExitCode::SUCCESS)
}
