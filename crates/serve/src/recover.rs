//! Crash recovery for the serving layer: a supervisor that owns the
//! durable dynamic index and keeps a [`Server`] publishing consistent
//! suites built from it.
//!
//! [`RecoverySupervisor::open`] runs the DESIGN §16 recovery state
//! machine (newest valid checkpoint, then WAL replay — both inside
//! [`DurableDynamic::open`]) and can then [`publish_to`] a server:
//! the live object set is frozen into an [`OrpKwSuite`] and rotated
//! in via the snapshot cell. If that publish fails — a poisoned
//! in-memory state that no longer builds — the supervisor falls back
//! to re-recovering from disk, which by construction reflects only
//! acknowledged, durable operations.
//!
//! [`publish_to`]: RecoverySupervisor::publish_to

use std::path::{Path, PathBuf};

use skq_core::dynamic::ObjectHandle;
use skq_core::suite::OrpKwSuite;
use skq_core::{Dataset, SkqError};
use skq_geom::Point;
use skq_invidx::{Document, Keyword};
use skq_store::{DurabilityConfig, DurableDynamic, RecoveryReport};

use crate::pool::Server;

/// Owns a [`DurableDynamic`] and mediates between its mutable world
/// and a [`Server`]'s immutable published snapshots.
pub struct RecoverySupervisor {
    durable: DurableDynamic,
    dir: PathBuf,
    dim: usize,
    k: usize,
    report: RecoveryReport,
}

impl RecoverySupervisor {
    /// Opens (or crash-recovers) the durable index in `dir`; see
    /// [`DurableDynamic::open`] for the recovery semantics.
    ///
    /// # Errors
    ///
    /// Whatever [`DurableDynamic::open`] returns.
    pub fn open(
        dir: &Path,
        dim: usize,
        k: usize,
        config: DurabilityConfig,
    ) -> Result<Self, SkqError> {
        let (durable, report) = DurableDynamic::open(dir, dim, k, config)?;
        Ok(Self {
            durable,
            dir: dir.to_path_buf(),
            dim,
            k,
            report,
        })
    }

    /// What the most recent open/recovery did.
    pub fn report(&self) -> &RecoveryReport {
        &self.report
    }

    /// The underlying durable index (for queries against the live,
    /// unpublished state).
    pub fn durable(&self) -> &DurableDynamic {
        &self.durable
    }

    /// Inserts durably; see [`DurableDynamic::insert`].
    ///
    /// # Errors
    ///
    /// Whatever [`DurableDynamic::insert`] returns.
    pub fn insert(
        &mut self,
        point: Point,
        keywords: Vec<Keyword>,
    ) -> Result<ObjectHandle, SkqError> {
        self.durable.insert(point, keywords)
    }

    /// Deletes durably; see [`DurableDynamic::delete`].
    ///
    /// # Errors
    ///
    /// Whatever [`DurableDynamic::delete`] returns.
    pub fn delete(&mut self, handle: ObjectHandle) -> Result<bool, SkqError> {
        self.durable.delete(handle)
    }

    /// Freezes the live object set into a static suite.
    ///
    /// Returns the suite plus the id map: the suite answers with dense
    /// `u32` object ids in insertion order, and `ids[i]` is the durable
    /// handle id that position corresponds to.
    ///
    /// # Errors
    ///
    /// `SkqError::InvalidDataset` when the live set is empty (a suite
    /// needs at least one object); otherwise whatever
    /// [`OrpKwSuite::try_build`] rejects.
    pub fn suite(&self) -> Result<(OrpKwSuite, Vec<u64>), SkqError> {
        let live = self.durable.index().live_objects();
        let mut ids = Vec::with_capacity(live.len());
        let mut points = Vec::with_capacity(live.len());
        let mut docs = Vec::with_capacity(live.len());
        for (id, point, keywords) in live {
            ids.push(id);
            points.push(point);
            docs.push(Document::new(keywords));
        }
        let dataset = Dataset::try_new(points, docs)?;
        let suite = OrpKwSuite::try_build(&dataset, self.k)?;
        Ok((suite, ids))
    }

    /// Builds and publishes the current live set to `server`,
    /// returning the new generation and the id map (see
    /// [`suite`](Self::suite)).
    ///
    /// On a failed build the supervisor assumes its in-memory state is
    /// poisoned and re-recovers from disk — checkpoint plus WAL hold
    /// every acknowledged op — then retries the publish once. Only if
    /// the rebuilt-from-durable-state suite also fails does the error
    /// surface (and the server keeps serving its current generation).
    ///
    /// # Errors
    ///
    /// Whatever the post-recovery [`suite`](Self::suite) rejects.
    pub fn publish_to(&mut self, server: &Server) -> Result<(u64, Vec<u64>), SkqError> {
        let first = self.suite();
        let (suite, ids) = match first {
            Ok(ok) => ok,
            Err(_) => {
                skq_obs::global()
                    .counter("skq_recover_total", &[("outcome", "republish")])
                    .inc();
                let (durable, report) =
                    DurableDynamic::open(&self.dir, self.dim, self.k, *self.durable.config())?;
                self.durable = durable;
                self.report = report;
                self.suite()?
            }
        };
        Ok((server.publish(suite), ids))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::{Request, ServerConfig};
    use skq_geom::Rect;
    use std::fs;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("skq-recover-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).expect("create tmpdir");
        dir
    }

    #[test]
    fn recovers_and_publishes_the_acknowledged_state() {
        let dir = tmpdir("publish");
        let config = DurabilityConfig::fast(32);
        {
            let mut sup = RecoverySupervisor::open(&dir, 2, 2, config).expect("open");
            let mut handles = Vec::new();
            for i in 0..120u64 {
                let p = Point::new2((i % 13) as f64, (i % 7) as f64);
                handles.push(sup.insert(p, vec![1, 2]).expect("insert"));
            }
            assert!(sup.delete(handles[17]).expect("delete"));
            assert!(sup.delete(handles[90]).expect("delete"));
        }
        // "Crash" (no clean shutdown), then recover and publish.
        let mut sup = RecoverySupervisor::open(&dir, 2, 2, config).expect("recover");
        assert_eq!(sup.report().skipped, 0);
        let dataset = skq_workload::scenarios::city(50, 5);
        let server = Server::start(OrpKwSuite::build(&dataset, 2), ServerConfig::default());
        let (generation, ids) = sup.publish_to(&server).expect("publish");
        assert_eq!(generation, 2);
        assert_eq!(ids.len(), 118);
        // Query the published generation: everything with keywords
        // {1, 2} — all 118 surviving objects — inside the full rect.
        let reply = server
            .query(Request::new(Rect::full(2), vec![1, 2]))
            .expect("query");
        assert_eq!(reply.generation, 2);
        assert_eq!(reply.ids.len(), 118);
        // The id map translates suite ids back to durable handles.
        for &sid in &reply.ids {
            assert!((sid as usize) < ids.len());
        }
        server.shutdown();
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_live_set_is_a_typed_publish_error() {
        let dir = tmpdir("empty");
        let mut sup =
            RecoverySupervisor::open(&dir, 2, 2, DurabilityConfig::fast(8)).expect("open");
        let dataset = skq_workload::scenarios::city(50, 5);
        let server = Server::start(OrpKwSuite::build(&dataset, 2), ServerConfig::default());
        let err = sup.publish_to(&server).expect_err("empty must not publish");
        assert!(matches!(err, SkqError::InvalidDataset(_)), "{err:?}");
        assert_eq!(server.epoch(), 1, "failed publish must not rotate");
        server.shutdown();
        let _ = fs::remove_dir_all(&dir);
    }
}
