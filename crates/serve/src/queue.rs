//! A mutex-sharded, work-stealing job queue with a hard capacity.
//!
//! One global `Mutex<VecDeque>` serializes every producer against every
//! consumer; sharding the queue into stripes (one per worker, by
//! default) turns that into mostly-uncontended locks. Producers push
//! round-robin; a consumer drains its own stripe first and steals from
//! the others when it runs dry, so an unlucky round-robin placement
//! never strands a job behind an idle worker.
//!
//! Capacity is enforced with an atomic reservation
//! (`fetch_update`), so the queue never holds more than `capacity`
//! jobs — the precondition the serving layer's admission control
//! ([`SkqError::Overloaded`](skq_core::SkqError)) relies on.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, PoisonError};
use std::time::Duration;

/// How long an idle consumer parks on its stripe's condvar before
/// re-scanning every stripe for stealable work. Bounds the latency of
/// a push that landed on another stripe while this consumer slept.
const IDLE_PARK: Duration = Duration::from_millis(2);

struct Stripe<T> {
    jobs: Mutex<VecDeque<T>>,
    available: Condvar,
}

/// A bounded multi-producer multi-consumer queue sharded over striped
/// mutexes. See the module docs for the design.
pub struct ShardedQueue<T> {
    stripes: Vec<Stripe<T>>,
    len: AtomicUsize,
    next: AtomicUsize,
    capacity: usize,
    closed: AtomicBool,
}

impl<T> ShardedQueue<T> {
    /// A queue with `stripes` shards (clamped to at least 1) holding at
    /// most `capacity` jobs in total. A capacity of 0 is legal and
    /// rejects every push — useful for forcing the overload path in
    /// tests.
    pub fn new(stripes: usize, capacity: usize) -> Self {
        let stripes = skq_core::concurrency::effective_threads(stripes);
        Self {
            stripes: (0..stripes)
                .map(|_| Stripe {
                    jobs: Mutex::new(VecDeque::new()),
                    available: Condvar::new(),
                })
                .collect(),
            len: AtomicUsize::new(0),
            next: AtomicUsize::new(0),
            capacity,
            closed: AtomicBool::new(false),
        }
    }

    /// Enqueues `item`, or hands it back if the queue is full or
    /// closed. Never blocks.
    ///
    /// # Errors
    ///
    /// Returns `Err(item)` when the queue already holds `capacity`
    /// jobs, or after [`close`](Self::close).
    pub fn try_push(&self, item: T) -> Result<(), T> {
        if self.closed.load(Ordering::Acquire) {
            return Err(item);
        }
        // Reserve a slot first: the length can therefore never
        // overshoot the capacity, even with concurrent producers.
        if self
            .len
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |n| {
                (n < self.capacity).then_some(n + 1)
            })
            .is_err()
        {
            return Err(item);
        }
        // relaxed: round-robin placement hint only — no payload is
        // published through this counter; the stripe mutex below
        // orders the actual job handoff
        let idx = self.next.fetch_add(1, Ordering::Relaxed) % self.stripes.len();
        let stripe = &self.stripes[idx];
        {
            let mut jobs = stripe.jobs.lock().unwrap_or_else(PoisonError::into_inner);
            jobs.push_back(item);
        }
        stripe.available.notify_one();
        Ok(())
    }

    /// Dequeues the next job for `worker` (its stripe first, then
    /// stealing), blocking while the queue is open but empty. Returns
    /// `None` once the queue is closed **and** drained — the worker's
    /// signal to exit.
    pub fn pop(&self, worker: usize) -> Option<T> {
        let n = self.stripes.len();
        let home = worker % n;
        loop {
            for offset in 0..n {
                let stripe = &self.stripes[(home + offset) % n];
                let mut jobs = stripe.jobs.lock().unwrap_or_else(PoisonError::into_inner);
                if let Some(item) = jobs.pop_front() {
                    self.len.fetch_sub(1, Ordering::AcqRel);
                    return Some(item);
                }
            }
            if self.closed.load(Ordering::Acquire) && self.len.load(Ordering::Acquire) == 0 {
                return None;
            }
            let stripe = &self.stripes[home];
            let jobs = stripe.jobs.lock().unwrap_or_else(PoisonError::into_inner);
            if jobs.is_empty() && !self.closed.load(Ordering::Acquire) {
                // Timed park: a notify can land on a stripe whose
                // worker is mid-steal elsewhere, so waiters must
                // re-scan on their own schedule rather than trust
                // wake-ups alone.
                drop(
                    stripe
                        .available
                        .wait_timeout(jobs, IDLE_PARK)
                        .unwrap_or_else(PoisonError::into_inner),
                );
            }
        }
    }

    /// Number of queued jobs (racy by nature; exact at quiescence).
    pub fn len(&self) -> usize {
        self.len.load(Ordering::Acquire)
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Closes the queue: future pushes fail, and consumers drain the
    /// backlog then observe `None`. Idempotent.
    pub fn close(&self) {
        self.closed.store(true, Ordering::Release);
        for stripe in &self.stripes {
            stripe.available.notify_all();
        }
    }

    /// Whether [`close`](Self::close) has been called.
    pub fn is_closed(&self) -> bool {
        self.closed.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_within_a_single_stripe() {
        let q = ShardedQueue::new(1, 16);
        for i in 0..5 {
            q.try_push(i).unwrap();
        }
        for i in 0..5 {
            assert_eq!(q.pop(0), Some(i));
        }
        assert!(q.is_empty());
    }

    #[test]
    fn capacity_is_a_hard_limit() {
        let q = ShardedQueue::new(4, 3);
        assert!(q.try_push(1).is_ok());
        assert!(q.try_push(2).is_ok());
        assert!(q.try_push(3).is_ok());
        assert_eq!(q.try_push(4), Err(4));
        assert_eq!(q.len(), 3);
        let _ = q.pop(0);
        assert!(q.try_push(4).is_ok());
    }

    #[test]
    fn zero_capacity_rejects_everything() {
        let q = ShardedQueue::new(2, 0);
        assert_eq!(q.try_push(9), Err(9));
    }

    #[test]
    fn close_drains_then_signals_exit() {
        let q = ShardedQueue::new(2, 8);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        q.close();
        assert_eq!(q.try_push(3), Err(3));
        let mut drained = vec![q.pop(0).unwrap(), q.pop(1).unwrap()];
        drained.sort_unstable();
        assert_eq!(drained, vec![1, 2]);
        assert_eq!(q.pop(0), None);
    }

    #[test]
    fn stealing_finds_jobs_on_foreign_stripes() {
        // 4 stripes, round-robin pushes: worker 3 must steal to see
        // jobs pushed to stripes 0..=2.
        let q = ShardedQueue::new(4, 8);
        for i in 0..3 {
            q.try_push(i).unwrap();
        }
        let mut got = vec![q.pop(3).unwrap(), q.pop(3).unwrap(), q.pop(3).unwrap()];
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2]);
    }

    #[test]
    fn concurrent_producers_and_consumers_preserve_every_job() {
        let q = Arc::new(ShardedQueue::new(4, 1024));
        let total = 1000u32;
        let producers: Vec<_> = (0..4)
            .map(|p| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    for i in 0..(total / 4) {
                        let mut item = p * (total / 4) + i;
                        loop {
                            match q.try_push(item) {
                                Ok(()) => break,
                                Err(back) => item = back,
                            }
                        }
                    }
                })
            })
            .collect();
        let consumers: Vec<_> = (0..4)
            .map(|w| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    let mut seen = Vec::new();
                    while let Some(item) = q.pop(w) {
                        seen.push(item);
                    }
                    seen
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        q.close();
        let mut all: Vec<u32> = consumers
            .into_iter()
            .flat_map(|c| c.join().unwrap())
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..total).collect::<Vec<_>>());
    }
}
