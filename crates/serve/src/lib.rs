//! Concurrent serving layer for the ORP-KW suite.
//!
//! This crate turns the single-threaded query surfaces of `skq-core`
//! into a long-running service (DESIGN.md §14):
//!
//! * [`snapshot`] — epoch-based snapshot rotation: a rebuild publishes
//!   a fresh [`skq_core::suite::OrpKwSuite`] without blocking in-flight
//!   readers, who keep their `Arc` to the generation they started on.
//! * [`queue`] — a mutex-sharded, work-stealing job queue with a hard
//!   capacity, so admission control has a well-defined "full" signal.
//! * [`pool`] — the worker pool itself: N threads pull jobs, run them
//!   against the current snapshot under a [`skq_core::QueryGuard`]
//!   (deadline / cancellation / result budget), and survive per-request
//!   panics via a catch-unwind supervisor that respawns the loop.
//!
//! Everything is std-only and `#![forbid(unsafe_code)]`: rotation is
//! striped reader-writer locks plus an atomic epoch, not an
//! arc-swap-style atomic pointer (which would need `unsafe`).
//!
//! The companion binary `skq-load` replays `skq-workload` scenarios
//! against a [`pool::Server`] at a target QPS and reports latency
//! percentiles from the `skq-obs` histograms.
//!
//! ```
//! use skq_core::suite::OrpKwSuite;
//! use skq_serve::{Request, Server, ServerConfig};
//! use skq_geom::Rect;
//!
//! let dataset = skq_workload::scenarios::city(500, 7);
//! let server = Server::start(OrpKwSuite::build(&dataset, 2), ServerConfig::default());
//! let reply = server
//!     .query(Request::new(Rect::full(2), vec![0, 1]))
//!     .unwrap();
//! assert_eq!(reply.generation, 1);
//! server.shutdown();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod pool;
pub mod queue;
pub mod recover;
pub mod snapshot;

pub use pool::{BrownoutConfig, Pending, Reply, Request, Server, ServerConfig};
pub use queue::ShardedQueue;
pub use recover::RecoverySupervisor;
pub use snapshot::{SnapshotCell, Versioned};
