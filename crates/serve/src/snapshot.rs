//! Epoch-based snapshot rotation without unsafe code.
//!
//! The classic lock-free way to publish a new immutable snapshot is an
//! arc-swap: an `AtomicPtr` the publisher CAS-es and readers load. That
//! needs `unsafe` to reconstruct the `Arc` from the raw pointer, and
//! this workspace forbids unsafe code (lint L09 / workspace `deny`).
//! [`SnapshotCell`] gets the same observable behaviour from safe parts:
//!
//! * a small fixed number of **stripes**, each an
//!   `RwLock<Arc<Versioned<T>>>`. A reader picks a stripe by a
//!   thread-local index, holds the read lock just long enough to clone
//!   the `Arc`, and then works lock-free on its private snapshot. With
//!   one stripe per worker thread (or more), readers almost never
//!   contend with each other.
//! * an `AtomicU64` **epoch**, bumped with `Release` ordering *after*
//!   every stripe holds the new snapshot. A publisher takes a mutex so
//!   rotations serialize, writes all stripes, then bumps the epoch.
//!
//! The resulting freshness contract, relied on by the concurrency
//! stress tests:
//!
//! 1. **No torn reads** — a reader always sees one complete snapshot
//!    (some full `Arc`), never a mix of generations.
//! 2. **Bounded staleness** — a read that *starts* after [`epoch`]
//!    returned `e` observes `generation >= e`, and any observed
//!    generation is at most one ahead of a subsequently loaded epoch
//!    (the publisher writes stripes before bumping).
//! 3. **Old generations stay valid** — an in-flight request keeps its
//!    `Arc` alive; rotation never invalidates it.
//!
//! [`epoch`]: SnapshotCell::epoch

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, PoisonError, RwLock};

/// Number of reader stripes. More stripes mean less reader/reader
/// contention and proportionally more publisher work; 8 covers the
/// worker counts this workspace targets (publishing is rare).
const STRIPES: usize = 8;

thread_local! {
    /// Per-thread stripe assignment: threads are numbered in creation
    /// order and spread round-robin over the stripes, so a worker pool
    /// of `STRIPES` threads gets one stripe each.
    static STRIPE: usize = {
        static NEXT: AtomicUsize = AtomicUsize::new(0);
        // relaxed: thread-numbering counter; uniqueness is all that
        // matters, no ordering with other memory is implied
        NEXT.fetch_add(1, Ordering::Relaxed)
    };
}

/// A snapshot payload tagged with the rotation generation (1-based)
/// that published it.
#[derive(Debug)]
pub struct Versioned<T> {
    /// The immutable snapshot payload.
    pub value: T,
    /// The generation this snapshot was published as. The initial
    /// value passed to [`SnapshotCell::new`] is generation 1.
    pub generation: u64,
}

/// A rotating slot holding the current immutable snapshot of `T`.
///
/// Readers call [`current`](Self::current) and get an
/// `Arc<Versioned<T>>` they can hold for as long as the request runs;
/// a publisher calls [`publish`](Self::publish) with a freshly built
/// value and never waits for readers to drain. See the module docs for
/// the freshness contract.
#[derive(Debug)]
pub struct SnapshotCell<T> {
    stripes: Vec<RwLock<Arc<Versioned<T>>>>,
    epoch: AtomicU64,
    /// Serializes publishers so generations are consecutive and stripe
    /// writes from two rotations never interleave.
    publish_lock: Mutex<()>,
}

impl<T> SnapshotCell<T> {
    /// A cell initialized with generation 1 holding `initial`.
    pub fn new(initial: T) -> Self {
        let first = Arc::new(Versioned {
            value: initial,
            generation: 1,
        });
        Self {
            stripes: (0..STRIPES)
                .map(|_| RwLock::new(Arc::clone(&first)))
                .collect(),
            epoch: AtomicU64::new(1),
            publish_lock: Mutex::new(()),
        }
    }

    /// The generation of the latest fully published snapshot. A read
    /// that starts after this returns `e` sees `generation >= e`.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Clones the current snapshot out of this thread's stripe. The
    /// read lock is held only for the `Arc` clone — never across query
    /// execution — so a concurrent [`publish`](Self::publish) blocks
    /// for nanoseconds per stripe, not for a request duration.
    pub fn current(&self) -> Arc<Versioned<T>> {
        let stripe = STRIPE.with(|s| *s) % self.stripes.len();
        let slot = self.stripes[stripe]
            .read()
            .unwrap_or_else(PoisonError::into_inner);
        Arc::clone(&slot)
    }

    /// Publishes `value` as the next generation and returns that
    /// generation. Readers that already hold an `Arc` keep the old
    /// snapshot; new [`current`](Self::current) calls see the new one
    /// as their stripe is written. The epoch is bumped (Release) only
    /// after every stripe holds the new snapshot.
    pub fn publish(&self, value: T) -> u64 {
        let span = skq_obs::Span::enter("serve.publish");
        let guard = self
            .publish_lock
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        // relaxed: epoch writes are serialized by publish_lock (held
        // here), so this read cannot race another writer; cross-thread
        // visibility is carried by the Release store below, paired
        // with the Acquire load in epoch() (L16 pairing table,
        // DESIGN.md §12)
        let generation = self.epoch.load(Ordering::Relaxed) + 1;
        let next = Arc::new(Versioned { value, generation });
        for stripe in &self.stripes {
            let mut slot = stripe.write().unwrap_or_else(PoisonError::into_inner);
            *slot = Arc::clone(&next);
        }
        self.epoch.store(generation, Ordering::Release);
        drop(guard);
        let registry = skq_obs::global();
        registry
            .counter("skq_serve_snapshots_published_total", &[])
            .inc();
        registry
            .gauge("skq_serve_snapshot_epoch", &[])
            .set(generation as f64);
        drop(span);
        generation
    }

    /// Number of reader stripes (exposed for the stress tests, which
    /// want at least one reader thread per stripe).
    pub fn stripe_count(&self) -> usize {
        self.stripes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_generation_is_one() {
        let cell = SnapshotCell::new(42u32);
        assert_eq!(cell.epoch(), 1);
        let snap = cell.current();
        assert_eq!(snap.generation, 1);
        assert_eq!(snap.value, 42);
    }

    #[test]
    fn publish_bumps_generation_and_replaces_value() {
        let cell = SnapshotCell::new(1u32);
        assert_eq!(cell.publish(2), 2);
        assert_eq!(cell.publish(3), 3);
        assert_eq!(cell.epoch(), 3);
        let snap = cell.current();
        assert_eq!((snap.value, snap.generation), (3, 3));
    }

    #[test]
    fn old_snapshot_survives_rotation() {
        let cell = SnapshotCell::new(String::from("old"));
        let held = cell.current();
        cell.publish(String::from("new"));
        assert_eq!(held.value, "old");
        assert_eq!(held.generation, 1);
        assert_eq!(cell.current().value, "new");
    }

    #[test]
    fn readers_on_many_threads_see_monotone_epochs() {
        let cell = std::sync::Arc::new(SnapshotCell::new(0u64));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let cell = std::sync::Arc::clone(&cell);
            handles.push(std::thread::spawn(move || {
                let mut last = 0;
                for _ in 0..500 {
                    let e0 = cell.epoch();
                    let snap = cell.current();
                    assert!(snap.generation >= e0);
                    assert!(snap.generation >= last);
                    assert_eq!(snap.value + 1, snap.generation);
                    last = snap.generation;
                }
            }));
        }
        for g in 1..=200u64 {
            cell.publish(g);
        }
        for h in handles {
            h.join().unwrap();
        }
    }
}
