//! A classical, keyword-oblivious kd-tree.
//!
//! This is the "structured only" naive solution from the paper's
//! introduction: answer the geometric predicate with a standard index and
//! post-filter by keywords. It also serves as the pure-geometry range /
//! nearest-neighbour substrate for correctness cross-checks.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::{ConvexPolytope, Point, Rect, Region};

const LEAF_SIZE: usize = 8;

#[derive(Debug)]
struct Node {
    cell: Rect,
    /// Range into the permuted index array.
    start: u32,
    end: u32,
    /// Child node ids; `None` for leaves.
    children: Option<(u32, u32)>,
}

/// A kd-tree over a fixed set of points, supporting orthogonal range
/// reporting, convex-region reporting, and t-nearest-neighbour queries
/// under `L2` and `L∞`.
#[derive(Debug)]
pub struct KdTree {
    points: Vec<Point>,
    /// Permutation of `0..points.len()`; each node owns a contiguous slice.
    order: Vec<u32>,
    nodes: Vec<Node>,
    dim: usize,
}

impl KdTree {
    /// Builds a kd-tree on `points` (object `i` = `points[i]`).
    ///
    /// # Panics
    ///
    /// Panics if `points` is empty or dimensions are inconsistent.
    pub fn build(points: Vec<Point>) -> Self {
        let dim = points.first().expect("kd-tree needs points").dim();
        assert!(points.iter().all(|p| p.dim() == dim));
        let order: Vec<u32> = (0..points.len() as u32).collect();
        let mut tree = Self {
            points,
            order,
            nodes: Vec::new(),
            dim,
        };
        let n = tree.order.len();
        tree.build_node(0, n, 0, Rect::full(dim));
        tree
    }

    fn build_node(&mut self, start: usize, end: usize, depth: usize, cell: Rect) -> u32 {
        let id = self.nodes.len() as u32;
        self.nodes.push(Node {
            cell,
            start: start as u32,
            end: end as u32,
            children: None,
        });
        if end - start <= LEAF_SIZE {
            return id;
        }
        let axis = depth % self.dim;
        let mid = (start + end) / 2;
        let points = &self.points;
        self.order[start..end].select_nth_unstable_by(mid - start, |&a, &b| {
            points[a as usize]
                .get(axis)
                .total_cmp(&points[b as usize].get(axis))
                .then(a.cmp(&b))
        });
        let split = self.points[self.order[mid] as usize].get(axis);
        let (lcell, rcell) = cell.split(axis, split);
        let left = self.build_node(start, mid, depth + 1, lcell);
        let right = self.build_node(mid, end, depth + 1, rcell);
        self.nodes[id as usize].children = Some((left, right));
        id
    }

    /// The number of indexed points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the tree is empty (never true; build rejects empty input).
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The indexed points.
    pub fn points(&self) -> &[Point] {
        &self.points
    }

    /// Reports the indices of all points inside `q`.
    pub fn range_report(&self, q: &Rect) -> Vec<usize> {
        let mut out = Vec::new();
        self.report_rec(0, &|cell| q.classify(cell), &|p| q.contains(p), &mut out);
        out
    }

    /// Reports the indices of all points inside a convex polytope.
    pub fn report_polytope(&self, q: &ConvexPolytope) -> Vec<usize> {
        let mut out = Vec::new();
        self.report_rec(
            0,
            &|cell| q.classify_rect(cell),
            &|p| q.contains(p),
            &mut out,
        );
        out
    }

    fn report_rec(
        &self,
        node: u32,
        classify: &dyn Fn(&Rect) -> Region,
        contains: &dyn Fn(&Point) -> bool,
        out: &mut Vec<usize>,
    ) {
        let n = &self.nodes[node as usize];
        match classify(&n.cell) {
            Region::Disjoint => {}
            Region::Covered => {
                out.extend(
                    self.order[n.start as usize..n.end as usize]
                        .iter()
                        .map(|&i| i as usize),
                );
            }
            Region::Crossing => {
                if let Some((l, r)) = n.children {
                    self.report_rec(l, classify, contains, out);
                    self.report_rec(r, classify, contains, out);
                } else {
                    for &i in &self.order[n.start as usize..n.end as usize] {
                        if contains(&self.points[i as usize]) {
                            out.push(i as usize);
                        }
                    }
                }
            }
        }
    }

    /// The `t` nearest points to `q` under `L∞` distance (ties broken by
    /// index). Returns fewer than `t` indices iff the tree holds fewer
    /// points. Result is sorted by distance.
    pub fn knn_linf(&self, q: &Point, t: usize) -> Vec<usize> {
        self.knn(q, t, &|a, b| a.linf(b), &|cell, p| dist_rect_linf(cell, p))
    }

    /// The `t` nearest points to `q` under `L2` distance (compared via
    /// squared distances; ties broken by index). Result is sorted.
    pub fn knn_l2(&self, q: &Point, t: usize) -> Vec<usize> {
        self.knn(q, t, &|a, b| a.l2_sq(b), &|cell, p| dist_rect_l2sq(cell, p))
    }

    fn knn(
        &self,
        q: &Point,
        t: usize,
        point_dist: &dyn Fn(&Point, &Point) -> f64,
        cell_dist: &dyn Fn(&Rect, &Point) -> f64,
    ) -> Vec<usize> {
        if t == 0 {
            return Vec::new();
        }
        // Best-first search: a min-heap of (cell distance, node), and a
        // max-heap of the current best t candidates.
        let mut frontier: BinaryHeap<Reverse<(OrdF64, u32)>> = BinaryHeap::new();
        frontier.push(Reverse((OrdF64(cell_dist(&self.nodes[0].cell, q)), 0)));
        let mut best: BinaryHeap<(OrdF64, u32)> = BinaryHeap::new();

        while let Some(Reverse((OrdF64(d), node))) = frontier.pop() {
            if best.len() == t && d > best.peek().unwrap().0 .0 {
                break;
            }
            let n = &self.nodes[node as usize];
            if let Some((l, r)) = n.children {
                for c in [l, r] {
                    let cd = cell_dist(&self.nodes[c as usize].cell, q);
                    if best.len() < t || cd <= best.peek().unwrap().0 .0 {
                        frontier.push(Reverse((OrdF64(cd), c)));
                    }
                }
            } else {
                for &i in &self.order[n.start as usize..n.end as usize] {
                    let pd = point_dist(&self.points[i as usize], q);
                    if best.len() < t {
                        best.push((OrdF64(pd), i));
                    } else if (OrdF64(pd), i) < *best.peek().unwrap() {
                        best.pop();
                        best.push((OrdF64(pd), i));
                    }
                }
            }
        }
        let mut out: Vec<(OrdF64, u32)> = best.into_vec();
        out.sort();
        out.into_iter().map(|(_, i)| i as usize).collect()
    }
}

/// Total-ordered f64 wrapper for heap keys (inputs are never NaN).
#[derive(Clone, Copy, PartialEq, Debug)]
struct OrdF64(f64);

impl Eq for OrdF64 {}
impl PartialOrd for OrdF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for OrdF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// Minimum `L∞` distance from `p` to any point of `cell`.
fn dist_rect_linf(cell: &Rect, p: &Point) -> f64 {
    (0..cell.dim())
        .map(|i| {
            let c = p.get(i);
            let (lo, hi) = cell.interval(i);
            if c < lo {
                lo - c
            } else if c > hi {
                c - hi
            } else {
                0.0
            }
        })
        .fold(0.0, f64::max)
}

/// Minimum squared `L2` distance from `p` to any point of `cell`.
fn dist_rect_l2sq(cell: &Rect, p: &Point) -> f64 {
    (0..cell.dim())
        .map(|i| {
            let c = p.get(i);
            let (lo, hi) = cell.interval(i);
            let d = if c < lo {
                lo - c
            } else if c > hi {
                c - hi
            } else {
                0.0
            };
            d * d
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn random_points(n: usize, dim: usize, seed: u64) -> Vec<Point> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let coords: Vec<f64> = (0..dim).map(|_| rng.gen_range(-100.0..100.0)).collect();
                Point::new(&coords)
            })
            .collect()
    }

    #[test]
    fn range_report_matches_bruteforce() {
        let points = random_points(500, 2, 1);
        let tree = KdTree::build(points.clone());
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..50 {
            let x0: f64 = rng.gen_range(-120.0..120.0);
            let x1: f64 = rng.gen_range(-120.0..120.0);
            let y0: f64 = rng.gen_range(-120.0..120.0);
            let y1: f64 = rng.gen_range(-120.0..120.0);
            let q = Rect::new(&[x0.min(x1), y0.min(y1)], &[x0.max(x1), y0.max(y1)]);
            let mut got = tree.range_report(&q);
            got.sort_unstable();
            let expected: Vec<usize> = (0..points.len())
                .filter(|&i| q.contains(&points[i]))
                .collect();
            assert_eq!(got, expected);
        }
    }

    #[test]
    fn range_report_3d() {
        let points = random_points(300, 3, 3);
        let tree = KdTree::build(points.clone());
        let q = Rect::new(&[-50.0, -50.0, -50.0], &[50.0, 50.0, 50.0]);
        let mut got = tree.range_report(&q);
        got.sort_unstable();
        let expected: Vec<usize> = (0..points.len())
            .filter(|&i| q.contains(&points[i]))
            .collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn polytope_report_matches_bruteforce() {
        use crate::Halfspace;
        let points = random_points(400, 2, 4);
        let tree = KdTree::build(points.clone());
        let q = ConvexPolytope::new(vec![
            Halfspace::new(&[1.0, 1.0], 50.0),
            Halfspace::new(&[-1.0, 0.5], 30.0),
        ]);
        let mut got = tree.report_polytope(&q);
        got.sort_unstable();
        let expected: Vec<usize> = (0..points.len())
            .filter(|&i| q.contains(&points[i]))
            .collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn knn_matches_bruteforce() {
        let points = random_points(300, 2, 5);
        let tree = KdTree::build(points.clone());
        let mut rng = StdRng::seed_from_u64(6);
        for _ in 0..30 {
            let q = Point::new2(rng.gen_range(-120.0..120.0), rng.gen_range(-120.0..120.0));
            for t in [1, 3, 10] {
                let got = tree.knn_l2(&q, t);
                let mut expected: Vec<usize> = (0..points.len()).collect();
                expected.sort_by(|&a, &b| {
                    points[a]
                        .l2_sq(&q)
                        .total_cmp(&points[b].l2_sq(&q))
                        .then(a.cmp(&b))
                });
                expected.truncate(t);
                assert_eq!(got, expected, "L2 t={t}");

                let got = tree.knn_linf(&q, t);
                let mut expected: Vec<usize> = (0..points.len()).collect();
                expected.sort_by(|&a, &b| {
                    points[a]
                        .linf(&q)
                        .total_cmp(&points[b].linf(&q))
                        .then(a.cmp(&b))
                });
                expected.truncate(t);
                assert_eq!(got, expected, "L∞ t={t}");
            }
        }
    }

    #[test]
    fn knn_t_larger_than_n() {
        let points = random_points(5, 2, 7);
        let tree = KdTree::build(points);
        assert_eq!(tree.knn_l2(&Point::new2(0.0, 0.0), 10).len(), 5);
    }

    #[test]
    fn knn_zero() {
        let points = random_points(5, 2, 8);
        let tree = KdTree::build(points);
        assert!(tree.knn_l2(&Point::new2(0.0, 0.0), 0).is_empty());
    }

    #[test]
    fn duplicate_points_handled() {
        let mut points = vec![Point::new2(1.0, 1.0); 100];
        points.push(Point::new2(2.0, 2.0));
        let tree = KdTree::build(points);
        let q = Rect::new(&[0.5, 0.5], &[1.5, 1.5]);
        assert_eq!(tree.range_report(&q).len(), 100);
    }
}
