//! Axis-aligned `d`-rectangles.
//!
//! A `d`-rectangle `[x₁, y₁] × … × [x_d, y_d]` is the query shape of the
//! ORP-KW problem and the cell shape of the kd-tree. Endpoints may be
//! `±∞`, which the reductions in the paper rely on (Corollary 3 builds
//! `2d`-rectangles of the form `(−∞, y] × [x, ∞) × …`).

use crate::{Point, Region, MAX_DIM};

/// An axis-aligned rectangle in `R^d`, possibly unbounded.
///
/// Invariant: `lo[i] ≤ hi[i]` for every dimension — constructors reject
/// empty intervals, so every `Rect` is non-empty (degenerate, zero-width
/// intervals are allowed).
#[derive(Clone, Copy, PartialEq)]
pub struct Rect {
    lo: [f64; MAX_DIM],
    hi: [f64; MAX_DIM],
    dim: u8,
}

impl Rect {
    /// Creates a rectangle from per-dimension intervals `[lo[i], hi[i]]`.
    ///
    /// # Panics
    ///
    /// Panics if the slices have mismatched or unsupported lengths, or if
    /// `lo[i] > hi[i]` for some `i`.
    pub fn new(lo: &[f64], hi: &[f64]) -> Self {
        assert_eq!(lo.len(), hi.len(), "lo/hi dimension mismatch");
        assert!(
            !lo.is_empty() && lo.len() <= MAX_DIM,
            "rect dimension must be in 1..={MAX_DIM}"
        );
        for i in 0..lo.len() {
            assert!(
                lo[i] <= hi[i],
                "rect has empty interval on dim {i}: [{}, {}]",
                lo[i],
                hi[i]
            );
        }
        let mut l = [0.0; MAX_DIM];
        let mut h = [0.0; MAX_DIM];
        l[..lo.len()].copy_from_slice(lo);
        h[..hi.len()].copy_from_slice(hi);
        Self {
            lo: l,
            hi: h,
            dim: lo.len() as u8,
        }
    }

    /// The whole space `R^d`.
    pub fn full(dim: usize) -> Self {
        Self::new(&vec![f64::NEG_INFINITY; dim], &vec![f64::INFINITY; dim])
    }

    /// The `L∞`-ball `B(center, radius)`, which is a `d`-rectangle
    /// (used by Corollary 4).
    pub fn linf_ball(center: &Point, radius: f64) -> Self {
        assert!(radius >= 0.0, "radius must be non-negative");
        let lo: Vec<f64> = center.coords().iter().map(|c| c - radius).collect();
        let hi: Vec<f64> = center.coords().iter().map(|c| c + radius).collect();
        Self::new(&lo, &hi)
    }

    /// The dimensionality `d`.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim as usize
    }

    /// Lower endpoint on dimension `i`.
    #[inline]
    pub fn lo(&self, i: usize) -> f64 {
        assert!(i < self.dim());
        self.lo[i]
    }

    /// Upper endpoint on dimension `i`.
    #[inline]
    pub fn hi(&self, i: usize) -> f64 {
        assert!(i < self.dim());
        self.hi[i]
    }

    /// Whether the rectangle contains `p` (boundary inclusive).
    pub fn contains(&self, p: &Point) -> bool {
        assert_eq!(self.dim(), p.dim(), "rect/point dimension mismatch");
        (0..self.dim()).all(|i| self.lo[i] <= p.get(i) && p.get(i) <= self.hi[i])
    }

    /// Whether the rectangle intersects `other` (boundary inclusive).
    pub fn intersects(&self, other: &Rect) -> bool {
        assert_eq!(self.dim(), other.dim(), "rect dimension mismatch");
        (0..self.dim()).all(|i| self.lo[i] <= other.hi[i] && other.lo[i] <= self.hi[i])
    }

    /// Whether `other` is entirely contained in this rectangle.
    pub fn covers(&self, other: &Rect) -> bool {
        assert_eq!(self.dim(), other.dim(), "rect dimension mismatch");
        (0..self.dim()).all(|i| self.lo[i] <= other.lo[i] && other.hi[i] <= self.hi[i])
    }

    /// Exact classification of `cell` against this rectangle as a query.
    pub fn classify(&self, cell: &Rect) -> Region {
        if !self.intersects(cell) {
            Region::Disjoint
        } else if self.covers(cell) {
            Region::Covered
        } else {
            Region::Crossing
        }
    }

    /// Splits the rectangle on dimension `axis` at coordinate `at`,
    /// returning the `(left, right)` halves (both closed, sharing the
    /// boundary hyperplane, exactly like the kd-tree cells of §3.1).
    ///
    /// # Panics
    ///
    /// Panics if `at` is outside `[lo(axis), hi(axis)]`.
    pub fn split(&self, axis: usize, at: f64) -> (Rect, Rect) {
        assert!(axis < self.dim());
        assert!(
            self.lo[axis] <= at && at <= self.hi[axis],
            "split coordinate outside cell"
        );
        let mut left = *self;
        let mut right = *self;
        left.hi[axis] = at;
        right.lo[axis] = at;
        (left, right)
    }

    /// Drops the first dimension (used by the dimension-reduction tree,
    /// whose secondary queries have an unbounded x-projection).
    #[must_use]
    pub fn drop_first(&self) -> Rect {
        assert!(self.dim() >= 2);
        Rect::new(&self.lo[1..self.dim()], &self.hi[1..self.dim()])
    }

    /// The interval `[lo(i), hi(i)]` as a pair.
    pub fn interval(&self, i: usize) -> (f64, f64) {
        (self.lo(i), self.hi(i))
    }

    /// Iterates over the (up to `2^d`) corner points of the rectangle.
    ///
    /// Infinite endpoints are kept as `±∞`; callers evaluating linear
    /// forms on corners must handle infinities.
    pub fn corners(&self) -> impl Iterator<Item = Point> + '_ {
        let d = self.dim();
        (0..(1usize << d)).map(move |mask| {
            let coords: Vec<f64> = (0..d)
                .map(|i| {
                    if mask >> i & 1 == 0 {
                        self.lo[i]
                    } else {
                        self.hi[i]
                    }
                })
                .collect();
            Point::new(&coords)
        })
    }
}

impl std::fmt::Debug for Rect {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Rect[")?;
        for i in 0..self.dim() {
            if i > 0 {
                write!(f, " × ")?;
            }
            write!(f, "[{}, {}]", self.lo[i], self.hi[i])?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contains_boundary_inclusive() {
        let r = Rect::new(&[0.0, 0.0], &[1.0, 2.0]);
        assert!(r.contains(&Point::new2(0.0, 2.0)));
        assert!(r.contains(&Point::new2(0.5, 1.0)));
        assert!(!r.contains(&Point::new2(1.1, 1.0)));
    }

    #[test]
    fn full_contains_everything() {
        let r = Rect::full(3);
        assert!(r.contains(&Point::new3(1e300, -1e300, 0.0)));
    }

    #[test]
    fn intersection_tests() {
        let a = Rect::new(&[0.0, 0.0], &[2.0, 2.0]);
        let b = Rect::new(&[2.0, 2.0], &[3.0, 3.0]); // touch at a corner
        let c = Rect::new(&[2.1, 0.0], &[3.0, 1.0]);
        assert!(a.intersects(&b));
        assert!(!a.intersects(&c));
    }

    #[test]
    fn classify_regions() {
        let q = Rect::new(&[0.0, 0.0], &[10.0, 10.0]);
        let inside = Rect::new(&[1.0, 1.0], &[2.0, 2.0]);
        let crossing = Rect::new(&[9.0, 9.0], &[11.0, 11.0]);
        let outside = Rect::new(&[20.0, 20.0], &[30.0, 30.0]);
        assert_eq!(q.classify(&inside), Region::Covered);
        assert_eq!(q.classify(&crossing), Region::Crossing);
        assert_eq!(q.classify(&outside), Region::Disjoint);
    }

    #[test]
    fn split_shares_boundary() {
        let r = Rect::new(&[0.0, 0.0], &[4.0, 4.0]);
        let (l, rgt) = r.split(0, 1.5);
        assert_eq!(l.hi(0), 1.5);
        assert_eq!(rgt.lo(0), 1.5);
        assert_eq!(l.lo(1), 0.0);
        assert_eq!(rgt.hi(1), 4.0);
    }

    #[test]
    fn linf_ball_is_rect() {
        let b = Rect::linf_ball(&Point::new2(1.0, 2.0), 0.5);
        assert!(b.contains(&Point::new2(1.5, 2.5)));
        assert!(!b.contains(&Point::new2(1.6, 2.0)));
    }

    #[test]
    fn corners_enumerated() {
        let r = Rect::new(&[0.0, 0.0], &[1.0, 2.0]);
        let corners: Vec<Point> = r.corners().collect();
        assert_eq!(corners.len(), 4);
        assert!(corners.contains(&Point::new2(1.0, 2.0)));
        assert!(corners.contains(&Point::new2(0.0, 0.0)));
    }

    #[test]
    fn drop_first_reduces_dim() {
        let r = Rect::new(&[0.0, 1.0, 2.0], &[3.0, 4.0, 5.0]);
        let s = r.drop_first();
        assert_eq!(s.dim(), 2);
        assert_eq!(s.interval(0), (1.0, 4.0));
    }

    #[test]
    #[should_panic(expected = "empty interval")]
    fn inverted_interval_rejected() {
        let _ = Rect::new(&[1.0], &[0.0]);
    }
}
