//! A 2D range tree — the classical `O(log² n + out)` orthogonal range
//! reporting structure.
//!
//! This is the second canonical "structured only" baseline (besides the
//! kd-tree): a balanced binary tree over the x-order where every node
//! stores its points sorted by y, built bottom-up by merging
//! (`O(n log n)` time, `O(n log n)` space). A query decomposes the
//! x-range into `O(log n)` canonical nodes and binary-searches the
//! y-range in each.

use crate::{Point, Rect};

#[derive(Debug)]
struct Node {
    /// Range of the x-sorted order covered by this node.
    start: u32,
    end: u32,
    /// The covered points (indices) sorted by `(y, id)`.
    by_y: Vec<u32>,
    children: Option<(u32, u32)>,
}

/// A static 2D range tree over points.
#[derive(Debug)]
pub struct RangeTree2D {
    points: Vec<Point>,
    /// Point indices sorted by `(x, id)`.
    x_order: Vec<u32>,
    nodes: Vec<Node>,
}

impl RangeTree2D {
    /// Builds the tree.
    ///
    /// # Panics
    ///
    /// Panics if `points` is empty or not 2-dimensional.
    pub fn build(points: Vec<Point>) -> Self {
        assert!(!points.is_empty(), "range tree needs points");
        assert!(points.iter().all(|p| p.dim() == 2), "range tree is 2D");
        let mut x_order: Vec<u32> = (0..points.len() as u32).collect();
        x_order.sort_unstable_by(|&a, &b| {
            points[a as usize]
                .get(0)
                .total_cmp(&points[b as usize].get(0))
                .then(a.cmp(&b))
        });
        let mut tree = Self {
            points,
            x_order,
            nodes: Vec::new(),
        };
        let n = tree.x_order.len();
        tree.build_node(0, n);
        tree
    }

    fn build_node(&mut self, start: usize, end: usize) -> u32 {
        let id = self.nodes.len() as u32;
        self.nodes.push(Node {
            start: start as u32,
            end: end as u32,
            by_y: Vec::new(),
            children: None,
        });
        if end - start <= 1 {
            self.nodes[id as usize].by_y = self.x_order[start..end].to_vec();
            return id;
        }
        let mid = (start + end) / 2;
        let left = self.build_node(start, mid);
        let right = self.build_node(mid, end);
        // Merge children's y-lists (they are each sorted by (y, id)).
        let merged = {
            let l = &self.nodes[left as usize].by_y;
            let r = &self.nodes[right as usize].by_y;
            let mut out = Vec::with_capacity(l.len() + r.len());
            let (mut i, mut j) = (0, 0);
            while i < l.len() && j < r.len() {
                if self.y_key(l[i]) <= self.y_key(r[j]) {
                    out.push(l[i]);
                    i += 1;
                } else {
                    out.push(r[j]);
                    j += 1;
                }
            }
            out.extend_from_slice(&l[i..]);
            out.extend_from_slice(&r[j..]);
            out
        };
        self.nodes[id as usize].by_y = merged;
        self.nodes[id as usize].children = Some((left, right));
        id
    }

    fn y_key(&self, i: u32) -> (f64, u32) {
        (self.points[i as usize].get(1), i)
    }

    /// The number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Never true: the constructor rejects empty input.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Space in 64-bit words (the `O(n log n)` y-lists dominate).
    pub fn space_words(&self) -> usize {
        self.nodes.iter().map(|n| n.by_y.len() + 4).sum()
    }

    /// Reports the indices of all points in `q`.
    pub fn range_report(&self, q: &Rect) -> Vec<usize> {
        assert_eq!(q.dim(), 2);
        let mut out = Vec::new();
        self.query_rec(0, q, &mut out);
        out
    }

    fn query_rec(&self, node: u32, q: &Rect, out: &mut Vec<usize>) {
        let n = &self.nodes[node as usize];
        let (x1, x2) = q.interval(0);
        // X-extent of the node (by the sorted order).
        let first = self.x_order[n.start as usize];
        let last = self.x_order[n.end as usize - 1];
        let lo_x = self.points[first as usize].get(0);
        let hi_x = self.points[last as usize].get(0);
        if hi_x < x1 || x2 < lo_x {
            return;
        }
        if x1 <= lo_x && hi_x <= x2 {
            // Canonical node: binary search the y-range in the y-list.
            let (y1, y2) = q.interval(1);
            let from = n
                .by_y
                .partition_point(|&i| self.points[i as usize].get(1) < y1);
            let to = n
                .by_y
                .partition_point(|&i| self.points[i as usize].get(1) <= y2);
            out.extend(n.by_y[from..to].iter().map(|&i| i as usize));
            return;
        }
        if let Some((l, r)) = n.children {
            self.query_rec(l, q, out);
            self.query_rec(r, q, out);
        } else {
            // Single point straddling the x-boundary.
            for &i in &n.by_y {
                if q.contains(&self.points[i as usize]) {
                    out.push(i as usize);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn random_points(n: usize, seed: u64) -> Vec<Point> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| Point::new2(rng.gen_range(-50..50) as f64, rng.gen_range(-50..50) as f64))
            .collect()
    }

    #[test]
    fn matches_bruteforce() {
        let points = random_points(400, 1);
        let tree = RangeTree2D::build(points.clone());
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..100 {
            let x: f64 = rng.gen_range(-60..60) as f64;
            let y: f64 = rng.gen_range(-60..60) as f64;
            let q = Rect::new(
                &[x, y],
                &[
                    x + rng.gen_range(0..40) as f64,
                    y + rng.gen_range(0..40) as f64,
                ],
            );
            let mut got = tree.range_report(&q);
            got.sort_unstable();
            let expected: Vec<usize> = (0..points.len())
                .filter(|&i| q.contains(&points[i]))
                .collect();
            assert_eq!(got, expected);
        }
    }

    #[test]
    fn duplicates_and_boundaries() {
        let mut points = vec![Point::new2(5.0, 5.0); 20];
        points.push(Point::new2(5.0, 6.0));
        points.push(Point::new2(6.0, 5.0));
        let tree = RangeTree2D::build(points);
        let q = Rect::new(&[5.0, 5.0], &[5.0, 5.0]);
        assert_eq!(tree.range_report(&q).len(), 20);
        let q = Rect::new(&[5.0, 5.0], &[6.0, 6.0]);
        assert_eq!(tree.range_report(&q).len(), 22);
    }

    #[test]
    fn unbounded_queries() {
        let points = random_points(100, 3);
        let tree = RangeTree2D::build(points.clone());
        let q = Rect::full(2);
        assert_eq!(tree.range_report(&q).len(), 100);
        let half = Rect::new(&[0.0, f64::NEG_INFINITY], &[f64::INFINITY, f64::INFINITY]);
        let mut got = tree.range_report(&half);
        got.sort_unstable();
        let expected: Vec<usize> = (0..100).filter(|&i| points[i].get(0) >= 0.0).collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn space_is_n_log_n_ish() {
        let points = random_points(1024, 4);
        let tree = RangeTree2D::build(points);
        let words = tree.space_words();
        // ~ n·(log2 n + 1) list entries + 4 words per node (~2n nodes).
        assert!(words < 1024 * 22, "space {words}");
        assert!(words > 1024 * 10, "space {words}");
    }

    #[test]
    fn single_point() {
        let tree = RangeTree2D::build(vec![Point::new2(1.0, 2.0)]);
        assert_eq!(tree.range_report(&Rect::full(2)), vec![0]);
        assert!(tree
            .range_report(&Rect::new(&[2.0, 2.0], &[3.0, 3.0]))
            .is_empty());
    }
}
