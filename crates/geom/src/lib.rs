//! Geometry substrate for structured keyword search.
//!
//! This crate provides the purely geometric building blocks used by the
//! keyword-aware indexes in `skq-core`:
//!
//! * [`Point`] — a fixed-capacity point in up to [`MAX_DIM`] dimensions;
//! * [`Rect`] — axis-aligned (possibly unbounded) `d`-rectangles;
//! * [`Halfspace`] and [`ConvexPolytope`] — linear constraints `c · x ≤ b`
//!   and their conjunctions, the query shape of the LC-KW problem;
//! * [`Simplex`] — `d`-simplices, the query shape of the SP-KW problem;
//! * [`Polygon`] — 2D convex polygons, the cells of the partition tree;
//! * [`lift`] — the lifting map reducing spherical queries to halfspaces;
//! * [`RankSpace`] — the rank-space normalization of §3.4 of the paper;
//! * [`KdTree`] — a classical (keyword-oblivious) kd-tree used as the
//!   "structured-only" baseline of the paper's introduction;
//! * [`RangeTree2D`] — the classical `O(log² n + out)` 2D range tree,
//!   an alternative structured-only baseline.
//!
//! All predicates that the indexes use for *descending* a tree may be
//! conservative (they may report "crossing" when the truth is "disjoint")
//! because reported objects are always re-validated point-wise; predicates
//! used for *reporting* are exact.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod halfspace;
pub mod kdtree;
pub mod lift;
pub mod point;
pub mod polygon;
pub mod range_tree;
pub mod rank;
pub mod rect;
pub mod region;
pub mod simplex;

pub use halfspace::{ConvexPolytope, Halfspace};
pub use kdtree::KdTree;
pub use lift::{lift_ball, lift_point, Ball};
pub use point::{Point, MAX_DIM};
pub use polygon::Polygon;
pub use range_tree::RangeTree2D;
pub use rank::RankSpace;
pub use rect::Rect;
pub use region::Region;
pub use simplex::Simplex;
