//! 2D convex polygons — the cells of the Willard partition tree.
//!
//! The partition tree of Appendix D associates each node with a convex
//! cell. In 2D a cell is the intersection of the splitting halfplanes on
//! the root path; we store it as an explicit convex polygon (counter-
//! clockwise vertex list) clipped out of a bounding box of the data, so
//! that covered/crossing classification is a vertex scan.

use crate::{Halfspace, Point, Region};

/// A convex polygon in the plane with counter-clockwise vertices.
///
/// May be empty (no vertices) after clipping.
#[derive(Clone, Debug, PartialEq)]
pub struct Polygon {
    vertices: Vec<(f64, f64)>,
}

impl Polygon {
    /// Creates a polygon from counter-clockwise vertices.
    pub fn new(vertices: Vec<(f64, f64)>) -> Self {
        Self { vertices }
    }

    /// An axis-aligned box as a polygon.
    pub fn rect(x0: f64, y0: f64, x1: f64, y1: f64) -> Self {
        assert!(x0 <= x1 && y0 <= y1);
        Self::new(vec![(x0, y0), (x1, y0), (x1, y1), (x0, y1)])
    }

    /// The vertex list (counter-clockwise).
    pub fn vertices(&self) -> &[(f64, f64)] {
        &self.vertices
    }

    /// Whether the polygon has no vertices.
    pub fn is_empty(&self) -> bool {
        self.vertices.is_empty()
    }

    /// Clips the polygon by the halfplane `a·x + b·y ≤ c`
    /// (Sutherland–Hodgman; the result is convex and counter-clockwise).
    #[must_use]
    pub fn clip(&self, a: f64, b: f64, c: f64) -> Polygon {
        let n = self.vertices.len();
        if n == 0 {
            return self.clone();
        }
        let side = |&(x, y): &(f64, f64)| a * x + b * y - c;
        let mut out = Vec::with_capacity(n + 1);
        for i in 0..n {
            let cur = self.vertices[i];
            let nxt = self.vertices[(i + 1) % n];
            let sc = side(&cur);
            let sn = side(&nxt);
            if sc <= 0.0 {
                out.push(cur);
            }
            if (sc < 0.0 && sn > 0.0) || (sc > 0.0 && sn < 0.0) {
                // Edge crosses the boundary; add the intersection point.
                let t = sc / (sc - sn);
                out.push((cur.0 + t * (nxt.0 - cur.0), cur.1 + t * (nxt.1 - cur.1)));
            }
        }
        Polygon::new(out)
    }

    /// Whether the polygon contains `(x, y)` (boundary inclusive, with a
    /// relative tolerance appropriate for clipped coordinates).
    pub fn contains(&self, x: f64, y: f64) -> bool {
        let n = self.vertices.len();
        if n < 3 {
            return false;
        }
        for i in 0..n {
            let (x0, y0) = self.vertices[i];
            let (x1, y1) = self.vertices[(i + 1) % n];
            let cross = (x1 - x0) * (y - y0) - (y1 - y0) * (x - x0);
            let scale = ((x1 - x0).abs() + (y1 - y0).abs()).max(1.0)
                * ((x - x0).abs() + (y - y0).abs()).max(1.0);
            if cross < -1e-9 * scale {
                return false;
            }
        }
        true
    }

    /// Classification of this polygon (a tree cell) against a convex query
    /// given as halfspaces.
    ///
    /// * `Covered`: every vertex satisfies every halfspace (exact for a
    ///   bounded cell);
    /// * `Disjoint`: some halfspace is violated by every vertex (exact);
    /// * otherwise `Crossing` (conservative, safe).
    pub fn classify(&self, halfspaces: &[Halfspace]) -> Region {
        if self.is_empty() {
            return Region::Disjoint;
        }
        let mut covered = true;
        for h in halfspaces {
            debug_assert_eq!(h.dim(), 2, "polygon cells are 2-dimensional");
            let mut any_in = false;
            let mut all_in = true;
            for &(x, y) in &self.vertices {
                if h.contains(&Point::new2(x, y)) {
                    any_in = true;
                } else {
                    all_in = false;
                }
            }
            if !any_in {
                return Region::Disjoint;
            }
            if !all_in {
                covered = false;
            }
        }
        if covered {
            Region::Covered
        } else {
            Region::Crossing
        }
    }

    /// Polygon area (shoelace formula; non-negative for CCW input).
    pub fn area(&self) -> f64 {
        let n = self.vertices.len();
        if n < 3 {
            return 0.0;
        }
        let mut acc = 0.0;
        for i in 0..n {
            let (x0, y0) = self.vertices[i];
            let (x1, y1) = self.vertices[(i + 1) % n];
            acc += x0 * y1 - x1 * y0;
        }
        acc / 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_square() -> Polygon {
        Polygon::rect(0.0, 0.0, 1.0, 1.0)
    }

    #[test]
    fn rect_polygon_contains() {
        let p = unit_square();
        assert!(p.contains(0.5, 0.5));
        assert!(p.contains(0.0, 0.0)); // boundary
        assert!(!p.contains(1.5, 0.5));
    }

    #[test]
    fn clip_halves_square() {
        // x ≤ 0.5
        let p = unit_square().clip(1.0, 0.0, 0.5);
        assert!((p.area() - 0.5).abs() < 1e-12);
        assert!(p.contains(0.25, 0.5));
        assert!(!p.contains(0.75, 0.5));
    }

    #[test]
    fn clip_diagonal() {
        // x + y ≤ 1 cuts the unit square into a triangle of area 1/2.
        let p = unit_square().clip(1.0, 1.0, 1.0);
        assert!((p.area() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn clip_to_empty() {
        let p = unit_square().clip(1.0, 0.0, -1.0); // x ≤ -1
        assert!(p.is_empty() || p.area() == 0.0);
        assert!(!p.contains(0.5, 0.5));
    }

    #[test]
    fn classify_against_halfplanes() {
        let p = unit_square();
        let inside = [Halfspace::new(&[1.0, 0.0], 2.0)]; // x ≤ 2 covers
        let disjoint = [Halfspace::new(&[1.0, 0.0], -1.0)]; // x ≤ -1
        let crossing = [Halfspace::new(&[1.0, 0.0], 0.5)]; // x ≤ 0.5
        assert_eq!(p.classify(&inside), Region::Covered);
        assert_eq!(p.classify(&disjoint), Region::Disjoint);
        assert_eq!(p.classify(&crossing), Region::Crossing);
    }

    #[test]
    fn empty_polygon_is_disjoint() {
        let p = Polygon::new(vec![]);
        assert_eq!(
            p.classify(&[Halfspace::new(&[1.0, 0.0], 10.0)]),
            Region::Disjoint
        );
    }

    #[test]
    fn area_of_triangle() {
        let t = Polygon::new(vec![(0.0, 0.0), (2.0, 0.0), (0.0, 2.0)]);
        assert!((t.area() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn repeated_clips_stay_consistent() {
        let mut p = Polygon::rect(-10.0, -10.0, 10.0, 10.0);
        // Clip down to the triangle x ≥ 0, y ≥ 0, x + y ≤ 5.
        p = p.clip(-1.0, 0.0, 0.0);
        p = p.clip(0.0, -1.0, 0.0);
        p = p.clip(1.0, 1.0, 5.0);
        assert!((p.area() - 12.5).abs() < 1e-9);
        assert!(p.contains(1.0, 1.0));
        assert!(!p.contains(4.0, 4.0));
    }
}
