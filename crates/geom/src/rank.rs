//! Rank-space normalization (Step 4 of the framework, §3.4).
//!
//! The kd-tree conversion assumes *general position* — no two objects
//! share a coordinate on any dimension. §3.4 removes the assumption by
//! sorting the objects on each dimension (ties broken by object id) and
//! replacing coordinates with their ranks; a query rectangle is converted
//! to rank space in `O(log N)` by binary search without affecting the
//! result.

use crate::{Point, Rect};

/// A per-dimension rank mapping over a fixed point set.
#[derive(Clone, Debug)]
pub struct RankSpace {
    /// For each dimension: `(coordinate, object index)` sorted
    /// lexicographically. The rank of an object on a dimension is its
    /// position in this order.
    sorted: Vec<Vec<(f64, u32)>>,
    /// `ranks[i]` is the rank-space point of object `i`.
    ranks: Vec<Point>,
    dim: usize,
}

impl RankSpace {
    /// Builds the rank mapping for `points` (object `i` = `points[i]`).
    ///
    /// # Panics
    ///
    /// Panics if `points` is empty, dimensions are inconsistent, or any
    /// coordinate is NaN.
    pub fn build(points: &[Point]) -> Self {
        let dim = points.first().expect("rank space needs points").dim();
        assert!(points.iter().all(|p| p.dim() == dim));
        assert!(
            points
                .iter()
                .all(|p| p.coords().iter().all(|c| !c.is_nan())),
            "NaN coordinates are not orderable"
        );
        let mut sorted = Vec::with_capacity(dim);
        let mut rank_coords = vec![vec![0.0f64; dim]; points.len()];
        #[allow(clippy::needless_range_loop)] // `d` indexes per-point coord vectors, not one slice
        for d in 0..dim {
            let mut order: Vec<(f64, u32)> = points
                .iter()
                .enumerate()
                .map(|(i, p)| (p.get(d), i as u32))
                .collect();
            order.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
            for (rank, &(_, idx)) in order.iter().enumerate() {
                rank_coords[idx as usize][d] = rank as f64;
            }
            sorted.push(order);
        }
        let ranks = rank_coords.iter().map(|c| Point::new(c)).collect();
        Self { sorted, ranks, dim }
    }

    /// The dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The number of objects.
    pub fn len(&self) -> usize {
        self.ranks.len()
    }

    /// Whether the mapping is over an empty set (never true; kept for API
    /// completeness).
    pub fn is_empty(&self) -> bool {
        self.ranks.is_empty()
    }

    /// The rank-space image of object `i`.
    ///
    /// All images have pairwise-distinct coordinates on every dimension —
    /// the general-position property the kd framework needs.
    pub fn point(&self, i: usize) -> Point {
        self.ranks[i]
    }

    /// The per-dimension sorted `(coordinate, object index)` columns —
    /// the complete ground truth of the mapping (ranks are derived),
    /// exposed for the snapshot encoder.
    pub fn columns(&self) -> &[Vec<(f64, u32)>] {
        &self.sorted
    }

    /// Reassembles a mapping from decoded columns, validating every
    /// property [`RankSpace::build`] guarantees and re-deriving the
    /// rank points — the snapshot-load counterpart of `build`.
    ///
    /// # Errors
    ///
    /// A description of the first violation: no columns, empty or
    /// unequal-length columns, a NaN coordinate, a column not sorted
    /// lexicographically by `(coordinate, id)`, or a column whose ids
    /// are not a permutation of `0..len`.
    pub fn try_from_columns(sorted: Vec<Vec<(f64, u32)>>) -> Result<Self, String> {
        let dim = sorted.len();
        if dim == 0 {
            return Err("rank space needs at least one dimension".into());
        }
        if dim > crate::MAX_DIM {
            return Err(format!(
                "rank space dimensionality {dim} exceeds MAX_DIM {}",
                crate::MAX_DIM
            ));
        }
        let n = sorted[0].len();
        if n == 0 {
            return Err("rank space needs at least one object".into());
        }
        let mut rank_coords = vec![vec![0.0f64; dim]; n];
        for (d, col) in sorted.iter().enumerate() {
            if col.len() != n {
                return Err(format!(
                    "dimension {d}: column has {} entries, expected {n}",
                    col.len()
                ));
            }
            let mut seen = vec![false; n];
            for (rank, &(coord, idx)) in col.iter().enumerate() {
                if coord.is_nan() {
                    return Err(format!("dimension {d}: NaN coordinate at rank {rank}"));
                }
                let i = idx as usize;
                if i >= n {
                    return Err(format!(
                        "dimension {d}: object index {idx} out of range for {n} objects"
                    ));
                }
                if seen[i] {
                    return Err(format!("dimension {d}: object index {idx} appears twice"));
                }
                seen[i] = true;
                if rank > 0 {
                    let (pc, pi) = col[rank - 1];
                    if !matches!(
                        pc.total_cmp(&coord).then(pi.cmp(&idx)),
                        std::cmp::Ordering::Less
                    ) {
                        return Err(format!(
                            "dimension {d}: column not sorted by (coordinate, id) at rank {rank}"
                        ));
                    }
                }
                rank_coords[i][d] = rank as f64;
            }
        }
        let ranks = rank_coords.iter().map(|c| Point::new(c)).collect();
        Ok(Self { sorted, ranks, dim })
    }

    /// Converts an original-space query rectangle into rank space.
    ///
    /// Returns `None` when the query provably selects nothing (its
    /// interval on some dimension contains no data coordinate);
    /// otherwise the returned rectangle selects exactly the objects the
    /// original rectangle selects. `O(d log N)`.
    pub fn rect(&self, q: &Rect) -> Option<Rect> {
        assert_eq!(q.dim(), self.dim, "query dimension mismatch");
        let mut lo = Vec::with_capacity(self.dim);
        let mut hi = Vec::with_capacity(self.dim);
        for d in 0..self.dim {
            let (qlo, qhi) = q.interval(d);
            let col = &self.sorted[d];
            // Infinite endpoints stay infinite: an unbounded query side
            // must keep covering the (unbounded) outer tree cells, or
            // covered/crossing classification degrades at the boundary.
            let l = if qlo == f64::NEG_INFINITY {
                f64::NEG_INFINITY
            } else {
                // First rank with coordinate ≥ qlo.
                col.partition_point(|&(c, _)| c < qlo) as f64
            };
            let h = if qhi == f64::INFINITY {
                f64::INFINITY
            } else {
                // Last rank with coordinate ≤ qhi (exclusive bound, minus
                // one).
                col.partition_point(|&(c, _)| c <= qhi) as f64 - 1.0
            };
            lo.push(l);
            hi.push(h);
        }
        if lo.iter().zip(&hi).any(|(a, b)| a > b) {
            None
        } else {
            Some(Rect::new(&lo, &hi))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pts(raw: &[(f64, f64)]) -> Vec<Point> {
        raw.iter().map(|&(x, y)| Point::new2(x, y)).collect()
    }

    #[test]
    fn ranks_are_distinct_despite_ties() {
        let points = pts(&[(1.0, 5.0), (1.0, 5.0), (2.0, 5.0), (1.0, 3.0)]);
        let rs = RankSpace::build(&points);
        for d in 0..2 {
            let mut seen: Vec<f64> = (0..points.len()).map(|i| rs.point(i).get(d)).collect();
            seen.sort_by(f64::total_cmp);
            for w in seen.windows(2) {
                assert!(w[0] < w[1], "duplicate rank on dim {d}");
            }
        }
    }

    #[test]
    fn query_selects_same_objects() {
        let points = pts(&[(1.0, 1.0), (1.0, 2.0), (2.0, 1.0), (3.0, 3.0), (2.0, 2.0)]);
        let rs = RankSpace::build(&points);
        let q = Rect::new(&[1.0, 1.0], &[2.0, 2.0]);
        let rq = rs.rect(&q).expect("non-empty");
        for (i, p) in points.iter().enumerate() {
            assert_eq!(
                q.contains(p),
                rq.contains(&rs.point(i)),
                "object {i} disagreement"
            );
        }
    }

    #[test]
    fn boundary_coordinates_included() {
        let points = pts(&[(0.0, 0.0), (1.0, 1.0), (2.0, 2.0)]);
        let rs = RankSpace::build(&points);
        // Query whose endpoints coincide with data coordinates.
        let q = Rect::new(&[1.0, 0.0], &[2.0, 1.0]);
        let rq = rs.rect(&q).expect("non-empty");
        assert!(!rq.contains(&rs.point(0)));
        assert!(rq.contains(&rs.point(1)));
        assert!(!rq.contains(&rs.point(2))); // y = 2 > 1
    }

    #[test]
    fn empty_query_maps_to_empty() {
        let points = pts(&[(0.0, 0.0), (1.0, 1.0)]);
        let rs = RankSpace::build(&points);
        let q = Rect::new(&[5.0, 5.0], &[6.0, 6.0]);
        assert!(rs.rect(&q).is_none(), "provably empty");
    }

    #[test]
    fn infinite_query_covers_all() {
        let points = pts(&[(0.0, 0.0), (-5.0, 3.0), (7.0, -2.0)]);
        let rs = RankSpace::build(&points);
        let rq = rs.rect(&Rect::full(2)).expect("non-empty");
        for i in 0..3 {
            assert!(rq.contains(&rs.point(i)));
        }
    }

    #[test]
    fn randomized_equivalence() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(99);
        // Coordinates drawn from a tiny domain to force many ties.
        let points: Vec<Point> = (0..60)
            .map(|_| Point::new2(rng.gen_range(0..5) as f64, rng.gen_range(0..5) as f64))
            .collect();
        let rs = RankSpace::build(&points);
        for _ in 0..100 {
            let x0 = rng.gen_range(-1..6) as f64;
            let x1 = rng.gen_range(-1..6) as f64;
            let y0 = rng.gen_range(-1..6) as f64;
            let y1 = rng.gen_range(-1..6) as f64;
            let q = Rect::new(&[x0.min(x1), y0.min(y1)], &[x0.max(x1), y0.max(y1)]);
            match rs.rect(&q) {
                Some(rq) => {
                    for (i, p) in points.iter().enumerate() {
                        assert_eq!(q.contains(p), rq.contains(&rs.point(i)));
                    }
                }
                None => {
                    for p in &points {
                        assert!(!q.contains(p));
                    }
                }
            }
        }
    }
}
