//! Classification of a cell against a query region.

/// How a tree-node cell relates to a query region.
///
/// This is the covered/crossing distinction of §3.3 of the paper. The
/// query algorithm only requires the classification to be *safe*:
///
/// * `Disjoint` must be exact — a cell classified as disjoint is pruned;
/// * `Covered` must be exact — it is used by analysis/statistics and by
///   early-full-report optimizations;
/// * `Crossing` may be conservative — a truly disjoint cell classified as
///   crossing merely costs extra work, never correctness, because every
///   reported object is re-validated point-wise.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Region {
    /// The cell provably does not intersect the query.
    Disjoint,
    /// The cell intersects the query boundary (or could not be proven
    /// disjoint/covered).
    Crossing,
    /// The cell is entirely contained in the query.
    Covered,
}

impl Region {
    /// Whether the query algorithm should descend into the cell.
    #[inline]
    pub fn intersects(self) -> bool {
        self != Region::Disjoint
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intersects_semantics() {
        assert!(!Region::Disjoint.intersects());
        assert!(Region::Crossing.intersects());
        assert!(Region::Covered.intersects());
    }
}
