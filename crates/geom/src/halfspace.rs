//! Linear constraints and their conjunctions.
//!
//! A *linear constraint* (paper §1.1, LC-KW) has the form
//! `Σᵢ cᵢ·x[i] ≤ c_{d+1}`. A query supplies `s = O(1)` such constraints;
//! their conjunction is a convex polyhedron. [`ConvexPolytope`] represents
//! that conjunction and provides the (exact-where-needed, conservative
//! elsewhere) cell-classification predicates the framework requires.

use crate::{Point, Rect, Region, MAX_DIM};

/// A closed halfspace `c · x ≤ b` in `R^d`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Halfspace {
    coeffs: [f64; MAX_DIM],
    bound: f64,
    dim: u8,
}

impl Halfspace {
    /// Creates the halfspace `coeffs · x ≤ bound`.
    ///
    /// # Panics
    ///
    /// Panics if `coeffs` is empty or longer than [`MAX_DIM`].
    pub fn new(coeffs: &[f64], bound: f64) -> Self {
        assert!(
            !coeffs.is_empty() && coeffs.len() <= MAX_DIM,
            "halfspace dimension must be in 1..={MAX_DIM}"
        );
        let mut c = [0.0; MAX_DIM];
        c[..coeffs.len()].copy_from_slice(coeffs);
        Self {
            coeffs: c,
            bound,
            dim: coeffs.len() as u8,
        }
    }

    /// The dimensionality `d`.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim as usize
    }

    /// The coefficient vector `c`.
    #[inline]
    pub fn coeffs(&self) -> &[f64] {
        &self.coeffs[..self.dim()]
    }

    /// The right-hand side `b`.
    #[inline]
    pub fn bound(&self) -> f64 {
        self.bound
    }

    /// Signed slack `c · p − b` (≤ 0 iff `p` satisfies the constraint).
    #[inline]
    pub fn eval(&self, p: &Point) -> f64 {
        p.dot(self.coeffs()) - self.bound
    }

    /// Whether `p` satisfies the constraint (boundary inclusive).
    #[inline]
    pub fn contains(&self, p: &Point) -> bool {
        self.eval(p) <= 0.0
    }

    /// The extreme (most negative / most positive) values of `c · x − b`
    /// over an axis-aligned rectangle, computed per-dimension (exact, and
    /// robust to infinite rectangle endpoints).
    fn extremes_over(&self, r: &Rect) -> (f64, f64) {
        assert_eq!(self.dim(), r.dim());
        let mut min = -self.bound;
        let mut max = -self.bound;
        for i in 0..self.dim() {
            let c = self.coeffs[i];
            if c == 0.0 {
                continue;
            }
            let (lo, hi) = r.interval(i);
            let (a, b) = if c > 0.0 {
                (c * lo, c * hi)
            } else {
                (c * hi, c * lo)
            };
            min += a;
            max += b;
        }
        (min, max)
    }

    /// Exact classification of a rectangle cell against this halfspace.
    pub fn classify_rect(&self, r: &Rect) -> Region {
        let (min, max) = self.extremes_over(r);
        if min > 0.0 {
            Region::Disjoint
        } else if max <= 0.0 {
            Region::Covered
        } else {
            Region::Crossing
        }
    }
}

/// A conjunction of halfspaces — the query region of LC-KW.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct ConvexPolytope {
    halfspaces: Vec<Halfspace>,
}

impl ConvexPolytope {
    /// Creates a polytope from its defining halfspaces.
    ///
    /// # Panics
    ///
    /// Panics if the halfspaces have inconsistent dimensions.
    pub fn new(halfspaces: Vec<Halfspace>) -> Self {
        if let Some(first) = halfspaces.first() {
            let d = first.dim();
            assert!(
                halfspaces.iter().all(|h| h.dim() == d),
                "halfspace dimension mismatch"
            );
        }
        Self { halfspaces }
    }

    /// A polytope with a single constraint.
    pub fn from_halfspace(h: Halfspace) -> Self {
        Self::new(vec![h])
    }

    /// Converts a rectangle into its `2d` halfspace constraints
    /// (finite endpoints only — `±∞` bounds are vacuous).
    pub fn from_rect(r: &Rect) -> Self {
        let d = r.dim();
        let mut hs = Vec::new();
        for i in 0..d {
            let mut c = vec![0.0; d];
            let (lo, hi) = r.interval(i);
            if hi.is_finite() {
                c[i] = 1.0;
                hs.push(Halfspace::new(&c, hi)); // x_i ≤ hi
            }
            if lo.is_finite() {
                c[i] = -1.0;
                hs.push(Halfspace::new(&c, -lo)); // -x_i ≤ -lo
            }
            c[i] = 0.0;
        }
        Self::new(hs)
    }

    /// The defining halfspaces.
    pub fn halfspaces(&self) -> &[Halfspace] {
        &self.halfspaces
    }

    /// The dimensionality, or `None` for the unconstrained polytope.
    pub fn dim(&self) -> Option<usize> {
        self.halfspaces.first().map(Halfspace::dim)
    }

    /// Whether `p` satisfies every constraint (exact; used for reporting).
    pub fn contains(&self, p: &Point) -> bool {
        self.halfspaces.iter().all(|h| h.contains(p))
    }

    /// Classification of a rectangle cell against the polytope.
    ///
    /// * `Covered` is exact (every constraint covers the cell).
    /// * `Disjoint` is exact when witnessed by a single constraint whose
    ///   complement contains the cell; a cell avoiding the polytope only
    ///   "diagonally" is conservatively reported `Crossing`, which is safe
    ///   (see crate docs).
    pub fn classify_rect(&self, r: &Rect) -> Region {
        let mut covered = true;
        for h in &self.halfspaces {
            match h.classify_rect(r) {
                Region::Disjoint => return Region::Disjoint,
                Region::Crossing => covered = false,
                Region::Covered => {}
            }
        }
        if covered {
            Region::Covered
        } else {
            Region::Crossing
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn halfspace_contains() {
        // x + y ≤ 1
        let h = Halfspace::new(&[1.0, 1.0], 1.0);
        assert!(h.contains(&Point::new2(0.5, 0.5)));
        assert!(h.contains(&Point::new2(0.0, 1.0)));
        assert!(!h.contains(&Point::new2(0.6, 0.5)));
    }

    #[test]
    fn classify_rect_against_halfspace() {
        let h = Halfspace::new(&[1.0, 0.0], 5.0); // x ≤ 5
        let inside = Rect::new(&[0.0, 0.0], &[4.0, 9.0]);
        let crossing = Rect::new(&[4.0, 0.0], &[6.0, 1.0]);
        let outside = Rect::new(&[6.0, 0.0], &[7.0, 1.0]);
        assert_eq!(h.classify_rect(&inside), Region::Covered);
        assert_eq!(h.classify_rect(&crossing), Region::Crossing);
        assert_eq!(h.classify_rect(&outside), Region::Disjoint);
    }

    #[test]
    fn classify_handles_infinite_cells() {
        let h = Halfspace::new(&[1.0, 1.0], 0.0); // x + y ≤ 0
        let cell = Rect::full(2);
        assert_eq!(h.classify_rect(&cell), Region::Crossing);
    }

    #[test]
    fn classify_infinite_cell_with_zero_coeff() {
        // y ≤ 3 ignores the unbounded x extent.
        let h = Halfspace::new(&[0.0, 1.0], 3.0);
        let cell = Rect::new(&[f64::NEG_INFINITY, 0.0], &[f64::INFINITY, 2.0]);
        assert_eq!(h.classify_rect(&cell), Region::Covered);
    }

    #[test]
    fn polytope_from_rect_roundtrip() {
        let r = Rect::new(&[0.0, -1.0], &[2.0, 1.0]);
        let p = ConvexPolytope::from_rect(&r);
        assert_eq!(p.halfspaces().len(), 4);
        for pt in [
            Point::new2(1.0, 0.0),
            Point::new2(0.0, -1.0),
            Point::new2(2.0, 1.0),
        ] {
            assert!(p.contains(&pt));
            assert!(r.contains(&pt));
        }
        for pt in [Point::new2(3.0, 0.0), Point::new2(1.0, 2.0)] {
            assert!(!p.contains(&pt));
            assert!(!r.contains(&pt));
        }
    }

    #[test]
    fn polytope_classification_matches_intuition() {
        // Triangle x ≥ 0, y ≥ 0, x + y ≤ 10.
        let tri = ConvexPolytope::new(vec![
            Halfspace::new(&[-1.0, 0.0], 0.0),
            Halfspace::new(&[0.0, -1.0], 0.0),
            Halfspace::new(&[1.0, 1.0], 10.0),
        ]);
        let inside = Rect::new(&[1.0, 1.0], &[2.0, 2.0]);
        let outside = Rect::new(&[11.0, 11.0], &[12.0, 12.0]);
        let crossing = Rect::new(&[4.0, 4.0], &[6.0, 6.0]);
        assert_eq!(tri.classify_rect(&inside), Region::Covered);
        assert_eq!(tri.classify_rect(&outside), Region::Disjoint);
        assert_eq!(tri.classify_rect(&crossing), Region::Crossing);
    }

    #[test]
    fn conservative_diagonal_disjoint_is_crossing() {
        // The cell misses the triangle only "diagonally": each individual
        // constraint crosses the cell, so the conservative test says
        // Crossing even though the truth is Disjoint. That is permitted.
        // Triangle x ≥ 0, y ≥ 0, x + y ≤ 1 (so max y = 1). The cell sits
        // strictly above the triangle, yet both `x ≥ 0` and `x + y ≤ 1`
        // individually cross it, so no single facet witnesses disjointness.
        let tri = ConvexPolytope::new(vec![
            Halfspace::new(&[-1.0, 0.0], 0.0),
            Halfspace::new(&[0.0, -1.0], 0.0),
            Halfspace::new(&[1.0, 1.0], 1.0),
        ]);
        let cell = Rect::new(&[-2.0, 1.2], &[2.0, 2.0]);
        assert_eq!(tri.classify_rect(&cell), Region::Crossing);
    }

    #[test]
    fn unconstrained_polytope_covers_all() {
        let p = ConvexPolytope::default();
        assert!(p.contains(&Point::new2(1e12, -1e12)));
        assert_eq!(p.classify_rect(&Rect::full(2)), Region::Covered);
    }
}
