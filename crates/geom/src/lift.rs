//! The lifting map and Euclidean balls.
//!
//! Corollary 6 solves `d`-dimensional SRP-KW with a `(d+1)`-dimensional
//! LC-KW index via the classical lifting transform: map each point
//! `p ∈ R^d` to `p' = (p, |p|²) ∈ R^{d+1}`; then `p ∈ B(c, r)` iff `p'`
//! satisfies the halfspace
//!
//! ```text
//! |p|² − 2·c·p ≤ r² − |c|²   ⇔   (−2c, 1) · p' ≤ r² − |c|².
//! ```

use crate::{Halfspace, Point};

/// A Euclidean ball `B(center, radius)` in `R^d` — the query shape of
/// SRP-KW ("boolean range query with keywords").
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Ball {
    center: Point,
    radius: f64,
}

impl Ball {
    /// Creates a ball.
    ///
    /// # Panics
    ///
    /// Panics if `radius < 0`.
    pub fn new(center: Point, radius: f64) -> Self {
        assert!(radius >= 0.0, "radius must be non-negative");
        Self { center, radius }
    }

    /// The center point.
    pub fn center(&self) -> &Point {
        &self.center
    }

    /// The radius.
    pub fn radius(&self) -> f64 {
        self.radius
    }

    /// The dimensionality `d`.
    pub fn dim(&self) -> usize {
        self.center.dim()
    }

    /// Whether `p` lies in the (closed) ball.
    pub fn contains(&self, p: &Point) -> bool {
        self.center.l2_sq(p) <= self.radius * self.radius
    }
}

/// Lifts `p ∈ R^d` to `(p, |p|²) ∈ R^{d+1}`.
pub fn lift_point(p: &Point) -> Point {
    p.extend(p.norm_sq())
}

/// The `(d+1)`-dimensional halfspace whose intersection with the lifted
/// point set equals the lifted preimage of `ball`.
pub fn lift_ball(ball: &Ball) -> Halfspace {
    let d = ball.dim();
    let mut coeffs = Vec::with_capacity(d + 1);
    for i in 0..d {
        coeffs.push(-2.0 * ball.center().get(i));
    }
    coeffs.push(1.0);
    let bound = ball.radius() * ball.radius() - ball.center().norm_sq();
    Halfspace::new(&coeffs, bound)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    #[test]
    fn ball_contains_boundary() {
        let b = Ball::new(Point::new2(0.0, 0.0), 5.0);
        assert!(b.contains(&Point::new2(3.0, 4.0))); // on boundary
        assert!(b.contains(&Point::new2(1.0, 1.0)));
        assert!(!b.contains(&Point::new2(3.1, 4.0)));
    }

    #[test]
    fn lift_point_appends_norm() {
        let p = Point::new2(3.0, 4.0);
        let l = lift_point(&p);
        assert_eq!(l.coords(), &[3.0, 4.0, 25.0]);
    }

    #[test]
    fn lifted_halfspace_agrees_with_ball_membership() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..200 {
            let center = Point::new2(rng.gen_range(-10.0..10.0), rng.gen_range(-10.0..10.0));
            let radius = rng.gen_range(0.0..8.0);
            let ball = Ball::new(center, radius);
            let hs = lift_ball(&ball);
            let p = Point::new2(rng.gen_range(-15.0..15.0), rng.gen_range(-15.0..15.0));
            assert_eq!(
                ball.contains(&p),
                hs.contains(&lift_point(&p)),
                "ball {ball:?} point {p:?}"
            );
        }
    }

    #[test]
    fn lifted_halfspace_agrees_in_3d() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..200 {
            let c = Point::new3(
                rng.gen_range(-5.0..5.0),
                rng.gen_range(-5.0..5.0),
                rng.gen_range(-5.0..5.0),
            );
            let ball = Ball::new(c, rng.gen_range(0.0..6.0));
            let hs = lift_ball(&ball);
            let p = Point::new3(
                rng.gen_range(-8.0..8.0),
                rng.gen_range(-8.0..8.0),
                rng.gen_range(-8.0..8.0),
            );
            assert_eq!(ball.contains(&p), hs.contains(&lift_point(&p)));
        }
    }

    #[test]
    #[should_panic(expected = "radius")]
    fn negative_radius_rejected() {
        let _ = Ball::new(Point::new1(0.0), -1.0);
    }
}
