//! Fixed-capacity points.
//!
//! The paper's problems live in `R^d` for constant `d`. The reductions in
//! the paper raise dimensionality (RR-KW maps a `d`-rectangle to a
//! `2d`-dimensional point; the lifting map adds one dimension), so a point
//! type that can change dimension cheaply is convenient. [`Point`] stores
//! up to [`MAX_DIM`] coordinates inline and is `Copy`, which keeps tree
//! construction allocation-free on the hot path.

use std::fmt;

/// Maximum supported dimensionality.
///
/// 8 accommodates RR-KW up to `d = 4` (which reduces to `2d`-dimensional
/// ORP-KW) and the lifting map up to `d = 7`.
pub const MAX_DIM: usize = 8;

/// A point in `R^d` for `1 ≤ d ≤ MAX_DIM`.
#[derive(Clone, Copy, PartialEq)]
pub struct Point {
    coords: [f64; MAX_DIM],
    dim: u8,
}

impl Point {
    /// Creates a point from a slice of coordinates.
    ///
    /// # Panics
    ///
    /// Panics if `coords` is empty or longer than [`MAX_DIM`].
    pub fn new(coords: &[f64]) -> Self {
        assert!(
            !coords.is_empty() && coords.len() <= MAX_DIM,
            "point dimension must be in 1..={MAX_DIM}, got {}",
            coords.len()
        );
        let mut buf = [0.0; MAX_DIM];
        buf[..coords.len()].copy_from_slice(coords);
        Self {
            coords: buf,
            dim: coords.len() as u8,
        }
    }

    /// A 1-dimensional point.
    pub fn new1(x: f64) -> Self {
        Self::new(&[x])
    }

    /// A 2-dimensional point.
    pub fn new2(x: f64, y: f64) -> Self {
        Self::new(&[x, y])
    }

    /// A 3-dimensional point.
    pub fn new3(x: f64, y: f64, z: f64) -> Self {
        Self::new(&[x, y, z])
    }

    /// The dimensionality `d`.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim as usize
    }

    /// Coordinate on dimension `i` (0-based).
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.dim()`.
    #[inline]
    pub fn get(&self, i: usize) -> f64 {
        assert!(i < self.dim());
        self.coords[i]
    }

    /// The coordinates as a slice of length `self.dim()`.
    #[inline]
    pub fn coords(&self) -> &[f64] {
        &self.coords[..self.dim()]
    }

    /// Replaces coordinate `i`, returning the modified point.
    #[must_use]
    pub fn with_coord(mut self, i: usize, v: f64) -> Self {
        assert!(i < self.dim());
        self.coords[i] = v;
        self
    }

    /// Drops the first coordinate, reducing the dimension by one.
    ///
    /// This realizes the projection used by the dimension-reduction tree of
    /// §4: secondary structures index the input "ignoring the x-dimension".
    ///
    /// # Panics
    ///
    /// Panics if the point is 1-dimensional.
    #[must_use]
    pub fn drop_first(&self) -> Self {
        assert!(self.dim() >= 2, "cannot drop a coordinate of a 1D point");
        Self::new(&self.coords[1..self.dim()])
    }

    /// Appends a coordinate, increasing the dimension by one.
    ///
    /// # Panics
    ///
    /// Panics if the point is already [`MAX_DIM`]-dimensional.
    #[must_use]
    pub fn extend(&self, v: f64) -> Self {
        assert!(self.dim() < MAX_DIM, "cannot extend beyond MAX_DIM");
        let mut buf = self.coords;
        buf[self.dim()] = v;
        Self {
            coords: buf,
            dim: self.dim + 1,
        }
    }

    /// Squared Euclidean (`L2`) distance to `other`.
    ///
    /// # Panics
    ///
    /// Panics if the dimensions differ.
    pub fn l2_sq(&self, other: &Point) -> f64 {
        assert_eq!(self.dim(), other.dim());
        self.coords()
            .iter()
            .zip(other.coords())
            .map(|(a, b)| (a - b) * (a - b))
            .sum()
    }

    /// Chebyshev (`L∞`) distance to `other`.
    ///
    /// # Panics
    ///
    /// Panics if the dimensions differ.
    pub fn linf(&self, other: &Point) -> f64 {
        assert_eq!(self.dim(), other.dim());
        self.coords()
            .iter()
            .zip(other.coords())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }

    /// Dot product with a coefficient slice of the same dimension.
    pub fn dot(&self, coeffs: &[f64]) -> f64 {
        assert_eq!(self.dim(), coeffs.len());
        self.coords().iter().zip(coeffs).map(|(a, c)| a * c).sum()
    }

    /// Sum of squared coordinates (`|p|²`), used by the lifting map.
    pub fn norm_sq(&self) -> f64 {
        self.coords().iter().map(|c| c * c).sum()
    }
}

impl fmt::Debug for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.coords()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construct_and_access() {
        let p = Point::new(&[1.0, 2.0, 3.0]);
        assert_eq!(p.dim(), 3);
        assert_eq!(p.get(0), 1.0);
        assert_eq!(p.get(2), 3.0);
        assert_eq!(p.coords(), &[1.0, 2.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "point dimension")]
    fn empty_point_rejected() {
        let _ = Point::new(&[]);
    }

    #[test]
    #[should_panic(expected = "point dimension")]
    fn oversized_point_rejected() {
        let _ = Point::new(&[0.0; MAX_DIM + 1]);
    }

    #[test]
    fn drop_first_projects() {
        let p = Point::new3(7.0, 8.0, 9.0);
        let q = p.drop_first();
        assert_eq!(q.coords(), &[8.0, 9.0]);
    }

    #[test]
    fn extend_appends() {
        let p = Point::new2(1.0, 2.0);
        let q = p.extend(5.0);
        assert_eq!(q.coords(), &[1.0, 2.0, 5.0]);
    }

    #[test]
    fn distances() {
        let a = Point::new2(0.0, 0.0);
        let b = Point::new2(3.0, 4.0);
        assert_eq!(a.l2_sq(&b), 25.0);
        assert_eq!(a.linf(&b), 4.0);
    }

    #[test]
    fn dot_and_norm() {
        let p = Point::new2(2.0, 3.0);
        assert_eq!(p.dot(&[10.0, 1.0]), 23.0);
        assert_eq!(p.norm_sq(), 13.0);
    }

    #[test]
    fn with_coord_replaces() {
        let p = Point::new2(1.0, 2.0).with_coord(1, 9.0);
        assert_eq!(p.coords(), &[1.0, 9.0]);
    }

    #[test]
    fn equality_across_construction_routes() {
        // Equal points built through different routes compare equal,
        // i.e. unused capacity never leaks into comparisons.
        let a = Point::new2(1.0, 2.0);
        let b = Point::new3(1.0, 99.0, 2.0).with_coord(1, 2.0).drop_first();
        assert_eq!(b.coords(), &[2.0, 2.0]);
        let c = Point::new1(1.0).extend(2.0);
        assert_eq!(a, c);
    }
}
