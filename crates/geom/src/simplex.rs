//! `d`-simplices and the hyperplane machinery to build them.
//!
//! SP-KW (Appendix D) queries with a `d`-simplex — a polyhedron in `R^d`
//! with `d + 1` facets. A simplex is stored as its vertices plus the
//! derived facet halfspaces, so it can be handed to the same query path
//! as a general [`crate::ConvexPolytope`].

use crate::{ConvexPolytope, Halfspace, Point};

/// A `d`-simplex given by `d + 1` affinely independent vertices.
#[derive(Clone, Debug)]
pub struct Simplex {
    vertices: Vec<Point>,
    facets: Vec<Halfspace>,
}

impl Simplex {
    /// Builds a simplex from `d + 1` vertices.
    ///
    /// Returns `None` if the vertices are affinely dependent (degenerate
    /// simplex), mirroring the general-position discussion of App. D.4.
    ///
    /// # Panics
    ///
    /// Panics if the number of vertices is not `dim + 1` or dimensions
    /// mismatch.
    pub fn new(vertices: Vec<Point>) -> Option<Self> {
        let d = vertices
            .first()
            .expect("simplex needs at least one vertex")
            .dim();
        assert_eq!(
            vertices.len(),
            d + 1,
            "a {d}-simplex needs exactly {} vertices",
            d + 1
        );
        assert!(vertices.iter().all(|v| v.dim() == d));

        let mut facets = Vec::with_capacity(d + 1);
        for omit in 0..=d {
            let facet_pts: Vec<Point> = vertices
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != omit)
                .map(|(_, p)| *p)
                .collect();
            let (normal, offset) = hyperplane_through(&facet_pts)?;
            // Orient so the omitted vertex satisfies n·x ≤ offset.
            let slack = vertices[omit].dot(&normal) - offset;
            let h = if slack <= 0.0 {
                Halfspace::new(&normal, offset)
            } else {
                let flipped: Vec<f64> = normal.iter().map(|c| -c).collect();
                Halfspace::new(&flipped, -offset)
            };
            // Degenerate if the omitted vertex lies on the facet plane.
            if slack.abs() < 1e-12 * normal.iter().map(|c| c.abs()).sum::<f64>().max(1.0) {
                return None;
            }
            facets.push(h);
        }
        Some(Self { vertices, facets })
    }

    /// The simplex vertices.
    pub fn vertices(&self) -> &[Point] {
        &self.vertices
    }

    /// The facet halfspaces (the simplex is their intersection).
    pub fn facets(&self) -> &[Halfspace] {
        &self.facets
    }

    /// The dimensionality `d`.
    pub fn dim(&self) -> usize {
        self.vertices[0].dim()
    }

    /// Whether `p` lies in the simplex (boundary inclusive).
    pub fn contains(&self, p: &Point) -> bool {
        self.facets.iter().all(|h| h.contains(p))
    }

    /// The simplex as a conjunction of linear constraints (an LC-KW query).
    pub fn to_polytope(&self) -> ConvexPolytope {
        ConvexPolytope::new(self.facets.clone())
    }
}

/// The hyperplane through `d` points in `R^d`, returned as `(normal, b)`
/// with the plane `normal · x = b`, or `None` if the points are affinely
/// dependent.
///
/// Solves for a non-trivial null vector of the `(d−1) × d` system
/// `normal · (pⱼ − p₀) = 0` by Gaussian elimination with partial pivoting.
pub fn hyperplane_through(points: &[Point]) -> Option<(Vec<f64>, f64)> {
    let d = points[0].dim();
    assert_eq!(
        points.len(),
        d,
        "need exactly d points for a hyperplane in R^d"
    );
    if d == 1 {
        // A "hyperplane" in R^1 is the point itself: 1·x = p.
        return Some((vec![1.0], points[0].get(0)));
    }

    // Rows: p_j - p_0 for j = 1..d-1 (d-1 rows, d columns).
    let rows = d - 1;
    let mut m: Vec<Vec<f64>> = (1..d)
        .map(|j| {
            (0..d)
                .map(|i| points[j].get(i) - points[0].get(i))
                .collect()
        })
        .collect();

    // Forward elimination with partial pivoting; track pivot columns.
    let mut pivot_cols = Vec::with_capacity(rows);
    let mut r = 0usize;
    for col in 0..d {
        if r == rows {
            break;
        }
        let (best, best_val) = (r..rows)
            .map(|i| (i, m[i][col].abs()))
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .unwrap();
        if best_val < 1e-12 {
            continue; // free column
        }
        m.swap(r, best);
        for i in 0..rows {
            if i != r {
                let factor = m[i][col] / m[r][col];
                #[allow(clippy::needless_range_loop)] // indexes two rows of `m` at once
                for c2 in col..d {
                    let pivot_val = m[r][c2];
                    m[i][c2] -= factor * pivot_val;
                }
            }
        }
        pivot_cols.push(col);
        r += 1;
    }
    if r < rows {
        return None; // rank-deficient: points affinely dependent
    }

    // One free column remains; set its normal coordinate to 1 and back-
    // substitute the pivot coordinates.
    let free = (0..d).find(|c| !pivot_cols.contains(c))?;
    let mut normal = vec![0.0; d];
    normal[free] = 1.0;
    for (row, &pc) in pivot_cols.iter().enumerate() {
        normal[pc] = -m[row][free] / m[row][pc];
    }
    let b = points[0].dot(&normal);
    Some((normal, b))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triangle_contains() {
        let t = Simplex::new(vec![
            Point::new2(0.0, 0.0),
            Point::new2(4.0, 0.0),
            Point::new2(0.0, 4.0),
        ])
        .expect("non-degenerate");
        assert!(t.contains(&Point::new2(1.0, 1.0)));
        assert!(t.contains(&Point::new2(0.0, 0.0))); // vertex
        assert!(t.contains(&Point::new2(2.0, 2.0))); // edge
        assert!(!t.contains(&Point::new2(3.0, 3.0)));
        assert!(!t.contains(&Point::new2(-0.1, 1.0)));
    }

    #[test]
    fn tetrahedron_contains() {
        let t = Simplex::new(vec![
            Point::new3(0.0, 0.0, 0.0),
            Point::new3(1.0, 0.0, 0.0),
            Point::new3(0.0, 1.0, 0.0),
            Point::new3(0.0, 0.0, 1.0),
        ])
        .expect("non-degenerate");
        assert!(t.contains(&Point::new3(0.2, 0.2, 0.2)));
        assert!(!t.contains(&Point::new3(0.5, 0.5, 0.5)));
    }

    #[test]
    fn degenerate_simplex_rejected() {
        // Three collinear points in the plane.
        let t = Simplex::new(vec![
            Point::new2(0.0, 0.0),
            Point::new2(1.0, 1.0),
            Point::new2(2.0, 2.0),
        ]);
        assert!(t.is_none());
    }

    #[test]
    fn hyperplane_through_two_points_2d() {
        let (n, b) = hyperplane_through(&[Point::new2(0.0, 1.0), Point::new2(1.0, 2.0)])
            .expect("independent");
        // Line y = x + 1 → n·(1,1) must annihilate direction (1,1)... the
        // normal is perpendicular to (1,1): check both points satisfy.
        assert!((Point::new2(0.0, 1.0).dot(&n) - b).abs() < 1e-9);
        assert!((Point::new2(1.0, 2.0).dot(&n) - b).abs() < 1e-9);
        assert!((Point::new2(0.0, 0.0).dot(&n) - b).abs() > 1e-9);
    }

    #[test]
    fn hyperplane_in_1d() {
        let (n, b) = hyperplane_through(&[Point::new1(3.5)]).unwrap();
        assert_eq!(n, vec![1.0]);
        assert_eq!(b, 3.5);
    }

    #[test]
    fn simplex_to_polytope_agrees() {
        let t = Simplex::new(vec![
            Point::new2(0.0, 0.0),
            Point::new2(4.0, 0.0),
            Point::new2(0.0, 4.0),
        ])
        .unwrap();
        let poly = t.to_polytope();
        for p in [
            Point::new2(1.0, 1.0),
            Point::new2(3.0, 3.0),
            Point::new2(-1.0, 0.0),
            Point::new2(0.5, 0.5),
        ] {
            assert_eq!(t.contains(&p), poly.contains(&p), "disagree at {p:?}");
        }
    }

    #[test]
    fn axis_aligned_hyperplane_3d() {
        // Plane z = 2 through three points.
        let (n, b) = hyperplane_through(&[
            Point::new3(0.0, 0.0, 2.0),
            Point::new3(1.0, 0.0, 2.0),
            Point::new3(0.0, 1.0, 2.0),
        ])
        .unwrap();
        let p = Point::new3(5.0, -3.0, 2.0);
        assert!((p.dot(&n) - b).abs() < 1e-9);
        assert!((Point::new3(0.0, 0.0, 3.0).dot(&n) - b).abs() > 1e-9);
    }
}
