//! Keyword-search indexes with structured constraints.
//!
//! This crate implements the indexes of
//!
//! > Shangqi Lu and Yufei Tao. *Indexing for Keyword Search with
//! > Structured Constraints.* PODS 2023.
//!
//! The input is a set `D` of objects, each a point in `R^d` carrying a
//! non-empty document (a set of integer keywords). A query combines `k`
//! keywords with a geometric predicate; the indexes here answer such
//! queries in `~O(N^{1−1/k} · (1 + OUT^{1/k}))` time with (near-)linear
//! space, where `N = Σ_e |e.Doc|` is the input size and `OUT` the output
//! size — beating both naive solutions ("evaluate the geometry then
//! filter keywords" and vice versa) whenever `OUT = o(N)`.
//!
//! # Modules
//!
//! * [`dataset`] — input representation (`D`, `N`, `W`).
//! * [`framework`] — §3's four-step transformation framework, generic
//!   over a space-partitioning strategy (kd-tree and Willard partition
//!   tree included).
//! * [`dimred`] — §4's dimension-reduction technique (Theorem 2).
//! * One module per problem: [`orp`] (Theorems 1–2), [`rr`]
//!   (Corollary 3), [`nn_linf`] (Corollary 4), [`sp`]/[`lc`]
//!   (Theorems 5/12), [`srp`] (Corollary 6), [`nn_l2`] (Corollary 7),
//!   and [`ksi`] (§1.2's pure `k`-set intersection).
//! * [`naive`] — the two naive baselines plus a full scan, for every
//!   problem.
//! * [`dynamic`] — insertions/deletions via the logarithmic method
//!   (ORP-KW is a decomposable search problem).
//! * [`planner`] — a cost-based choice among the three strategies.
//! * [`suite`] — one index per `k ∈ 2..=k_max`, routed automatically.
//! * [`sink`] — streaming result emission: every traversal reports
//!   through a [`sink::ResultSink`], so collecting, counting,
//!   limit-`t`, dedup, and tee behaviours compose without re-walking
//!   (or even materializing) result vectors.
//! * [`stats`] — query-execution statistics used by the experiment
//!   harness to measure the quantities in the paper's analysis
//!   (covered/crossing nodes of §3.3, type-1/type-2 nodes of §4).
//! * [`telemetry`] — export hooks feeding build/query/planner series
//!   into the process-wide `skq-obs` metrics registry and query log.
//! * [`concurrency`] — shared thread-count clamping used by [`batch`]
//!   and the `skq-serve` worker pool.
//! * [`persist`] — the paged snapshot codec behind the `skq-store`
//!   persistence tier: the [`persist::Persist`] trait plus the
//!   page-walk reader/writer with checksums and schema versioning.
//! * [`error`] / [`guard`] / [`failpoints`] — the robustness layer
//!   (DESIGN.md §11): typed errors for the fallible
//!   `try_build`/`try_query_into` surfaces, deadline/cancellation/
//!   budget guards for queries, and chaos-test fail-point injection.
//!
//! # Example
//!
//! ```
//! use skq_core::dataset::Dataset;
//! use skq_core::orp::OrpKwIndex;
//! use skq_geom::{Point, Rect};
//!
//! // Hotels: (price, rating) plus feature tags as integer keywords.
//! const POOL: u32 = 0;
//! const PARKING: u32 = 1;
//! let dataset = Dataset::from_parts(vec![
//!     (Point::new2(120.0, 8.5), vec![POOL, PARKING]),
//!     (Point::new2(180.0, 9.0), vec![POOL]),
//!     (Point::new2(150.0, 8.8), vec![PARKING, POOL]),
//! ]);
//!
//! let index = OrpKwIndex::build(&dataset, 2);
//! let q = Rect::new(&[100.0, 8.0], &[200.0, 10.0]);
//! let mut hits = index.query(&q, &[POOL, PARKING]);
//! hits.sort_unstable();
//! assert_eq!(hits, vec![0, 2]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

// The orchestration layers sit on every request path of the ROADMAP's
// service story, so they must not abort on recoverable conditions:
// clippy.toml bans `unwrap()`/`expect()` and the panic-family macros in
// them (tests re-allow; documented panicking wrappers carry justified
// allows audited by skq-lint).
#[warn(clippy::disallowed_methods, clippy::disallowed_macros)]
pub mod batch;
pub mod concurrency;
pub mod dataset;
pub mod dimred;
#[warn(clippy::disallowed_methods, clippy::disallowed_macros)]
pub mod dynamic;
pub mod error;
pub mod failpoints;
pub mod fastmap;
pub mod framework;
pub mod guard;
#[cfg(feature = "debug-invariants")]
pub mod invariants;
pub mod ksi;
pub mod lc;
pub mod naive;
pub mod nn_l2;
pub mod nn_linf;
pub mod orp;
pub mod persist;
#[warn(clippy::disallowed_methods, clippy::disallowed_macros)]
pub mod planner;
pub mod rr;
pub mod sink;
pub mod sp;
pub mod srp;
pub mod stats;
#[warn(clippy::disallowed_methods, clippy::disallowed_macros)]
pub mod suite;
pub mod telemetry;

pub use dataset::Dataset;
pub use error::SkqError;
pub use guard::{CancelToken, GuardedSink, QueryGuard};
pub use stats::{QueryStats, TruncatedReason};
