//! The input representation: a set of objects with points and documents.
//!
//! Paper §1.1: the input dataset is a set `D` of *objects*; each object
//! `e ∈ D` has a non-empty document `e.Doc` (a set of integers). The
//! input size is `N := Σ_{e∈D} |e.Doc|`, and all bounds are stated in
//! terms of `N`.

use skq_geom::Point;
use skq_invidx::{Document, Keyword};

/// An immutable dataset of objects, each a point with a document.
///
/// Object ids are their positions (`0..len`).
#[derive(Clone, Debug)]
pub struct Dataset {
    points: Vec<Point>,
    docs: Vec<Document>,
    input_size: usize,
    num_keywords: usize,
    dim: usize,
}

impl Dataset {
    /// Builds a dataset from `(point, keywords)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if the input is empty, a document is empty, or point
    /// dimensions are inconsistent.
    pub fn from_parts(parts: Vec<(Point, Vec<Keyword>)>) -> Self {
        assert!(!parts.is_empty(), "dataset must be non-empty");
        let dim = parts[0].0.dim();
        let mut points = Vec::with_capacity(parts.len());
        let mut docs = Vec::with_capacity(parts.len());
        for (p, kws) in parts {
            assert_eq!(p.dim(), dim, "inconsistent point dimensions");
            points.push(p);
            docs.push(Document::new(kws));
        }
        Self::new(points, docs)
    }

    /// Builds a dataset from parallel point/document vectors.
    ///
    /// # Panics
    ///
    /// Panics on empty input, length mismatch, or inconsistent
    /// dimensions.
    pub fn new(points: Vec<Point>, docs: Vec<Document>) -> Self {
        assert!(!points.is_empty(), "dataset must be non-empty");
        assert_eq!(points.len(), docs.len(), "points/docs length mismatch");
        let dim = points[0].dim();
        assert!(points.iter().all(|p| p.dim() == dim));
        let input_size = docs.iter().map(Document::len).sum();
        let num_keywords = docs
            .iter()
            .flat_map(|d| d.keywords().iter().copied())
            .max()
            .map(|m| m as usize + 1)
            .unwrap_or(0);
        Self {
            points,
            docs,
            input_size,
            num_keywords,
            dim,
        }
    }

    /// The number of objects `|D|`.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Never true: datasets are non-empty by construction.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The input size `N = Σ |e.Doc|` — the quantity the paper's bounds
    /// are stated in.
    pub fn input_size(&self) -> usize {
        self.input_size
    }

    /// An upper bound on the keyword universe `W` (max keyword id + 1).
    pub fn num_keywords(&self) -> usize {
        self.num_keywords
    }

    /// The dimensionality `d` of the points.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The point of object `id`.
    #[inline]
    pub fn point(&self, id: usize) -> &Point {
        &self.points[id]
    }

    /// The document of object `id`.
    #[inline]
    pub fn doc(&self, id: usize) -> &Document {
        &self.docs[id]
    }

    /// All points, indexed by object id.
    pub fn points(&self) -> &[Point] {
        &self.points
    }

    /// All documents, indexed by object id.
    pub fn docs(&self) -> &[Document] {
        &self.docs
    }

    /// The weight `|e.Doc|` of object `id` — the number of its copies in
    /// the *verbose set* `P` of §3.2.
    #[inline]
    pub fn weight(&self, id: usize) -> u64 {
        self.docs[id].len() as u64
    }

    /// A derived dataset with the same documents but transformed points
    /// (used by the reductions: rank space, lifting, rectangle
    /// flattening).
    ///
    /// # Panics
    ///
    /// Panics if `f` yields inconsistent dimensions.
    pub fn map_points(&self, f: impl Fn(usize, &Point) -> Point) -> Dataset {
        let points: Vec<Point> = self
            .points
            .iter()
            .enumerate()
            .map(|(i, p)| f(i, p))
            .collect();
        Dataset::new(points, self.docs.clone())
    }

    /// A derived dataset restricted to the given object ids, together
    /// with the id mapping `local -> global` (used by the
    /// dimension-reduction tree, whose nodes index their active sets).
    ///
    /// # Panics
    ///
    /// Panics if `ids` is empty or contains an out-of-range id.
    pub fn subset(&self, ids: &[u32]) -> (Dataset, Vec<u32>) {
        assert!(!ids.is_empty(), "subset must be non-empty");
        let points: Vec<Point> = ids.iter().map(|&i| self.points[i as usize]).collect();
        let docs: Vec<Document> = ids.iter().map(|&i| self.docs[i as usize].clone()).collect();
        (Dataset::new(points, docs), ids.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Dataset {
        Dataset::from_parts(vec![
            (Point::new2(1.0, 2.0), vec![0, 1]),
            (Point::new2(3.0, 4.0), vec![1, 2, 3]),
            (Point::new2(5.0, 6.0), vec![7]),
        ])
    }

    #[test]
    fn sizes() {
        let d = sample();
        assert_eq!(d.len(), 3);
        assert_eq!(d.input_size(), 6);
        assert_eq!(d.num_keywords(), 8);
        assert_eq!(d.dim(), 2);
        assert_eq!(d.weight(1), 3);
    }

    #[test]
    fn map_points_keeps_docs() {
        let d = sample();
        let lifted = d.map_points(|_, p| p.extend(p.norm_sq()));
        assert_eq!(lifted.dim(), 3);
        assert_eq!(lifted.doc(1), d.doc(1));
        assert_eq!(lifted.point(0).get(2), 5.0);
    }

    #[test]
    fn subset_maps_ids() {
        let d = sample();
        let (s, map) = d.subset(&[2, 0]);
        assert_eq!(s.len(), 2);
        assert_eq!(map, vec![2, 0]);
        assert_eq!(s.point(0), d.point(2));
        assert_eq!(s.doc(1), d.doc(0));
        assert_eq!(s.input_size(), 3);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_dataset_rejected() {
        let _ = Dataset::from_parts(vec![]);
    }

    #[test]
    #[should_panic(expected = "inconsistent")]
    fn mixed_dims_rejected() {
        let _ = Dataset::from_parts(vec![
            (Point::new2(0.0, 0.0), vec![0]),
            (Point::new1(0.0), vec![0]),
        ]);
    }
}
