//! The input representation: a set of objects with points and documents.
//!
//! Paper §1.1: the input dataset is a set `D` of *objects*; each object
//! `e ∈ D` has a non-empty document `e.Doc` (a set of integers). The
//! input size is `N := Σ_{e∈D} |e.Doc|`, and all bounds are stated in
//! terms of `N`.

use crate::error::SkqError;
use crate::persist::{self, Persist, SCHEMA_VERSION};
use skq_geom::Point;
use skq_invidx::{Document, Keyword};

/// An immutable dataset of objects, each a point with a document.
///
/// Object ids are their positions (`0..len`).
#[derive(Clone, Debug)]
pub struct Dataset {
    points: Vec<Point>,
    docs: Vec<Document>,
    input_size: usize,
    num_keywords: usize,
    dim: usize,
}

impl Dataset {
    /// Builds a dataset from `(point, keywords)` pairs.
    ///
    /// # Panics
    ///
    /// Panics with the [`try_from_parts`](Self::try_from_parts) error
    /// message if the input is empty, a document is empty, point
    /// dimensions are inconsistent, or a coordinate is NaN/infinite.
    pub fn from_parts(parts: Vec<(Point, Vec<Keyword>)>) -> Self {
        Self::try_from_parts(parts).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`from_parts`](Self::from_parts): validates the input
    /// instead of panicking.
    ///
    /// # Errors
    ///
    /// `SkqError::InvalidDataset` if the input is empty, an object has
    /// an empty keyword set, point dimensions are inconsistent, or any
    /// coordinate is NaN or infinite.
    pub fn try_from_parts(parts: Vec<(Point, Vec<Keyword>)>) -> Result<Self, SkqError> {
        if parts.is_empty() {
            return Err(SkqError::InvalidDataset("dataset must be non-empty".into()));
        }
        let dim = parts[0].0.dim();
        let mut points = Vec::with_capacity(parts.len());
        let mut docs = Vec::with_capacity(parts.len());
        for (id, (p, kws)) in parts.into_iter().enumerate() {
            if p.dim() != dim {
                return Err(SkqError::InvalidDataset(format!(
                    "inconsistent point dimensions: object {id} is {}-dimensional, object 0 is {dim}-dimensional",
                    p.dim()
                )));
            }
            if kws.is_empty() {
                return Err(SkqError::InvalidDataset(format!(
                    "documents must be non-empty: object {id} has no keywords"
                )));
            }
            Self::check_finite(id, &p)?;
            points.push(p);
            docs.push(Document::new(kws));
        }
        Ok(Self::assemble(points, docs))
    }

    /// Builds a dataset from parallel point/document vectors.
    ///
    /// # Panics
    ///
    /// Panics with the [`try_new`](Self::try_new) error message on
    /// empty input, length mismatch, inconsistent dimensions, or
    /// NaN/infinite coordinates.
    pub fn new(points: Vec<Point>, docs: Vec<Document>) -> Self {
        Self::try_new(points, docs).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`new`](Self::new): validates the input instead of
    /// panicking.
    ///
    /// # Errors
    ///
    /// `SkqError::InvalidDataset` on empty input, a points/docs length
    /// mismatch, inconsistent dimensions, or NaN/infinite coordinates.
    /// (Documents are non-empty by `Document` construction.)
    pub fn try_new(points: Vec<Point>, docs: Vec<Document>) -> Result<Self, SkqError> {
        if points.is_empty() {
            return Err(SkqError::InvalidDataset("dataset must be non-empty".into()));
        }
        if points.len() != docs.len() {
            return Err(SkqError::InvalidDataset(format!(
                "points/docs length mismatch: {} points, {} docs",
                points.len(),
                docs.len()
            )));
        }
        let dim = points[0].dim();
        for (id, p) in points.iter().enumerate() {
            if p.dim() != dim {
                return Err(SkqError::InvalidDataset(format!(
                    "inconsistent point dimensions: object {id} is {}-dimensional, object 0 is {dim}-dimensional",
                    p.dim()
                )));
            }
            Self::check_finite(id, p)?;
        }
        Ok(Self::assemble(points, docs))
    }

    fn check_finite(id: usize, p: &Point) -> Result<(), SkqError> {
        for i in 0..p.dim() {
            if !p.get(i).is_finite() {
                return Err(SkqError::InvalidDataset(format!(
                    "coordinates must be finite: object {id} has {} in dimension {i}",
                    p.get(i)
                )));
            }
        }
        Ok(())
    }

    /// Assembles a dataset from pre-validated parts. Internal
    /// constructor for the derived-dataset transforms (`map_points`,
    /// `subset`), which operate on already-validated data and must not
    /// re-pay full validation on every reduction.
    fn assemble(points: Vec<Point>, docs: Vec<Document>) -> Self {
        let dim = points[0].dim();
        debug_assert!(points.iter().all(|p| p.dim() == dim));
        let input_size = docs.iter().map(Document::len).sum();
        let num_keywords = docs
            .iter()
            .flat_map(|d| d.keywords().iter().copied())
            .max()
            .map(|m| m as usize + 1)
            .unwrap_or(0);
        Self {
            points,
            docs,
            input_size,
            num_keywords,
            dim,
        }
    }

    /// The number of objects `|D|`.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Never true: datasets are non-empty by construction.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The input size `N = Σ |e.Doc|` — the quantity the paper's bounds
    /// are stated in.
    pub fn input_size(&self) -> usize {
        self.input_size
    }

    /// An upper bound on the keyword universe `W` (max keyword id + 1).
    pub fn num_keywords(&self) -> usize {
        self.num_keywords
    }

    /// The dimensionality `d` of the points.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The point of object `id`.
    #[inline]
    pub fn point(&self, id: usize) -> &Point {
        &self.points[id]
    }

    /// The document of object `id`.
    #[inline]
    pub fn doc(&self, id: usize) -> &Document {
        &self.docs[id]
    }

    /// All points, indexed by object id.
    pub fn points(&self) -> &[Point] {
        &self.points
    }

    /// All documents, indexed by object id.
    pub fn docs(&self) -> &[Document] {
        &self.docs
    }

    /// The weight `|e.Doc|` of object `id` — the number of its copies in
    /// the *verbose set* `P` of §3.2.
    #[inline]
    pub fn weight(&self, id: usize) -> u64 {
        self.docs[id].len() as u64
    }

    /// A derived dataset with the same documents but transformed points
    /// (used by the reductions: rank space, lifting, rectangle
    /// flattening).
    ///
    /// # Panics
    ///
    /// Panics if `f` yields inconsistent dimensions.
    pub fn map_points(&self, f: impl Fn(usize, &Point) -> Point) -> Dataset {
        let points: Vec<Point> = self
            .points
            .iter()
            .enumerate()
            .map(|(i, p)| f(i, p))
            .collect();
        let dim = points[0].dim();
        assert!(
            points.iter().all(|p| p.dim() == dim),
            "inconsistent point dimensions"
        );
        Dataset::assemble(points, self.docs.clone())
    }

    /// A derived dataset restricted to the given object ids, together
    /// with the id mapping `local -> global` (used by the
    /// dimension-reduction tree, whose nodes index their active sets).
    ///
    /// # Panics
    ///
    /// Panics if `ids` is empty or contains an out-of-range id.
    pub fn subset(&self, ids: &[u32]) -> (Dataset, Vec<u32>) {
        assert!(!ids.is_empty(), "subset must be non-empty");
        let points: Vec<Point> = ids.iter().map(|&i| self.points[i as usize]).collect();
        let docs: Vec<Document> = ids.iter().map(|&i| self.docs[i as usize].clone()).collect();
        (Dataset::assemble(points, docs), ids.to_vec())
    }
}

impl Persist for Dataset {
    fn to_pages(&self, w: &mut persist::PageWriter) -> Result<(), SkqError> {
        let mut head = Vec::new();
        persist::put_uv(&mut head, self.points.len() as u64);
        persist::put_uv(&mut head, self.dim as u64);
        w.page(persist::kind::DATASET_HEAD, SCHEMA_VERSION, head);
        persist::put_point_pages(w, persist::kind::DATASET_POINTS, &self.points, self.dim);
        persist::put_doc_pages(w, persist::kind::DATASET_DOCS, &self.docs);
        Ok(())
    }

    fn from_pages(r: &mut persist::PageReader<'_>) -> Result<Self, SkqError> {
        let mut head = r.page(persist::kind::DATASET_HEAD, SCHEMA_VERSION, "dataset")?;
        let n = head.usizev()?;
        let dim = head.usizev()?;
        head.end()?;
        let points =
            persist::read_point_pages(r, persist::kind::DATASET_POINTS, "dataset", n, dim)?;
        let docs = persist::read_doc_pages(r, persist::kind::DATASET_DOCS, "dataset", n)?;
        // `try_new` re-validates non-emptiness, dimension consistency,
        // and coordinate finiteness, and recomputes the derived totals.
        Dataset::try_new(points, docs).map_err(|e| SkqError::Corrupted {
            section: "dataset".into(),
            detail: e.to_string(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Dataset {
        Dataset::from_parts(vec![
            (Point::new2(1.0, 2.0), vec![0, 1]),
            (Point::new2(3.0, 4.0), vec![1, 2, 3]),
            (Point::new2(5.0, 6.0), vec![7]),
        ])
    }

    #[test]
    fn sizes() {
        let d = sample();
        assert_eq!(d.len(), 3);
        assert_eq!(d.input_size(), 6);
        assert_eq!(d.num_keywords(), 8);
        assert_eq!(d.dim(), 2);
        assert_eq!(d.weight(1), 3);
    }

    #[test]
    fn map_points_keeps_docs() {
        let d = sample();
        let lifted = d.map_points(|_, p| p.extend(p.norm_sq()));
        assert_eq!(lifted.dim(), 3);
        assert_eq!(lifted.doc(1), d.doc(1));
        assert_eq!(lifted.point(0).get(2), 5.0);
    }

    #[test]
    fn subset_maps_ids() {
        let d = sample();
        let (s, map) = d.subset(&[2, 0]);
        assert_eq!(s.len(), 2);
        assert_eq!(map, vec![2, 0]);
        assert_eq!(s.point(0), d.point(2));
        assert_eq!(s.doc(1), d.doc(0));
        assert_eq!(s.input_size(), 3);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_dataset_rejected() {
        let _ = Dataset::from_parts(vec![]);
    }

    #[test]
    #[should_panic(expected = "inconsistent")]
    fn mixed_dims_rejected() {
        let _ = Dataset::from_parts(vec![
            (Point::new2(0.0, 0.0), vec![0]),
            (Point::new1(0.0), vec![0]),
        ]);
    }

    #[test]
    fn try_from_parts_rejects_invalid_inputs() {
        assert!(matches!(
            Dataset::try_from_parts(vec![]),
            Err(SkqError::InvalidDataset(_))
        ));
        let nan = Dataset::try_from_parts(vec![(Point::new2(f64::NAN, 0.0), vec![0])]);
        assert!(matches!(nan, Err(SkqError::InvalidDataset(ref m)) if m.contains("finite")));
        let inf = Dataset::try_from_parts(vec![(Point::new2(0.0, f64::INFINITY), vec![0])]);
        assert!(matches!(inf, Err(SkqError::InvalidDataset(ref m)) if m.contains("finite")));
        let empty_doc = Dataset::try_from_parts(vec![(Point::new2(0.0, 0.0), vec![])]);
        assert!(
            matches!(empty_doc, Err(SkqError::InvalidDataset(ref m)) if m.contains("non-empty"))
        );
    }

    #[test]
    fn try_from_parts_accepts_valid_input() {
        let d = Dataset::try_from_parts(vec![(Point::new2(1.0, 2.0), vec![0, 1])]).unwrap();
        assert_eq!(d.len(), 1);
        assert_eq!(d.input_size(), 2);
    }

    #[test]
    fn try_new_rejects_length_mismatch() {
        let err = Dataset::try_new(
            vec![Point::new2(0.0, 0.0), Point::new2(1.0, 1.0)],
            vec![Document::new(vec![0])],
        );
        assert!(matches!(err, Err(SkqError::InvalidDataset(ref m)) if m.contains("mismatch")));
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn nan_coordinates_panic_in_legacy_constructor() {
        let _ = Dataset::from_parts(vec![(Point::new2(f64::NAN, 0.0), vec![0])]);
    }
}
