//! Export hooks from index build/query paths into the global
//! [`skq_obs`] metrics registry and query log.
//!
//! Everything here funnels through [`skq_obs::global`] so that any
//! binary (the CLI, the bench harness, a test) can snapshot one
//! consistent registry with
//! [`render_prometheus`](skq_obs::MetricsRegistry::render_prometheus).
//! The counters are relaxed atomics; the only lock is the registry
//! handle lookup, so instrumented paths stay cheap. Series follow the
//! `skq_<subsystem>_<quantity>_<unit>` naming scheme with the variable
//! parts (index/problem kind, plan) as labels.

use std::time::Duration;

use skq_obs::{global, query_log, QueryRecord};

use crate::stats::QueryStats;

/// Records one index construction: wall time, structural size, and the
/// estimated memory footprint.
///
/// `index` labels the series (`"orp_kw"`, `"srp_kw"`, `"nn_linf"`, …);
/// `nodes` is the number of tree nodes created, `pivots` the total
/// pivot-set entries materialized across them (0 when the structure
/// does not expose it), and `bytes` the estimated resident size
/// (`space_words() * 8`).
pub fn record_build(index: &'static str, duration: Duration, nodes: u64, pivots: u64, bytes: u64) {
    let reg = global();
    let labels = [("index", index)];
    reg.counter("skq_build_total", &labels).inc();
    reg.histogram("skq_build_duration_microseconds", &labels)
        .observe(duration.as_micros() as u64);
    reg.counter("skq_build_nodes_total", &labels).add(nodes);
    reg.counter("skq_build_pivots_total", &labels).add(pivots);
    reg.gauge("skq_build_estimated_bytes", &labels)
        .set(bytes as f64);
    if skq_obs::trace::is_enabled() {
        // Annotate the innermost open span (the `<index>.build` span
        // entered by the build path) so the trace shows what got built.
        skq_obs::trace::attach_str("index", index);
        skq_obs::trace::attach_u64("nodes", nodes);
        skq_obs::trace::attach_u64("pivots", pivots);
        skq_obs::trace::attach_u64("estimated_bytes", bytes);
    }
}

/// Records one query execution without planner involvement.
pub fn record_query(kind: &'static str, k: usize, stats: &QueryStats, duration: Duration) {
    record_query_planned(kind, k, None, stats, duration, None, None);
}

/// Records one query execution, optionally with the plan chosen by a
/// planner and its predicted/actual costs (in the planner's abstract
/// cost units).
pub fn record_query_planned(
    kind: &'static str,
    k: usize,
    plan: Option<&'static str>,
    stats: &QueryStats,
    duration: Duration,
    predicted_cost: Option<f64>,
    actual_cost: Option<f64>,
) {
    let reg = global();
    let labels = [("kind", kind)];
    reg.counter("skq_query_total", &labels).inc();
    reg.counter("skq_query_nodes_visited_total", &labels)
        .add(stats.nodes_visited);
    reg.counter("skq_query_objects_examined_total", &labels)
        .add(stats.objects_examined());
    reg.counter("skq_query_reported_total", &labels)
        .add(stats.reported);
    reg.histogram("skq_query_duration_microseconds", &labels)
        .observe(duration.as_micros() as u64);
    reg.histogram("skq_query_objects_examined", &labels)
        .observe(stats.objects_examined());
    let trace_id = skq_obs::trace::current_trace_id();
    if trace_id.is_some() {
        // Annotate the innermost open span (the query span entered by
        // the calling wrapper, still open when it records telemetry)
        // with the execution counters the paper's analysis bounds.
        use skq_obs::trace;
        trace::attach_str("kind", kind);
        trace::attach_u64("k", k as u64);
        trace::attach_u64("nodes_visited", stats.nodes_visited);
        trace::attach_u64("cells_pruned", stats.covered_nodes + stats.small_path_nodes);
        trace::attach_u64("crossing_nodes", stats.crossing_nodes);
        trace::attach_u64("postings_scanned", stats.list_scans);
        trace::attach_u64("pivot_scans", stats.pivot_scans);
        trace::attach_u64("sink_emissions", stats.emitted);
        trace::attach_u64("reported", stats.reported);
        if let Some(p) = plan {
            trace::attach_str("plan", p);
        }
        if let Some(c) = predicted_cost {
            trace::attach_f64("predicted_cost", c);
        }
        if let Some(c) = actual_cost {
            trace::attach_f64("actual_cost", c);
        }
    }
    query_log().push(QueryRecord {
        kind,
        k,
        plan,
        nodes_visited: stats.nodes_visited,
        objects_examined: stats.objects_examined(),
        reported: stats.reported,
        predicted_cost,
        actual_cost,
        duration,
        trace_id,
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_query_series_appear() {
        let before_builds = global()
            .counter_value("skq_build_total", &[("index", "telemetry_test")])
            .unwrap_or(0);
        record_build("telemetry_test", Duration::from_micros(120), 10, 4, 8_000);
        assert_eq!(
            global().counter_value("skq_build_total", &[("index", "telemetry_test")]),
            Some(before_builds + 1)
        );

        let stats = QueryStats {
            nodes_visited: 6,
            pivot_scans: 3,
            list_scans: 2,
            reported: 1,
            ..Default::default()
        };
        let before_examined = global()
            .counter_value(
                "skq_query_objects_examined_total",
                &[("kind", "telemetry_test")],
            )
            .unwrap_or(0);
        record_query("telemetry_test", 2, &stats, Duration::from_micros(40));
        assert_eq!(
            global().counter_value(
                "skq_query_objects_examined_total",
                &[("kind", "telemetry_test")]
            ),
            Some(before_examined + 5)
        );
        let rendered = global().render_prometheus();
        assert!(rendered.contains("skq_query_duration_microseconds_bucket"));
    }
}
