//! The dimension-reduction technique (Theorem 2, §4).
//!
//! To index `R^{λ+1}` given an `R^λ` index, §4 builds a tree over the
//! x-dimension with *doubly-exponentially growing fanouts*
//! `f_u = 2 · 2^{k^{level(u)}}`, realized by `f`-balanced cuts
//! ([`cut::f_balanced_cut`]). Each node stores its pivot objects
//! explicitly and a *secondary* `λ`-dimensional index on its active set
//! (ignoring the x-dimension). The tree has `O(log log N)` levels
//! (Proposition 1), so each added dimension multiplies space by only
//! `O(log log N)`.
//!
//! A query walks down the x-range: nodes whose x-extent `σ(u)` is
//! contained in the query's x-interval are **type-1** (answered wholly
//! by their secondary index); the at-most-two-per-level boundary nodes
//! are **type-2** (pivots scanned, children recursed) — Figure 2.

pub mod cut;

use std::ops::ControlFlow;

use skq_geom::Rect;
use skq_invidx::Keyword;

use crate::dataset::Dataset;
use crate::orp::OrpKwIndex;
use crate::sink::{LimitSink, MapSink, ResultSink};
use crate::stats::QueryStats;

use cut::f_balanced_cut;

struct DrNode {
    level: u32,
    /// Tightest interval of active-set x-coordinates (`σ(u)` in §4).
    sigma: (f64, f64),
    /// Pivot objects `e*ᵢ` (global ids).
    pivots: Vec<u32>,
    children: Vec<u32>,
    /// Secondary `λ`-dimensional index over the active set with the
    /// x-coordinate dropped; object `j` of the secondary corresponds to
    /// global object `local[j]`.
    secondary: OrpKwIndex,
    local: Vec<u32>,
}

/// The §4 tree for ORP-KW in `d ≥ 3` dimensions.
pub struct DimRedTree {
    nodes: Vec<DrNode>,
    dataset: Dataset,
    k: usize,
}

impl DimRedTree {
    /// Builds the tree for exactly-`k`-keyword queries.
    ///
    /// # Panics
    ///
    /// Panics if `dataset.dim() < 3` (use the kd framework directly) or
    /// `k < 2`.
    pub fn build(dataset: &Dataset, k: usize) -> Self {
        assert!(dataset.dim() >= 3, "dimension reduction applies for d >= 3");
        assert!(k >= 2);
        let mut tree = Self {
            nodes: Vec::new(),
            dataset: dataset.clone(),
            k,
        };
        let mut all: Vec<u32> = (0..dataset.len() as u32).collect();
        // Sort by (x, id) once; recursion preserves x-contiguous slices.
        all.sort_unstable_by(|&a, &b| {
            dataset
                .point(a as usize)
                .get(0)
                .total_cmp(&dataset.point(b as usize).get(0))
                .then(a.cmp(&b))
        });
        tree.build_node(all, 0);
        tree
    }

    /// The fanout `f_u = 2 · 2^{k^{level}}`, saturating (a saturated
    /// fanout forces a leaf, which the doubly-exponential growth reaches
    /// after `O(log log N)` levels).
    fn fanout(k: usize, level: u32) -> u64 {
        let mut exp: u64 = 1;
        for _ in 0..level {
            exp = exp.saturating_mul(k as u64);
            if exp >= 63 {
                return u64::MAX;
            }
        }
        2u64.saturating_mul(1u64 << exp)
    }

    fn build_node(&mut self, sorted: Vec<u32>, level: u32) -> u32 {
        let id = self.nodes.len() as u32;
        let sigma = (
            self.dataset.point(sorted[0] as usize).get(0),
            self.dataset.point(*sorted.last().unwrap() as usize).get(0),
        );

        // Secondary λ-dimensional index on the active set, x dropped.
        let (sub, local) = self.dataset.subset(&sorted);
        let sub = sub.map_points(|_, p| p.drop_first());
        let secondary = OrpKwIndex::build(&sub, self.k);

        self.nodes.push(DrNode {
            level,
            sigma,
            pivots: Vec::new(),
            children: Vec::new(),
            secondary,
            local,
        });

        let f = Self::fanout(self.k, level);
        let cut = f_balanced_cut(&sorted, f, |o| self.dataset.weight(o as usize));
        if cut.groups.is_empty() {
            // All objects became pivots: a leaf.
            self.nodes[id as usize].pivots = sorted;
            return id;
        }
        self.nodes[id as usize].pivots = cut.pivots;
        let children: Vec<u32> = cut
            .groups
            .into_iter()
            .map(|g| self.build_node(g, level + 1))
            .collect();
        self.nodes[id as usize].children = children;
        id
    }

    /// The number of levels (Proposition 1 bounds this by
    /// `O(log log N)`).
    pub fn num_levels(&self) -> usize {
        self.nodes.iter().map(|n| n.level).max().unwrap_or(0) as usize + 1
    }

    /// The number of tree nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Index space in words (tree skeleton + pivots + id maps +
    /// secondary structures).
    pub fn space_words(&self) -> usize {
        self.nodes
            .iter()
            .map(|n| {
                8 + n.pivots.len() + n.children.len() + n.local.len() + n.secondary.space_words()
            })
            .sum()
    }

    /// Answers a query, appending global object ids to `out`.
    pub fn query(
        &self,
        q: &Rect,
        keywords: &[Keyword],
        limit: usize,
        out: &mut Vec<u32>,
        stats: &mut QueryStats,
    ) {
        let mut sink = LimitSink::new(&mut *out, limit);
        let _ = self.query_sink(q, keywords, &mut sink, stats);
        stats.emitted += sink.emitted();
        stats.truncated |= sink.truncated();
    }

    /// Streaming form of [`query`](Self::query): global object ids are
    /// emitted into `sink`; type-1 secondary-index hits stream through
    /// the node's local→global map with no intermediate vector.
    pub fn query_sink<S: ResultSink>(
        &self,
        q: &Rect,
        keywords: &[Keyword],
        sink: &mut S,
        stats: &mut QueryStats,
    ) -> ControlFlow<()> {
        assert_eq!(q.dim(), self.dataset.dim(), "query dimension mismatch");
        if sink.is_full() {
            return ControlFlow::Break(());
        }
        let (qlo, qhi) = q.interval(0);
        let root = &self.nodes[0];
        if root.sigma.1 < qlo || qhi < root.sigma.0 {
            return ControlFlow::Continue(());
        }
        self.visit(0, q, (qlo, qhi), keywords, sink, stats)
    }

    fn visit<S: ResultSink>(
        &self,
        node_id: u32,
        q: &Rect,
        qx: (f64, f64),
        keywords: &[Keyword],
        sink: &mut S,
        stats: &mut QueryStats,
    ) -> ControlFlow<()> {
        let node = &self.nodes[node_id as usize];
        stats.nodes_visited += 1;
        if qx.0 <= node.sigma.0 && node.sigma.1 <= qx.1 {
            // Type 1: the x-extent is inside the query's x-interval —
            // answer with the secondary index, ignoring x.
            QueryStats::bump(&mut stats.type1_by_level, node.level as usize);
            let sub_q = q.drop_first();
            let mut sub_stats = QueryStats::new();
            let mut remap = MapSink::new(&mut *sink, |l| node.local[l as usize]);
            // Erase the adapter type before recursing: the secondary is
            // itself dimension-reduced for d ≥ 4, and a concrete
            // `MapSink` per level would monomorphize without bound.
            let mut erased: &mut dyn ResultSink = &mut remap;
            let flow = node
                .secondary
                .query_sink(&sub_q, keywords, &mut erased, &mut sub_stats);
            stats.absorb(&sub_stats);
            return flow;
        }

        // Type 2: boundary node — scan pivots, recurse into children
        // whose x-extent meets the query.
        QueryStats::bump(&mut stats.type2_by_level, node.level as usize);
        for &e in &node.pivots {
            stats.pivot_scans += 1;
            if self.dataset.doc(e as usize).contains_all(keywords)
                && q.contains(self.dataset.point(e as usize))
            {
                stats.reported += 1;
                sink.emit(e)?;
            }
        }
        for &c in &node.children {
            let cs = self.nodes[c as usize].sigma;
            if cs.0 <= qx.1 && qx.0 <= cs.1 {
                self.visit(c, q, qx, keywords, sink, stats)?;
            }
        }
        ControlFlow::Continue(())
    }
}

#[cfg(feature = "debug-invariants")]
impl DimRedTree {
    /// Deep structural validation (`debug-invariants`; DESIGN.md §12):
    /// checks §4's x-extent ordering and nesting, level progression,
    /// the pivot partition across the tree, the local→global id maps,
    /// and recursively every node's secondary index.
    pub fn validate(&self) -> Result<(), crate::invariants::InvariantViolation> {
        use crate::invariants::InvariantViolation as V;
        let n = self.dataset.len();
        let mut is_pivot = vec![false; n];
        for (i, node) in self.nodes.iter().enumerate() {
            if node.sigma.0 > node.sigma.1 {
                return Err(V::new(
                    "dimred::sigma",
                    format!(
                        "node {i}: inverted x-extent ({}, {})",
                        node.sigma.0, node.sigma.1
                    ),
                ));
            }
            for &c in &node.children {
                let Some(child) = self.nodes.get(c as usize) else {
                    return Err(V::new(
                        "dimred::tree_shape",
                        format!("node {i} references child {c}, out of range"),
                    ));
                };
                if child.level != node.level + 1 {
                    return Err(V::new(
                        "dimred::tree_shape",
                        format!(
                            "child {c} at level {} under node {i} at level {}",
                            child.level, node.level
                        ),
                    ));
                }
                if child.sigma.0 < node.sigma.0 || child.sigma.1 > node.sigma.1 {
                    return Err(V::new(
                        "dimred::sigma",
                        format!("x-extent of child {c} escapes its parent node {i}"),
                    ));
                }
            }
            for &e in &node.pivots {
                if e as usize >= n {
                    return Err(V::new(
                        "dimred::pivot_partition",
                        format!("node {i} stores pivot {e}, out of range"),
                    ));
                }
                if std::mem::replace(&mut is_pivot[e as usize], true) {
                    return Err(V::new(
                        "dimred::pivot_partition",
                        format!("object {e} is a pivot at two nodes"),
                    ));
                }
            }
            for &g in &node.local {
                if g as usize >= n {
                    return Err(V::new(
                        "dimred::local_map",
                        format!("node {i}: local→global entry {g} out of range"),
                    ));
                }
            }
            node.secondary.validate()?;
        }
        if let Some(orphan) = is_pivot.iter().position(|&stored| !stored) {
            return Err(V::new(
                "dimred::pivot_partition",
                format!("object {orphan} is a pivot at no node"),
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skq_geom::Point;

    #[test]
    fn fanout_growth() {
        assert_eq!(DimRedTree::fanout(2, 0), 4); // 2·2^1
        assert_eq!(DimRedTree::fanout(2, 1), 8); // 2·2^2
        assert_eq!(DimRedTree::fanout(2, 2), 32); // 2·2^4
        assert_eq!(DimRedTree::fanout(2, 3), 512); // 2·2^8
        assert_eq!(DimRedTree::fanout(2, 4), 2 * (1u64 << 16));
        assert_eq!(DimRedTree::fanout(2, 5), 2 * (1u64 << 32));
        assert_eq!(DimRedTree::fanout(2, 6), u64::MAX); // saturated
        assert_eq!(DimRedTree::fanout(3, 0), 4);
        assert_eq!(DimRedTree::fanout(3, 1), 16); // 2·2^3
    }

    #[test]
    fn small_3d_tree_queries() {
        let dataset = Dataset::from_parts(
            (0..40)
                .map(|i| {
                    let f = i as f64;
                    (
                        Point::new3(f, (i * 7 % 40) as f64, (i * 13 % 40) as f64),
                        vec![(i % 3) as u32, 3 + (i % 2) as u32],
                    )
                })
                .collect(),
        );
        let tree = DimRedTree::build(&dataset, 2);
        let q = Rect::new(&[5.0, 0.0, 0.0], &[30.0, 40.0, 40.0]);
        let kws = [0u32, 3u32];
        let mut out = Vec::new();
        let mut stats = QueryStats::new();
        tree.query(&q, &kws, usize::MAX, &mut out, &mut stats);
        out.sort_unstable();
        let expected: Vec<u32> = (0..40u32)
            .filter(|&i| {
                dataset.doc(i as usize).contains_all(&kws) && q.contains(dataset.point(i as usize))
            })
            .collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn type2_nodes_bounded_per_level() {
        let dataset = Dataset::from_parts(
            (0..300)
                .map(|i| {
                    let f = i as f64;
                    (
                        Point::new3(f, f * 0.5, f * 0.25),
                        vec![0, 1 + (i % 4) as u32],
                    )
                })
                .collect(),
        );
        let tree = DimRedTree::build(&dataset, 2);
        let q = Rect::new(&[17.0, 0.0, 0.0], &[240.0, 300.0, 300.0]);
        let mut out = Vec::new();
        let mut stats = QueryStats::new();
        tree.query(&q, &[0, 1], usize::MAX, &mut out, &mut stats);
        for (lvl, &count) in stats.type2_by_level.iter().enumerate() {
            assert!(count <= 2, "level {lvl} has {count} type-2 nodes");
        }
    }
}
