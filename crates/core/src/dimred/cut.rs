//! `f`-balanced cuts (§4).
//!
//! Given a weighted object set sorted by x-coordinate and a fanout
//! `f ≥ 2`, an `f`-balanced cut is a tuple
//! `(D₁, …, D_f, e*₁, …, e*_{f−1})` where the `Dᵢ` are x-contiguous
//! groups of weight at most `weight(D')/f`, separated by single pivot
//! objects. The paper's footnote 13 gives the greedy construction
//! implemented here: pack objects into the current group while the
//! budget allows, emit the next object as a pivot, repeat.

/// The result of an `f`-balanced cut.
#[derive(Debug, PartialEq, Eq)]
pub struct BalancedCut {
    /// Non-empty groups `Dᵢ`, in x-order (empty groups are dropped —
    /// they would create childless nodes).
    pub groups: Vec<Vec<u32>>,
    /// The pivot objects `e*ᵢ`, in x-order.
    pub pivots: Vec<u32>,
}

/// Computes an `f`-balanced cut of `sorted` (object ids sorted by
/// `(x, id)`), with `weight(o) = weights(o)`.
///
/// Guarantees:
/// * groups and pivots partition `sorted`, preserving x-order;
/// * every group's weight is at most `total/f`;
/// * at most `f` groups are produced (each group is maximal, so each
///   group–pivot pair exceeds `total/f`).
///
/// If the budget `total/f` is smaller than every object's weight, all
/// objects become pivots and `groups` is empty — the caller makes the
/// node a leaf, exactly as §4 prescribes ("if `D₁, …, D_f` are all
/// empty, make `u` a leaf").
pub fn f_balanced_cut(sorted: &[u32], f: u64, weight_of: impl Fn(u32) -> u64) -> BalancedCut {
    assert!(f >= 2, "fanout must be at least 2");
    let total: u64 = sorted.iter().map(|&o| weight_of(o)).sum();
    // Work in f64: enormous fanouts (f grows doubly exponentially with
    // the level) must drive the budget below 1, not wrap or floor-divide
    // to a stray 0-vs-1 boundary.
    let budget = total as f64 / f as f64;

    let mut groups: Vec<Vec<u32>> = Vec::new();
    let mut pivots: Vec<u32> = Vec::new();
    let mut current: Vec<u32> = Vec::new();
    let mut cum = 0u64;
    for &o in sorted {
        let w = weight_of(o);
        if (cum + w) as f64 <= budget {
            current.push(o);
            cum += w;
        } else {
            // The group is maximal; `o` becomes the separating pivot.
            if !current.is_empty() {
                groups.push(std::mem::take(&mut current));
            }
            pivots.push(o);
            cum = 0;
        }
    }
    if !current.is_empty() {
        groups.push(current);
    }
    BalancedCut { groups, pivots }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cut(weights: &[u64], f: u64) -> BalancedCut {
        let ids: Vec<u32> = (0..weights.len() as u32).collect();
        f_balanced_cut(&ids, f, |o| weights[o as usize])
    }

    #[test]
    fn unit_weights_quarters() {
        // 8 unit objects, f = 4 → budget 2 per group.
        let c = cut(&[1; 8], 4);
        assert_eq!(c.groups.len(), 3);
        assert!(c.groups.iter().all(|g| g.len() <= 2));
        assert_eq!(c.pivots.len(), 2);
        // Partition preserved in order.
        let mut all: Vec<u32> = c.groups.concat();
        all.extend(&c.pivots);
        all.sort_unstable();
        assert_eq!(all, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn group_weights_respect_budget() {
        let weights = [3, 1, 4, 1, 5, 9, 2, 6, 5, 3];
        let total: u64 = weights.iter().sum(); // 39
        for f in [2, 3, 5, 8] {
            let c = cut(&weights, f);
            for g in &c.groups {
                let w: u64 = g.iter().map(|&o| weights[o as usize]).sum();
                assert!(
                    (w as f64) <= total as f64 / f as f64,
                    "f={f} group weight {w}"
                );
            }
            assert!(
                c.groups.len() as u64 <= f,
                "f={f}: {} groups",
                c.groups.len()
            );
        }
    }

    #[test]
    fn oversized_fanout_makes_everything_pivots() {
        let c = cut(&[2, 2, 2], 100);
        assert!(c.groups.is_empty());
        assert_eq!(c.pivots, vec![0, 1, 2]);
    }

    #[test]
    fn heavy_object_becomes_pivot() {
        // Budget is 10/2 = 5; the weight-7 object can never be packed.
        let c = cut(&[1, 7, 1, 1], 2);
        assert!(c.pivots.contains(&1));
        for g in &c.groups {
            assert!(!g.contains(&1));
        }
    }

    #[test]
    fn order_is_preserved() {
        let c = cut(&[1; 20], 4);
        let mut merged: Vec<u32> = Vec::new();
        let mut gi = 0;
        // Groups and pivots interleave in x-order; reconstruct by walking.
        for (i, p) in c.pivots.iter().enumerate() {
            if gi < c.groups.len() && c.groups[gi].last().is_some_and(|&l| l < *p) {
                merged.extend(&c.groups[gi]);
                gi += 1;
            }
            merged.push(*p);
            let _ = i;
        }
        while gi < c.groups.len() {
            merged.extend(&c.groups[gi]);
            gi += 1;
        }
        assert_eq!(merged, (0..20).collect::<Vec<_>>());
    }
}
