//! Query-execution statistics.
//!
//! The paper's analysis (§3.3, §4) bounds structural quantities of the
//! query execution: the number of *covered* and *crossing* nodes of the
//! visited tree `T_qry`, the cost paid on materialized-list scans at the
//! leaves of `T_qry`, and — for the dimension-reduction tree — the number
//! of type-1/type-2 nodes per level. The experiment harness measures all
//! of them to validate Lemmas 9–10 and Propositions 1–3 empirically
//! (experiments F1/F2 in DESIGN.md), so every query method records a
//! [`QueryStats`].

/// Why a guarded query stopped before exhausting its answer.
///
/// Set in [`QueryStats::truncated_reason`] by the sink-owning wrapper
/// when a [`GuardedSink`](crate::guard::GuardedSink) (or a plain
/// limit) cut the traversal short.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TruncatedReason {
    /// A result-count budget (`LimitSink` / `max_results`) filled up.
    Limit,
    /// The query ran past its deadline.
    DeadlineExceeded,
    /// The query's `CancelToken` was cancelled.
    Cancelled,
}

impl TruncatedReason {
    /// Short label for metrics and the query log.
    pub fn label(&self) -> &'static str {
        match self {
            TruncatedReason::Limit => "limit",
            TruncatedReason::DeadlineExceeded => "deadline_exceeded",
            TruncatedReason::Cancelled => "cancelled",
        }
    }
}

/// Counters describing one query execution.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct QueryStats {
    /// Nodes visited (the size of `T_qry` in §3.3).
    pub nodes_visited: u64,
    /// Visited nodes whose cell is fully covered by the query.
    pub covered_nodes: u64,
    /// Visited nodes whose cell crosses the query boundary
    /// (the size of `T_cross` in §3.3 / Figure 1).
    pub crossing_nodes: u64,
    /// Nodes where the small-keyword path was taken (the "leaves" of
    /// `T_qry` in the analysis, each paying `O(N_u^{1−1/k})`).
    pub small_path_nodes: u64,
    /// Objects scanned from materialized small-keyword lists.
    pub list_scans: u64,
    /// Objects scanned from pivot sets.
    pub pivot_scans: u64,
    /// Objects reported.
    pub reported: u64,
    /// Results accepted by the query's [`ResultSink`] — the true
    /// output size of this execution even under a limit. Set by the
    /// sink-owning wrapper methods (`query`, `query_limited`,
    /// `query_with_stats`, …), not by the traversal core, so absorbing
    /// sub-query statistics never double-counts.
    ///
    /// [`ResultSink`]: crate::sink::ResultSink
    pub emitted: u64,
    /// Whether the sink cut the query short (a `LimitSink` fired), i.e.
    /// `emitted` may undercount the full answer.
    pub truncated: bool,
    /// Why the query was cut short, when a guarded wrapper knows
    /// (`None` for plain `ControlFlow::Break` sinks).
    pub truncated_reason: Option<TruncatedReason>,
    /// Histogram of crossing nodes by tree level (for Lemma 10 /
    /// Figure 1: `Σ_z (1/2)^{level(z)/2}` must stay `O(1)` per query
    /// line in the kd-tree).
    pub crossing_by_level: Vec<u64>,
    /// Dimension-reduction tree only: type-1 nodes per level (§4).
    pub type1_by_level: Vec<u64>,
    /// Dimension-reduction tree only: type-2 nodes per level; the
    /// analysis shows at most two per level (Figure 2).
    pub type2_by_level: Vec<u64>,
}

impl QueryStats {
    /// A zeroed statistics record.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bumps a per-level histogram, growing it as needed.
    pub(crate) fn bump(hist: &mut Vec<u64>, level: usize) {
        Self::bump_by(hist, level, 1);
    }

    /// Total objects examined (pivot + list scans) — the dominant term
    /// of the query cost besides tree navigation.
    pub fn objects_examined(&self) -> u64 {
        self.pivot_scans + self.list_scans
    }

    /// Merges another record into this one (used when a query fans out
    /// over secondary structures).
    pub fn absorb(&mut self, other: &QueryStats) {
        self.nodes_visited += other.nodes_visited;
        self.covered_nodes += other.covered_nodes;
        self.crossing_nodes += other.crossing_nodes;
        self.small_path_nodes += other.small_path_nodes;
        self.list_scans += other.list_scans;
        self.pivot_scans += other.pivot_scans;
        self.reported += other.reported;
        self.emitted += other.emitted;
        self.truncated |= other.truncated;
        self.truncated_reason = self.truncated_reason.or(other.truncated_reason);
        Self::merge_hist(&mut self.crossing_by_level, &other.crossing_by_level);
        Self::merge_hist(&mut self.type1_by_level, &other.type1_by_level);
        Self::merge_hist(&mut self.type2_by_level, &other.type2_by_level);
    }

    fn bump_by(hist: &mut Vec<u64>, level: usize, by: u64) {
        if hist.len() <= level {
            hist.resize(level + 1, 0);
        }
        hist[level] += by;
    }

    /// Adds each nonzero level of `src` into `dst`, growing it as
    /// needed.
    fn merge_hist(dst: &mut Vec<u64>, src: &[u64]) {
        for (level, &v) in src.iter().enumerate() {
            if v > 0 {
                Self::bump_by(dst, level, v);
            }
        }
    }
}

impl std::fmt::Display for QueryStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "visited {} nodes ({} covered, {} crossing), examined {} objects ({} pivots + {} list entries) across {} small-path stops, reported {}",
            self.nodes_visited,
            self.covered_nodes,
            self.crossing_nodes,
            self.objects_examined(),
            self.pivot_scans,
            self.list_scans,
            self.small_path_nodes,
            self.reported
        )?;
        if self.truncated {
            match self.truncated_reason {
                Some(r) => write!(f, " (truncated: {}, emitted {})", r.label(), self.emitted)?,
                None => write!(f, " (truncated, emitted {})", self.emitted)?,
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bump_grows_histogram() {
        let mut s = QueryStats::new();
        QueryStats::bump(&mut s.crossing_by_level, 3);
        QueryStats::bump(&mut s.crossing_by_level, 3);
        QueryStats::bump(&mut s.crossing_by_level, 0);
        assert_eq!(s.crossing_by_level, vec![1, 0, 0, 2]);
    }

    #[test]
    fn absorb_merges() {
        let mut a = QueryStats {
            nodes_visited: 2,
            reported: 1,
            emitted: 1,
            crossing_by_level: vec![1],
            ..Default::default()
        };
        let b = QueryStats {
            nodes_visited: 3,
            reported: 4,
            emitted: 2,
            truncated: true,
            crossing_by_level: vec![0, 5],
            type2_by_level: vec![2],
            ..Default::default()
        };
        a.absorb(&b);
        assert_eq!(a.nodes_visited, 5);
        assert_eq!(a.reported, 5);
        assert_eq!(a.emitted, 3);
        assert!(a.truncated);
        assert_eq!(a.crossing_by_level, vec![1, 5]);
        assert_eq!(a.type2_by_level, vec![2]);
    }

    #[test]
    fn display_is_informative() {
        let s = QueryStats {
            nodes_visited: 5,
            covered_nodes: 2,
            crossing_nodes: 3,
            pivot_scans: 7,
            list_scans: 11,
            small_path_nodes: 1,
            reported: 4,
            ..Default::default()
        };
        let text = s.to_string();
        assert!(text.contains("visited 5 nodes"));
        assert!(text.contains("examined 18 objects"));
        assert!(text.contains("reported 4"));
    }

    #[test]
    fn objects_examined_sums() {
        let s = QueryStats {
            pivot_scans: 3,
            list_scans: 7,
            ..Default::default()
        };
        assert_eq!(s.objects_examined(), 10);
    }
}
