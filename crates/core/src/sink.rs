//! Streaming result emission.
//!
//! Every query bound in the paper is *output-sensitive* — `O(… + OUT)`
//! (Table 1) — which means the reporting phase is a stream: the
//! traversal hands over one matching object at a time and may be told
//! to stop. Materializing a `Vec<u32>` at every layer (framework →
//! problem module → suite → planner → batch) hides that structure: the
//! L∞NN-KW radius search (Corollary 4) only needs "are there ≥ t hits?"
//! per probe, emptiness queries (§1.2 footnote 4) only need the first
//! hit, and counting needs no ids at all.
//!
//! [`ResultSink`] is the one reporting interface every traversal in
//! this crate emits into. The canonical sinks compose:
//!
//! * [`CollectSink`] / plain `Vec<u32>` — materialize (today's API);
//! * [`CountSink`] — count without storing;
//! * [`LimitSink`] — stop after `t` accepted results (threshold
//!   queries), recording truncation;
//! * [`DedupSink`] — bitset-backed duplicate suppression (guards
//!   reductions such as RR-KW's `2d`-dimensional flattening);
//! * [`TeeSink`] — feed two sinks in one pass (e.g. results plus an
//!   observability counter);
//! * [`MapSink`] / [`FilterSink`] — id remapping and post-filtering
//!   (dimension-reduction local→global ids, suite post-filtering).
//!
//! Traversals report acceptance control via [`ControlFlow`]: a sink
//! returns `ControlFlow::Break(())` to stop the query early, and the
//! `?` operator threads that decision through recursive descents.

use std::ops::ControlFlow;

/// A consumer of reported object ids.
///
/// Implementations decide what to do with each id (store it, count it,
/// forward it) and whether the producing traversal should continue.
/// Sinks are cheap state machines; none of the canonical ones allocate
/// per emission.
pub trait ResultSink {
    /// Offers one result. Returning `ControlFlow::Break(())` stops the
    /// traversal; an emission may be *accepted* (counted) even when it
    /// returns `Break` (e.g. the `t`-th hit of a [`LimitSink`]).
    fn emit(&mut self, id: u32) -> ControlFlow<()>;

    /// The number of results this sink has accepted.
    fn emitted(&self) -> u64;

    /// Whether the sink cut a query short (stopped a traversal that may
    /// have had more results to offer).
    fn truncated(&self) -> bool {
        false
    }

    /// Whether the sink can accept no further results. Traversals check
    /// this before starting work (a `LimitSink` with `limit == 0` never
    /// needs to visit a node).
    fn is_full(&self) -> bool {
        false
    }
}

/// Forwarding impl so traversal internals can pass `&mut sink` down
/// recursive calls and adapters without consuming it.
impl<S: ResultSink + ?Sized> ResultSink for &mut S {
    fn emit(&mut self, id: u32) -> ControlFlow<()> {
        (**self).emit(id)
    }
    fn emitted(&self) -> u64 {
        (**self).emitted()
    }
    fn truncated(&self) -> bool {
        (**self).truncated()
    }
    fn is_full(&self) -> bool {
        (**self).is_full()
    }
}

/// A plain `Vec<u32>` is a sink: append-only, never stops the query.
/// This is what keeps the pre-sink `query(..) -> Vec<u32>` methods
/// zero-cost wrappers. `emitted` counts the vector's length, including
/// anything present before the query (callers needing exact per-query
/// accounting wrap in [`LimitSink`] or tee into a [`CountSink`]).
impl ResultSink for Vec<u32> {
    fn emit(&mut self, id: u32) -> ControlFlow<()> {
        self.push(id);
        ControlFlow::Continue(())
    }
    fn emitted(&self) -> u64 {
        self.len() as u64
    }
}

/// Owns a result vector. Equivalent to emitting into a `Vec<u32>`;
/// exists so call sites can name the collecting behaviour explicitly.
#[derive(Debug, Default)]
pub struct CollectSink {
    out: Vec<u32>,
}

impl CollectSink {
    /// An empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// The collected ids, in emission order.
    pub fn as_slice(&self) -> &[u32] {
        &self.out
    }

    /// Consumes the sink, returning the collected ids.
    pub fn into_vec(self) -> Vec<u32> {
        self.out
    }
}

impl ResultSink for CollectSink {
    fn emit(&mut self, id: u32) -> ControlFlow<()> {
        self.out.push(id);
        ControlFlow::Continue(())
    }
    fn emitted(&self) -> u64 {
        self.out.len() as u64
    }
}

/// Counts results without storing them — `COUNT(*)` reporting with no
/// allocation at all.
#[derive(Debug, Default)]
pub struct CountSink {
    count: u64,
}

impl CountSink {
    /// A zeroed counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// The count so far.
    pub fn count(&self) -> u64 {
        self.count
    }
}

impl ResultSink for CountSink {
    fn emit(&mut self, _id: u32) -> ControlFlow<()> {
        self.count += 1;
        ControlFlow::Continue(())
    }
    fn emitted(&self) -> u64 {
        self.count
    }
}

/// Forwards at most `limit` results to an inner sink, then stops the
/// query. This is the engine of every threshold/emptiness query
/// (Corollary 4, §1.2 footnote 4): `LimitSink::new(CountSink::new(), t)`
/// answers "are there ≥ t matches?" with zero result storage.
///
/// `emitted` counts results *this* sink forwarded (independent of any
/// pre-existing content of the inner sink), and `truncated` reports
/// whether the limit fired — i.e. whether the produced results may be a
/// strict subset of the full answer.
#[derive(Debug)]
pub struct LimitSink<S> {
    inner: S,
    limit: u64,
    accepted: u64,
    hit_limit: bool,
}

impl<S: ResultSink> LimitSink<S> {
    /// Caps `inner` at `limit` results (`usize::MAX` for no cap).
    pub fn new(inner: S, limit: usize) -> Self {
        Self {
            inner,
            limit: limit as u64,
            accepted: 0,
            hit_limit: false,
        }
    }

    /// The inner sink.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Consumes the limiter, returning the inner sink.
    pub fn into_inner(self) -> S {
        self.inner
    }
}

impl<S: ResultSink> ResultSink for LimitSink<S> {
    fn emit(&mut self, id: u32) -> ControlFlow<()> {
        if self.accepted >= self.limit {
            self.hit_limit = true;
            return ControlFlow::Break(());
        }
        // Count *acceptances*, not offers: an inner sink that rejects
        // the id (DedupSink on a duplicate, FilterSink on a miss) must
        // not consume limit budget, or "t results" silently degrades
        // into "t candidates".
        let before = self.inner.emitted();
        let flow = self.inner.emit(id);
        self.accepted += self.inner.emitted() - before;
        if self.accepted >= self.limit {
            self.hit_limit = true;
            return ControlFlow::Break(());
        }
        flow
    }
    fn emitted(&self) -> u64 {
        self.accepted
    }
    fn truncated(&self) -> bool {
        self.hit_limit || self.inner.truncated()
    }
    fn is_full(&self) -> bool {
        self.accepted >= self.limit || self.inner.is_full()
    }
}

/// Suppresses duplicate ids with a bitset over `0..universe`, forwarding
/// only first occurrences. Reductions that could in principle surface an
/// object twice (e.g. RR-KW's rectangle-to-`2d`-point flattening feeding
/// a composed index) stay set-semantics-correct behind this guard at one
/// bit per object.
#[derive(Debug)]
pub struct DedupSink<S> {
    seen: Vec<u64>,
    forwarded: u64,
    inner: S,
}

impl<S: ResultSink> DedupSink<S> {
    /// Deduplicates ids in `0..universe` before `inner`.
    pub fn new(universe: usize, inner: S) -> Self {
        Self {
            seen: vec![0u64; universe.div_ceil(64)],
            forwarded: 0,
            inner,
        }
    }

    /// Consumes the sink, returning the inner sink.
    pub fn into_inner(self) -> S {
        self.inner
    }
}

impl<S: ResultSink> ResultSink for DedupSink<S> {
    fn emit(&mut self, id: u32) -> ControlFlow<()> {
        let (word, bit) = ((id / 64) as usize, id % 64);
        if self.seen[word] & (1 << bit) != 0 {
            return ControlFlow::Continue(()); // swallow the duplicate
        }
        self.seen[word] |= 1 << bit;
        self.forwarded += 1;
        self.inner.emit(id)
    }
    fn emitted(&self) -> u64 {
        self.forwarded
    }
    fn truncated(&self) -> bool {
        self.inner.truncated()
    }
    fn is_full(&self) -> bool {
        self.inner.is_full()
    }
}

/// Feeds every result to two sinks in a single pass — e.g. the caller's
/// collector plus a [`CountSink`] whose total lands in the
/// observability layer without re-walking the results. Stops when
/// either side stops.
#[derive(Debug)]
pub struct TeeSink<A, B> {
    a: A,
    b: B,
}

impl<A: ResultSink, B: ResultSink> TeeSink<A, B> {
    /// Tees emissions into `a` (the primary, whose `emitted` is
    /// reported) and `b` (the secondary).
    pub fn new(a: A, b: B) -> Self {
        Self { a, b }
    }

    /// The secondary sink.
    pub fn secondary(&self) -> &B {
        &self.b
    }

    /// Consumes the tee, returning both sinks.
    pub fn into_inner(self) -> (A, B) {
        (self.a, self.b)
    }
}

impl<A: ResultSink, B: ResultSink> ResultSink for TeeSink<A, B> {
    fn emit(&mut self, id: u32) -> ControlFlow<()> {
        let fa = self.a.emit(id);
        let fb = self.b.emit(id);
        if fa.is_break() || fb.is_break() {
            ControlFlow::Break(())
        } else {
            ControlFlow::Continue(())
        }
    }
    fn emitted(&self) -> u64 {
        self.a.emitted()
    }
    fn truncated(&self) -> bool {
        self.a.truncated() || self.b.truncated()
    }
    fn is_full(&self) -> bool {
        self.a.is_full() || self.b.is_full()
    }
}

/// Rewrites each id through a function before forwarding — the
/// dimension-reduction tree streams secondary-index hits through a
/// local→global id map this way, with no intermediate vector.
#[derive(Debug)]
pub struct MapSink<S, F> {
    inner: S,
    f: F,
    forwarded: u64,
}

impl<S: ResultSink, F: FnMut(u32) -> u32> MapSink<S, F> {
    /// Applies `f` to every id before `inner`.
    pub fn new(inner: S, f: F) -> Self {
        Self {
            inner,
            f,
            forwarded: 0,
        }
    }
}

impl<S: ResultSink, F: FnMut(u32) -> u32> ResultSink for MapSink<S, F> {
    fn emit(&mut self, id: u32) -> ControlFlow<()> {
        self.forwarded += 1;
        self.inner.emit((self.f)(id))
    }
    fn emitted(&self) -> u64 {
        self.forwarded
    }
    fn truncated(&self) -> bool {
        self.inner.truncated()
    }
    fn is_full(&self) -> bool {
        self.inner.is_full()
    }
}

/// Forwards only ids passing a predicate — the multi-`k` suite streams
/// its beyond-`k_max` route (index over the rarest keywords, then
/// post-filter by the rest) through this without a staging vector.
#[derive(Debug)]
pub struct FilterSink<S, F> {
    inner: S,
    pred: F,
    forwarded: u64,
}

impl<S: ResultSink, F: FnMut(u32) -> bool> FilterSink<S, F> {
    /// Keeps only ids for which `pred` returns true.
    pub fn new(inner: S, pred: F) -> Self {
        Self {
            inner,
            pred,
            forwarded: 0,
        }
    }
}

impl<S: ResultSink, F: FnMut(u32) -> bool> ResultSink for FilterSink<S, F> {
    fn emit(&mut self, id: u32) -> ControlFlow<()> {
        if !(self.pred)(id) {
            return ControlFlow::Continue(());
        }
        self.forwarded += 1;
        self.inner.emit(id)
    }
    fn emitted(&self) -> u64 {
        self.forwarded
    }
    fn truncated(&self) -> bool {
        self.inner.truncated()
    }
    fn is_full(&self) -> bool {
        self.inner.is_full()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feed<S: ResultSink>(sink: &mut S, ids: &[u32]) -> usize {
        for (i, &id) in ids.iter().enumerate() {
            if sink.emit(id).is_break() {
                return i + 1;
            }
        }
        ids.len()
    }

    #[test]
    fn vec_collects_everything() {
        let mut out: Vec<u32> = Vec::new();
        assert_eq!(feed(&mut out, &[3, 1, 2]), 3);
        assert_eq!(out, vec![3, 1, 2]);
        assert_eq!(out.emitted(), 3);
        assert!(!out.truncated());
        assert!(!out.is_full());
    }

    #[test]
    fn collect_sink_matches_vec() {
        let mut c = CollectSink::new();
        feed(&mut c, &[5, 4]);
        assert_eq!(c.as_slice(), &[5, 4]);
        assert_eq!(c.emitted(), 2);
        assert_eq!(c.into_vec(), vec![5, 4]);
    }

    #[test]
    fn count_sink_counts_without_storing() {
        let mut c = CountSink::new();
        assert_eq!(feed(&mut c, &[9, 9, 9, 9]), 4);
        assert_eq!(c.count(), 4);
        assert_eq!(c.emitted(), 4);
    }

    #[test]
    fn limit_sink_stops_at_limit_and_marks_truncated() {
        let mut s = LimitSink::new(Vec::new(), 2);
        assert_eq!(feed(&mut s, &[1, 2, 3, 4]), 2, "breaks on the 2nd emit");
        assert_eq!(s.emitted(), 2);
        assert!(s.truncated());
        assert!(s.is_full());
        assert_eq!(s.into_inner(), vec![1, 2]);
    }

    #[test]
    fn limit_sink_under_limit_is_not_truncated() {
        let mut s = LimitSink::new(Vec::new(), 10);
        assert_eq!(feed(&mut s, &[1, 2]), 2);
        assert!(!s.truncated());
        assert!(!s.is_full());
        assert_eq!(s.emitted(), 2);
    }

    #[test]
    fn limit_zero_is_full_immediately() {
        let mut s = LimitSink::new(CountSink::new(), 0);
        assert!(s.is_full());
        assert!(s.emit(7).is_break());
        assert_eq!(s.emitted(), 0);
        assert!(s.truncated());
    }

    #[test]
    fn limit_over_count_is_the_threshold_probe() {
        // The Corollary-4 probe: "are there >= 3 matches?" with zero
        // result storage.
        let mut probe = LimitSink::new(CountSink::new(), 3);
        feed(&mut probe, &[10, 20, 30, 40, 50]);
        assert_eq!(probe.emitted(), 3);
        assert!(probe.truncated());
    }

    #[test]
    fn dedup_sink_swallows_duplicates() {
        let mut s = DedupSink::new(100, Vec::new());
        assert_eq!(feed(&mut s, &[7, 3, 7, 3, 99, 7]), 6);
        assert_eq!(s.emitted(), 3);
        assert_eq!(s.into_inner(), vec![7, 3, 99]);
    }

    #[test]
    fn dedup_composes_with_limit() {
        // Duplicates must not count toward the limit.
        let mut s = LimitSink::new(DedupSink::new(10, Vec::new()), 2);
        feed(&mut s, &[1, 1, 1, 2, 3]);
        assert_eq!(s.into_inner().into_inner(), vec![1, 2]);
    }

    #[test]
    fn tee_feeds_both_sides() {
        let mut s = TeeSink::new(Vec::new(), CountSink::new());
        feed(&mut s, &[4, 5, 6]);
        assert_eq!(s.emitted(), 3);
        assert_eq!(s.secondary().count(), 3);
        let (a, b) = s.into_inner();
        assert_eq!(a, vec![4, 5, 6]);
        assert_eq!(b.count(), 3);
    }

    #[test]
    fn tee_stops_when_either_side_stops() {
        let mut s = TeeSink::new(LimitSink::new(Vec::new(), 1), CountSink::new());
        assert_eq!(feed(&mut s, &[1, 2, 3]), 1);
        assert!(s.truncated());
        assert!(s.is_full());
    }

    #[test]
    fn map_sink_rewrites_ids() {
        let table = [100u32, 200, 300];
        let mut s = MapSink::new(Vec::new(), |i| table[i as usize]);
        feed(&mut s, &[2, 0]);
        assert_eq!(s.emitted(), 2);
        assert_eq!(s.inner, vec![300, 100]);
    }

    #[test]
    fn filter_sink_drops_rejects() {
        let mut s = FilterSink::new(Vec::new(), |i| i % 2 == 0);
        feed(&mut s, &[1, 2, 3, 4]);
        assert_eq!(s.emitted(), 2);
        assert_eq!(s.inner, vec![2, 4]);
    }

    #[test]
    fn filter_preserves_inner_stop() {
        let mut s = FilterSink::new(LimitSink::new(Vec::new(), 1), |i| i > 10);
        assert_eq!(feed(&mut s, &[1, 2, 50, 60]), 3, "stops at the 1st accept");
        assert!(s.truncated());
    }
}
