//! A Willard-style 2D partition tree (the Appendix D stand-in).
//!
//! Appendix D instantiates the framework with Chan's optimal partition
//! tree, used as a black box for its crossing bound `O(N^{1−1/d})`. We
//! substitute the classical, implementable Willard construction (see
//! DESIGN.md §4 for the justification): each node is split by
//!
//! 1. a vertical line through the weighted x-median, separating the
//!    active set into `A` (left) and `B` (right), and
//! 2. a single *ham-sandwich* line that simultaneously (weight-)bisects
//!    `A` and `B`, found by binary search on the line's angle,
//!
//! yielding four convex cells of roughly a quarter weight each. Any
//! query line crosses the two splitting lines at most once each and
//! therefore at most 3 of the 4 children — the source of the
//! `O(N^{log₄3})` crossing number (vs. Chan's `O(√N)`).
//!
//! Objects falling exactly on either splitting line form the node's
//! pivot set, exactly like the kd instantiation.

use skq_geom::{Point, Polygon};

use super::partitioner::{Partitioner, SplitOutcome};

/// Number of angular bisection steps in the ham-sandwich search.
const HS_ITERS: usize = 48;

/// 2D partition-tree splits with convex polygon cells.
#[derive(Debug)]
pub struct WillardPartitioner {
    points: Vec<(f64, f64)>,
    weights: Vec<u64>,
    /// Bounding box (padded) from which all cells are clipped.
    bbox: (f64, f64, f64, f64),
}

impl WillardPartitioner {
    /// Creates a partitioner over 2D `points` with verbose weights.
    ///
    /// # Panics
    ///
    /// Panics on empty input, non-2D points, mismatched lengths, or
    /// zero weights.
    pub fn new(points: Vec<Point>, weights: Vec<u64>) -> Self {
        assert!(!points.is_empty(), "partition tree needs points");
        assert!(points.iter().all(|p| p.dim() == 2), "Willard cells are 2D");
        assert_eq!(points.len(), weights.len());
        assert!(weights.iter().all(|&w| w > 0));
        let xy: Vec<(f64, f64)> = points.iter().map(|p| (p.get(0), p.get(1))).collect();
        let (mut x0, mut y0, mut x1, mut y1) = (f64::MAX, f64::MAX, f64::MIN, f64::MIN);
        for &(x, y) in &xy {
            x0 = x0.min(x);
            y0 = y0.min(y);
            x1 = x1.max(x);
            y1 = y1.max(y);
        }
        let pad = ((x1 - x0) + (y1 - y0)).max(1.0);
        Self {
            points: xy,
            weights,
            bbox: (x0 - pad, y0 - pad, x1 + pad, y1 + pad),
        }
    }

    /// The indexed coordinates.
    pub fn coords(&self) -> &[(f64, f64)] {
        &self.points
    }

    /// Weighted median of `objs` under the key `key`, with ties broken
    /// by object id. Returns `(sorted_objs, median_position)`.
    fn weighted_median_by(&self, objs: &[u32], key: impl Fn(u32) -> f64) -> (Vec<u32>, usize) {
        let mut order: Vec<u32> = objs.to_vec();
        order.sort_unstable_by(|&a, &b| key(a).total_cmp(&key(b)).then(a.cmp(&b)));
        let total: u64 = order.iter().map(|&o| self.weights[o as usize]).sum();
        let mut cum = 0u64;
        let mut pos = 0usize;
        for (i, &o) in order.iter().enumerate() {
            cum += self.weights[o as usize];
            if 2 * cum >= total {
                pos = i;
                break;
            }
        }
        (order, pos)
    }

    /// Signed imbalance of `B` w.r.t. the line of direction angle
    /// `theta` whose offset bisects `A`: returns `(normal, offset,
    /// 2·weight(B below) − weight(B))`.
    ///
    /// `a` may be a subsample of the true left set: the offset then
    /// bisects `A` only approximately, which affects balance constants
    /// but neither correctness nor the ≤-half weight guarantee (each
    /// child stays inside its x-median side).
    fn hs_evaluate(&self, a: &[u32], b: &[u32], theta: f64) -> ((f64, f64), f64, i128) {
        let n = (-theta.sin(), theta.cos());
        let proj = |o: u32| {
            let (x, y) = self.points[o as usize];
            n.0 * x + n.1 * y
        };
        let (order, pos) = self.weighted_median_by(a, proj);
        let c = proj(order[pos]);
        let wb: i128 = b.iter().map(|&o| self.weights[o as usize] as i128).sum();
        let below: i128 = b
            .iter()
            .filter(|&&o| proj(o) < c)
            .map(|&o| self.weights[o as usize] as i128)
            .sum();
        ((n.0, n.1), c, 2 * below - wb)
    }

    /// Finds a line `n·p = c` that exactly bisects `A` (by weighted
    /// median) and approximately bisects `B` (by angular binary search —
    /// the 2-point-set ham-sandwich cut).
    fn ham_sandwich(&self, a: &[u32], b: &[u32]) -> ((f64, f64), f64) {
        // Subsample A for the median search on big nodes: each angular
        // step then costs O(sample·log + |B|) instead of O(|A| log |A|).
        const MAX_SAMPLE: usize = 2048;
        let sample: Vec<u32> = if a.len() > MAX_SAMPLE {
            let stride = a.len() / MAX_SAMPLE;
            a.iter().step_by(stride).copied().collect()
        } else {
            a.to_vec()
        };
        let a = sample.as_slice();
        // An irrational-ish start angle dodges axis-aligned degeneracies.
        let theta0 = 0.137_549_204_438_651_32_f64;
        let (n0, c0, h0) = self.hs_evaluate(a, b, theta0);
        if h0 == 0 {
            return (n0, c0);
        }
        // Rotating by π flips sides, so the imbalance changes sign over
        // [θ0, θ0 + π]; bisect the bracket.
        let (mut lo, mut hi) = (theta0, theta0 + std::f64::consts::PI);
        let mut best = (n0, c0, h0.abs());
        for _ in 0..HS_ITERS {
            let mid = 0.5 * (lo + hi);
            let (n, c, h) = self.hs_evaluate(a, b, mid);
            if h.abs() < best.2 {
                best = (n, c, h.abs());
                if h == 0 {
                    break;
                }
            }
            if (h < 0) == (h0 < 0) {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        (best.0, best.1)
    }
}

impl Partitioner for WillardPartitioner {
    type Cell = Polygon;

    fn root_cell(&self) -> Polygon {
        let (x0, y0, x1, y1) = self.bbox;
        Polygon::rect(x0, y0, x1, y1)
    }

    fn split(
        &self,
        cell: &Polygon,
        objects: &[u32],
        _depth: usize,
    ) -> Option<SplitOutcome<Polygon>> {
        if objects.len() < 2 {
            return None;
        }

        // --- Line 1: vertical weighted x-median. ---
        let (order, pos) = self.weighted_median_by(objects, |o| self.points[o as usize].0);
        let xm = self.points[order[pos] as usize].0;
        let mut pivots: Vec<u32> = Vec::new();
        let mut a: Vec<u32> = Vec::new(); // x < xm
        let mut b: Vec<u32> = Vec::new(); // x > xm
        for &o in &order {
            let x = self.points[o as usize].0;
            if x < xm {
                a.push(o);
            } else if x > xm {
                b.push(o);
            } else {
                pivots.push(o);
            }
        }
        if a.is_empty() && b.is_empty() {
            // All objects on the vertical line: split by y instead.
            let (order, pos) = self.weighted_median_by(objects, |o| self.points[o as usize].1);
            let ym = self.points[order[pos] as usize].1;
            let mut pivots = Vec::new();
            let mut lo = Vec::new();
            let mut hi = Vec::new();
            for &o in &order {
                let y = self.points[o as usize].1;
                if y < ym {
                    lo.push(o);
                } else if y > ym {
                    hi.push(o);
                } else {
                    pivots.push(o);
                }
            }
            if lo.is_empty() && hi.is_empty() {
                return None; // fully duplicated coordinates
            }
            let mut children = Vec::new();
            if !lo.is_empty() {
                children.push((cell.clip(0.0, 1.0, ym), lo));
            }
            if !hi.is_empty() {
                children.push((cell.clip(0.0, -1.0, -ym), hi));
            }
            return Some(SplitOutcome { pivots, children });
        }

        let left_cell = cell.clip(1.0, 0.0, xm); // x ≤ xm
        let right_cell = cell.clip(-1.0, 0.0, -xm); // x ≥ xm

        // With one side empty there is nothing to ham-sandwich; a plain
        // two-way split still halves the weight.
        if a.is_empty() || b.is_empty() {
            let (side, side_cell) = if a.is_empty() {
                (b, right_cell)
            } else {
                (a, left_cell)
            };
            return Some(SplitOutcome {
                pivots,
                children: vec![(side_cell, side)],
            });
        }

        // --- Line 2: ham-sandwich bisecting A and B simultaneously. ---
        let ((nx, ny), c) = self.ham_sandwich(&a, &b);
        let assign = |objs: Vec<u32>, pivots: &mut Vec<u32>| {
            let mut below = Vec::new();
            let mut above = Vec::new();
            for o in objs {
                let (x, y) = self.points[o as usize];
                let p = nx * x + ny * y;
                if p < c {
                    below.push(o);
                } else if p > c {
                    above.push(o);
                } else {
                    pivots.push(o);
                }
            }
            (below, above)
        };
        let (a_lo, a_hi) = assign(a, &mut pivots);
        let (b_lo, b_hi) = assign(b, &mut pivots);

        let mut children = Vec::with_capacity(4);
        if !a_lo.is_empty() {
            children.push((left_cell.clip(nx, ny, c), a_lo));
        }
        if !a_hi.is_empty() {
            children.push((left_cell.clip(-nx, -ny, -c), a_hi));
        }
        if !b_lo.is_empty() {
            children.push((right_cell.clip(nx, ny, c), b_lo));
        }
        if !b_hi.is_empty() {
            children.push((right_cell.clip(-nx, -ny, -c), b_hi));
        }
        if children.is_empty() {
            return None;
        }
        Some(SplitOutcome { pivots, children })
    }

    fn weight(&self, obj: u32) -> u64 {
        self.weights[obj as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn uniform(n: usize, seed: u64) -> Vec<Point> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| Point::new2(rng.gen_range(-50.0..50.0), rng.gen_range(-50.0..50.0)))
            .collect()
    }

    #[test]
    fn split_produces_up_to_four_balanced_children() {
        let points = uniform(400, 1);
        let weights = vec![1u64; 400];
        let p = WillardPartitioner::new(points.clone(), weights);
        let objs: Vec<u32> = (0..400).collect();
        let out = p.split(&p.root_cell(), &objs, 0).expect("splittable");
        assert!(out.children.len() <= 4 && out.children.len() >= 2);
        let covered: usize =
            out.children.iter().map(|(_, o)| o.len()).sum::<usize>() + out.pivots.len();
        assert_eq!(covered, 400);
        // Quadrants are roughly a quarter each (ham-sandwich quality).
        for (_, objs) in &out.children {
            assert!(objs.len() <= 130, "quadrant of {} objects", objs.len());
        }
        // Children lie in their cells.
        for (cell, objs) in &out.children {
            for &o in objs {
                let (x, y) = (points[o as usize].get(0), points[o as usize].get(1));
                assert!(cell.contains(x, y), "object {o} outside its cell");
            }
        }
    }

    #[test]
    fn children_weights_halve() {
        let mut rng = StdRng::seed_from_u64(9);
        let points = uniform(200, 2);
        let weights: Vec<u64> = (0..200).map(|_| rng.gen_range(1..6)).collect();
        let p = WillardPartitioner::new(points, weights.clone());
        let objs: Vec<u32> = (0..200).collect();
        let out = p.split(&p.root_cell(), &objs, 0).unwrap();
        let total: u64 = weights.iter().sum();
        for (_, objs) in &out.children {
            let w: u64 = objs.iter().map(|&o| weights[o as usize]).sum();
            assert!(2 * w <= total, "child weight {w} of {total}");
        }
    }

    #[test]
    fn collinear_vertical_points_split_by_y() {
        let points: Vec<Point> = (0..10).map(|i| Point::new2(1.0, i as f64)).collect();
        let p = WillardPartitioner::new(points, vec![1; 10]);
        let objs: Vec<u32> = (0..10).collect();
        let out = p.split(&p.root_cell(), &objs, 0).unwrap();
        assert!(!out.children.is_empty());
    }

    #[test]
    fn identical_points_unsplittable() {
        let points = vec![Point::new2(3.0, 3.0); 5];
        let p = WillardPartitioner::new(points, vec![1; 5]);
        let objs: Vec<u32> = (0..5).collect();
        assert!(p.split(&p.root_cell(), &objs, 0).is_none());
    }

    #[test]
    fn ham_sandwich_bisects_both_sides() {
        let points = uniform(1000, 3);
        let p = WillardPartitioner::new(points, vec![1u64; 1000]);
        let a: Vec<u32> = (0..500).collect();
        let b: Vec<u32> = (500..1000).collect();
        let ((nx, ny), c) = p.ham_sandwich(&a, &b);
        let count = |objs: &[u32]| {
            objs.iter()
                .filter(|&&o| {
                    let (x, y) = p.points[o as usize];
                    nx * x + ny * y < c
                })
                .count()
        };
        let ca = count(&a);
        let cb = count(&b);
        assert!((240..=260).contains(&ca), "A split {ca}/500");
        assert!((230..=270).contains(&cb), "B split {cb}/500");
    }
}
