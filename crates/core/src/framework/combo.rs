//! The `k`-dimensional emptiness bit array of §3.2.
//!
//! At an internal node `u` with `L` large keywords, the secondary
//! structure must answer in `O(1)`: *given `k` distinct large keywords
//! and a child `v`, is `⋂ᵢ D_v^act(wᵢ)` empty?* The paper implements it
//! as "a `k`-dimensional bit array where each cell indicates whether
//! `⋂ᵢ D_v^act(wᵢ)` is empty for a distinct combination of large
//! keywords": `L^k` bits, which is at most `N_u` bits because
//! `L ≤ N_u^{1/k}` (§3.2). Only the cells addressed by *sorted* keyword
//! tuples are populated and probed.

/// A dense `L^k`-bit table addressed by sorted `k`-tuples of local
/// large-keyword ids in `0..L`.
#[derive(Clone, Debug)]
pub struct ComboTable {
    l: usize,
    k: usize,
    bits: Vec<u64>,
}

impl ComboTable {
    /// Creates an all-empty table for `l` large keywords and tuple size
    /// `k`.
    ///
    /// # Panics
    ///
    /// Panics if `l < k` (no `k`-subset of fewer than `k` keywords
    /// exists), or on absurd sizes, which the large-keyword bound
    /// `L ≤ N_u^{1/k}` rules out for valid inputs.
    pub fn new(l: usize, k: usize) -> Self {
        assert!(k >= 1 && l >= k, "need at least k large keywords");
        let cells = (l as u128).pow(k as u32);
        assert!(
            cells <= 1 << 40,
            "combo table of {cells} cells exceeds the L ≤ N^(1/k) budget"
        );
        let words = (cells as usize).div_ceil(64);
        Self {
            l,
            k,
            bits: vec![0; words],
        }
    }

    /// The number of large keywords `L`.
    pub fn num_large(&self) -> usize {
        self.l
    }

    fn index(&self, sorted_ids: &[u32]) -> usize {
        debug_assert_eq!(sorted_ids.len(), self.k);
        debug_assert!(
            sorted_ids.windows(2).all(|w| w[0] < w[1]),
            "ids must be strictly sorted"
        );
        let mut idx = 0usize;
        for &id in sorted_ids {
            debug_assert!((id as usize) < self.l);
            idx = idx * self.l + id as usize;
        }
        idx
    }

    /// Marks the combination as non-empty.
    pub fn set(&mut self, sorted_ids: &[u32]) {
        let i = self.index(sorted_ids);
        self.bits[i / 64] |= 1 << (i % 64);
    }

    /// Whether the combination was marked non-empty.
    pub fn get(&self, sorted_ids: &[u32]) -> bool {
        let i = self.index(sorted_ids);
        self.bits[i / 64] >> (i % 64) & 1 == 1
    }

    /// Space in 64-bit words (for the experiment harness's space
    /// accounting).
    pub fn space_words(&self) -> usize {
        self.bits.len() + 2
    }

    /// Decomposes the table into `(l, k, bit words)` for the snapshot
    /// encoder.
    pub(crate) fn parts(&self) -> (usize, usize, &[u64]) {
        (self.l, self.k, &self.bits)
    }

    /// Reassembles a table from decoded parts, re-validating every
    /// precondition [`ComboTable::new`] asserts — the snapshot-load
    /// counterpart of `new`, which must not panic on bad bytes.
    pub(crate) fn from_parts(l: usize, k: usize, bits: Vec<u64>) -> Result<Self, String> {
        if k < 1 || l < k {
            return Err(format!("combo table needs 1 <= k <= l, got l={l} k={k}"));
        }
        let cells = (l as u128)
            .checked_pow(k as u32)
            .filter(|&c| c <= 1 << 40)
            .ok_or_else(|| format!("combo table of l={l} k={k} exceeds the cell budget"))?;
        let words = (cells as usize).div_ceil(64);
        if bits.len() != words {
            return Err(format!(
                "combo table has {} bit words, expected {words}",
                bits.len()
            ));
        }
        Ok(Self { l, k, bits })
    }
}

/// Calls `f` with every strictly increasing `k`-subset of `ids`
/// (which must be strictly sorted). Used at build time to mark the
/// combinations realized by each object's document.
pub fn for_each_k_subset(ids: &[u32], k: usize, f: &mut impl FnMut(&[u32])) {
    debug_assert!(ids.windows(2).all(|w| w[0] < w[1]));
    if ids.len() < k || k == 0 {
        if k == 0 {
            f(&[]);
        }
        return;
    }
    let mut buf = vec![0u32; k];
    subsets_rec(ids, k, 0, 0, &mut buf, f);
}

fn subsets_rec(
    ids: &[u32],
    k: usize,
    start: usize,
    depth: usize,
    buf: &mut Vec<u32>,
    f: &mut impl FnMut(&[u32]),
) {
    if depth == k {
        f(buf);
        return;
    }
    // Prune: not enough ids left to fill the remaining slots.
    let remaining = k - depth;
    for i in start..=ids.len().saturating_sub(remaining) {
        buf[depth] = ids[i];
        subsets_rec(ids, k, i + 1, depth + 1, buf, f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_roundtrip() {
        let mut t = ComboTable::new(5, 2);
        t.set(&[1, 3]);
        t.set(&[0, 4]);
        assert!(t.get(&[1, 3]));
        assert!(t.get(&[0, 4]));
        assert!(!t.get(&[1, 4]));
        assert!(!t.get(&[0, 1]));
    }

    #[test]
    fn distinct_tuples_distinct_cells() {
        let l = 6;
        let k = 3;
        let mut t = ComboTable::new(l, k);
        let mut all: Vec<Vec<u32>> = Vec::new();
        let ids: Vec<u32> = (0..l as u32).collect();
        for_each_k_subset(&ids, k, &mut |s| all.push(s.to_vec()));
        assert_eq!(all.len(), 20); // C(6,3)
        for (i, s) in all.iter().enumerate() {
            t.set(s);
            // All tuples set so far are readable, later ones are not.
            for (j, s2) in all.iter().enumerate() {
                assert_eq!(t.get(s2), j <= i, "after setting {i}, tuple {j}");
            }
        }
    }

    #[test]
    fn k_equals_one() {
        let mut t = ComboTable::new(3, 1);
        t.set(&[2]);
        assert!(t.get(&[2]));
        assert!(!t.get(&[0]));
    }

    #[test]
    fn subset_enumeration_counts() {
        let ids: Vec<u32> = vec![2, 5, 7, 11];
        let mut n = 0;
        for_each_k_subset(&ids, 2, &mut |s| {
            assert!(s[0] < s[1]);
            n += 1;
        });
        assert_eq!(n, 6);
        let mut n = 0;
        for_each_k_subset(&ids, 4, &mut |_| n += 1);
        assert_eq!(n, 1);
        let mut n = 0;
        for_each_k_subset(&ids, 5, &mut |_| n += 1);
        assert_eq!(n, 0);
    }

    #[test]
    #[should_panic(expected = "at least k")]
    fn too_few_large_rejected() {
        let _ = ComboTable::new(1, 2);
    }
}
