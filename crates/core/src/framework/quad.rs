//! A midpoint quadtree partitioner — a third instantiation of Step 1.
//!
//! §3.1 characterizes the indexes the framework applies to purely
//! structurally (space-partitioning trees); the kd-tree and the
//! partition tree are the two the paper develops. The quadtree also
//! fits the mold and is popular in the spatial-keyword systems
//! literature (e.g. the inverted linear quadtree the paper cites), so
//! it makes a natural generality check *and* an ablation point: unlike
//! the weighted-median kd split, midpoint splits give no weight-balance
//! guarantee, so skewed data can degrade depth — exactly the trade
//! practitioners accept for cheaper construction and cache-regular
//! cells.

use skq_geom::{Point, Rect};

use super::partitioner::{Partitioner, SplitOutcome};

/// Depth cap: beyond this the cells are smaller than f64 resolution on
/// any realistic extent, and the framework falls back to leaf scans.
const MAX_DEPTH: usize = 48;

/// Midpoint quadtree splits (2D) with rectangle cells.
#[derive(Debug)]
pub struct QuadPartitioner {
    points: Vec<Point>,
    weights: Vec<u64>,
    /// Root bounding box of the data (the paper's root cell is all of
    /// `R²`; a bounding box is equivalent for point data and makes
    /// midpoints well-defined).
    bbox: Rect,
}

impl QuadPartitioner {
    /// Creates a partitioner over 2D points with verbose weights.
    ///
    /// # Panics
    ///
    /// Panics on empty input, non-2D points, mismatched lengths, or
    /// zero weights.
    pub fn new(points: Vec<Point>, weights: Vec<u64>) -> Self {
        assert!(!points.is_empty(), "quadtree needs points");
        assert!(points.iter().all(|p| p.dim() == 2), "quadtree cells are 2D");
        assert_eq!(points.len(), weights.len());
        assert!(weights.iter().all(|&w| w > 0));
        let mut lo = [f64::INFINITY; 2];
        let mut hi = [f64::NEG_INFINITY; 2];
        for p in &points {
            for d in 0..2 {
                lo[d] = lo[d].min(p.get(d));
                hi[d] = hi[d].max(p.get(d));
            }
        }
        // Pad so no point sits exactly on the root boundary midlines in
        // trivial ways and degenerate zero-extent boxes still split.
        let pad = ((hi[0] - lo[0]) + (hi[1] - lo[1])).max(1.0) * 0.01;
        let bbox = Rect::new(&[lo[0] - pad, lo[1] - pad], &[hi[0] + pad, hi[1] + pad]);
        Self {
            points,
            weights,
            bbox,
        }
    }
}

impl Partitioner for QuadPartitioner {
    type Cell = Rect;

    fn root_cell(&self) -> Rect {
        self.bbox
    }

    fn split(&self, cell: &Rect, objects: &[u32], depth: usize) -> Option<SplitOutcome<Rect>> {
        if objects.len() < 2 || depth >= MAX_DEPTH {
            return None;
        }
        let mx = 0.5 * (cell.lo(0) + cell.hi(0));
        let my = 0.5 * (cell.lo(1) + cell.hi(1));
        if !(cell.lo(0) < mx && mx < cell.hi(0) && cell.lo(1) < my && my < cell.hi(1)) {
            return None; // cell too thin to split further
        }

        // Quadrants are closed; objects exactly on a midline go to the
        // lower-coordinate side (their closed cell contains them), so no
        // pivots are needed — the quadtree variant of the boundary rule.
        let mut quads: [Vec<u32>; 4] = Default::default();
        for &o in objects {
            let p = &self.points[o as usize];
            let qx = usize::from(p.get(0) > mx);
            let qy = usize::from(p.get(1) > my);
            quads[qy * 2 + qx].push(o);
        }
        if quads.iter().filter(|q| !q.is_empty()).count() < 2 {
            // No progress (all points in one quadrant): recurse on the
            // shrunken cell rather than degrade to a linked list of
            // single-child nodes — returning that one child with its
            // quadrant cell keeps the geometry tight.
            let (idx, objs) = quads
                .iter_mut()
                .enumerate()
                .find(|(_, q)| !q.is_empty())
                .expect("objects is non-empty");
            let child_cell = quadrant_cell(cell, mx, my, idx);
            return Some(SplitOutcome {
                pivots: Vec::new(),
                children: vec![(child_cell, std::mem::take(objs))],
            });
        }

        let children = quads
            .into_iter()
            .enumerate()
            .filter(|(_, q)| !q.is_empty())
            .map(|(idx, q)| (quadrant_cell(cell, mx, my, idx), q))
            .collect();
        Some(SplitOutcome {
            pivots: Vec::new(),
            children,
        })
    }

    fn weight(&self, obj: u32) -> u64 {
        self.weights[obj as usize]
    }

    fn cell_nested(parent: &Rect, child: &Rect) -> Option<bool> {
        Some(
            parent.dim() == child.dim()
                && (0..parent.dim())
                    .all(|i| parent.lo(i) <= child.lo(i) && child.hi(i) <= parent.hi(i)),
        )
    }
}

fn quadrant_cell(cell: &Rect, mx: f64, my: f64, idx: usize) -> Rect {
    let (qx, qy) = (idx % 2, idx / 2);
    let lo = [
        if qx == 0 { cell.lo(0) } else { mx },
        if qy == 0 { cell.lo(1) } else { my },
    ];
    let hi = [
        if qx == 0 { mx } else { cell.hi(0) },
        if qy == 0 { my } else { cell.hi(1) },
    ];
    Rect::new(&lo, &hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    #[test]
    fn splits_into_quadrants() {
        let points = vec![
            Point::new2(0.0, 0.0),
            Point::new2(10.0, 0.0),
            Point::new2(0.0, 10.0),
            Point::new2(10.0, 10.0),
        ];
        let p = QuadPartitioner::new(points.clone(), vec![1; 4]);
        let out = p.split(&p.root_cell(), &[0, 1, 2, 3], 0).unwrap();
        assert_eq!(out.children.len(), 4);
        assert!(out.pivots.is_empty());
        for (cell, objs) in &out.children {
            assert_eq!(objs.len(), 1);
            let pt = &points[objs[0] as usize];
            assert!(cell.contains(pt));
        }
    }

    #[test]
    fn skewed_cluster_makes_progress() {
        // All points in one tiny corner: the split must still shrink the
        // cell each level and eventually separate them.
        let mut rng = StdRng::seed_from_u64(1);
        let points: Vec<Point> = (0..20)
            .map(|_| Point::new2(rng.gen_range(0.0..1e-3), rng.gen_range(0.0..1e-3)))
            .collect();
        let p = QuadPartitioner::new(points, vec![1; 20]);
        let objs: Vec<u32> = (0..20).collect();
        let mut cell = p.root_cell();
        let mut current = objs;
        for depth in 0..MAX_DEPTH {
            match p.split(&cell, &current, depth) {
                None => break,
                Some(out) => {
                    // Follow the heaviest child.
                    let (c, o) = out
                        .children
                        .into_iter()
                        .max_by_key(|(_, o)| o.len())
                        .unwrap();
                    assert!(c.hi(0) - c.lo(0) < cell.hi(0) - cell.lo(0) + 1e-12);
                    cell = c;
                    current = o;
                    if current.len() <= 1 {
                        break;
                    }
                }
            }
        }
        assert!(current.len() < 20, "no separation achieved");
    }

    #[test]
    fn identical_points_terminate() {
        let points = vec![Point::new2(5.0, 5.0); 10];
        let p = QuadPartitioner::new(points, vec![1; 10]);
        let objs: Vec<u32> = (0..10).collect();
        // Depth cap guarantees this returns None eventually.
        let out = p.split(&p.root_cell(), &objs, MAX_DEPTH);
        assert!(out.is_none());
    }

    #[test]
    fn midline_points_assigned_to_containing_cells() {
        // A point exactly on the cell's midline must land in a child
        // whose closed cell contains it (the boundary rule).
        let points = vec![
            Point::new2(5.0, 5.0), // exactly on both midlines of the cell below
            Point::new2(0.0, 0.0),
            Point::new2(10.0, 10.0),
        ];
        let p = QuadPartitioner::new(points.clone(), vec![1; 3]);
        let cell = Rect::new(&[0.0, 0.0], &[10.0, 10.0]);
        let out = p.split(&cell, &[0, 1, 2], 0).unwrap();
        let mut seen = 0;
        for (c, objs) in &out.children {
            for &o in objs {
                assert!(
                    c.contains(&points[o as usize]),
                    "object {o} outside its cell"
                );
                seen += 1;
            }
        }
        assert_eq!(seen + out.pivots.len(), 3);
    }
}
