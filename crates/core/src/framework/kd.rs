//! The kd-tree partitioner (§3.1–§3.2).
//!
//! Splits alternate axes by level; the split coordinate is the *weighted
//! median* of the active objects (weight = `|e.Doc|`), which builds the
//! kd-tree over the verbose set `P` of §3.2 without materializing it.
//! Objects lying exactly on the split hyperplane are the node's pivot
//! set (they are "on the boundary of `Δ_v1` or `Δ_v2`"); ties in the
//! median selection are broken lexicographically by object id, the
//! implementation counterpart of the paper's rank-space Step 4.

use skq_geom::{Point, Rect};

use super::partitioner::{Partitioner, SplitOutcome};

/// Weighted kd-tree splits with rectangle cells.
#[derive(Debug)]
pub struct KdPartitioner {
    points: Vec<Point>,
    weights: Vec<u64>,
    dim: usize,
}

impl KdPartitioner {
    /// Creates a partitioner over `points` with verbose weights
    /// (`weights[i] = |docs[i]|`).
    ///
    /// # Panics
    ///
    /// Panics on empty input, mismatched lengths, inconsistent
    /// dimensions, or zero weights.
    pub fn new(points: Vec<Point>, weights: Vec<u64>) -> Self {
        assert!(!points.is_empty(), "kd partitioner needs points");
        assert_eq!(points.len(), weights.len());
        let dim = points[0].dim();
        assert!(points.iter().all(|p| p.dim() == dim));
        assert!(weights.iter().all(|&w| w > 0), "documents are non-empty");
        Self {
            points,
            weights,
            dim,
        }
    }

    /// The indexed points.
    pub fn points(&self) -> &[Point] {
        &self.points
    }

    /// The point of object `i`.
    pub fn point(&self, i: u32) -> &Point {
        &self.points[i as usize]
    }

    /// The dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The per-object weights (exposed for the snapshot encoder).
    pub fn weights(&self) -> &[u64] {
        &self.weights
    }
}

impl Partitioner for KdPartitioner {
    type Cell = Rect;

    fn root_cell(&self) -> Rect {
        Rect::full(self.dim)
    }

    fn split(&self, cell: &Rect, objects: &[u32], depth: usize) -> Option<SplitOutcome<Rect>> {
        if objects.len() < 2 {
            return None;
        }
        // Prefer the level's axis; if every object sits on the split
        // hyperplane there, fall through the remaining axes (degenerate
        // inputs such as duplicated points).
        (0..self.dim).find_map(|alt| self.try_axis(cell, objects, (depth + alt) % self.dim))
    }

    fn weight(&self, obj: u32) -> u64 {
        self.weights[obj as usize]
    }

    fn cell_nested(parent: &Rect, child: &Rect) -> Option<bool> {
        Some(
            parent.dim() == child.dim()
                && (0..parent.dim())
                    .all(|i| parent.lo(i) <= child.lo(i) && child.hi(i) <= parent.hi(i)),
        )
    }
}

impl KdPartitioner {
    fn try_axis(&self, cell: &Rect, objects: &[u32], axis: usize) -> Option<SplitOutcome<Rect>> {
        let mut order: Vec<u32> = objects.to_vec();
        order.sort_unstable_by(|&a, &b| {
            self.points[a as usize]
                .get(axis)
                .total_cmp(&self.points[b as usize].get(axis))
                .then(a.cmp(&b))
        });

        // Weighted median: the minimal prefix reaching half the weight.
        let total: u64 = order.iter().map(|&o| self.weights[o as usize]).sum();
        let mut cum = 0u64;
        let mut median_pos = 0usize;
        for (i, &o) in order.iter().enumerate() {
            cum += self.weights[o as usize];
            if 2 * cum >= total {
                median_pos = i;
                break;
            }
        }
        let split_coord = self.points[order[median_pos] as usize].get(axis);

        // Pivot set: every object on the split hyperplane (§3.2 — the
        // objects on the child-cell boundary). In rank space this is a
        // single object; with raw duplicated coordinates it may be more.
        let mut pivots = Vec::new();
        let mut left = Vec::new();
        let mut right = Vec::new();
        for &o in &order {
            let c = self.points[o as usize].get(axis);
            if c < split_coord {
                left.push(o);
            } else if c > split_coord {
                right.push(o);
            } else {
                pivots.push(o);
            }
        }
        if left.is_empty() && right.is_empty() {
            return None; // everything on the hyperplane — try another axis
        }

        let (lcell, rcell) = cell.split(axis, split_coord);
        let mut children = Vec::with_capacity(2);
        if !left.is_empty() {
            children.push((lcell, left));
        }
        if !right.is_empty() {
            children.push((rcell, right));
        }
        Some(SplitOutcome { pivots, children })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pts(raw: &[(f64, f64)]) -> Vec<Point> {
        raw.iter().map(|&(x, y)| Point::new2(x, y)).collect()
    }

    #[test]
    fn split_balances_weight() {
        let points = pts(&[(0.0, 0.0), (1.0, 1.0), (2.0, 2.0), (3.0, 3.0), (4.0, 4.0)]);
        let weights = vec![1, 1, 1, 1, 1];
        let p = KdPartitioner::new(points, weights);
        let out = p
            .split(&p.root_cell(), &[0, 1, 2, 3, 4], 0)
            .expect("splittable");
        // Median x = 2 → pivot {2}, left {0,1}, right {3,4}.
        assert_eq!(out.pivots, vec![2]);
        assert_eq!(out.children.len(), 2);
        assert_eq!(out.children[0].1, vec![0, 1]);
        assert_eq!(out.children[1].1, vec![3, 4]);
        // Cells share the boundary x = 2.
        assert_eq!(out.children[0].0.hi(0), 2.0);
        assert_eq!(out.children[1].0.lo(0), 2.0);
    }

    #[test]
    fn heavy_object_respects_weighted_median() {
        // Object 3 carries most of the verbose weight; the median must
        // land on or before it so no child exceeds half the weight.
        let points = pts(&[(0.0, 0.0), (1.0, 0.0), (2.0, 0.0), (3.0, 0.0)]);
        let weights = vec![1, 1, 1, 10];
        let p = KdPartitioner::new(points.clone(), weights.clone());
        let out = p.split(&p.root_cell(), &[0, 1, 2, 3], 0).unwrap();
        let total: u64 = weights.iter().sum();
        for (_, objs) in &out.children {
            let w: u64 = objs.iter().map(|&o| weights[o as usize]).sum();
            assert!(2 * w <= total, "child weight {w} of {total}");
        }
    }

    #[test]
    fn duplicate_axis_coordinates_become_pivots() {
        let points = pts(&[(1.0, 0.0), (1.0, 1.0), (1.0, 2.0), (2.0, 3.0)]);
        let p = KdPartitioner::new(points, vec![1; 4]);
        let out = p.split(&p.root_cell(), &[0, 1, 2, 3], 0).unwrap();
        // Median x = 1 → the three x=1 objects are boundary pivots.
        assert_eq!(out.pivots, vec![0, 1, 2]);
        assert_eq!(out.children.len(), 1);
        assert_eq!(out.children[0].1, vec![3]);
    }

    #[test]
    fn fully_duplicated_points_fall_back_to_other_axis() {
        // All x equal; the y axis still separates.
        let points = pts(&[(1.0, 0.0), (1.0, 1.0), (1.0, 2.0)]);
        let p = KdPartitioner::new(points, vec![1; 3]);
        let out = p.split(&p.root_cell(), &[0, 1, 2], 0).unwrap();
        assert!(!out.children.is_empty());
    }

    #[test]
    fn identical_points_unsplittable() {
        let points = pts(&[(1.0, 1.0), (1.0, 1.0), (1.0, 1.0)]);
        let p = KdPartitioner::new(points, vec![1; 3]);
        assert!(p.split(&p.root_cell(), &[0, 1, 2], 0).is_none());
    }

    #[test]
    fn alternating_axes() {
        let points = pts(&[(0.0, 0.0), (1.0, 1.0), (2.0, 2.0)]);
        let p = KdPartitioner::new(points, vec![1; 3]);
        let out = p.split(&p.root_cell(), &[0, 1, 2], 1).unwrap();
        // Depth 1 splits on y.
        assert_eq!(out.children[0].0.hi(1), 1.0);
        assert!(out.children[0].0.hi(0).is_infinite());
    }
}
