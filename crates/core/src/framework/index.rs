//! The transformed index (Steps 2–3 of the framework, §3.2–§3.3).

use std::ops::ControlFlow;

use skq_geom::{Rect, Region};
use skq_invidx::{Document, Keyword};

use crate::error::SkqError;
use crate::failpoints;
use crate::fastmap::FxHashMap;
use crate::persist::{self, Persist, SCHEMA_VERSION};
use crate::sink::{LimitSink, ResultSink};
use crate::stats::QueryStats;

use super::combo::{for_each_k_subset, ComboTable};
use super::kd::KdPartitioner;
use super::partitioner::{Partitioner, SplitOutcome};

/// Build-time knobs.
#[derive(Clone, Copy, Debug)]
pub struct FrameworkConfig {
    /// Nodes whose verbose weight `N_u` is at most this become leaves
    /// whose pivot set is their whole active set. The paper recurses to
    /// single points; a small constant cap only changes constants while
    /// keeping node counts (and build time) reasonable.
    pub leaf_weight: u64,
}

impl Default for FrameworkConfig {
    fn default() -> Self {
        Self { leaf_weight: 24 }
    }
}

struct Node<C> {
    cell: C,
    level: u32,
    weight: u64,
    children: Vec<u32>,
    /// Objects stored at this node (boundary objects for internal
    /// nodes; the whole active set for leaves).
    pivots: Vec<u32>,
    /// Large keywords at this node → local id in `0..L` (ids follow
    /// ascending keyword order).
    large: FxHashMap<Keyword, u32>,
    /// One emptiness table per child (parallel to `children`); empty
    /// when `L < k` (then no `k` distinct keywords can all be large).
    combos: Vec<ComboTable>,
    /// Materialized `D_u^act(w)` for keywords small at this node but
    /// large at all proper ancestors. Lists exclude this node's pivots
    /// (those are reported by the visit itself), so reporting never
    /// duplicates. A keyword that qualifies but has an empty list is
    /// simply absent.
    materialized: FxHashMap<Keyword, Vec<u32>>,
}

/// A keyword-transformed space-partitioning index (§3.2).
///
/// Generic over the geometry via [`Partitioner`]; the query side is
/// generic over the query shape via a cell-classification closure and a
/// point-acceptance closure, so a single tree answers rectangles,
/// halfspace conjunctions, simplices, or lifted balls.
pub struct TransformedIndex<P: Partitioner> {
    partitioner: P,
    docs: Vec<Document>,
    nodes: Vec<Node<P::Cell>>,
    k: usize,
    config: FrameworkConfig,
    total_weight: u64,
}

impl<P: Partitioner> TransformedIndex<P> {
    /// Builds the index for exactly-`k`-keyword queries.
    ///
    /// `docs[i]` is the document of object `i`; the partitioner owns the
    /// matching coordinates. `N = Σ |docs[i]|` is the paper's input
    /// size.
    ///
    /// # Panics
    ///
    /// Panics with the [`try_build`](Self::try_build) error message if
    /// `k < 2` (the paper fixes `k ≥ 2`) or `docs` is empty.
    pub fn build(partitioner: P, docs: Vec<Document>, k: usize, config: FrameworkConfig) -> Self {
        Self::try_build(partitioner, docs, k, config).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`build`](Self::build): validates the parameters and
    /// returns `Err` instead of panicking.
    ///
    /// # Errors
    ///
    /// `SkqError::InvalidQuery` if `k < 2` or `k > 16`;
    /// `SkqError::InvalidDataset` if `docs` is empty. (With the
    /// `failpoints` feature, an armed `framework::build` site also
    /// fails here.)
    pub fn try_build(
        partitioner: P,
        docs: Vec<Document>,
        k: usize,
        config: FrameworkConfig,
    ) -> Result<Self, SkqError> {
        if k < 2 {
            return Err(SkqError::InvalidQuery(
                "the framework requires k >= 2 query keywords".into(),
            ));
        }
        if k > 16 {
            return Err(SkqError::InvalidQuery(
                "k > 16 keywords is unsupported (and pointless: the bound degrades to O(N))".into(),
            ));
        }
        if docs.is_empty() {
            return Err(SkqError::InvalidDataset(
                "cannot index an empty dataset".into(),
            ));
        }
        failpoints::check("framework::build")?;
        let all: Vec<u32> = (0..docs.len() as u32).collect();
        let total_weight = partitioner.total_weight(&all);
        let mut index = Self {
            partitioner,
            docs,
            nodes: Vec::new(),
            k,
            config,
            total_weight,
        };
        let root_cell = index.partitioner.root_cell();
        // At the root every keyword is trivially "large at all (zero)
        // proper ancestors", i.e. a materialization candidate.
        let candidates: Vec<Keyword> = {
            let mut ws: Vec<Keyword> = index
                .docs
                .iter()
                .flat_map(|d| d.keywords().iter().copied())
                .collect();
            ws.sort_unstable();
            ws.dedup();
            ws
        };
        index.build_node(root_cell, all, 0, &candidates);
        Ok(index)
    }

    /// Recursively builds the subtree over `objects`; returns the node id.
    fn build_node(
        &mut self,
        cell: P::Cell,
        objects: Vec<u32>,
        level: u32,
        candidates: &[Keyword],
    ) -> u32 {
        let weight = self.partitioner.total_weight(&objects);
        let id = self.nodes.len() as u32;
        self.nodes.push(Node {
            cell,
            level,
            weight,
            children: Vec::new(),
            pivots: Vec::new(),
            large: FxHashMap::default(),
            combos: Vec::new(),
            materialized: FxHashMap::default(),
        });

        // Leaf: store the whole active set as pivots; a visit scans them
        // all, so no keyword machinery is needed.
        let outcome = if weight <= self.config.leaf_weight {
            None
        } else {
            let cell_ref = self.nodes[id as usize].cell.clone();
            self.partitioner.split(&cell_ref, &objects, level as usize)
        };
        let Some(SplitOutcome { pivots, children }) = outcome else {
            self.nodes[id as usize].pivots = objects;
            return id;
        };
        if children.is_empty() {
            // The split degenerated to "everything is a boundary object".
            self.nodes[id as usize].pivots = pivots;
            return id;
        }

        // --- Large/small classification at this node (§3.2). ---
        // Count |D_u^act(w)| for the materialization candidates (keywords
        // large at every proper ancestor — others can never be needed
        // here, because a query only descends while all its keywords
        // stay large).
        let tau = (weight as f64).powf(1.0 - 1.0 / self.k as f64);
        let mut counts: FxHashMap<Keyword, u64> = FxHashMap::default();
        for &o in pivots.iter().chain(children.iter().flat_map(|(_, c)| c)) {
            for &w in self.docs[o as usize].keywords() {
                *counts.entry(w).or_insert(0) += 1;
            }
        }
        let mut large_list: Vec<Keyword> = Vec::new();
        let mut small_set: Vec<Keyword> = Vec::new();
        for &w in candidates {
            match counts.get(&w) {
                Some(&c) if (c as f64) >= tau => large_list.push(w),
                Some(_) => small_set.push(w),
                None => {} // empty list: absence means empty at query time
            }
        }
        debug_assert!(
            (large_list.len() as f64) <= (weight as f64).powf(1.0 / self.k as f64) + 1.0,
            "more than N_u^(1/k) large keywords"
        );
        let large: FxHashMap<Keyword, u32> = large_list
            .iter()
            .enumerate()
            .map(|(i, &w)| (w, i as u32))
            .collect();

        // --- Materialized lists: small here, large at all ancestors. ---
        // Built over the children's active sets only (pivots are scanned
        // by every visit anyway; excluding them avoids double reports).
        let mut materialized: FxHashMap<Keyword, Vec<u32>> = FxHashMap::default();
        if !small_set.is_empty() {
            small_set.sort_unstable();
            for (_, child_objs) in &children {
                for &o in child_objs {
                    for &w in self.docs[o as usize].keywords() {
                        if small_set.binary_search(&w).is_ok() {
                            materialized.entry(w).or_default().push(o);
                        }
                    }
                }
            }
        }

        // --- Per-child emptiness tables over large-keyword k-tuples. ---
        let l = large_list.len();
        let mut combos: Vec<ComboTable> = Vec::new();
        if l >= self.k {
            for (_, child_objs) in &children {
                let mut table = ComboTable::new(l, self.k);
                let mut local: Vec<u32> = Vec::new();
                for &o in child_objs {
                    local.clear();
                    for &w in self.docs[o as usize].keywords() {
                        if let Some(&lid) = large.get(&w) {
                            local.push(lid);
                        }
                    }
                    local.sort_unstable();
                    for_each_k_subset(&local, self.k, &mut |subset| table.set(subset));
                }
                combos.push(table);
            }
        }

        {
            let node = &mut self.nodes[id as usize];
            node.pivots = pivots;
            node.large = large;
            node.combos = combos;
            node.materialized = materialized;
        }

        // --- Recurse; children inherit the large keywords as candidates.
        let child_ids: Vec<u32> = children
            .into_iter()
            .map(|(ccell, cobjs)| self.build_node(ccell, cobjs, level + 1, &large_list))
            .collect();
        self.nodes[id as usize].children = child_ids;
        id
    }

    /// The fixed number of query keywords `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The number of tree nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// The tree height (max level).
    pub fn height(&self) -> usize {
        self.nodes.iter().map(|n| n.level).max().unwrap_or(0) as usize
    }

    /// Total verbose weight `N`.
    pub fn input_size(&self) -> u64 {
        self.total_weight
    }

    /// The partitioner (and through it, the indexed coordinates).
    pub fn partitioner(&self) -> &P {
        &self.partitioner
    }

    /// Index space in 64-bit words: tree skeleton, pivot ids, large
    /// tables, emptiness bit arrays, and materialized lists. Cells are
    /// charged a constant via `cell_words`.
    pub fn space_words(&self, cell_words: usize) -> usize {
        let mut total = 0usize;
        for n in &self.nodes {
            total += 6 + cell_words; // fixed per-node fields
            total += n.children.len();
            total += n.pivots.len();
            total += n.large.len() * 2;
            total += n.combos.iter().map(ComboTable::space_words).sum::<usize>();
            total += n.materialized.values().map(|v| v.len() + 2).sum::<usize>();
        }
        total
    }

    /// Answers a `k`-keyword query, collecting into `out` with a limit.
    ///
    /// * `keywords` — exactly `k` distinct keywords;
    /// * `classify` — cell-vs-query classification (conservative allowed);
    /// * `accept` — exact point-in-query test by object id;
    /// * `limit` — stop after this many results (used by the
    ///   threshold/emptiness queries of Corollaries 4 and 7; pass
    ///   `usize::MAX` to report everything);
    /// * `out` — results are appended (object ids, no duplicates);
    /// * `stats` — execution counters.
    ///
    /// Thin wrapper over [`query_sink`](Self::query_sink) with a
    /// [`LimitSink`] around `out`.
    ///
    /// # Panics
    ///
    /// Panics if `keywords` does not contain exactly `k` distinct
    /// values.
    pub fn query(
        &self,
        keywords: &[Keyword],
        classify: &dyn Fn(&P::Cell) -> Region,
        accept: &dyn Fn(u32) -> bool,
        limit: usize,
        out: &mut Vec<u32>,
        stats: &mut QueryStats,
    ) {
        let mut sink = LimitSink::new(&mut *out, limit);
        let _ = self.query_sink(keywords, classify, accept, &mut sink, stats);
        stats.emitted += sink.emitted();
        stats.truncated |= sink.truncated();
    }

    /// Streaming form of [`query`](Self::query): every matching object
    /// is emitted into `sink`, which may stop the traversal early (the
    /// returned `ControlFlow::Break` reports that it did).
    ///
    /// The traversal records `reported` (offers to the sink) in `stats`
    /// but leaves `emitted`/`truncated` for the sink's owner, so a sink
    /// threaded through several indexes is accounted exactly once.
    ///
    /// # Panics
    ///
    /// Panics if `keywords` does not contain exactly `k` distinct
    /// values.
    pub fn query_sink<S: ResultSink>(
        &self,
        keywords: &[Keyword],
        classify: &dyn Fn(&P::Cell) -> Region,
        accept: &dyn Fn(u32) -> bool,
        sink: &mut S,
        stats: &mut QueryStats,
    ) -> ControlFlow<()> {
        let mut kws = keywords.to_vec();
        kws.sort_unstable();
        kws.dedup();
        assert_eq!(
            kws.len(),
            self.k,
            "the index was built for exactly {} distinct keywords",
            self.k
        );
        if sink.is_full() {
            return ControlFlow::Break(());
        }
        let root_region = classify(&self.nodes[0].cell);
        if root_region == Region::Disjoint {
            return ControlFlow::Continue(());
        }
        self.visit(0, root_region, &kws, classify, accept, sink, stats)
    }

    // The recursion threads every traversal input (region, keyword
    // set, classify/accept callbacks, sink, stats) explicitly instead
    // of a context struct rebuilt per node.
    #[allow(clippy::too_many_arguments)]
    fn visit<S: ResultSink>(
        &self,
        node_id: u32,
        region: Region,
        kws: &[Keyword],
        classify: &dyn Fn(&P::Cell) -> Region,
        accept: &dyn Fn(u32) -> bool,
        sink: &mut S,
        stats: &mut QueryStats,
    ) -> ControlFlow<()> {
        let node = &self.nodes[node_id as usize];
        stats.nodes_visited += 1;
        match region {
            Region::Covered => stats.covered_nodes += 1,
            Region::Crossing => {
                stats.crossing_nodes += 1;
                QueryStats::bump(&mut stats.crossing_by_level, node.level as usize);
            }
            Region::Disjoint => unreachable!("disjoint nodes are never visited"),
        }

        // Scan the pivot set (every visit does; §3.3 "to visit a node").
        for &e in &node.pivots {
            stats.pivot_scans += 1;
            if self.docs[e as usize].contains_all(kws) && accept(e) {
                stats.reported += 1;
                sink.emit(e)?;
            }
        }
        if node.children.is_empty() {
            return ControlFlow::Continue(());
        }

        // Are all k keywords large at this node?
        let mut local = [0u32; 16];
        debug_assert!(self.k <= 16);
        let mut all_large = true;
        for (slot, &w) in local.iter_mut().zip(kws) {
            match node.large.get(&w) {
                Some(&lid) => *slot = lid,
                None => {
                    all_large = false;
                    break;
                }
            }
        }

        if all_large {
            let ids = &mut local[..self.k];
            ids.sort_unstable();
            debug_assert!(
                !node.combos.is_empty(),
                "k distinct large keywords imply L >= k"
            );
            for (ci, &child) in node.children.iter().enumerate() {
                if !node.combos[ci].get(ids) {
                    continue; // ⋂ D_v^act(w_i) = ∅ — skip the subtree
                }
                let child_region = match region {
                    Region::Covered => Region::Covered,
                    _ => classify(&self.nodes[child as usize].cell),
                };
                if child_region != Region::Disjoint {
                    self.visit(child, child_region, kws, classify, accept, sink, stats)?;
                }
            }
        } else {
            // Small path: some keyword is small here, hence materialized
            // here (it was large at every ancestor, or we would not have
            // descended). Scan the shortest such list.
            stats.small_path_nodes += 1;
            let list: &[u32] = kws
                .iter()
                .filter(|w| !node.large.contains_key(w))
                .map(|w| node.materialized.get(w).map(Vec::as_slice).unwrap_or(&[]))
                .min_by_key(|l| l.len())
                .unwrap_or(&[]);
            for &e in list {
                stats.list_scans += 1;
                if self.docs[e as usize].contains_all(kws) && accept(e) {
                    stats.reported += 1;
                    sink.emit(e)?;
                }
            }
        }
        ControlFlow::Continue(())
    }

    /// Iterates over `(level, weight, num_pivots, num_large)` per node —
    /// diagnostics for the invariants the property tests assert.
    pub fn node_summaries(&self) -> impl Iterator<Item = (u32, u64, usize, usize)> + '_ {
        self.nodes
            .iter()
            .map(|n| (n.level, n.weight, n.pivots.len(), n.large.len()))
    }

    /// Verifies the structural invariants of §3.2; returns a violation
    /// description if any. Used by tests.
    pub fn check_invariants(&self) -> Result<(), String> {
        self.check_invariants_with(true)
    }

    /// Like [`check_invariants`](Self::check_invariants); pass
    /// `require_balance = false` for partitioners without a
    /// weight-halving guarantee (the midpoint quadtree).
    pub fn check_invariants_with(&self, require_balance: bool) -> Result<(), String> {
        for (i, n) in self.nodes.iter().enumerate() {
            // Large-keyword bound L ≤ N_u^(1/k) (+1 for float rounding).
            let cap = (n.weight as f64).powf(1.0 / self.k as f64) + 1.0;
            if n.large.len() as f64 > cap {
                return Err(format!(
                    "node {i}: {} large keywords exceeds N_u^(1/k) = {cap}",
                    n.large.len()
                ));
            }
            // Materialized lists must be shorter than the threshold.
            let tau = (n.weight as f64).powf(1.0 - 1.0 / self.k as f64);
            for (w, list) in &n.materialized {
                if list.len() as f64 >= tau + 1.0 {
                    return Err(format!(
                        "node {i}: materialized list for {w} has {} ≥ τ = {tau}",
                        list.len()
                    ));
                }
            }
            // Children carry at most half the weight (median-split
            // partitioners only).
            if require_balance {
                for &c in &n.children {
                    let cw = self.nodes[c as usize].weight;
                    if cw * 2 > n.weight {
                        return Err(format!(
                            "node {i}: child weight {cw} exceeds half of {}",
                            n.weight
                        ));
                    }
                }
            }
            // Combo tables parallel children when present.
            if !n.combos.is_empty() && n.combos.len() != n.children.len() {
                return Err(format!("node {i}: combo/children length mismatch"));
            }
        }
        Ok(())
    }
}

#[cfg(feature = "debug-invariants")]
impl<P: Partitioner> TransformedIndex<P> {
    /// Deep structural validation (DESIGN.md §12): re-derives the §3
    /// invariants from the built structure rather than trusting the
    /// build path's bookkeeping. Requires the weight-halving balance
    /// guarantee; use [`validate_with`](Self::validate_with) for
    /// partitioners without one.
    pub fn validate(&self) -> Result<(), crate::invariants::InvariantViolation> {
        self.validate_with(true)
    }

    /// Like [`validate`](Self::validate) with the weight-balance check
    /// made optional (the midpoint quadtree halves area, not weight).
    pub fn validate_with(
        &self,
        require_balance: bool,
    ) -> Result<(), crate::invariants::InvariantViolation> {
        use crate::invariants::InvariantViolation as V;
        // The §3.2 arithmetic invariants: large-keyword cap L ≤ N_u^(1/k),
        // materialized lists < τ, child weight ≤ half, combo parallelism.
        self.check_invariants_with(require_balance)
            .map_err(|d| V::new("framework::section3", d))?;
        let n = self.docs.len();

        // Tree shape: child ids in range, every non-root node the child
        // of exactly one parent, levels increasing by one, child cells
        // nested in their parent's (when the cell type can answer).
        let mut child_of = vec![false; self.nodes.len()];
        for (i, node) in self.nodes.iter().enumerate() {
            for &c in &node.children {
                let c = c as usize;
                if c >= self.nodes.len() {
                    return Err(V::new(
                        "framework::tree_shape",
                        format!("node {i} references child {c}, out of range"),
                    ));
                }
                if std::mem::replace(&mut child_of[c], true) {
                    return Err(V::new(
                        "framework::tree_shape",
                        format!("node {c} has two parents"),
                    ));
                }
                if self.nodes[c].level != node.level + 1 {
                    return Err(V::new(
                        "framework::tree_shape",
                        format!(
                            "child {c} at level {} under parent {i} at level {}",
                            self.nodes[c].level, node.level
                        ),
                    ));
                }
                if let Some(false) = P::cell_nested(&node.cell, &self.nodes[c].cell) {
                    return Err(V::new(
                        "framework::cell_nesting",
                        format!("cell of node {c} escapes its parent node {i}"),
                    ));
                }
            }
        }
        if let Some(i) = child_of.iter().skip(1).position(|&reached| !reached) {
            return Err(V::new(
                "framework::tree_shape",
                format!("node {} is unreachable from the root", i + 1),
            ));
        }

        // Pivot partition (§3.2): every object is stored at exactly one
        // node — boundary objects at internal nodes, the whole active
        // set at leaves.
        let mut owner: Vec<u32> = vec![u32::MAX; n];
        for (i, node) in self.nodes.iter().enumerate() {
            for &e in &node.pivots {
                if e as usize >= n {
                    return Err(V::new(
                        "framework::pivot_partition",
                        format!("node {i} stores object {e}, out of range"),
                    ));
                }
                if owner[e as usize] != u32::MAX {
                    return Err(V::new(
                        "framework::pivot_partition",
                        format!("object {e} stored at nodes {} and {i}", owner[e as usize]),
                    ));
                }
                owner[e as usize] = i as u32;
            }
        }
        if let Some(orphan) = owner.iter().position(|&o| o == u32::MAX) {
            return Err(V::new(
                "framework::pivot_partition",
                format!("object {orphan} stored at no node"),
            ));
        }

        // Materialized lists: in-range, duplicate-free ids whose
        // documents actually contain the listed keyword.
        for (i, node) in self.nodes.iter().enumerate() {
            for (&w, list) in &node.materialized {
                let mut sorted = list.clone();
                sorted.sort_unstable();
                if sorted.windows(2).any(|p| p[0] == p[1]) {
                    return Err(V::new(
                        "framework::materialized",
                        format!("node {i}: duplicate id in the list of keyword {w}"),
                    ));
                }
                for &e in list {
                    if e as usize >= n {
                        return Err(V::new(
                            "framework::materialized",
                            format!("node {i}: id {e} out of range in the list of keyword {w}"),
                        ));
                    }
                    if !self.docs[e as usize].contains_all(&[w]) {
                        return Err(V::new(
                            "framework::materialized",
                            format!(
                                "node {i}: object {e} listed for keyword {w} its document lacks"
                            ),
                        ));
                    }
                }
            }
        }
        Ok(())
    }
}

impl Persist for TransformedIndex<KdPartitioner> {
    fn to_pages(&self, w: &mut persist::PageWriter) -> Result<(), SkqError> {
        let points = self.partitioner.points();
        let dim = self.partitioner.dim();
        let n = points.len();
        let mut head = Vec::new();
        persist::put_uv(&mut head, self.k as u64);
        persist::put_uv(&mut head, self.config.leaf_weight);
        persist::put_uv(&mut head, self.total_weight);
        persist::put_uv(&mut head, n as u64);
        persist::put_uv(&mut head, dim as u64);
        persist::put_uv(&mut head, self.nodes.len() as u64);
        w.page(persist::kind::TREE_HEAD, SCHEMA_VERSION, head);
        persist::put_point_pages(w, persist::kind::TREE_POINTS, points, dim);
        let mut weights = Vec::with_capacity(n);
        for &wt in self.partitioner.weights() {
            persist::put_uv(&mut weights, wt);
        }
        w.page(persist::kind::TREE_WEIGHTS, SCHEMA_VERSION, weights);
        persist::put_doc_pages(w, persist::kind::TREE_DOCS, &self.docs);
        for chunk in self.nodes.chunks(NODES_PER_PAGE) {
            let mut buf = Vec::new();
            for node in chunk {
                encode_node(&mut buf, node, dim);
            }
            w.page(persist::kind::TREE_NODES, SCHEMA_VERSION, buf);
        }
        Ok(())
    }

    fn from_pages(r: &mut persist::PageReader<'_>) -> Result<Self, SkqError> {
        let section = "framework";
        let fail = |detail: String| SkqError::Corrupted {
            section: section.into(),
            detail,
        };
        let mut head = r.page(persist::kind::TREE_HEAD, SCHEMA_VERSION, section)?;
        let k = head.usizev()?;
        let leaf_weight = head.uv()?;
        let total_weight = head.uv()?;
        let n = head.usizev()?;
        let dim = head.usizev()?;
        let node_count = head.usizev()?;
        head.end()?;
        if !(2..=16).contains(&k) {
            return Err(fail(format!("k = {k} outside the supported 2..=16")));
        }
        if n == 0 {
            return Err(fail("tree indexes zero objects".into()));
        }
        if node_count == 0 {
            return Err(fail("tree has zero nodes".into()));
        }
        let points = persist::read_point_pages(r, persist::kind::TREE_POINTS, section, n, dim)?;
        for (i, p) in points.iter().enumerate() {
            for d in 0..dim {
                if !p.get(d).is_finite() {
                    return Err(fail(format!("point {i} has a non-finite coordinate")));
                }
            }
        }
        let mut wdec = r.page(persist::kind::TREE_WEIGHTS, SCHEMA_VERSION, section)?;
        let mut weights = Vec::with_capacity(n);
        for i in 0..n {
            let wt = wdec.uv()?;
            if wt == 0 {
                return Err(fail(format!("object {i} has zero weight")));
            }
            weights.push(wt);
        }
        wdec.end()?;
        let docs = persist::read_doc_pages(r, persist::kind::TREE_DOCS, section, n)?;
        let mut nodes = Vec::with_capacity(node_count.min(1 << 20));
        let mut remaining = node_count;
        while remaining > 0 {
            let mut d = r.page(persist::kind::TREE_NODES, SCHEMA_VERSION, section)?;
            let in_page = remaining.min(NODES_PER_PAGE);
            for _ in 0..in_page {
                let id = nodes.len();
                nodes.push(decode_node(&mut d, id, dim, k, n, node_count)?);
            }
            d.end()?;
            remaining -= in_page;
        }
        // `new` cannot panic here: points are non-empty with consistent
        // dimensionality by decoding, and every weight is positive.
        let partitioner = KdPartitioner::new(points, weights);
        Ok(Self {
            partitioner,
            docs,
            nodes,
            k,
            config: FrameworkConfig { leaf_weight },
            total_weight,
        })
    }
}

/// Nodes per `TREE_NODES` page.
const NODES_PER_PAGE: usize = 256;

/// Appends one arena node to a `TREE_NODES` payload. The `large` map
/// is stored as its ascending keyword list alone: local ids are
/// assigned by ascending-keyword enumeration at build time, so the
/// position in the list *is* the id.
fn encode_node(buf: &mut Vec<u8>, node: &Node<Rect>, dim: usize) {
    for i in 0..dim {
        persist::put_f64(buf, node.cell.lo(i));
    }
    for i in 0..dim {
        persist::put_f64(buf, node.cell.hi(i));
    }
    persist::put_uv(buf, u64::from(node.level));
    persist::put_uv(buf, node.weight);
    persist::put_uv(buf, node.children.len() as u64);
    for &c in &node.children {
        persist::put_uv(buf, u64::from(c));
    }
    persist::put_uv(buf, node.pivots.len() as u64);
    for &p in &node.pivots {
        persist::put_uv(buf, u64::from(p));
    }
    let mut large: Vec<(Keyword, u32)> = node.large.iter().map(|(&w, &id)| (w, id)).collect();
    large.sort_unstable();
    persist::put_uv(buf, large.len() as u64);
    for &(w, _) in &large {
        persist::put_uv(buf, u64::from(w));
    }
    persist::put_uv(buf, node.combos.len() as u64);
    for table in &node.combos {
        let (l, k, bits) = table.parts();
        persist::put_uv(buf, l as u64);
        persist::put_uv(buf, k as u64);
        for &word in bits {
            buf.extend_from_slice(&word.to_le_bytes());
        }
    }
    let mut mat: Vec<(Keyword, &Vec<u32>)> =
        node.materialized.iter().map(|(&w, v)| (w, v)).collect();
    mat.sort_unstable_by_key(|&(w, _)| w);
    persist::put_uv(buf, mat.len() as u64);
    for (w, list) in mat {
        persist::put_uv(buf, u64::from(w));
        persist::put_uv(buf, list.len() as u64);
        for &e in list {
            persist::put_uv(buf, u64::from(e));
        }
    }
}

/// Decodes one arena node, validating every field against the tree's
/// scalars so a checksum-passing but inconsistent file cannot put the
/// query path in a panicking state: cells are NaN-free with ordered
/// bounds, child ids point strictly forward (the arena is built
/// parent-before-child, which also rules out cycles), object ids are
/// in range, combo tables match the large-keyword count and `k`.
fn decode_node(
    d: &mut persist::Dec<'_>,
    id: usize,
    dim: usize,
    k: usize,
    n: usize,
    node_count: usize,
) -> Result<Node<Rect>, SkqError> {
    let fail = |detail: String| SkqError::Corrupted {
        section: "framework".into(),
        detail,
    };
    let mut lo = [0.0f64; skq_geom::MAX_DIM];
    let mut hi = [0.0f64; skq_geom::MAX_DIM];
    for c in lo.iter_mut().take(dim) {
        *c = d.f64()?;
    }
    for c in hi.iter_mut().take(dim) {
        *c = d.f64()?;
    }
    for i in 0..dim {
        if lo[i].is_nan() || hi[i].is_nan() || lo[i] > hi[i] {
            return Err(fail(format!("node {id}: malformed cell bounds on dim {i}")));
        }
    }
    let cell = Rect::new(&lo[..dim], &hi[..dim]);
    let level = d.u32v()?;
    let weight = d.uv()?;
    let num_children = d.len(1)?;
    let mut children = Vec::with_capacity(num_children);
    for _ in 0..num_children {
        let c = d.u32v()?;
        if c as usize >= node_count || c as usize <= id {
            return Err(fail(format!(
                "node {id}: child id {c} not strictly forward"
            )));
        }
        children.push(c);
    }
    let num_pivots = d.len(1)?;
    let mut pivots = Vec::with_capacity(num_pivots);
    for _ in 0..num_pivots {
        let p = d.u32v()?;
        if p as usize >= n {
            return Err(fail(format!("node {id}: pivot {p} out of range")));
        }
        pivots.push(p);
    }
    let num_large = d.len(1)?;
    let mut large = FxHashMap::default();
    let mut prev: Option<Keyword> = None;
    for lid in 0..num_large {
        let w = d.u32v()?;
        if prev.is_some_and(|p| p >= w) {
            return Err(fail(format!(
                "node {id}: large keywords out of order at {w}"
            )));
        }
        prev = Some(w);
        large.insert(w, lid as u32);
    }
    let num_combos = d.len(1)?;
    if num_combos != 0 && num_combos != children.len() {
        return Err(fail(format!(
            "node {id}: {num_combos} combo tables for {} children",
            children.len()
        )));
    }
    let mut combos = Vec::with_capacity(num_combos);
    for _ in 0..num_combos {
        let l = d.usizev()?;
        let tk = d.usizev()?;
        if l != num_large || tk != k {
            return Err(fail(format!(
                "node {id}: combo table over l={l} k={tk}, node has L={num_large} k={k}"
            )));
        }
        // `tk == k` is in 2..=16 here, so the cell count fits u128.
        let cells = (l as u128)
            .checked_pow(tk as u32)
            .filter(|&c| c <= 1 << 40)
            .ok_or_else(|| fail(format!("node {id}: combo table size overflows")))?;
        let words = (cells as usize).div_ceil(64);
        if d.remaining() < words * 8 {
            return Err(fail(format!("node {id}: combo table truncated")));
        }
        let mut bits = Vec::with_capacity(words);
        for _ in 0..words {
            bits.push(d.u64_raw()?);
        }
        let table =
            ComboTable::from_parts(l, tk, bits).map_err(|e| fail(format!("node {id}: {e}")))?;
        combos.push(table);
    }
    let num_mat = d.len(1)?;
    let mut materialized = FxHashMap::default();
    let mut prev_w: Option<Keyword> = None;
    for _ in 0..num_mat {
        let w = d.u32v()?;
        if prev_w.is_some_and(|p| p >= w) {
            return Err(fail(format!(
                "node {id}: materialized keywords out of order at {w}"
            )));
        }
        prev_w = Some(w);
        let len = d.len(1)?;
        let mut list = Vec::with_capacity(len);
        for _ in 0..len {
            let e = d.u32v()?;
            if e as usize >= n {
                return Err(fail(format!(
                    "node {id}: materialized id {e} out of range for keyword {w}"
                )));
            }
            list.push(e);
        }
        materialized.insert(w, list);
    }
    Ok(Node {
        cell,
        level,
        weight,
        children,
        pivots,
        large,
        combos,
        materialized,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framework::KdPartitioner;
    use skq_geom::Point;

    /// A 1D framework index over object ids — the minimal harness for
    /// exercising the large/small machinery directly.
    fn build_1d(
        docs: Vec<Vec<Keyword>>,
        k: usize,
        leaf_weight: u64,
    ) -> TransformedIndex<KdPartitioner> {
        let points: Vec<Point> = (0..docs.len()).map(|i| Point::new1(i as f64)).collect();
        let docs: Vec<Document> = docs.into_iter().map(Document::new).collect();
        let weights: Vec<u64> = docs.iter().map(|d| d.len() as u64).collect();
        TransformedIndex::build(
            KdPartitioner::new(points, weights),
            docs,
            k,
            FrameworkConfig { leaf_weight },
        )
    }

    fn run(tree: &TransformedIndex<KdPartitioner>, kws: &[Keyword], limit: usize) -> Vec<u32> {
        let mut out = Vec::new();
        let mut stats = QueryStats::new();
        tree.query(
            kws,
            &|_| Region::Covered,
            &|_| true,
            limit,
            &mut out,
            &mut stats,
        );
        out.sort_unstable();
        out
    }

    #[test]
    fn single_node_tree() {
        let tree = build_1d(vec![vec![0, 1], vec![0], vec![1]], 2, 1000);
        assert_eq!(tree.num_nodes(), 1);
        assert_eq!(run(&tree, &[0, 1], usize::MAX), vec![0]);
        assert_eq!(run(&tree, &[0, 1], 0), Vec::<u32>::new());
    }

    #[test]
    fn all_large_path_uses_combo_tables() {
        // Every object has both keywords → both keywords are large
        // everywhere; descent is steered purely by the bit tables.
        let docs: Vec<Vec<Keyword>> = (0..64).map(|_| vec![0, 1]).collect();
        let tree = build_1d(docs, 2, 4);
        assert!(tree.num_nodes() > 10);
        let got = run(&tree, &[0, 1], usize::MAX);
        assert_eq!(got, (0..64).collect::<Vec<u32>>());
    }

    #[test]
    fn small_path_scans_materialized_list() {
        // Keyword 9 appears in exactly 3 of 256 docs → small at the
        // root → the query must terminate there via the list.
        let mut docs: Vec<Vec<Keyword>> = (0..256).map(|i| vec![i % 4]).collect();
        for i in [10usize, 100, 200] {
            docs[i].push(9);
        }
        let tree = build_1d(docs, 2, 4);
        let mut out = Vec::new();
        let mut stats = QueryStats::new();
        tree.query(
            &[0, 9],
            &|_| Region::Covered,
            &|_| true,
            usize::MAX,
            &mut out,
            &mut stats,
        );
        out.sort_unstable();
        assert_eq!(out, vec![100, 200]); // 10 % 4 != 0, so only 100 and 200
        assert_eq!(stats.small_path_nodes, 1, "must stop at the root");
        assert!(stats.list_scans <= 3);
    }

    #[test]
    fn limit_stops_mid_list() {
        let docs: Vec<Vec<Keyword>> = (0..32).map(|_| vec![0, 1]).collect();
        let tree = build_1d(docs, 2, 4);
        let got = run(&tree, &[0, 1], 5);
        assert_eq!(got.len(), 5);
    }

    #[test]
    fn count_sink_counts_without_collecting() {
        let docs: Vec<Vec<Keyword>> = (0..64).map(|_| vec![0, 1]).collect();
        let tree = build_1d(docs, 2, 4);
        let mut count = crate::sink::CountSink::new();
        let mut stats = QueryStats::new();
        let flow = tree.query_sink(
            &[0, 1],
            &|_| Region::Covered,
            &|_| true,
            &mut count,
            &mut stats,
        );
        assert!(flow.is_continue());
        assert_eq!(count.count(), 64);
        assert_eq!(stats.reported, 64);
        assert_eq!(stats.emitted, 0, "emitted is accounted by the sink owner");
    }

    #[test]
    fn limit_wrapper_records_emitted_and_truncated() {
        let docs: Vec<Vec<Keyword>> = (0..32).map(|_| vec![0, 1]).collect();
        let tree = build_1d(docs, 2, 4);
        let mut out = Vec::new();
        let mut stats = QueryStats::new();
        tree.query(
            &[0, 1],
            &|_| Region::Covered,
            &|_| true,
            5,
            &mut out,
            &mut stats,
        );
        assert_eq!(stats.emitted, 5);
        assert!(stats.truncated);
        let mut stats = QueryStats::new();
        let mut all = Vec::new();
        tree.query(
            &[0, 1],
            &|_| Region::Covered,
            &|_| true,
            usize::MAX,
            &mut all,
            &mut stats,
        );
        assert_eq!(stats.emitted, 32);
        assert!(!stats.truncated);
    }

    #[test]
    fn geometry_pruning_respects_classifier() {
        let docs: Vec<Vec<Keyword>> = (0..64).map(|_| vec![0, 1]).collect();
        let tree = build_1d(docs, 2, 4);
        // Accept only ids < 10, prune cells entirely right of 10.
        let mut out = Vec::new();
        let mut stats = QueryStats::new();
        tree.query(
            &[0, 1],
            &|cell| {
                if cell.lo(0) > 10.0 {
                    Region::Disjoint
                } else if cell.hi(0) <= 10.0 {
                    Region::Covered
                } else {
                    Region::Crossing
                }
            },
            &|o| o < 10,
            usize::MAX,
            &mut out,
            &mut stats,
        );
        out.sort_unstable();
        assert_eq!(out, (0..10).collect::<Vec<u32>>());
        assert!(stats.nodes_visited < tree.num_nodes() as u64 / 2);
    }

    #[test]
    fn absent_keyword_is_empty_fast() {
        let docs: Vec<Vec<Keyword>> = (0..128).map(|_| vec![0, 1]).collect();
        let tree = build_1d(docs, 2, 4);
        let mut out = Vec::new();
        let mut stats = QueryStats::new();
        tree.query(
            &[0, 777],
            &|_| Region::Covered,
            &|_| true,
            usize::MAX,
            &mut out,
            &mut stats,
        );
        assert!(out.is_empty());
        assert_eq!(
            stats.nodes_visited, 1,
            "missing keyword resolves at the root"
        );
    }

    #[test]
    #[should_panic(expected = "k >= 2")]
    fn k1_rejected() {
        let _ = build_1d(vec![vec![0]], 1, 4);
    }

    #[test]
    fn space_accounting_is_positive_and_bounded() {
        let docs: Vec<Vec<Keyword>> = (0..512).map(|i| vec![i % 16, 16 + (i % 8)]).collect();
        let tree = build_1d(docs, 2, 8);
        let words = tree.space_words(3);
        assert!(words > 512);
        assert!(words < 200 * 1024, "space {words}");
        tree.check_invariants().unwrap();
    }

    /// Deliberate corruption must be rejected with the *name* of the
    /// broken invariant (acceptance criterion of DESIGN.md §12).
    #[cfg(feature = "debug-invariants")]
    mod corruption {
        use super::*;
        use skq_geom::Rect;

        fn tree() -> TransformedIndex<KdPartitioner> {
            let docs: Vec<Vec<Keyword>> = (0..96).map(|i| vec![i % 4, 4 + (i % 3)]).collect();
            let t = build_1d(docs, 2, 4);
            t.validate().unwrap();
            t
        }

        #[test]
        fn duplicated_pivot_names_pivot_partition() {
            let mut t = tree();
            let donor = t.nodes.iter().position(|n| !n.pivots.is_empty()).unwrap();
            let dup = t.nodes[donor].pivots[0];
            t.nodes.last_mut().unwrap().pivots.push(dup);
            let v = t.validate().unwrap_err();
            assert_eq!(v.invariant(), "framework::pivot_partition");
            assert!(v.to_string().contains(&format!("object {dup}")), "{v}");
        }

        #[test]
        fn skipped_level_names_tree_shape() {
            let mut t = tree();
            let parent = t.nodes.iter().position(|n| !n.children.is_empty()).unwrap();
            let child = t.nodes[parent].children[0] as usize;
            t.nodes[child].level += 1;
            assert_eq!(
                t.validate().unwrap_err().invariant(),
                "framework::tree_shape"
            );
        }

        #[test]
        fn escaped_cell_names_cell_nesting() {
            let mut t = tree();
            // A level-1 node's cell is bounded on one side, so blowing
            // its child's cell up to the full space breaks nesting.
            let parent = t
                .nodes
                .iter()
                .position(|n| n.level == 1 && !n.children.is_empty())
                .unwrap();
            let child = t.nodes[parent].children[0] as usize;
            t.nodes[child].cell = Rect::full(1);
            assert_eq!(
                t.validate().unwrap_err().invariant(),
                "framework::cell_nesting"
            );
        }

        #[test]
        fn foreign_id_in_list_names_materialized() {
            let mut t = tree();
            let (node, w) = t
                .nodes
                .iter()
                .enumerate()
                .find_map(|(i, n)| n.materialized.keys().next().map(|&w| (i, w)))
                .expect("this workload materializes at least one list");
            // Object 0's document is {0, 4}: listing it under any other
            // keyword contradicts the list's definition.
            let foreign = (0..96u32)
                .find(|&e| !t.docs[e as usize].contains_all(&[w]))
                .unwrap();
            t.nodes[node]
                .materialized
                .get_mut(&w)
                .unwrap()
                .push(foreign);
            assert_eq!(
                t.validate().unwrap_err().invariant(),
                "framework::materialized"
            );
        }
    }
}
