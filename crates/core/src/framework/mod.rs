//! The index-transformation framework (paper §3).
//!
//! The paper's primary technical contribution is a generic four-step
//! recipe that converts a *space-partitioning* geometric index into an
//! index supporting keyword predicates:
//!
//! 1. **Identify a space-partitioning index** — here abstracted as the
//!    [`Partitioner`] trait. Two instantiations are provided: the
//!    weighted kd-tree of §3 ([`KdPartitioner`]) and a Willard-style
//!    partition tree standing in for Appendix D's partition tree
//!    ([`WillardPartitioner`]).
//! 2. **Convert under general position** — [`TransformedIndex`] builds
//!    the tree over the *verbose set* (each object weighted by
//!    `|e.Doc|`), maintains *active* and *pivot* sets, classifies
//!    keywords as *large*/*small* per node against the threshold
//!    `N_u^{1−1/k}`, stores a per-node secondary structure (hash table
//!    over large keywords plus a `k`-dimensional emptiness bit array per
//!    child, see [`ComboTable`]), and materializes `D_u^act(w)` exactly
//!    when `w` is small at `u` but large at all proper ancestors.
//! 3. **Bound the crossing sensitivity** — the query algorithm records
//!    covered/crossing classifications in
//!    [`QueryStats`](crate::QueryStats) so the harness can measure the
//!    crossing sensitivity the analysis bounds.
//! 4. **Remove general position** — callers normalize inputs (rank
//!    space for orthogonal problems, lexicographic tie-breaking by
//!    object id inside the partitioners otherwise).

mod combo;
mod index;
mod kd;
mod partitioner;
mod quad;
mod willard;

pub use combo::{for_each_k_subset, ComboTable};
pub use index::{FrameworkConfig, TransformedIndex};
pub use kd::KdPartitioner;
pub use partitioner::{Partitioner, SplitOutcome};
pub use quad::QuadPartitioner;
pub use willard::WillardPartitioner;
