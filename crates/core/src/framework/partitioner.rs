//! The space-partitioning abstraction (Step 1 of the framework).
//!
//! §3.1 characterizes the geometric indexes the framework applies to:
//! trees in which every node `u` has a cell `Δ_u` covering the points in
//! its subtree, the root cell is the whole space, and sibling cells are
//! interior-disjoint with union `Δ_u`. [`Partitioner`] captures exactly
//! the build-time behaviour the transformation needs: a root cell and a
//! rule that splits a node's *active* objects into child cells plus the
//! boundary objects that become the node's *pivot set* (§3.2).

/// The result of splitting one node.
#[derive(Debug)]
pub struct SplitOutcome<C> {
    /// Objects lying on the boundary of the child cells — they stay at
    /// this node as its pivot set `D_u^pvt`.
    pub pivots: Vec<u32>,
    /// Child cells with their active sets `D_v^act` (objects strictly
    /// assigned to the child; each child's closed cell contains all its
    /// objects). Children with empty active sets are omitted.
    pub children: Vec<(C, Vec<u32>)>,
}

/// A space-partitioning strategy: the geometry that Step 1 of the
/// framework plugs in.
///
/// Implementations own the point coordinates (in whatever space the
/// caller prepared: rank space for the kd-tree used by ORP-KW, raw
/// coordinates for the partition tree used by SP-KW) and the per-object
/// weights `|e.Doc|`, so that splits follow the *verbose set* of §3.2
/// without materializing it.
pub trait Partitioner {
    /// The cell type `Δ_u` (a rectangle for kd-trees, a convex polygon
    /// for the 2D partition tree).
    type Cell: Clone;

    /// The root cell — covers the entire space.
    fn root_cell(&self) -> Self::Cell;

    /// Splits a node.
    ///
    /// `objects` is the node's active set, `cell` its cell, `depth` its
    /// level (the kd-tree alternates split axes by level). Returns
    /// `None` when the node cannot be split (degenerate active set), in
    /// which case the framework makes it a leaf holding all objects as
    /// pivots.
    ///
    /// Contract: the returned pivot and child active sets partition
    /// `objects`; each child's closed cell must contain all its objects
    /// and be contained in `cell`; each child's total weight must be at
    /// most half the node's weight (this yields the `O(log N)` height
    /// the paper's `|P_u| = O(N / 2^{level})` invariant rests on).
    fn split(
        &self,
        cell: &Self::Cell,
        objects: &[u32],
        depth: usize,
    ) -> Option<SplitOutcome<Self::Cell>>;

    /// Per-object weight `|e.Doc|` (the object's multiplicity in the
    /// verbose set).
    fn weight(&self, obj: u32) -> u64;

    /// Whether `child`'s cell is contained in `parent`'s — the §3.1
    /// nesting requirement, consulted by the `debug-invariants` deep
    /// validator. `None` (the default) means the cell type cannot
    /// answer cheaply and the nesting check is skipped for this
    /// partitioner.
    fn cell_nested(parent: &Self::Cell, child: &Self::Cell) -> Option<bool> {
        let _ = (parent, child);
        None
    }

    /// Total weight of a set of objects.
    fn total_weight(&self, objects: &[u32]) -> u64 {
        objects.iter().map(|&o| self.weight(o)).sum()
    }
}
