//! Pure `k`-set intersection (k-SI; §1.2).
//!
//! "Pure" keyword search — computing `D(w₁, …, w_k)` with no geometric
//! predicate — is exactly the `k`-set intersection problem: keyword `w`
//! names the set `S_w` of object ids containing it. §1.2 shows the two
//! problems are interreducible, and the paper's framework (with the
//! geometry ignored) matches the best known bound
//! `O(N^{1−1/k}(1 + OUT^{1/k}))` of Cohen–Porat (k = 2) generalized to
//! any constant `k`.
//!
//! [`KsiIndex`] realizes the reduction of §1.2 in the forward direction:
//! it builds the 1-dimensional kd-tree framework over object ids, and a
//! reporting query is a full-space ORP-KW query — demonstrating that the
//! framework's geometry machinery collapses gracefully when no geometry
//! is present.

use std::ops::ControlFlow;

use skq_geom::{Point, Region};
use skq_invidx::{Document, Keyword};

use crate::error::{validate, SkqError};
use crate::failpoints;
use crate::framework::{FrameworkConfig, KdPartitioner, TransformedIndex};
use crate::sink::{CountSink, LimitSink, ResultSink};
use crate::stats::QueryStats;

/// The k-SI index over a family of sets given as documents.
///
/// # Example
///
/// ```
/// use skq_core::ksi::KsiIndex;
///
/// // S0 = {0, 1}, S1 = {1, 2}: elements carry their set memberships.
/// let index = KsiIndex::from_sets(&[vec![0, 1], vec![1, 2]], 3, 2);
/// assert_eq!(index.intersect(&[0, 1]), vec![1]);
/// assert!(!index.intersection_is_empty(&[0, 1]));
/// ```
pub struct KsiIndex {
    tree: TransformedIndex<KdPartitioner>,
}

impl KsiIndex {
    /// Builds the index: element `i` belongs to set `w` iff
    /// `docs[i]` contains `w` (the inverted-view of `m` sets as
    /// per-element membership documents, per §1.2).
    ///
    /// # Panics
    ///
    /// Panics if `docs` is empty or `k < 2`.
    pub fn build(docs: &[Document], k: usize) -> Self {
        Self::try_build(docs, k).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`build`](Self::build).
    ///
    /// # Errors
    ///
    /// `SkqError::InvalidDataset` if `docs` is empty;
    /// `SkqError::InvalidQuery` if `k` is outside `2..=16`.
    pub fn try_build(docs: &[Document], k: usize) -> Result<Self, SkqError> {
        validate::build_k(k)?;
        failpoints::check("ksi::build")?;
        if docs.is_empty() {
            return Err(SkqError::InvalidDataset(
                "cannot index an empty set family".into(),
            ));
        }
        let points: Vec<Point> = (0..docs.len()).map(|i| Point::new1(i as f64)).collect();
        let weights: Vec<u64> = docs.iter().map(|d| d.len() as u64).collect();
        let partitioner = KdPartitioner::new(points, weights);
        let tree =
            TransformedIndex::try_build(partitioner, docs.to_vec(), k, FrameworkConfig::default())?;
        Ok(Self { tree })
    }

    /// Builds from explicit sets `S₁, …, S_m` over elements `0..n` —
    /// the reverse reduction of §1.2 (`e.Doc := {i | e ∈ Sᵢ}`).
    ///
    /// # Panics
    ///
    /// Panics if some element belongs to no set (documents must be
    /// non-empty), or on out-of-range elements.
    pub fn from_sets(sets: &[Vec<u32>], n: usize, k: usize) -> Self {
        let mut kws: Vec<Vec<Keyword>> = vec![Vec::new(); n];
        for (si, set) in sets.iter().enumerate() {
            for &e in set {
                kws[e as usize].push(si as Keyword);
            }
        }
        let docs: Vec<Document> = kws.into_iter().map(Document::new).collect();
        Self::build(&docs, k)
    }

    /// The number of query keywords `k`.
    pub fn k(&self) -> usize {
        self.tree.k()
    }

    /// The input size `N = Σ |Sᵢ| = Σ |Doc|`.
    pub fn input_size(&self) -> u64 {
        self.tree.input_size()
    }

    /// Reports `⋂ᵢ S_{wᵢ}` (a reporting query).
    pub fn intersect(&self, keywords: &[Keyword]) -> Vec<u32> {
        self.intersect_with_stats(keywords).0
    }

    /// Like [`intersect`](Self::intersect) with statistics.
    pub fn intersect_with_stats(&self, keywords: &[Keyword]) -> (Vec<u32>, QueryStats) {
        let mut out = Vec::new();
        let mut stats = QueryStats::new();
        let _ = self.intersect_sink(keywords, &mut out, &mut stats);
        stats.emitted = out.len() as u64;
        (out, stats)
    }

    /// Streaming intersection: each element of `⋂ᵢ S_{wᵢ}` is emitted
    /// into `sink` as it is found (a full-space ORP-KW traversal).
    pub fn intersect_sink<S: ResultSink>(
        &self,
        keywords: &[Keyword],
        sink: &mut S,
        stats: &mut QueryStats,
    ) -> ControlFlow<()> {
        self.tree
            .query_sink(keywords, &|_| Region::Covered, &|_| true, sink, stats)
    }

    /// Fallible intersection: validates the keyword set, then appends
    /// `⋂ᵢ S_{wᵢ}` to `out`.
    ///
    /// # Errors
    ///
    /// `SkqError::InvalidQuery` if the keyword set is not exactly `k`
    /// distinct keywords.
    pub fn try_query_into(
        &self,
        keywords: &[Keyword],
        out: &mut Vec<u32>,
    ) -> Result<QueryStats, SkqError> {
        validate::distinct_keywords(keywords, self.k())?;
        let mut stats = QueryStats::new();
        let before = out.len();
        let _ = self.intersect_sink(keywords, out, &mut stats);
        stats.emitted = (out.len() - before) as u64;
        Ok(stats)
    }

    /// An emptiness query: whether `⋂ᵢ S_{wᵢ} = ∅`
    /// (`O(N^{1−1/k})` — a reporting query cut off at the first result,
    /// exactly the footnote-4 argument of §1.2). Allocation-free on the
    /// result side.
    pub fn intersection_is_empty(&self, keywords: &[Keyword]) -> bool {
        !self.count_at_least(keywords, 1)
    }

    /// The size of the intersection `|⋂ᵢ S_{wᵢ}|`, without materializing
    /// the result set.
    pub fn count(&self, keywords: &[Keyword]) -> u64 {
        let mut sink = CountSink::new();
        let mut stats = QueryStats::new();
        let _ = self.intersect_sink(keywords, &mut sink, &mut stats);
        sink.count()
    }

    /// Whether the intersection has at least `t` elements, by early
    /// termination (no result vector is built).
    pub fn count_at_least(&self, keywords: &[Keyword], t: usize) -> bool {
        if t == 0 {
            return true;
        }
        let mut sink = LimitSink::new(CountSink::new(), t);
        let mut stats = QueryStats::new();
        let _ = self.intersect_sink(keywords, &mut sink, &mut stats);
        sink.emitted() >= t as u64
    }

    /// Index space in 64-bit words.
    pub fn space_words(&self) -> usize {
        self.tree.space_words(3)
    }

    /// Structural invariants (see the framework docs).
    pub fn check_invariants(&self) -> Result<(), String> {
        self.tree.check_invariants()
    }

    /// Deep structural validation (`debug-invariants`; DESIGN.md §12):
    /// delegates to the underlying framework tree.
    ///
    /// # Errors
    ///
    /// The first violated invariant, by name.
    #[cfg(feature = "debug-invariants")]
    pub fn validate(&self) -> Result<(), crate::invariants::InvariantViolation> {
        self.tree.validate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};
    use skq_invidx::InvertedIndex;

    fn random_docs(n: usize, vocab: u32, seed: u64) -> Vec<Document> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let len = rng.gen_range(1..7);
                Document::new((0..len).map(|_| rng.gen_range(0..vocab)).collect())
            })
            .collect()
    }

    #[test]
    fn matches_inverted_index_k2() {
        let docs = random_docs(400, 12, 1);
        let ksi = KsiIndex::build(&docs, 2);
        ksi.check_invariants().unwrap();
        let inv = InvertedIndex::build(&docs);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..100 {
            let w1 = rng.gen_range(0..12);
            let w2 = (w1 + 1 + rng.gen_range(0..11)) % 12;
            let mut got = ksi.intersect(&[w1, w2]);
            got.sort_unstable();
            assert_eq!(got, inv.intersect(&[w1, w2]), "[{w1},{w2}]");
            assert_eq!(ksi.intersection_is_empty(&[w1, w2]), got.is_empty());
        }
    }

    #[test]
    fn matches_inverted_index_k4() {
        let docs = random_docs(300, 6, 11);
        let ksi = KsiIndex::build(&docs, 4);
        let inv = InvertedIndex::build(&docs);
        let mut rng = StdRng::seed_from_u64(12);
        for _ in 0..60 {
            let mut ws: Vec<u32> = Vec::new();
            while ws.len() < 4 {
                let w = rng.gen_range(0..6);
                if !ws.contains(&w) {
                    ws.push(w);
                }
            }
            let mut got = ksi.intersect(&ws);
            got.sort_unstable();
            assert_eq!(got, inv.intersect(&ws));
        }
    }

    #[test]
    fn from_sets_reduction() {
        // S0 = {0,1,2}, S1 = {1,2,3}, S2 = {2,3,4}.
        let sets = vec![vec![0, 1, 2], vec![1, 2, 3], vec![2, 3, 4]];
        let ksi = KsiIndex::from_sets(&sets, 5, 2);
        let mut got = ksi.intersect(&[0, 1]);
        got.sort_unstable();
        assert_eq!(got, vec![1, 2]);
        let mut got = ksi.intersect(&[1, 2]);
        got.sort_unstable();
        assert_eq!(got, vec![2, 3]);
        assert!(!ksi.intersection_is_empty(&[0, 2]));
        assert_eq!(ksi.intersect(&[0, 2]), vec![2]);
    }

    #[test]
    fn try_surfaces_round_trip_and_validate() {
        let docs = random_docs(200, 8, 41);
        let ksi = KsiIndex::try_build(&docs, 2).unwrap();
        let legacy = KsiIndex::build(&docs, 2);
        let mut out = Vec::new();
        let stats = ksi.try_query_into(&[0, 1], &mut out).unwrap();
        let mut expected = legacy.intersect(&[0, 1]);
        out.sort_unstable();
        expected.sort_unstable();
        assert_eq!(out, expected);
        assert_eq!(stats.emitted, out.len() as u64);
        assert!(matches!(
            KsiIndex::try_build(&[], 2),
            Err(SkqError::InvalidDataset(_))
        ));
        assert!(matches!(
            KsiIndex::try_build(&docs, 1),
            Err(SkqError::InvalidQuery(_))
        ));
        let mut scratch = Vec::new();
        assert!(matches!(
            ksi.try_query_into(&[0, 0], &mut scratch),
            Err(SkqError::InvalidQuery(_))
        ));
    }

    #[test]
    fn count_at_least_thresholds() {
        let docs = random_docs(200, 3, 21);
        let ksi = KsiIndex::build(&docs, 2);
        let inv = InvertedIndex::build(&docs);
        let truth = inv.intersect(&[0, 1]).len();
        assert!(ksi.count_at_least(&[0, 1], truth));
        assert!(!ksi.count_at_least(&[0, 1], truth + 1));
        assert!(ksi.count_at_least(&[0, 1], 0));
        assert_eq!(ksi.count(&[0, 1]), truth as u64);
    }
}
