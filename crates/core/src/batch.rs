//! Batch query execution across threads, with panic-isolated shards.
//!
//! Every index in this crate is immutable after construction and
//! therefore `Sync`; batch workloads (analytics, evaluation sweeps, the
//! experiment harness itself) can shard queries across OS threads with
//! no locking. This module provides the small amount of plumbing —
//! deterministic result order, balanced sharding — so callers don't
//! hand-roll it.
//!
//! Fault tolerance: [`run_batch_isolated`] wraps each shard in
//! `catch_unwind` with one bounded retry, so a panicking query poisons
//! only its own shard. The [`BatchReport`] records a [`ShardOutcome`]
//! per shard and `None` results for queries in failed shards; the other
//! shards' answers are unaffected.

use std::panic::{catch_unwind, AssertUnwindSafe};

use skq_geom::Rect;
use skq_invidx::Keyword;

use crate::concurrency::effective_threads;
use crate::error::SkqError;
use crate::failpoints;
use crate::guard::{GuardedSink, QueryGuard};
use crate::orp::OrpKwIndex;
use crate::sink::ResultSink;
use crate::stats::QueryStats;
use crate::telemetry;

/// A single ORP-KW query in a batch.
#[derive(Clone, Debug)]
pub struct BatchQuery {
    /// The rectangle.
    pub rect: Rect,
    /// Exactly `k` distinct keywords.
    pub keywords: Vec<Keyword>,
}

/// What happened to one shard of a batch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ShardOutcome {
    /// The shard completed on the first attempt.
    Ok,
    /// The first attempt panicked; the bounded retry succeeded.
    Retried,
    /// Both the first attempt and the retry panicked; the shard's
    /// queries have no results.
    Failed,
}

/// The outcome of [`run_batch_isolated`]: per-query results in input
/// order (`None` for queries whose shard failed), per-shard outcomes,
/// and aggregated statistics over the successful shards.
#[derive(Debug)]
pub struct BatchReport {
    /// Per-query answers in input order, each sorted by object id;
    /// `None` when the owning shard failed.
    pub results: Vec<Option<Vec<u32>>>,
    /// Per-shard outcomes, in shard order.
    pub outcomes: Vec<ShardOutcome>,
    /// Statistics aggregated over the successful shards.
    pub stats: QueryStats,
}

impl BatchReport {
    /// Whether every shard completed (possibly after a retry).
    pub fn is_complete(&self) -> bool {
        self.outcomes.iter().all(|o| *o != ShardOutcome::Failed)
    }

    /// Converts the report into plain per-query results, failing on the
    /// first shard that panicked through its retry.
    ///
    /// # Errors
    ///
    /// `SkqError::ShardPanicked` naming the first failed shard.
    pub fn into_results(self) -> Result<Vec<Vec<u32>>, SkqError> {
        if let Some(shard) = self
            .outcomes
            .iter()
            .position(|o| *o == ShardOutcome::Failed)
        {
            return Err(SkqError::ShardPanicked { shard });
        }
        Ok(self
            .results
            .into_iter()
            .map(|r| r.unwrap_or_default())
            .collect())
    }
}

/// Runs `queries` against `index` on up to `threads` OS threads,
/// returning answers in input order (each sorted by object id).
///
/// With `threads = 1` this degenerates to a plain loop (no thread is
/// spawned), so callers can use one code path for both modes;
/// `threads = 0` is clamped to 1 by
/// [`concurrency::effective_threads`](crate::concurrency::effective_threads)
/// (a zero-width pool makes no progress, so the nearest meaningful
/// interpretation is sequential) — the same clamp the `skq-serve`
/// worker pool applies.
///
/// # Panics
///
/// Panics if any query violates the index's keyword contract (exactly
/// `k` distinct keywords), or if a shard fails through its retry (use
/// [`run_batch_isolated`] to observe failures as values instead).
// The panic is this wrapper's documented contract;
// `run_batch_isolated` is the fallible surface.
#[allow(clippy::disallowed_macros)]
pub fn run_batch(index: &OrpKwIndex, queries: &[BatchQuery], threads: usize) -> Vec<Vec<u32>> {
    let report = run_batch_isolated(index, queries, threads, &QueryGuard::default());
    report
        .into_results()
        .unwrap_or_else(|e| panic!("worker panicked: {e}")) // skq-lint: allow(L01) documented panicking wrapper over run_batch_isolated
}

/// One shard's run: its per-query results and aggregated stats when it
/// completed (possibly after a retry), `None` when it failed through.
type ShardRun = (Option<(Vec<Vec<u32>>, QueryStats)>, ShardOutcome);

/// Panic-isolated [`run_batch`]: each shard runs under `catch_unwind`
/// with one bounded retry, and per-query emission is policed by
/// `guard` (deadline, cancellation, result budget). A panicking shard
/// never takes down the batch — its queries come back as `None` and
/// its [`ShardOutcome::Failed`] is recorded, while every other shard's
/// results stand.
///
/// Each caught panic increments the `skq_batch_shard_panics` counter.
pub fn run_batch_isolated(
    index: &OrpKwIndex,
    queries: &[BatchQuery],
    threads: usize,
    guard: &QueryGuard,
) -> BatchReport {
    let threads = effective_threads(threads);
    if queries.is_empty() {
        return BatchReport {
            results: Vec::new(),
            outcomes: Vec::new(),
            stats: QueryStats::new(),
        };
    }
    let span = skq_obs::Span::enter("orp.batch");
    skq_obs::global()
        .counter("skq_batch_queries_total", &[])
        .add(queries.len() as u64);

    // Per-shard statistics are aggregated locally (no shared atomics on
    // the per-query path) and exported once per batch; each shard also
    // reports how many results it emitted.
    let run_shard = |shard: &[BatchQuery]| -> (Vec<Vec<u32>>, QueryStats) {
        // Chaos-only: an armed fail point must look like a real worker
        // panic so the catch_unwind isolation path is the thing tested.
        #[allow(clippy::disallowed_macros)]
        if let Err(e) = failpoints::check("batch::shard") {
            panic!("{e}"); // skq-lint: allow(L01) chaos injection; isolated by catch_unwind
        }
        let mut agg = QueryStats::new();
        let results: Vec<Vec<u32>> = shard
            .iter()
            .map(|q| {
                let mut sink = GuardedSink::new(Vec::new(), guard);
                let mut s = QueryStats::new();
                let _ = index.query_sink(&q.rect, &q.keywords, &mut sink, &mut s);
                s.emitted += sink.emitted();
                s.truncated |= sink.truncated();
                s.truncated_reason = s.truncated_reason.or(sink.truncated_reason());
                agg.absorb(&s);
                let mut r = sink.into_inner();
                r.sort_unstable();
                r
            })
            .collect();
        skq_obs::global()
            .histogram("skq_batch_shard_emitted", &[])
            .observe(agg.emitted);
        (results, agg)
    };

    // One bounded retry per shard: transient panics (an injected fail
    // point, a poisoned scratch state) get a second chance; persistent
    // ones surface as `Failed` without aborting the batch.
    let isolated = |shard: &[BatchQuery]| -> ShardRun {
        match catch_unwind(AssertUnwindSafe(|| run_shard(shard))) {
            Ok(r) => (Some(r), ShardOutcome::Ok),
            Err(_) => {
                skq_obs::global()
                    .counter("skq_batch_shard_panics", &[])
                    .inc();
                match catch_unwind(AssertUnwindSafe(|| run_shard(shard))) {
                    Ok(r) => (Some(r), ShardOutcome::Retried),
                    Err(_) => {
                        skq_obs::global()
                            .counter("skq_batch_shard_panics", &[])
                            .inc();
                        (None, ShardOutcome::Failed)
                    }
                }
            }
        }
    };

    let chunk = if threads == 1 || queries.len() == 1 {
        queries.len()
    } else {
        queries.len().div_ceil(threads.min(queries.len()))
    };
    let shards: Vec<&[BatchQuery]> = queries.chunks(chunk).collect();

    let shard_runs: Vec<ShardRun> = if shards.len() == 1 {
        vec![isolated(shards[0])]
    } else {
        std::thread::scope(|s| {
            let isolated = &isolated;
            let handles: Vec<_> = shards
                .iter()
                .map(|&shard| s.spawn(move || isolated(shard)))
                .collect();
            handles
                .into_iter()
                .map(|h| match h.join() {
                    Ok(v) => v,
                    // Unreachable (the closure catches its own panics),
                    // but a join failure must not abort the batch.
                    Err(_) => (None, ShardOutcome::Failed),
                })
                .collect()
        })
    };

    let mut results: Vec<Option<Vec<u32>>> = Vec::with_capacity(queries.len());
    let mut outcomes = Vec::with_capacity(shard_runs.len());
    let mut stats = QueryStats::new();
    for (shard, (run, outcome)) in shards.iter().zip(shard_runs) {
        outcomes.push(outcome);
        match run {
            Some((shard_results, shard_stats)) => {
                stats.absorb(&shard_stats);
                results.extend(shard_results.into_iter().map(Some));
            }
            None => results.extend(shard.iter().map(|_| None)),
        }
    }
    telemetry::record_query("orp_batch", index.k(), &stats, span.elapsed());
    BatchReport {
        results,
        outcomes,
        stats,
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::disallowed_methods)]

    use super::*;
    use crate::dataset::Dataset;
    use rand::{rngs::StdRng, Rng, SeedableRng};
    use skq_geom::Point;

    fn setup() -> (OrpKwIndex, Vec<BatchQuery>, Dataset) {
        let mut rng = StdRng::seed_from_u64(1);
        let dataset = Dataset::from_parts(
            (0..3000)
                .map(|_| {
                    let p = Point::new2(rng.gen_range(0..100) as f64, rng.gen_range(0..100) as f64);
                    let doc: Vec<Keyword> = (0..rng.gen_range(1..5))
                        .map(|_| rng.gen_range(0..10))
                        .collect();
                    (p, doc)
                })
                .collect(),
        );
        let index = OrpKwIndex::build(&dataset, 2);
        let queries: Vec<BatchQuery> = (0..57)
            .map(|_| {
                let x: f64 = rng.gen_range(0..100) as f64;
                let y: f64 = rng.gen_range(0..100) as f64;
                let w1 = rng.gen_range(0..10);
                let w2 = (w1 + 1 + rng.gen_range(0..9)) % 10;
                BatchQuery {
                    rect: Rect::new(&[x, y], &[x + 25.0, y + 25.0]),
                    keywords: vec![w1, w2],
                }
            })
            .collect();
        (index, queries, dataset)
    }

    #[test]
    fn parallel_matches_sequential() {
        let (index, queries, _) = setup();
        let seq = run_batch(&index, &queries, 1);
        for threads in [2, 3, 8, 64] {
            let par = run_batch(&index, &queries, threads);
            assert_eq!(par, seq, "threads = {threads}");
        }
    }

    #[test]
    fn results_are_correct() {
        let (index, queries, dataset) = setup();
        let got = run_batch(&index, &queries, 4);
        for (q, r) in queries.iter().zip(&got) {
            let expected: Vec<u32> = (0..dataset.len() as u32)
                .filter(|&i| {
                    dataset.doc(i as usize).contains_all(&q.keywords)
                        && q.rect.contains(dataset.point(i as usize))
                })
                .collect();
            assert_eq!(r, &expected);
        }
    }

    #[test]
    fn empty_batch() {
        let (index, _, _) = setup();
        assert!(run_batch(&index, &[], 4).is_empty());
        let report = run_batch_isolated(&index, &[], 4, &QueryGuard::default());
        assert!(report.results.is_empty() && report.outcomes.is_empty());
    }

    #[test]
    fn zero_threads_clamps_to_sequential() {
        let (index, queries, _) = setup();
        let seq = run_batch(&index, &queries, 1);
        assert_eq!(run_batch(&index, &queries, 0), seq);
    }

    #[test]
    fn poisoned_shard_is_isolated() {
        // One query with the wrong keyword arity makes its shard panic
        // (the index's keyword contract); the other shards still answer.
        let (index, mut queries, _) = setup();
        let clean = run_batch(&index, &queries, 4);
        // 57 queries over 4 threads → ceil(57/4) = 15-query shards; the
        // bad query lands in shard 3 (index 45).
        queries[50].keywords = vec![0, 1, 2];
        let report = run_batch_isolated(&index, &queries, 4, &QueryGuard::default());
        assert!(!report.is_complete());
        let failed: Vec<usize> = report
            .outcomes
            .iter()
            .enumerate()
            .filter(|(_, o)| **o == ShardOutcome::Failed)
            .map(|(i, _)| i)
            .collect();
        assert_eq!(failed, vec![3]);
        // Queries outside the failed shard keep their results.
        for (i, (got, want)) in report.results.iter().zip(&clean).enumerate() {
            if i < 45 {
                assert_eq!(got.as_ref(), Some(want), "query {i}");
            }
        }
        assert!(report.results[50].is_none());
        // The typed conversion names the failed shard.
        assert!(matches!(
            report.into_results(),
            Err(SkqError::ShardPanicked { shard: 3 })
        ));
    }

    #[test]
    fn guard_budget_truncates_batch_queries() {
        use crate::stats::TruncatedReason;
        let (index, queries, _) = setup();
        let guard = QueryGuard::default().with_max_results(1);
        let report = run_batch_isolated(&index, &queries, 2, &guard);
        assert!(report.is_complete());
        for r in report.results.iter().flatten() {
            assert!(r.len() <= 1);
        }
        // At least one query in this workload has > 1 match.
        assert_eq!(report.stats.truncated_reason, Some(TruncatedReason::Limit));
    }
}
