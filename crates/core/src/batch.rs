//! Batch query execution across threads.
//!
//! Every index in this crate is immutable after construction and
//! therefore `Sync`; batch workloads (analytics, evaluation sweeps, the
//! experiment harness itself) can shard queries across OS threads with
//! no locking. This module provides the small amount of plumbing —
//! deterministic result order, balanced sharding — so callers don't
//! hand-roll it.

use skq_geom::Rect;
use skq_invidx::Keyword;

use crate::orp::OrpKwIndex;
use crate::stats::QueryStats;
use crate::telemetry;

/// A single ORP-KW query in a batch.
#[derive(Clone, Debug)]
pub struct BatchQuery {
    /// The rectangle.
    pub rect: Rect,
    /// Exactly `k` distinct keywords.
    pub keywords: Vec<Keyword>,
}

/// Runs `queries` against `index` on up to `threads` OS threads,
/// returning answers in input order (each sorted by object id).
///
/// With `threads = 1` this degenerates to a plain loop (no thread is
/// spawned), so callers can use one code path for both modes;
/// `threads = 0` is clamped to 1 (a zero-width pool makes no progress,
/// so the nearest meaningful interpretation is sequential).
///
/// # Panics
///
/// Panics if any query violates the index's keyword contract (exactly
/// `k` distinct keywords).
pub fn run_batch(index: &OrpKwIndex, queries: &[BatchQuery], threads: usize) -> Vec<Vec<u32>> {
    let threads = threads.max(1);
    if queries.is_empty() {
        return Vec::new();
    }
    let span = skq_obs::Span::enter("orp.batch");
    skq_obs::global()
        .counter("skq_batch_queries_total", &[])
        .add(queries.len() as u64);

    // Per-shard statistics are aggregated locally (no shared atomics on
    // the per-query path) and exported once per batch; each shard also
    // reports how many results it emitted.
    let run_shard = |shard: &[BatchQuery]| -> (Vec<Vec<u32>>, QueryStats) {
        let mut agg = QueryStats::new();
        let results: Vec<Vec<u32>> = shard
            .iter()
            .map(|q| {
                let (mut r, s) = index.query_with_stats(&q.rect, &q.keywords);
                agg.absorb(&s);
                r.sort_unstable();
                r
            })
            .collect();
        skq_obs::global()
            .histogram("skq_batch_shard_emitted", &[])
            .observe(agg.emitted);
        (results, agg)
    };

    let (results, stats) = if threads == 1 || queries.len() == 1 {
        run_shard(queries)
    } else {
        let threads = threads.min(queries.len());
        let chunk = queries.len().div_ceil(threads);
        let mut results: Vec<Vec<Vec<u32>>> = Vec::with_capacity(threads);
        let mut stats = QueryStats::new();
        std::thread::scope(|s| {
            let handles: Vec<_> = queries
                .chunks(chunk)
                .map(|shard| s.spawn(move || run_shard(shard)))
                .collect();
            for h in handles {
                let (shard_results, shard_stats) = h.join().expect("worker panicked");
                results.push(shard_results);
                stats.absorb(&shard_stats);
            }
        });
        (results.into_iter().flatten().collect(), stats)
    };
    telemetry::record_query("orp_batch", index.k(), &stats, span.elapsed());
    results
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Dataset;
    use rand::{rngs::StdRng, Rng, SeedableRng};
    use skq_geom::Point;

    fn setup() -> (OrpKwIndex, Vec<BatchQuery>, Dataset) {
        let mut rng = StdRng::seed_from_u64(1);
        let dataset = Dataset::from_parts(
            (0..3000)
                .map(|_| {
                    let p = Point::new2(rng.gen_range(0..100) as f64, rng.gen_range(0..100) as f64);
                    let doc: Vec<Keyword> = (0..rng.gen_range(1..5))
                        .map(|_| rng.gen_range(0..10))
                        .collect();
                    (p, doc)
                })
                .collect(),
        );
        let index = OrpKwIndex::build(&dataset, 2);
        let queries: Vec<BatchQuery> = (0..57)
            .map(|_| {
                let x: f64 = rng.gen_range(0..100) as f64;
                let y: f64 = rng.gen_range(0..100) as f64;
                let w1 = rng.gen_range(0..10);
                let w2 = (w1 + 1 + rng.gen_range(0..9)) % 10;
                BatchQuery {
                    rect: Rect::new(&[x, y], &[x + 25.0, y + 25.0]),
                    keywords: vec![w1, w2],
                }
            })
            .collect();
        (index, queries, dataset)
    }

    #[test]
    fn parallel_matches_sequential() {
        let (index, queries, _) = setup();
        let seq = run_batch(&index, &queries, 1);
        for threads in [2, 3, 8, 64] {
            let par = run_batch(&index, &queries, threads);
            assert_eq!(par, seq, "threads = {threads}");
        }
    }

    #[test]
    fn results_are_correct() {
        let (index, queries, dataset) = setup();
        let got = run_batch(&index, &queries, 4);
        for (q, r) in queries.iter().zip(&got) {
            let expected: Vec<u32> = (0..dataset.len() as u32)
                .filter(|&i| {
                    dataset.doc(i as usize).contains_all(&q.keywords)
                        && q.rect.contains(dataset.point(i as usize))
                })
                .collect();
            assert_eq!(r, &expected);
        }
    }

    #[test]
    fn empty_batch() {
        let (index, _, _) = setup();
        assert!(run_batch(&index, &[], 4).is_empty());
    }

    #[test]
    fn zero_threads_clamps_to_sequential() {
        let (index, queries, _) = setup();
        let seq = run_batch(&index, &queries, 1);
        assert_eq!(run_batch(&index, &queries, 0), seq);
    }
}
