//! Deep structural validation (the `debug-invariants` cargo feature;
//! DESIGN.md §12).
//!
//! Every index exposes a `validate()` method under this feature that
//! re-derives the paper's structural invariants from the *built*
//! structure — not from the build path's own bookkeeping — so a bug
//! that corrupts an index without tripping an assertion is still caught
//! the moment a property test validates it. Violations carry a stable
//! invariant *name* (`"framework::pivot_partition"`,
//! `"dynamic::carry_bound"`, …) naming the broken lemma or contract,
//! plus a human-readable detail string locating the damage.
//!
//! The checkers are `O(index size)` per call (some are
//! `O(size · log size)` from re-sorting); they exist for test builds
//! and are compiled out entirely without the feature.

use std::fmt;

/// A broken structural invariant: which one, and where.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvariantViolation {
    invariant: &'static str,
    detail: String,
}

impl InvariantViolation {
    /// Creates a violation of the named invariant.
    pub fn new(invariant: &'static str, detail: impl Into<String>) -> Self {
        Self {
            invariant,
            detail: detail.into(),
        }
    }

    /// The stable invariant name, e.g. `"framework::pivot_partition"`.
    pub fn invariant(&self) -> &'static str {
        self.invariant
    }

    /// The human-readable description of the damage.
    pub fn detail(&self) -> &str {
        &self.detail
    }
}

impl fmt::Display for InvariantViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invariant {} violated: {}", self.invariant, self.detail)
    }
}

impl std::error::Error for InvariantViolation {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn violation_display_names_the_invariant() {
        let v = InvariantViolation::new("framework::pivot_partition", "object 7 stored twice");
        assert_eq!(v.invariant(), "framework::pivot_partition");
        assert_eq!(
            v.to_string(),
            "invariant framework::pivot_partition violated: object 7 stored twice"
        );
    }
}
