//! The naive solutions of the paper's introduction, for every problem.
//!
//! > "Queries like the above can be answered by two naive approaches:
//! > (Structured only) Retrieve all the data objects satisfying the
//! > structured condition and then eliminate those whose documents do
//! > not contain all the keywords. (Keywords only) Retrieve all the
//! > objects whose documents include all the keywords and then
//! > eliminate those that do not satisfy the remaining conditions."
//!
//! Both can examine `Θ(N)` candidates even when nothing is reported —
//! the drawback the paper's indexes remove. They are implemented here as
//! honest, well-tuned baselines (inverted index with galloping
//! intersection; a real kd-tree) for the comparison experiments, plus a
//! [`FullScan`] that doubles as the correctness oracle.

use std::ops::ControlFlow;

use skq_geom::{Ball, ConvexPolytope, KdTree, Point, Rect};
use skq_invidx::{InvertedIndex, Keyword};

use crate::dataset::Dataset;
use crate::error::{validate, SkqError};
use crate::sink::ResultSink;

/// The one brute-force ORP-KW oracle: scans the whole dataset and
/// reports, in ascending id order, every object inside `q` whose
/// document contains all `keywords`. Shared by the correctness tests of
/// every rectangle-answering module and by the planner's cost-model
/// grounding, so there is exactly one definition of "the right answer".
pub fn brute_rect(dataset: &Dataset, q: &Rect, keywords: &[Keyword]) -> Vec<u32> {
    (0..dataset.len() as u32)
        .filter(|&i| {
            dataset.doc(i as usize).contains_all(keywords) && q.contains(dataset.point(i as usize))
        })
        .collect()
}

/// "Keywords only": intersect the postings lists, then filter by the
/// geometric predicate.
pub struct KeywordsFirst {
    inv: InvertedIndex,
    dataset: Dataset,
}

impl KeywordsFirst {
    /// Builds the inverted index over the dataset's documents.
    pub fn build(dataset: &Dataset) -> Self {
        Self {
            inv: InvertedIndex::build(dataset.docs()),
            dataset: dataset.clone(),
        }
    }

    /// The candidates examined by any query: `|D(w₁…w_k)|`.
    pub fn candidates(&self, keywords: &[Keyword]) -> usize {
        self.inv.intersect(keywords).len()
    }

    /// ORP-KW query.
    pub fn query_rect(&self, q: &Rect, keywords: &[Keyword]) -> Vec<u32> {
        self.inv
            .intersect(keywords)
            .into_iter()
            .filter(|&i| q.contains(self.dataset.point(i as usize)))
            .collect()
    }

    /// ORP-KW query, streaming survivors into `sink` (the postings
    /// intersection is still materialized — that is the strategy — but
    /// the reporting side honours limits and counting).
    pub fn query_rect_sink<S: ResultSink>(
        &self,
        q: &Rect,
        keywords: &[Keyword],
        sink: &mut S,
    ) -> ControlFlow<()> {
        for i in self.inv.intersect(keywords) {
            if q.contains(self.dataset.point(i as usize)) {
                sink.emit(i)?;
            }
        }
        ControlFlow::Continue(())
    }

    /// LC-KW / SP-KW query.
    pub fn query_polytope(&self, q: &ConvexPolytope, keywords: &[Keyword]) -> Vec<u32> {
        self.inv
            .intersect(keywords)
            .into_iter()
            .filter(|&i| q.contains(self.dataset.point(i as usize)))
            .collect()
    }

    /// SRP-KW query.
    pub fn query_ball(&self, q: &Ball, keywords: &[Keyword]) -> Vec<u32> {
        self.inv
            .intersect(keywords)
            .into_iter()
            .filter(|&i| q.contains(self.dataset.point(i as usize)))
            .collect()
    }

    /// L∞NN-KW query: rank all keyword matches by distance.
    pub fn nn_linf(&self, q: &Point, t: usize, keywords: &[Keyword]) -> Vec<u32> {
        let mut ids = self.inv.intersect(keywords);
        ids.sort_unstable_by(|&a, &b| {
            self.dataset
                .point(a as usize)
                .linf(q)
                .total_cmp(&self.dataset.point(b as usize).linf(q))
                .then(a.cmp(&b))
        });
        ids.truncate(t);
        ids
    }

    /// L2NN-KW query: rank all keyword matches by distance.
    pub fn nn_l2(&self, q: &Point, t: usize, keywords: &[Keyword]) -> Vec<u32> {
        let mut ids = self.inv.intersect(keywords);
        ids.sort_unstable_by(|&a, &b| {
            self.dataset
                .point(a as usize)
                .l2_sq(q)
                .total_cmp(&self.dataset.point(b as usize).l2_sq(q))
                .then(a.cmp(&b))
        });
        ids.truncate(t);
        ids
    }

    /// Index space in 64-bit words (postings + documents).
    pub fn space_words(&self) -> usize {
        self.inv.input_size() * 2
    }
}

/// "Structured only": evaluate the geometric predicate with a kd-tree,
/// then filter by document containment.
pub struct StructuredFirst {
    tree: KdTree,
    dataset: Dataset,
}

impl StructuredFirst {
    /// Builds the kd-tree over the dataset's points.
    pub fn build(dataset: &Dataset) -> Self {
        Self {
            tree: KdTree::build(dataset.points().to_vec()),
            dataset: dataset.clone(),
        }
    }

    fn filter_keywords(&self, ids: Vec<usize>, keywords: &[Keyword]) -> Vec<u32> {
        ids.into_iter()
            .filter(|&i| self.dataset.doc(i).contains_all(keywords))
            .map(|i| i as u32)
            .collect()
    }

    /// The candidates a rectangle query examines: `|q ∩ D|`.
    pub fn candidates_rect(&self, q: &Rect) -> usize {
        self.tree.range_report(q).len()
    }

    /// ORP-KW query.
    pub fn query_rect(&self, q: &Rect, keywords: &[Keyword]) -> Vec<u32> {
        self.filter_keywords(self.tree.range_report(q), keywords)
    }

    /// ORP-KW query, streaming survivors into `sink`.
    pub fn query_rect_sink<S: ResultSink>(
        &self,
        q: &Rect,
        keywords: &[Keyword],
        sink: &mut S,
    ) -> ControlFlow<()> {
        for i in self.tree.range_report(q) {
            if self.dataset.doc(i).contains_all(keywords) {
                sink.emit(i as u32)?;
            }
        }
        ControlFlow::Continue(())
    }

    /// LC-KW / SP-KW query.
    pub fn query_polytope(&self, q: &ConvexPolytope, keywords: &[Keyword]) -> Vec<u32> {
        self.filter_keywords(self.tree.report_polytope(q), keywords)
    }

    /// SRP-KW query: range-report the bounding box of the ball, then
    /// filter exactly.
    pub fn query_ball(&self, q: &Ball, keywords: &[Keyword]) -> Vec<u32> {
        let bbox = Rect::linf_ball(q.center(), q.radius());
        self.tree
            .range_report(&bbox)
            .into_iter()
            .filter(|&i| {
                q.contains(self.dataset.point(i)) && self.dataset.doc(i).contains_all(keywords)
            })
            .map(|i| i as u32)
            .collect()
    }

    /// L∞NN-KW query: pull nearest neighbours in growing batches until
    /// `t` of them match the keywords.
    pub fn nn_linf(&self, q: &Point, t: usize, keywords: &[Keyword]) -> Vec<u32> {
        self.nn_generic(q, t, keywords, true)
    }

    /// L2NN-KW query, same doubling strategy.
    pub fn nn_l2(&self, q: &Point, t: usize, keywords: &[Keyword]) -> Vec<u32> {
        self.nn_generic(q, t, keywords, false)
    }

    fn nn_generic(&self, q: &Point, t: usize, keywords: &[Keyword], linf: bool) -> Vec<u32> {
        if t == 0 {
            return Vec::new();
        }
        let n = self.dataset.len();
        let mut batch = t.max(1);
        loop {
            let ids = if linf {
                self.tree.knn_linf(q, batch)
            } else {
                self.tree.knn_l2(q, batch)
            };
            let exhausted = ids.len() < batch;
            let matched: Vec<u32> = ids
                .into_iter()
                .filter(|&i| self.dataset.doc(i).contains_all(keywords))
                .map(|i| i as u32)
                .collect();
            if matched.len() >= t || exhausted || batch >= n {
                let mut out = matched;
                out.truncate(t);
                return out;
            }
            batch = (batch * 2).min(n);
        }
    }

    /// Index space in 64-bit words (tree skeleton + points).
    pub fn space_words(&self) -> usize {
        self.dataset.len() * (self.dataset.dim() + 3)
    }
}

/// The trivial baseline and test oracle: scan everything.
pub struct FullScan {
    dataset: Dataset,
}

impl FullScan {
    /// Wraps a dataset.
    pub fn new(dataset: &Dataset) -> Self {
        Self {
            dataset: dataset.clone(),
        }
    }

    /// ORP-KW by scan (delegates to the shared [`brute_rect`] oracle).
    pub fn query_rect(&self, q: &Rect, keywords: &[Keyword]) -> Vec<u32> {
        brute_rect(&self.dataset, q, keywords)
    }

    /// Fallible oracle query: validates the rectangle, then scans.
    /// Gives harnesses comparing `try_` surfaces an oracle with the
    /// same error contract as the indexes under test.
    ///
    /// # Errors
    ///
    /// `SkqError::InvalidQuery` on a dimension mismatch or NaN bounds.
    pub fn try_query_rect_into(
        &self,
        q: &Rect,
        keywords: &[Keyword],
        out: &mut Vec<u32>,
    ) -> Result<(), SkqError> {
        validate::rect_query(q, self.dataset.dim())?;
        out.extend(brute_rect(&self.dataset, q, keywords));
        Ok(())
    }

    /// LC-KW / SP-KW by scan.
    pub fn query_polytope(&self, q: &ConvexPolytope, keywords: &[Keyword]) -> Vec<u32> {
        self.scan(|p| q.contains(p), keywords)
    }

    /// SRP-KW by scan.
    pub fn query_ball(&self, q: &Ball, keywords: &[Keyword]) -> Vec<u32> {
        self.scan(|p| q.contains(p), keywords)
    }

    /// L∞NN-KW by scan.
    pub fn nn_linf(&self, q: &Point, t: usize, keywords: &[Keyword]) -> Vec<u32> {
        let mut ids = self.scan(|_| true, keywords);
        ids.sort_unstable_by(|&a, &b| {
            self.dataset
                .point(a as usize)
                .linf(q)
                .total_cmp(&self.dataset.point(b as usize).linf(q))
                .then(a.cmp(&b))
        });
        ids.truncate(t);
        ids
    }

    /// L2NN-KW by scan.
    pub fn nn_l2(&self, q: &Point, t: usize, keywords: &[Keyword]) -> Vec<u32> {
        let mut ids = self.scan(|_| true, keywords);
        ids.sort_unstable_by(|&a, &b| {
            self.dataset
                .point(a as usize)
                .l2_sq(q)
                .total_cmp(&self.dataset.point(b as usize).l2_sq(q))
                .then(a.cmp(&b))
        });
        ids.truncate(t);
        ids
    }

    fn scan(&self, geom: impl Fn(&Point) -> bool, keywords: &[Keyword]) -> Vec<u32> {
        (0..self.dataset.len() as u32)
            .filter(|&i| {
                self.dataset.doc(i as usize).contains_all(keywords)
                    && geom(self.dataset.point(i as usize))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn dataset(seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        Dataset::from_parts(
            (0..250)
                .map(|_| {
                    let p =
                        Point::new2(rng.gen_range(-50..50) as f64, rng.gen_range(-50..50) as f64);
                    let doc: Vec<Keyword> = (0..rng.gen_range(1..5))
                        .map(|_| rng.gen_range(0..8))
                        .collect();
                    (p, doc)
                })
                .collect(),
        )
    }

    #[test]
    fn baselines_agree_on_rect_queries() {
        let data = dataset(1);
        let kf = KeywordsFirst::build(&data);
        let sf = StructuredFirst::build(&data);
        let fs = FullScan::new(&data);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..50 {
            let x: f64 = rng.gen_range(-60.0..60.0);
            let y: f64 = rng.gen_range(-60.0..60.0);
            let q = Rect::new(&[x, y], &[x + 30.0, y + 30.0]);
            let w1 = rng.gen_range(0..8);
            let w2 = (w1 + 1 + rng.gen_range(0..7)) % 8;
            let mut a = kf.query_rect(&q, &[w1, w2]);
            let mut b = sf.query_rect(&q, &[w1, w2]);
            let c = fs.query_rect(&q, &[w1, w2]);
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, c);
            assert_eq!(b, c);
        }
    }

    #[test]
    fn baselines_agree_on_ball_queries() {
        let data = dataset(11);
        let kf = KeywordsFirst::build(&data);
        let sf = StructuredFirst::build(&data);
        let fs = FullScan::new(&data);
        let mut rng = StdRng::seed_from_u64(12);
        for _ in 0..40 {
            let q = Ball::new(
                Point::new2(rng.gen_range(-60..60) as f64, rng.gen_range(-60..60) as f64),
                rng.gen_range(0..40) as f64,
            );
            let w1 = rng.gen_range(0..8);
            let w2 = (w1 + 1 + rng.gen_range(0..7)) % 8;
            let mut a = kf.query_ball(&q, &[w1, w2]);
            let mut b = sf.query_ball(&q, &[w1, w2]);
            let c = fs.query_ball(&q, &[w1, w2]);
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, c);
            assert_eq!(b, c);
        }
    }

    #[test]
    fn baselines_agree_on_nn_queries() {
        let data = dataset(21);
        let kf = KeywordsFirst::build(&data);
        let sf = StructuredFirst::build(&data);
        let fs = FullScan::new(&data);
        let mut rng = StdRng::seed_from_u64(22);
        for _ in 0..30 {
            let q = Point::new2(rng.gen_range(-60..60) as f64, rng.gen_range(-60..60) as f64);
            let t = rng.gen_range(1..6);
            let w1 = rng.gen_range(0..8);
            let w2 = (w1 + 1 + rng.gen_range(0..7)) % 8;
            let a = kf.nn_linf(&q, t, &[w1, w2]);
            let b = sf.nn_linf(&q, t, &[w1, w2]);
            let c = fs.nn_linf(&q, t, &[w1, w2]);
            assert_eq!(a, c);
            assert_eq!(b, c);
            let a = kf.nn_l2(&q, t, &[w1, w2]);
            let b = sf.nn_l2(&q, t, &[w1, w2]);
            let c = fs.nn_l2(&q, t, &[w1, w2]);
            assert_eq!(a, c);
            assert_eq!(b, c);
        }
    }
}
