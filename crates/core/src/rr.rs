//! Rectangle reporting with keywords (RR-KW; Corollary 3).
//!
//! The data are `d`-rectangles; a query reports the data rectangles
//! intersecting a query `d`-rectangle whose documents contain all `k`
//! keywords. Corollary 3's reduction: the rectangle
//! `[a₁,b₁] × … × [a_d,b_d]` intersects `[x₁,y₁] × … × [x_d,y_d]` iff
//! the `2d`-dimensional point `(a₁, b₁, …, a_d, b_d)` lies in
//! `(−∞, y₁] × [x₁, ∞) × … × (−∞, y_d] × [x_d, ∞)` — so a
//! `2d`-dimensional ORP-KW index answers it. For `d = 1` (temporal
//! keyword search: documents with lifespan intervals) this lands in the
//! `O(N)`-space Theorem 1 regime.

use std::ops::ControlFlow;

use skq_geom::{Point, Rect};
use skq_invidx::{Document, Keyword};

use crate::dataset::Dataset;
use crate::error::{validate, SkqError};
use crate::failpoints;
use crate::lc::LcKwIndex;
use crate::orp::OrpKwIndex;
use crate::persist::{self, Persist, SCHEMA_VERSION};
use crate::sink::{DedupSink, LimitSink, ResultSink};
use crate::stats::QueryStats;

/// The RR-KW index over a set of `d`-rectangles with documents.
///
/// # Example
///
/// ```
/// use skq_core::rr::RrKwIndex;
/// use skq_geom::Rect;
///
/// // Document versions with lifespans (days).
/// let versions = vec![
///     (Rect::new(&[0.0], &[10.0]), vec![0, 1]),
///     (Rect::new(&[20.0], &[30.0]), vec![0, 1]),
/// ];
/// let index = RrKwIndex::build(&versions, 2);
/// // Alive during days [5, 8] with both keywords:
/// assert_eq!(index.query(&Rect::new(&[5.0], &[8.0]), &[0, 1]), vec![0]);
/// ```
pub struct RrKwIndex {
    orp: OrpKwIndex,
    dim: usize,
    /// Number of data rectangles — the id universe for query-time
    /// deduplication.
    len: usize,
}

impl RrKwIndex {
    /// Builds the index from `(rectangle, keywords)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if the input is empty, dimensions are inconsistent or
    /// exceed 4 (the flattened points would exceed the supported 8
    /// dimensions), or `k < 2`.
    pub fn build(rects: &[(Rect, Vec<Keyword>)], k: usize) -> Self {
        Self::try_build(rects, k).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`build`](Self::build).
    ///
    /// # Errors
    ///
    /// `SkqError::InvalidDataset` on empty input, inconsistent or
    /// unsupported dimensions, or invalid rectangle data;
    /// `SkqError::InvalidQuery` if `k` is outside `2..=16`.
    pub fn try_build(rects: &[(Rect, Vec<Keyword>)], k: usize) -> Result<Self, SkqError> {
        validate::build_k(k)?;
        failpoints::check("rr::build")?;
        let dataset = flatten_rects(rects)?;
        Ok(Self {
            orp: OrpKwIndex::try_build(&dataset, k)?,
            dim: rects[0].0.dim(),
            len: rects.len(),
        })
    }

    /// The rectangle dimensionality `d`.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The number of query keywords the index was built for.
    pub fn k(&self) -> usize {
        self.orp.k()
    }

    /// Reports ids of data rectangles intersecting `q` whose documents
    /// contain all `keywords`.
    pub fn query(&self, q: &Rect, keywords: &[Keyword]) -> Vec<u32> {
        self.query_with_stats(q, keywords).0
    }

    /// Like [`query`](Self::query) with statistics.
    pub fn query_with_stats(&self, q: &Rect, keywords: &[Keyword]) -> (Vec<u32>, QueryStats) {
        let mut out = Vec::new();
        let mut stats = QueryStats::new();
        self.query_limited(q, keywords, usize::MAX, &mut out, &mut stats);
        (out, stats)
    }

    /// Limited-output variant (threshold queries on intersecting
    /// rectangles).
    pub fn query_limited(
        &self,
        q: &Rect,
        keywords: &[Keyword],
        limit: usize,
        out: &mut Vec<u32>,
        stats: &mut QueryStats,
    ) {
        let mut sink = LimitSink::new(&mut *out, limit);
        let _ = self.query_sink(q, keywords, &mut sink, stats);
        stats.emitted += sink.emitted();
        stats.truncated |= sink.truncated();
    }

    /// Fallible query: validates the query rectangle and keyword set,
    /// then appends matching ids to `out`.
    ///
    /// # Errors
    ///
    /// `SkqError::InvalidQuery` on a dimension mismatch, NaN bounds, or
    /// a keyword set that is not exactly `k` distinct keywords.
    pub fn try_query_into(
        &self,
        q: &Rect,
        keywords: &[Keyword],
        out: &mut Vec<u32>,
    ) -> Result<QueryStats, SkqError> {
        validate::rect_query(q, self.dim)?;
        validate::distinct_keywords(keywords, self.k())?;
        let mut stats = QueryStats::new();
        self.query_limited(q, keywords, usize::MAX, out, &mut stats);
        Ok(stats)
    }

    /// Streaming variant. The `2d`-dimensional flattening maps each
    /// rectangle to a single point, so a correct ORP-KW backend reports
    /// each id at most once; a bitset [`DedupSink`] guards the reduction
    /// anyway (one bit per rectangle), keeping the set semantics of the
    /// composed index independent of backend internals.
    pub fn query_sink<S: ResultSink>(
        &self,
        q: &Rect,
        keywords: &[Keyword],
        sink: &mut S,
        stats: &mut QueryStats,
    ) -> ControlFlow<()> {
        assert_eq!(q.dim(), self.dim, "query dimension mismatch");
        let mut dedup = DedupSink::new(self.len, &mut *sink);
        self.orp
            .query_sink(&lift_query(q), keywords, &mut dedup, stats)
    }

    /// Index space in 64-bit words.
    pub fn space_words(&self) -> usize {
        self.orp.space_words()
    }

    /// Deep structural validation (`debug-invariants`; DESIGN.md §12):
    /// the Corollary 3 flattening must have doubled the dimension, and
    /// the inner ORP-KW index must itself validate.
    ///
    /// # Errors
    ///
    /// The first violated invariant, by name.
    #[cfg(feature = "debug-invariants")]
    pub fn validate(&self) -> Result<(), crate::invariants::InvariantViolation> {
        if self.orp.dim() != 2 * self.dim {
            return Err(crate::invariants::InvariantViolation::new(
                "rr::lifting",
                format!(
                    "inner index is {}D, expected {} for {}D rectangles",
                    self.orp.dim(),
                    2 * self.dim,
                    self.dim
                ),
            ));
        }
        self.orp.validate()
    }
}

impl Persist for RrKwIndex {
    fn to_pages(&self, w: &mut persist::PageWriter) -> Result<(), SkqError> {
        let mut head = Vec::new();
        persist::put_uv(&mut head, self.dim as u64);
        persist::put_uv(&mut head, self.len as u64);
        w.page(persist::kind::RR_HEAD, SCHEMA_VERSION, head);
        self.orp.to_pages(w)
    }

    fn from_pages(r: &mut persist::PageReader<'_>) -> Result<Self, SkqError> {
        let fail = |detail: String| SkqError::Corrupted {
            section: "rr".into(),
            detail,
        };
        let mut head = r.page(persist::kind::RR_HEAD, SCHEMA_VERSION, "rr")?;
        let dim = head.usizev()?;
        let len = head.usizev()?;
        head.end()?;
        let orp = OrpKwIndex::from_pages(r)?;
        if orp.dim() != 2 * dim {
            return Err(fail(format!(
                "inner index is {}D, expected {} for {dim}D rectangles",
                orp.dim(),
                2 * dim
            )));
        }
        // The flattening maps each rectangle to one point, so the inner
        // object count is the id universe the dedup bitset is sized by.
        if orp.kd_num_objects() != Some(len) {
            return Err(fail(format!(
                "head declares {len} rectangles, inner index holds {:?}",
                orp.kd_num_objects()
            )));
        }
        Ok(Self { orp, dim, len })
    }
}

/// The linear-space RR-KW variant of the paper's footnote 3: route the
/// flattened `2d`-dimensional points through LC-KW (Theorem 5) instead
/// of the dimension-reduction tree, trading a `log N` additive query
/// term for `O(N)` space at any `d ≤ k/2`.
pub struct RrKwLinear {
    lc: LcKwIndex,
    dim: usize,
}

impl RrKwLinear {
    /// Builds the linear-space index from `(rectangle, keywords)` pairs.
    ///
    /// # Panics
    ///
    /// Panics on empty input or unsupported dimensions (see
    /// [`RrKwIndex::build`]).
    pub fn build(rects: &[(Rect, Vec<Keyword>)], k: usize) -> Self {
        Self::try_build(rects, k).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`build`](Self::build).
    ///
    /// # Errors
    ///
    /// Same conditions as [`RrKwIndex::try_build`].
    pub fn try_build(rects: &[(Rect, Vec<Keyword>)], k: usize) -> Result<Self, SkqError> {
        validate::build_k(k)?;
        failpoints::check("rr::build")?;
        let dataset = flatten_rects(rects)?;
        Ok(Self {
            lc: LcKwIndex::try_build(&dataset, k)?,
            dim: rects[0].0.dim(),
        })
    }

    /// Reports ids of data rectangles intersecting `q` whose documents
    /// contain all `keywords`.
    pub fn query(&self, q: &Rect, keywords: &[Keyword]) -> Vec<u32> {
        assert_eq!(q.dim(), self.dim, "query dimension mismatch");
        self.lc.query_rect(&lift_query(q), keywords)
    }

    /// Fallible [`query`](Self::query): validates inputs and appends
    /// matching ids to `out`.
    ///
    /// # Errors
    ///
    /// `SkqError::InvalidQuery` on a dimension mismatch, NaN bounds, or
    /// a keyword set that is not exactly `k` distinct keywords.
    pub fn try_query_into(
        &self,
        q: &Rect,
        keywords: &[Keyword],
        out: &mut Vec<u32>,
    ) -> Result<QueryStats, SkqError> {
        validate::rect_query(q, self.dim)?;
        validate::distinct_keywords(keywords, self.lc.k())?;
        out.extend(self.lc.query_rect(&lift_query(q), keywords));
        Ok(QueryStats::new())
    }

    /// Index space in 64-bit words (linear in `N`).
    pub fn space_words(&self) -> usize {
        self.lc.space_words()
    }

    /// Deep structural validation (`debug-invariants`; DESIGN.md §12):
    /// delegates to the inner LC-KW index.
    ///
    /// # Errors
    ///
    /// The first violated invariant, by name.
    #[cfg(feature = "debug-invariants")]
    pub fn validate(&self) -> Result<(), crate::invariants::InvariantViolation> {
        self.lc.validate()
    }
}

/// Validates a rectangle input set and flattens it into the
/// `2d`-dimensional point dataset of Corollary 3's reduction.
fn flatten_rects(rects: &[(Rect, Vec<Keyword>)]) -> Result<Dataset, SkqError> {
    if rects.is_empty() {
        return Err(SkqError::InvalidDataset(
            "RR-KW needs data rectangles".into(),
        ));
    }
    let dim = rects[0].0.dim();
    if dim > 4 {
        return Err(SkqError::InvalidDataset(
            "flattened dimension 2d must be at most 8".into(),
        ));
    }
    let mut parts = Vec::with_capacity(rects.len());
    for (id, (r, kws)) in rects.iter().enumerate() {
        if r.dim() != dim {
            return Err(SkqError::InvalidDataset(format!(
                "inconsistent rectangle dimensions: rectangle {id} is {}-dimensional, rectangle 0 is {dim}-dimensional",
                r.dim()
            )));
        }
        parts.push((flatten(r), kws.clone()));
    }
    Dataset::try_from_parts(parts)
}

/// Flattens `[a₁,b₁] × …` to the point `(a₁, b₁, …)`.
fn flatten(r: &Rect) -> Point {
    let mut coords = Vec::with_capacity(2 * r.dim());
    for i in 0..r.dim() {
        let (a, b) = r.interval(i);
        coords.push(a);
        coords.push(b);
    }
    Point::new(&coords)
}

/// Maps the query `[x₁,y₁] × …` to `(−∞, y₁] × [x₁, ∞) × …`.
fn lift_query(q: &Rect) -> Rect {
    let mut lo = Vec::with_capacity(2 * q.dim());
    let mut hi = Vec::with_capacity(2 * q.dim());
    for i in 0..q.dim() {
        let (x, y) = q.interval(i);
        lo.push(f64::NEG_INFINITY); // a_i ≤ y_i
        hi.push(y);
        lo.push(x); // b_i ≥ x_i
        hi.push(f64::INFINITY);
    }
    Rect::new(&lo, &hi)
}

/// A convenience brute-force reference used by tests and the harness.
pub fn rr_bruteforce(rects: &[(Rect, Vec<Keyword>)], q: &Rect, keywords: &[Keyword]) -> Vec<u32> {
    rects
        .iter()
        .enumerate()
        .filter(|(_, (r, kws))| {
            r.intersects(q) && {
                let doc = Document::new(kws.clone());
                doc.contains_all(keywords)
            }
        })
        .map(|(i, _)| i as u32)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn random_rects(n: usize, dim: usize, vocab: u32, seed: u64) -> Vec<(Rect, Vec<Keyword>)> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let mut lo = Vec::new();
                let mut hi = Vec::new();
                for _ in 0..dim {
                    let a: f64 = rng.gen_range(0.0..100.0);
                    let len: f64 = rng.gen_range(0.0..15.0);
                    lo.push(a);
                    hi.push(a + len);
                }
                let doc: Vec<Keyword> = (0..rng.gen_range(1..5))
                    .map(|_| rng.gen_range(0..vocab))
                    .collect();
                (Rect::new(&lo, &hi), doc)
            })
            .collect()
    }

    #[test]
    fn intervals_1d_match_bruteforce() {
        // Temporal keyword search: document lifespans on a timeline.
        let rects = random_rects(300, 1, 8, 1);
        let index = RrKwIndex::build(&rects, 2);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..80 {
            let a: f64 = rng.gen_range(-5.0..105.0);
            let b: f64 = a + rng.gen_range(0.0..30.0);
            let q = Rect::new(&[a], &[b]);
            let w1 = rng.gen_range(0..8);
            let w2 = (w1 + 1 + rng.gen_range(0..7)) % 8;
            let mut got = index.query(&q, &[w1, w2]);
            got.sort_unstable();
            assert_eq!(got, rr_bruteforce(&rects, &q, &[w1, w2]));
        }
    }

    #[test]
    fn boxes_2d_match_bruteforce() {
        let rects = random_rects(250, 2, 8, 11);
        let index = RrKwIndex::build(&rects, 2);
        let mut rng = StdRng::seed_from_u64(12);
        for _ in 0..50 {
            let mut lo = Vec::new();
            let mut hi = Vec::new();
            for _ in 0..2 {
                let a: f64 = rng.gen_range(-5.0..105.0);
                lo.push(a);
                hi.push(a + rng.gen_range(0.0..40.0));
            }
            let q = Rect::new(&lo, &hi);
            let w1 = rng.gen_range(0..8);
            let w2 = (w1 + 1 + rng.gen_range(0..7)) % 8;
            let mut got = index.query(&q, &[w1, w2]);
            got.sort_unstable();
            assert_eq!(got, rr_bruteforce(&rects, &q, &[w1, w2]));
        }
    }

    #[test]
    fn limited_query_is_truncated_subset() {
        let rects = random_rects(250, 1, 4, 31);
        let index = RrKwIndex::build(&rects, 2);
        let q = Rect::new(&[0.0], &[100.0]);
        let full = rr_bruteforce(&rects, &q, &[0, 1]);
        assert!(full.len() > 4, "need enough matches for the test");
        let mut out = Vec::new();
        let mut stats = QueryStats::new();
        index.query_limited(&q, &[0, 1], 4, &mut out, &mut stats);
        assert_eq!(out.len(), 4);
        assert_eq!(stats.emitted, 4);
        assert!(stats.truncated);
        assert!(out.iter().all(|i| full.contains(i)));
    }

    #[test]
    fn touching_rectangles_count_as_intersecting() {
        let rects = vec![
            (Rect::new(&[0.0], &[1.0]), vec![0, 1]),
            (Rect::new(&[1.0], &[2.0]), vec![0, 1]),
            (Rect::new(&[2.5], &[3.0]), vec![0, 1]),
        ];
        let index = RrKwIndex::build(&rects, 2);
        let q = Rect::new(&[1.0], &[1.0]); // degenerate point query
        let mut got = index.query(&q, &[0, 1]);
        got.sort_unstable();
        assert_eq!(got, vec![0, 1]);
    }

    #[test]
    fn linear_variant_matches_dimred_variant() {
        // Footnote 3: the LC route answers the same queries in O(N)
        // space; here we check answer equality against the default
        // (dimension-reduction) route on 2D boxes (flattened to 4D).
        let rects = random_rects(200, 2, 8, 21);
        let a = RrKwIndex::build(&rects, 2);
        let b = RrKwLinear::build(&rects, 2);
        let mut rng = StdRng::seed_from_u64(22);
        for _ in 0..40 {
            let mut lo = Vec::new();
            let mut hi = Vec::new();
            for _ in 0..2 {
                let s: f64 = rng.gen_range(-5.0..105.0);
                lo.push(s);
                hi.push(s + rng.gen_range(0.0..40.0));
            }
            let q = Rect::new(&lo, &hi);
            let w1 = rng.gen_range(0..8);
            let w2 = (w1 + 1 + rng.gen_range(0..7)) % 8;
            let mut x = a.query(&q, &[w1, w2]);
            let mut y = b.query(&q, &[w1, w2]);
            x.sort_unstable();
            y.sort_unstable();
            assert_eq!(x, y);
        }
    }

    #[test]
    fn try_build_and_query_match_legacy() {
        let rects = random_rects(150, 1, 6, 41);
        let legacy = RrKwIndex::build(&rects, 2);
        let fallible = RrKwIndex::try_build(&rects, 2).unwrap();
        let q = Rect::new(&[10.0], &[60.0]);
        let mut out = Vec::new();
        let stats = fallible.try_query_into(&q, &[0, 1], &mut out).unwrap();
        let mut legacy_out = legacy.query(&q, &[0, 1]);
        out.sort_unstable();
        legacy_out.sort_unstable();
        assert_eq!(out, legacy_out);
        assert_eq!(stats.emitted, out.len() as u64);
    }

    #[test]
    fn try_surfaces_reject_invalid_input() {
        assert!(matches!(
            RrKwIndex::try_build(&[], 2),
            Err(SkqError::InvalidDataset(_))
        ));
        let rects = random_rects(30, 1, 4, 43);
        assert!(matches!(
            RrKwIndex::try_build(&rects, 1),
            Err(SkqError::InvalidQuery(_))
        ));
        let index = RrKwIndex::try_build(&rects, 2).unwrap();
        let mut out = Vec::new();
        // Duplicate keywords: only one distinct value.
        let dup = index.try_query_into(&Rect::new(&[0.0], &[1.0]), &[3, 3], &mut out);
        assert!(matches!(dup, Err(SkqError::InvalidQuery(ref m)) if m.contains("distinct")));
        // Wrong dimensionality.
        let wrong_dim =
            index.try_query_into(&Rect::new(&[0.0, 0.0], &[1.0, 1.0]), &[0, 1], &mut out);
        assert!(matches!(wrong_dim, Err(SkqError::InvalidQuery(_))));
        // Linear variant shares the validation path.
        let linear = RrKwLinear::try_build(&rects, 2).unwrap();
        let wrong = linear.try_query_into(&Rect::full(2), &[0, 1], &mut out);
        assert!(matches!(wrong, Err(SkqError::InvalidQuery(_))));
        assert!(out.is_empty());
    }

    #[test]
    fn keyword_filtering_applies() {
        let rects = vec![
            (Rect::new(&[0.0], &[10.0]), vec![0]),
            (Rect::new(&[0.0], &[10.0]), vec![0, 1]),
        ];
        let index = RrKwIndex::build(&rects, 2);
        assert_eq!(index.query(&Rect::new(&[5.0], &[6.0]), &[0, 1]), vec![1]);
    }
}
