//! A fast hash map for small integer keys.
//!
//! The query algorithm performs `k` large-keyword lookups at *every*
//! visited node; with the standard library's SipHash that dominates the
//! per-node constant. Keys here are `u32` keyword ids, so a
//! multiply-rotate hash (the FxHash construction used across rustc) is
//! collision-adequate and several times faster.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// FxHash-style hasher: word-at-a-time multiply-rotate. Not DoS
/// resistant — fine for internal integer keys.
#[derive(Default)]
pub struct FxHasher {
    hash: u64,
}

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.add(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(u64::from(v));
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }
}

/// A `HashMap` with the fast hasher.
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_roundtrip() {
        let mut m: FxHashMap<u32, u32> = FxHashMap::default();
        for i in 0..10_000u32 {
            m.insert(i, i * 7);
        }
        for i in 0..10_000u32 {
            assert_eq!(m.get(&i), Some(&(i * 7)));
        }
        assert_eq!(m.get(&10_001), None);
    }

    #[test]
    fn hash_distributes() {
        // Sequential keys should not collapse into few buckets: check
        // that low bits vary.
        use std::hash::BuildHasher;
        let bh = BuildHasherDefault::<FxHasher>::default();
        let mut low_bits = std::collections::HashSet::new();
        for i in 0..256u32 {
            let mut h = bh.build_hasher();
            h.write_u32(i);
            low_bits.insert(h.finish() & 0xff);
        }
        assert!(
            low_bits.len() > 128,
            "only {} distinct low bytes",
            low_bits.len()
        );
    }
}
