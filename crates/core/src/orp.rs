//! Orthogonal range reporting with keywords (ORP-KW; Theorems 1–2).
//!
//! Given a `d`-rectangle `q` and keywords `w₁, …, w_k`, report
//! `q ∩ D(w₁, …, w_k)`. For `d ≤ 2` the index is the kd-tree
//! transformation of §3 built in *rank space* (Step 4), achieving
//! `O(N)` space and `O(N^{1−1/k}(1 + OUT^{1/k}))` query time
//! (Theorem 1). For `d ≥ 3` it is the dimension-reduction tree of §4,
//! with an `O(log log N)` space blow-up per extra dimension
//! (Theorem 2).

use std::ops::ControlFlow;

use skq_geom::{RankSpace, Rect};
use skq_invidx::Keyword;

use crate::dataset::Dataset;
use crate::dimred::DimRedTree;
use crate::error::{validate, SkqError};
use crate::failpoints;
use crate::framework::{FrameworkConfig, KdPartitioner, TransformedIndex};
use crate::persist::{self, Persist, SCHEMA_VERSION};
use crate::sink::{CountSink, LimitSink, ResultSink};
use crate::stats::QueryStats;
use crate::telemetry;

enum Inner {
    /// Theorem 1: kd-tree framework over rank-space coordinates.
    Kd {
        rank: RankSpace,
        tree: TransformedIndex<KdPartitioner>,
    },
    /// Theorem 2: dimension-reduction tree.
    DimRed(Box<DimRedTree>),
}

/// The ORP-KW index.
pub struct OrpKwIndex {
    inner: Inner,
    dim: usize,
    k: usize,
}

impl OrpKwIndex {
    /// Builds the index for exactly-`k`-keyword queries.
    ///
    /// # Panics
    ///
    /// Panics with the [`try_build`](Self::try_build) error message if
    /// `k < 2` or `k > 16`.
    pub fn build(dataset: &Dataset, k: usize) -> Self {
        Self::try_build(dataset, k).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`build`](Self::build).
    ///
    /// # Errors
    ///
    /// `SkqError::InvalidQuery` if `k` is outside `2..=16`.
    pub fn try_build(dataset: &Dataset, k: usize) -> Result<Self, SkqError> {
        Self::try_build_with_budget(dataset, k, None)
    }

    /// Fallible build with a space-admission budget: if the finished
    /// index would occupy more than `max_space_words` 64-bit words, it
    /// is discarded and `SkqError::BuildBudgetExceeded` is returned.
    /// The planner's degradation ladder uses this to fall back to the
    /// linear-space engines (footnote 3) and finally the naive scan.
    ///
    /// # Errors
    ///
    /// `SkqError::InvalidQuery` if `k` is outside `2..=16`;
    /// `SkqError::BuildBudgetExceeded` if the finished index would
    /// exceed `max_space_words`.
    pub fn try_build_with_budget(
        dataset: &Dataset,
        k: usize,
        max_space_words: Option<usize>,
    ) -> Result<Self, SkqError> {
        validate::build_k(k)?;
        failpoints::check("orp::build")?;
        let _span = skq_obs::Span::enter("orp.build");
        let start = std::time::Instant::now();
        let dim = dataset.dim();
        let inner = if dim <= 2 {
            let rank = RankSpace::build(dataset.points());
            let rank_points = (0..dataset.len()).map(|i| rank.point(i)).collect();
            let weights = (0..dataset.len()).map(|i| dataset.weight(i)).collect();
            let partitioner = KdPartitioner::new(rank_points, weights);
            let tree = TransformedIndex::try_build(
                partitioner,
                dataset.docs().to_vec(),
                k,
                FrameworkConfig::default(),
            )?;
            Inner::Kd { rank, tree }
        } else {
            Inner::DimRed(Box::new(DimRedTree::build(dataset, k)))
        };
        let index = Self { inner, dim, k };
        if let Some(budget) = max_space_words {
            let needed = index.space_words();
            if needed > budget {
                return Err(SkqError::BuildBudgetExceeded { budget, needed });
            }
        }
        let (nodes, pivots) = match &index.inner {
            Inner::Kd { tree, .. } => (
                tree.num_nodes() as u64,
                tree.node_summaries().map(|(_, _, p, _)| p as u64).sum(),
            ),
            Inner::DimRed(tree) => (tree.num_nodes() as u64, 0),
        };
        telemetry::record_build(
            "orp_kw",
            start.elapsed(),
            nodes,
            pivots,
            (index.space_words() * 8) as u64,
        );
        Ok(index)
    }

    /// The number of query keywords the index was built for.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The dimensionality `d`.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Reports all objects in `q` whose documents contain all
    /// `keywords` (exactly `k` distinct keywords).
    pub fn query(&self, q: &Rect, keywords: &[Keyword]) -> Vec<u32> {
        let mut out = Vec::new();
        let mut stats = QueryStats::new();
        self.query_limited(q, keywords, usize::MAX, &mut out, &mut stats);
        out
    }

    /// Like [`query`](Self::query) but also returns execution
    /// statistics.
    pub fn query_with_stats(&self, q: &Rect, keywords: &[Keyword]) -> (Vec<u32>, QueryStats) {
        let mut out = Vec::new();
        let mut stats = QueryStats::new();
        self.query_limited(q, keywords, usize::MAX, &mut out, &mut stats);
        (out, stats)
    }

    /// Reports at most `limit` results (used by the threshold queries of
    /// Corollary 4: a query that is cut short certifies
    /// `|q ∩ D(w₁…w_k)| ≥ limit` within the `O(N^{1−1/k}·limit^{1/k})`
    /// budget).
    pub fn query_limited(
        &self,
        q: &Rect,
        keywords: &[Keyword],
        limit: usize,
        out: &mut Vec<u32>,
        stats: &mut QueryStats,
    ) {
        let mut sink = LimitSink::new(&mut *out, limit);
        let _ = self.query_sink(q, keywords, &mut sink, stats);
        stats.emitted += sink.emitted();
        stats.truncated |= sink.truncated();
    }

    /// Fallible query: validates the rectangle and keywords, then
    /// appends every match to `out` and returns the execution
    /// statistics. Equivalent to [`query`](Self::query) on valid
    /// input.
    ///
    /// # Errors
    ///
    /// `SkqError::InvalidQuery` instead of panicking on a dimension
    /// mismatch, NaN bounds, or a wrong number of distinct keywords.
    pub fn try_query_into(
        &self,
        q: &Rect,
        keywords: &[Keyword],
        out: &mut Vec<u32>,
    ) -> Result<QueryStats, SkqError> {
        validate::rect_query(q, self.dim)?;
        validate::distinct_keywords(keywords, self.k)?;
        let mut stats = QueryStats::new();
        self.query_limited(q, keywords, usize::MAX, out, &mut stats);
        Ok(stats)
    }

    /// Streaming query: every matching object id is emitted into `sink`,
    /// which decides whether to store, count, or stop. The other query
    /// methods are thin wrappers over this.
    pub fn query_sink<S: ResultSink>(
        &self,
        q: &Rect,
        keywords: &[Keyword],
        sink: &mut S,
        stats: &mut QueryStats,
    ) -> ControlFlow<()> {
        assert_eq!(q.dim(), self.dim, "query dimension mismatch");
        match &self.inner {
            Inner::Kd { rank, tree } => {
                let Some(rq) = rank.rect(q) else {
                    return ControlFlow::Continue(()); // hits no data coordinate
                };
                tree.query_sink(
                    keywords,
                    &|cell| rq.classify(cell),
                    &|o| rq.contains(&rank.point(o as usize)),
                    sink,
                    stats,
                )
            }
            Inner::DimRed(tree) => tree.query_sink(q, keywords, sink, stats),
        }
    }

    /// The number of matching objects, with no result materialization
    /// (a [`CountSink`] run).
    pub fn count(&self, q: &Rect, keywords: &[Keyword]) -> u64 {
        let mut sink = CountSink::new();
        let mut stats = QueryStats::new();
        let _ = self.query_sink(q, keywords, &mut sink, &mut stats);
        sink.count()
    }

    /// Whether at least `t` objects match (`O(N^{1−1/k} · t^{1/k})` by
    /// early termination — see the proof of Corollary 4). Allocation-free
    /// on the result side: a [`LimitSink`] over a [`CountSink`].
    pub fn count_at_least(&self, q: &Rect, keywords: &[Keyword], t: usize) -> bool {
        if t == 0 {
            return true;
        }
        let mut sink = LimitSink::new(CountSink::new(), t);
        let mut stats = QueryStats::new();
        let _ = self.query_sink(q, keywords, &mut sink, &mut stats);
        sink.emitted() >= t as u64
    }

    /// Index space in 64-bit words.
    pub fn space_words(&self) -> usize {
        match &self.inner {
            Inner::Kd { rank, tree } => {
                // Rank arrays: d sorted columns of (coord, id).
                let rank_words = rank.len() * rank.dim() * 2;
                rank_words + tree.space_words(2 * self.dim + 1)
            }
            Inner::DimRed(tree) => tree.space_words(),
        }
    }

    /// Structural invariants (delegates to the framework; trivially Ok
    /// for the dimension-reduction tree, whose invariants are asserted
    /// by its own tests).
    pub fn check_invariants(&self) -> Result<(), String> {
        match &self.inner {
            Inner::Kd { tree, .. } => tree.check_invariants(),
            Inner::DimRed(_) => Ok(()),
        }
    }

    /// Deep structural validation (`debug-invariants`; DESIGN.md §12):
    /// delegates to the kd framework or the dimension-reduction tree,
    /// each of which re-derives its invariants from the built structure.
    #[cfg(feature = "debug-invariants")]
    pub fn validate(&self) -> Result<(), crate::invariants::InvariantViolation> {
        match &self.inner {
            Inner::Kd { tree, .. } => tree.validate(),
            Inner::DimRed(tree) => tree.validate(),
        }
    }
}

/// Exposes framework diagnostics for the harness (kd case only).
impl OrpKwIndex {
    /// `(level, weight, pivots, large)` summaries of the kd framework
    /// nodes, or `None` for the dimension-reduction variant.
    pub fn kd_node_summaries(&self) -> Option<Vec<(u32, u64, usize, usize)>> {
        match &self.inner {
            Inner::Kd { tree, .. } => Some(tree.node_summaries().collect()),
            Inner::DimRed(_) => None,
        }
    }

    /// Number of indexed objects for the kd variant, `None` for the
    /// dimension-reduction variant. Used by the snapshot loaders of the
    /// wrapping indexes to cross-check decoded sections against each
    /// other.
    pub(crate) fn kd_num_objects(&self) -> Option<usize> {
        match &self.inner {
            Inner::Kd { rank, .. } => Some(rank.len()),
            Inner::DimRed(_) => None,
        }
    }
}

/// Engine tag written in the `ORP_HEAD` page: the kd/rank-space
/// engine. The dimension-reduction engine (`d ≥ 3`) has no snapshot
/// encoding; saving it returns [`SkqError::Store`].
const ORP_ENGINE_KD: u64 = 0;

impl Persist for OrpKwIndex {
    fn to_pages(&self, w: &mut persist::PageWriter) -> Result<(), SkqError> {
        match &self.inner {
            Inner::Kd { rank, tree } => {
                let mut head = Vec::new();
                persist::put_uv(&mut head, ORP_ENGINE_KD);
                persist::put_uv(&mut head, self.dim as u64);
                persist::put_uv(&mut head, self.k as u64);
                w.page(persist::kind::ORP_HEAD, SCHEMA_VERSION, head);
                rank.to_pages(w)?;
                tree.to_pages(w)
            }
            Inner::DimRed(_) => Err(SkqError::Store {
                backend: "save".into(),
                message: "the dimension-reduction engine (d >= 3) has no snapshot encoding; \
                          rebuild it from the dataset"
                    .into(),
            }),
        }
    }

    fn from_pages(r: &mut persist::PageReader<'_>) -> Result<Self, SkqError> {
        let fail = |detail: String| SkqError::Corrupted {
            section: "orp".into(),
            detail,
        };
        let mut head = r.page(persist::kind::ORP_HEAD, SCHEMA_VERSION, "orp")?;
        let engine = head.uv()?;
        let dim = head.usizev()?;
        let k = head.usizev()?;
        head.end()?;
        if engine != ORP_ENGINE_KD {
            return Err(fail(format!("unknown orp engine tag {engine}")));
        }
        let rank = RankSpace::from_pages(r)?;
        let tree = TransformedIndex::<KdPartitioner>::from_pages(r)?;
        if rank.dim() != dim || tree.partitioner().dim() != dim {
            return Err(fail(format!(
                "dimensionality mismatch: head {dim}, rank {}, tree {}",
                rank.dim(),
                tree.partitioner().dim()
            )));
        }
        if tree.k() != k {
            return Err(fail(format!("head k = {k}, tree k = {}", tree.k())));
        }
        if rank.len() != tree.partitioner().points().len() {
            return Err(fail(format!(
                "rank space covers {} objects, tree {}",
                rank.len(),
                tree.partitioner().points().len()
            )));
        }
        Ok(Self {
            inner: Inner::Kd { rank, tree },
            dim,
            k,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::brute_rect as brute;
    use rand::{rngs::StdRng, Rng, SeedableRng};
    use skq_geom::Point;

    fn random_dataset(n: usize, dim: usize, vocab: u32, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        Dataset::from_parts(
            (0..n)
                .map(|_| {
                    let coords: Vec<f64> = (0..dim).map(|_| rng.gen_range(0..30) as f64).collect();
                    let len = rng.gen_range(1..6);
                    let doc: Vec<Keyword> = (0..len).map(|_| rng.gen_range(0..vocab)).collect();
                    (Point::new(&coords), doc)
                })
                .collect(),
        )
    }

    fn random_rect(rng: &mut StdRng, dim: usize) -> Rect {
        let mut lo = Vec::new();
        let mut hi = Vec::new();
        for _ in 0..dim {
            let a = rng.gen_range(-2..32) as f64;
            let b = rng.gen_range(-2..32) as f64;
            lo.push(a.min(b));
            hi.push(a.max(b));
        }
        Rect::new(&lo, &hi)
    }

    #[test]
    fn matches_bruteforce_2d_k2() {
        let dataset = random_dataset(400, 2, 12, 11);
        let index = OrpKwIndex::build(&dataset, 2);
        index.check_invariants().unwrap();
        let mut rng = StdRng::seed_from_u64(12);
        for _ in 0..100 {
            let q = random_rect(&mut rng, 2);
            let w1 = rng.gen_range(0..12);
            let w2 = (w1 + 1 + rng.gen_range(0..11)) % 12;
            let mut got = index.query(&q, &[w1, w2]);
            got.sort_unstable();
            assert_eq!(
                got,
                brute(&dataset, &q, &[w1, w2]),
                "q={q:?} kws=[{w1},{w2}]"
            );
        }
    }

    #[test]
    fn matches_bruteforce_1d_k3() {
        let dataset = random_dataset(300, 1, 8, 21);
        let index = OrpKwIndex::build(&dataset, 3);
        index.check_invariants().unwrap();
        let mut rng = StdRng::seed_from_u64(22);
        for _ in 0..100 {
            let q = random_rect(&mut rng, 1);
            let mut ws = vec![0u32; 0];
            while ws.len() < 3 {
                let w = rng.gen_range(0..8);
                if !ws.contains(&w) {
                    ws.push(w);
                }
            }
            let mut got = index.query(&q, &ws);
            got.sort_unstable();
            assert_eq!(got, brute(&dataset, &q, &ws));
        }
    }

    #[test]
    fn matches_bruteforce_3d_dimred() {
        let dataset = random_dataset(350, 3, 10, 31);
        let index = OrpKwIndex::build(&dataset, 2);
        let mut rng = StdRng::seed_from_u64(32);
        for _ in 0..60 {
            let q = random_rect(&mut rng, 3);
            let w1 = rng.gen_range(0..10);
            let w2 = (w1 + 1 + rng.gen_range(0..9)) % 10;
            let mut got = index.query(&q, &[w1, w2]);
            got.sort_unstable();
            assert_eq!(got, brute(&dataset, &q, &[w1, w2]));
        }
    }

    #[test]
    fn matches_bruteforce_4d_dimred() {
        let dataset = random_dataset(200, 4, 8, 41);
        let index = OrpKwIndex::build(&dataset, 2);
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..40 {
            let q = random_rect(&mut rng, 4);
            let w1 = rng.gen_range(0..8);
            let w2 = (w1 + 1 + rng.gen_range(0..7)) % 8;
            let mut got = index.query(&q, &[w1, w2]);
            got.sort_unstable();
            assert_eq!(got, brute(&dataset, &q, &[w1, w2]));
        }
    }

    #[test]
    fn full_space_query_equals_pure_keyword_search() {
        let dataset = random_dataset(250, 2, 6, 51);
        let index = OrpKwIndex::build(&dataset, 2);
        let q = Rect::full(2);
        let mut got = index.query(&q, &[1, 4]);
        got.sort_unstable();
        assert_eq!(got, brute(&dataset, &q, &[1, 4]));
    }

    #[test]
    fn limited_query_stops_early() {
        let dataset = random_dataset(500, 2, 4, 61);
        let index = OrpKwIndex::build(&dataset, 2);
        let q = Rect::full(2);
        let full = brute(&dataset, &q, &[0, 1]);
        assert!(full.len() > 5, "need enough matches for the test");
        let mut out = Vec::new();
        let mut stats = QueryStats::new();
        index.query_limited(&q, &[0, 1], 3, &mut out, &mut stats);
        assert_eq!(out.len(), 3);
        assert_eq!(stats.emitted, 3);
        assert!(stats.truncated);
        assert!(index.count_at_least(&q, &[0, 1], full.len()));
        assert!(!index.count_at_least(&q, &[0, 1], full.len() + 1));
        assert_eq!(index.count(&q, &[0, 1]), full.len() as u64);
    }

    #[test]
    fn count_matches_bruteforce_3d() {
        let dataset = random_dataset(200, 3, 8, 63);
        let index = OrpKwIndex::build(&dataset, 2);
        let mut rng = StdRng::seed_from_u64(64);
        for _ in 0..20 {
            let q = random_rect(&mut rng, 3);
            let w1 = rng.gen_range(0..8);
            let w2 = (w1 + 1 + rng.gen_range(0..7)) % 8;
            assert_eq!(
                index.count(&q, &[w1, w2]),
                brute(&dataset, &q, &[w1, w2]).len() as u64
            );
        }
    }

    #[test]
    fn unknown_keyword_yields_empty() {
        let dataset = random_dataset(100, 2, 5, 71);
        let index = OrpKwIndex::build(&dataset, 2);
        assert!(index.query(&Rect::full(2), &[0, 999]).is_empty());
    }

    #[test]
    #[should_panic(expected = "distinct keywords")]
    fn duplicate_keywords_rejected() {
        let dataset = random_dataset(50, 2, 5, 81);
        let index = OrpKwIndex::build(&dataset, 2);
        let _ = index.query(&Rect::full(2), &[3, 3]);
    }

    #[test]
    fn try_build_and_query_match_legacy() {
        let dataset = random_dataset(200, 2, 8, 101);
        let index = OrpKwIndex::try_build(&dataset, 2).unwrap();
        let q = Rect::full(2);
        let mut got = Vec::new();
        let stats = index.try_query_into(&q, &[0, 1], &mut got).unwrap();
        got.sort_unstable();
        assert_eq!(got, brute(&dataset, &q, &[0, 1]));
        assert_eq!(stats.emitted as usize, got.len());
    }

    #[test]
    fn try_surfaces_reject_invalid_input() {
        let dataset = random_dataset(50, 2, 5, 102);
        assert!(matches!(
            OrpKwIndex::try_build(&dataset, 1),
            Err(SkqError::InvalidQuery(_))
        ));
        let index = OrpKwIndex::try_build(&dataset, 2).unwrap();
        let mut out = Vec::new();
        // Duplicate keywords, wrong dimensionality, NaN bound.
        assert!(matches!(
            index.try_query_into(&Rect::full(2), &[3, 3], &mut out),
            Err(SkqError::InvalidQuery(ref m)) if m.contains("distinct keywords")
        ));
        assert!(matches!(
            index.try_query_into(&Rect::full(3), &[0, 1], &mut out),
            Err(SkqError::InvalidQuery(_))
        ));
        assert!(out.is_empty(), "failed validation must not emit");
    }

    #[test]
    fn space_budget_is_enforced() {
        let dataset = random_dataset(200, 2, 8, 103);
        let err = OrpKwIndex::try_build_with_budget(&dataset, 2, Some(10));
        assert!(matches!(
            err,
            Err(SkqError::BuildBudgetExceeded { budget: 10, .. })
        ));
        let full = OrpKwIndex::try_build(&dataset, 2).unwrap();
        let ok = OrpKwIndex::try_build_with_budget(&dataset, 2, Some(full.space_words()));
        assert!(ok.is_ok());
    }

    #[test]
    fn space_is_linear_ish() {
        let dataset = random_dataset(2000, 2, 40, 91);
        let index = OrpKwIndex::build(&dataset, 2);
        let words = index.space_words();
        let n = dataset.input_size();
        assert!(
            words < 60 * n,
            "space {words} words for N = {n} exceeds the linear-space budget"
        );
    }
}
