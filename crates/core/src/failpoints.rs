//! Fail-point injection for chaos testing (cargo feature `failpoints`).
//!
//! A fail point is a named site on a build or batch path where a test
//! can inject a failure. With the feature disabled (the default) every
//! [`check`] compiles to `Ok(())` and the registry does not exist, so
//! production builds pay nothing. The registry is a tiny std-only map
//! — no external crate, consistent with the workspace's zero-dep
//! observability gate.
//!
//! ```ignore
//! // Only with `--features failpoints`:
//! skq_core::failpoints::inject("orp::build", FailAction::Err, None);
//! assert!(OrpKwIndex::try_build(&dataset, 2).is_err());
//! skq_core::failpoints::clear();
//! ```

use crate::error::SkqError;

/// Every registered injection site, for exhaustive chaos sweeps.
///
/// Each site sits on exactly one build (or shard) path; the chaos test
/// drives the matching public entry point for each name.
pub const SITES: &[&str] = &[
    "orp::build",
    "rr::build",
    "nn_linf::build",
    "nn_l2::build",
    "lc::build",
    "sp::build",
    "srp::build",
    "ksi::build",
    "framework::build",
    "dynamic::build_block",
    "batch::shard",
    "serve::request",
    "serve::worker",
    "store::read_page",
    "store::wal_append",
    "store::fsync",
    "store::checkpoint",
];

/// What an armed fail point does when hit.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FailAction {
    /// Return `Err(SkqError::Internal("fail point <site> triggered"))`.
    Err,
    /// Panic with `"fail point <site> triggered"` — exercises the
    /// panic-isolation machinery (batch shards).
    Panic,
    /// Abort the whole process (`std::process::abort`) — simulates a
    /// hard crash (power loss, OOM-kill) for the WAL/recovery
    /// drivers; nothing unwinds and no destructor runs.
    Abort,
}

/// Evaluates the named fail point.
///
/// Returns `Err` (or panics) if a test armed the site via `inject`
/// (available with the `failpoints` feature);
/// otherwise — and always, when the `failpoints` feature is off —
/// returns `Ok(())`.
#[inline]
pub fn check(site: &'static str) -> Result<(), SkqError> {
    #[cfg(feature = "failpoints")]
    {
        imp::check(site)
    }
    #[cfg(not(feature = "failpoints"))]
    {
        let _ = site;
        Ok(())
    }
}

/// Arms a fail point. `times` bounds how many hits fire (`None` =
/// every hit until [`clear`]). Re-injecting a site replaces its entry.
#[cfg(feature = "failpoints")]
pub fn inject(site: &str, action: FailAction, times: Option<usize>) {
    imp::inject(site, action, times);
}

/// Disarms every fail point.
#[cfg(feature = "failpoints")]
pub fn clear() {
    imp::clear();
}

#[cfg(feature = "failpoints")]
mod imp {
    use super::{FailAction, SkqError};
    use std::collections::HashMap;
    use std::sync::{Mutex, PoisonError};

    struct Entry {
        action: FailAction,
        remaining: Option<usize>,
    }

    fn registry() -> &'static Mutex<HashMap<String, Entry>> {
        static REGISTRY: std::sync::OnceLock<Mutex<HashMap<String, Entry>>> =
            std::sync::OnceLock::new();
        REGISTRY.get_or_init(|| Mutex::new(HashMap::new()))
    }

    pub fn inject(site: &str, action: FailAction, times: Option<usize>) {
        registry()
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .insert(
                site.to_string(),
                Entry {
                    action,
                    remaining: times,
                },
            );
    }

    pub fn clear() {
        registry()
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clear();
    }

    pub fn check(site: &'static str) -> Result<(), SkqError> {
        let action = {
            let mut map = registry().lock().unwrap_or_else(PoisonError::into_inner);
            match map.get_mut(site) {
                None => return Ok(()),
                Some(entry) => match entry.remaining {
                    Some(0) => return Ok(()),
                    Some(ref mut n) => {
                        *n -= 1;
                        entry.action
                    }
                    None => entry.action,
                },
            }
            // The lock is dropped here, before we act: a panicking fail
            // point must not poison the registry.
        };
        match action {
            FailAction::Err => Err(SkqError::Internal(format!("fail point {site} triggered"))),
            FailAction::Panic => panic!("fail point {site} triggered"),
            FailAction::Abort => std::process::abort(),
        }
    }
}

#[cfg(all(test, feature = "failpoints"))]
mod tests {
    use super::*;

    // Distinct site names per test: the registry is process-global and
    // the test harness runs these in parallel.

    #[test]
    fn unarmed_site_is_ok() {
        assert!(check("test::unarmed").is_ok());
    }

    #[test]
    fn bounded_injection_fires_n_times() {
        inject("test::bounded", FailAction::Err, Some(2));
        assert!(check("test::bounded").is_err());
        assert!(check("test::bounded").is_err());
        assert!(check("test::bounded").is_ok());
    }
}
