//! Simplex reporting with keywords (SP-KW; Theorem 12, Appendix D).
//!
//! Given a `d`-simplex (or, more generally, any conjunction of `O(1)`
//! halfspaces — LC-KW queries arrive that way and a simplex is exactly
//! `d + 1` of them) and keywords `w₁, …, w_k`, report the matching
//! objects inside the region. The index is the transformation framework
//! applied to a partition tree: in 2D, the Willard ham-sandwich tree
//! (see DESIGN.md §4 for the substitution of Chan's optimal partition
//! tree); in higher dimensions, kd cells (the paper notes in §3.5 that
//! the kd-tree yields `O(N^{1−1/max(k,d)} + N^{1−1/k}·OUT^{1/k})`
//! there).

use std::ops::ControlFlow;

use skq_geom::{ConvexPolytope, Point, Simplex};
use skq_invidx::Keyword;

use crate::dataset::Dataset;
use crate::error::{validate, SkqError};
use crate::failpoints;
use crate::framework::{
    FrameworkConfig, KdPartitioner, QuadPartitioner, TransformedIndex, WillardPartitioner,
};
use crate::persist::{self, Persist, SCHEMA_VERSION};
use crate::sink::{CountSink, LimitSink, ResultSink};
use crate::stats::QueryStats;

/// Which partitioner backs the index.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SpStrategy {
    /// Willard ham-sandwich partition tree (2D only): crossing number
    /// `O(N^{log₄3})`.
    Willard,
    /// kd-tree cells (any dimension): crossing number
    /// `O(N^{1−1/max(k,d)})` for simplex queries.
    Kd,
    /// Midpoint quadtree (2D only): the spatial-keyword systems
    /// literature's favorite; no weight-balance (and hence no depth)
    /// guarantee on skewed data, but cheap construction.
    Quad,
}

enum Inner {
    Willard(TransformedIndex<WillardPartitioner>),
    Kd(TransformedIndex<KdPartitioner>),
    Quad(TransformedIndex<QuadPartitioner>),
}

/// The SP-KW index.
///
/// # Example
///
/// ```
/// use skq_core::dataset::Dataset;
/// use skq_core::sp::SpKwIndex;
/// use skq_geom::{Point, Simplex};
///
/// let data = Dataset::from_parts(vec![
///     (Point::new2(1.0, 1.0), vec![0, 1]),
///     (Point::new2(9.0, 9.0), vec![0, 1]),
///     (Point::new2(2.0, 1.0), vec![0]),
/// ]);
/// let index = SpKwIndex::build(&data, 2);
/// let triangle = Simplex::new(vec![
///     Point::new2(0.0, 0.0),
///     Point::new2(5.0, 0.0),
///     Point::new2(0.0, 5.0),
/// ]).unwrap();
/// assert_eq!(index.query_simplex(&triangle, &[0, 1]), vec![0]);
/// ```
pub struct SpKwIndex {
    inner: Inner,
    points: Vec<Point>,
    dim: usize,
    k: usize,
}

impl SpKwIndex {
    /// Builds with the default strategy (Willard in 2D, kd otherwise).
    pub fn build(dataset: &Dataset, k: usize) -> Self {
        let strategy = if dataset.dim() == 2 {
            SpStrategy::Willard
        } else {
            SpStrategy::Kd
        };
        Self::build_with_strategy(dataset, k, strategy)
    }

    /// Builds with an explicit strategy.
    ///
    /// # Panics
    ///
    /// Panics if `strategy` is `Willard` and the data is not 2D, or
    /// `k < 2`.
    pub fn build_with_strategy(dataset: &Dataset, k: usize, strategy: SpStrategy) -> Self {
        Self::try_build_with_strategy(dataset, k, strategy).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`build`](Self::build) with the default strategy.
    ///
    /// # Errors
    ///
    /// `SkqError::InvalidQuery` if `k` is outside `2..=16`;
    /// `SkqError::InvalidDataset` if the strategy requires 2D data.
    pub fn try_build(dataset: &Dataset, k: usize) -> Result<Self, SkqError> {
        let strategy = if dataset.dim() == 2 {
            SpStrategy::Willard
        } else {
            SpStrategy::Kd
        };
        Self::try_build_with_strategy(dataset, k, strategy)
    }

    /// Fallible [`build`](Self::build) with a space-admission budget:
    /// the index is constructed, then rejected if it occupies more than
    /// `max_space_words` 64-bit words. Used by the planner's graceful
    /// degradation ladder.
    ///
    /// # Errors
    ///
    /// `SkqError::BuildBudgetExceeded` when the finished index is over
    /// budget; otherwise the [`try_build`](Self::try_build) conditions.
    pub fn try_build_with_budget(
        dataset: &Dataset,
        k: usize,
        max_space_words: Option<usize>,
    ) -> Result<Self, SkqError> {
        let index = Self::try_build(dataset, k)?;
        if let Some(budget) = max_space_words {
            let needed = index.space_words();
            if needed > budget {
                return Err(SkqError::BuildBudgetExceeded { budget, needed });
            }
        }
        Ok(index)
    }

    /// Fallible [`build_with_strategy`](Self::build_with_strategy).
    ///
    /// # Errors
    ///
    /// `SkqError::InvalidQuery` if `k` is outside `2..=16`;
    /// `SkqError::InvalidDataset` if a 2D-only strategy is paired with
    /// non-2D data.
    pub fn try_build_with_strategy(
        dataset: &Dataset,
        k: usize,
        strategy: SpStrategy,
    ) -> Result<Self, SkqError> {
        validate::build_k(k)?;
        failpoints::check("sp::build")?;
        let points = dataset.points().to_vec();
        let weights: Vec<u64> = (0..dataset.len()).map(|i| dataset.weight(i)).collect();
        let docs = dataset.docs().to_vec();
        let config = FrameworkConfig::default();
        let inner = match strategy {
            SpStrategy::Willard => {
                if dataset.dim() != 2 {
                    return Err(SkqError::InvalidDataset(
                        "the Willard partition tree is 2D".into(),
                    ));
                }
                let p = WillardPartitioner::new(points.clone(), weights);
                Inner::Willard(TransformedIndex::try_build(p, docs, k, config)?)
            }
            SpStrategy::Kd => {
                let p = KdPartitioner::new(points.clone(), weights);
                Inner::Kd(TransformedIndex::try_build(p, docs, k, config)?)
            }
            SpStrategy::Quad => {
                if dataset.dim() != 2 {
                    return Err(SkqError::InvalidDataset(
                        "the quadtree partitioner is 2D".into(),
                    ));
                }
                let p = QuadPartitioner::new(points.clone(), weights);
                Inner::Quad(TransformedIndex::try_build(p, docs, k, config)?)
            }
        };
        Ok(Self {
            inner,
            points,
            dim: dataset.dim(),
            k,
        })
    }

    /// The number of query keywords the index was built for.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The dimensionality `d`.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The strategy in use.
    pub fn strategy(&self) -> SpStrategy {
        match self.inner {
            Inner::Willard(_) => SpStrategy::Willard,
            Inner::Kd(_) => SpStrategy::Kd,
            Inner::Quad(_) => SpStrategy::Quad,
        }
    }

    /// Reports all objects inside the convex region `q` (a conjunction
    /// of halfspaces) whose documents contain all `keywords`.
    pub fn query_polytope(&self, q: &ConvexPolytope, keywords: &[Keyword]) -> Vec<u32> {
        let mut out = Vec::new();
        let mut stats = QueryStats::new();
        self.query_limited(q, keywords, usize::MAX, &mut out, &mut stats);
        out
    }

    /// Like [`query_polytope`](Self::query_polytope) with statistics.
    pub fn query_with_stats(
        &self,
        q: &ConvexPolytope,
        keywords: &[Keyword],
    ) -> (Vec<u32>, QueryStats) {
        let mut out = Vec::new();
        let mut stats = QueryStats::new();
        self.query_limited(q, keywords, usize::MAX, &mut out, &mut stats);
        (out, stats)
    }

    /// Fallible query: validates the constraint conjunction and keyword
    /// set, then appends matching ids to `out`.
    ///
    /// # Errors
    ///
    /// `SkqError::InvalidQuery` on a dimension mismatch, NaN
    /// coefficients, or a keyword set that is not exactly `k` distinct
    /// keywords.
    pub fn try_query_into(
        &self,
        q: &ConvexPolytope,
        keywords: &[Keyword],
        out: &mut Vec<u32>,
    ) -> Result<QueryStats, SkqError> {
        validate::polytope_query(q, self.dim)?;
        validate::distinct_keywords(keywords, self.k)?;
        let mut stats = QueryStats::new();
        self.query_limited(q, keywords, usize::MAX, out, &mut stats);
        Ok(stats)
    }

    /// Reports all matching objects inside a `d`-simplex.
    pub fn query_simplex(&self, q: &Simplex, keywords: &[Keyword]) -> Vec<u32> {
        assert_eq!(q.dim(), self.dim);
        self.query_polytope(&q.to_polytope(), keywords)
    }

    /// Limited-output variant (threshold queries).
    pub fn query_limited(
        &self,
        q: &ConvexPolytope,
        keywords: &[Keyword],
        limit: usize,
        out: &mut Vec<u32>,
        stats: &mut QueryStats,
    ) {
        let mut sink = LimitSink::new(&mut *out, limit);
        let _ = self.query_sink(q, keywords, &mut sink, stats);
        stats.emitted += sink.emitted();
        stats.truncated |= sink.truncated();
    }

    /// Streaming query: matching object ids are emitted into `sink`.
    pub fn query_sink<S: ResultSink>(
        &self,
        q: &ConvexPolytope,
        keywords: &[Keyword],
        sink: &mut S,
        stats: &mut QueryStats,
    ) -> ControlFlow<()> {
        if let Some(d) = q.dim() {
            assert_eq!(d, self.dim, "query dimension mismatch");
        }
        let accept = |o: u32| q.contains(&self.points[o as usize]);
        match &self.inner {
            Inner::Willard(tree) => tree.query_sink(
                keywords,
                &|cell| cell.classify(q.halfspaces()),
                &accept,
                sink,
                stats,
            ),
            Inner::Kd(tree) => tree.query_sink(
                keywords,
                &|cell| q.classify_rect(cell),
                &accept,
                sink,
                stats,
            ),
            Inner::Quad(tree) => tree.query_sink(
                keywords,
                &|cell| q.classify_rect(cell),
                &accept,
                sink,
                stats,
            ),
        }
    }

    /// The number of matching objects, with no result materialization.
    pub fn count(&self, q: &ConvexPolytope, keywords: &[Keyword]) -> u64 {
        let mut sink = CountSink::new();
        let mut stats = QueryStats::new();
        let _ = self.query_sink(q, keywords, &mut sink, &mut stats);
        sink.count()
    }

    /// Whether at least `t` objects match, by early termination
    /// (allocation-free on the result side).
    pub fn count_at_least(&self, q: &ConvexPolytope, keywords: &[Keyword], t: usize) -> bool {
        if t == 0 {
            return true;
        }
        let mut sink = LimitSink::new(CountSink::new(), t);
        let mut stats = QueryStats::new();
        let _ = self.query_sink(q, keywords, &mut sink, &mut stats);
        sink.emitted() >= t as u64
    }

    /// Index space in 64-bit words (cells charged as a constant; the
    /// Willard polygons average `O(1)` vertices because each level adds
    /// at most two clips).
    pub fn space_words(&self) -> usize {
        let point_words = self.points.len() * self.dim;
        point_words
            + match &self.inner {
                Inner::Willard(t) => t.space_words(12),
                Inner::Kd(t) => t.space_words(2 * self.dim + 1),
                Inner::Quad(t) => t.space_words(2 * self.dim + 1),
            }
    }

    /// `(level, weight, pivots, large)` per framework node — tree-shape
    /// diagnostics for the harness.
    pub fn node_summaries(&self) -> Vec<(u32, u64, usize, usize)> {
        match &self.inner {
            Inner::Willard(t) => t.node_summaries().collect(),
            Inner::Kd(t) => t.node_summaries().collect(),
            Inner::Quad(t) => t.node_summaries().collect(),
        }
    }

    /// Structural invariants of the underlying framework.
    pub fn check_invariants(&self) -> Result<(), String> {
        match &self.inner {
            Inner::Willard(t) => t.check_invariants(),
            Inner::Kd(t) => t.check_invariants(),
            // Midpoint splits carry no weight-halving guarantee.
            Inner::Quad(t) => t.check_invariants_with(false),
        }
    }

    /// The stored point set, exposed so lifting-based wrappers (SRP-KW)
    /// can cross-check their lifted coordinates during deep validation.
    #[cfg(feature = "debug-invariants")]
    pub(crate) fn validate_points(&self) -> &[Point] {
        &self.points
    }

    /// Deep structural validation (`debug-invariants`; DESIGN.md §12).
    ///
    /// # Errors
    ///
    /// The first violated invariant, by name.
    #[cfg(feature = "debug-invariants")]
    pub fn validate(&self) -> Result<(), crate::invariants::InvariantViolation> {
        use crate::invariants::InvariantViolation as V;
        if let Some(p) = self.points.iter().find(|p| p.dim() != self.dim) {
            return Err(V::new(
                "sp::points",
                format!(
                    "stored point of dimension {}, index is {}D",
                    p.dim(),
                    self.dim
                ),
            ));
        }
        match &self.inner {
            Inner::Willard(t) => t.validate(),
            Inner::Kd(t) => t.validate(),
            // Midpoint splits carry no weight-halving guarantee.
            Inner::Quad(t) => t.validate_with(false),
        }
    }
}

/// Strategy tag written in the `SP_HEAD` page: the kd strategy — the
/// only one the paged format encodes (Willard polygons and quadtree
/// cells have no node codec yet; saving them returns
/// [`SkqError::Store`]).
const SP_STRATEGY_KD: u64 = 1;

impl Persist for SpKwIndex {
    fn to_pages(&self, w: &mut persist::PageWriter) -> Result<(), SkqError> {
        match &self.inner {
            Inner::Kd(tree) => {
                let mut head = Vec::new();
                persist::put_uv(&mut head, SP_STRATEGY_KD);
                persist::put_uv(&mut head, self.dim as u64);
                persist::put_uv(&mut head, self.k as u64);
                w.page(persist::kind::SP_HEAD, SCHEMA_VERSION, head);
                // `points` is the same vector the kd partitioner holds
                // (see `try_build_with_strategy`), so the tree section
                // already carries it — no separate point pages.
                tree.to_pages(w)
            }
            Inner::Willard(_) | Inner::Quad(_) => Err(SkqError::Store {
                backend: "save".into(),
                message: format!(
                    "the {:?} partition tree has no snapshot encoding; build with SpStrategy::Kd \
                     (or rebuild from the dataset) to persist",
                    self.strategy()
                ),
            }),
        }
    }

    fn from_pages(r: &mut persist::PageReader<'_>) -> Result<Self, SkqError> {
        let fail = |detail: String| SkqError::Corrupted {
            section: "sp".into(),
            detail,
        };
        let mut head = r.page(persist::kind::SP_HEAD, SCHEMA_VERSION, "sp")?;
        let strategy = head.uv()?;
        let dim = head.usizev()?;
        let k = head.usizev()?;
        head.end()?;
        if strategy != SP_STRATEGY_KD {
            return Err(fail(format!("unknown sp strategy tag {strategy}")));
        }
        let tree = TransformedIndex::<KdPartitioner>::from_pages(r)?;
        if tree.partitioner().dim() != dim {
            return Err(fail(format!(
                "head declares {dim}D, tree is {}D",
                tree.partitioner().dim()
            )));
        }
        if tree.k() != k {
            return Err(fail(format!("head k = {k}, tree k = {}", tree.k())));
        }
        let points = tree.partitioner().points().to_vec();
        Ok(Self {
            inner: Inner::Kd(tree),
            points,
            dim,
            k,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};
    use skq_geom::Halfspace;

    fn random_dataset(n: usize, dim: usize, vocab: u32, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        Dataset::from_parts(
            (0..n)
                .map(|_| {
                    let coords: Vec<f64> = (0..dim).map(|_| rng.gen_range(-20.0..20.0)).collect();
                    let len = rng.gen_range(1..5);
                    let doc: Vec<Keyword> = (0..len).map(|_| rng.gen_range(0..vocab)).collect();
                    (Point::new(&coords), doc)
                })
                .collect(),
        )
    }

    fn brute(dataset: &Dataset, q: &ConvexPolytope, kws: &[Keyword]) -> Vec<u32> {
        (0..dataset.len() as u32)
            .filter(|&i| {
                dataset.doc(i as usize).contains_all(kws) && q.contains(dataset.point(i as usize))
            })
            .collect()
    }

    fn random_halfspaces(rng: &mut StdRng, dim: usize, s: usize) -> ConvexPolytope {
        let hs: Vec<Halfspace> = (0..s)
            .map(|_| {
                let coeffs: Vec<f64> = (0..dim).map(|_| rng.gen_range(-1.0..1.0)).collect();
                Halfspace::new(&coeffs, rng.gen_range(-10.0..20.0))
            })
            .collect();
        ConvexPolytope::new(hs)
    }

    #[test]
    fn willard_matches_bruteforce() {
        let dataset = random_dataset(400, 2, 10, 1);
        let index = SpKwIndex::build(&dataset, 2);
        assert_eq!(index.strategy(), SpStrategy::Willard);
        index.check_invariants().unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..60 {
            let s = rng.gen_range(1..4);
            let q = random_halfspaces(&mut rng, 2, s);
            let w1 = rng.gen_range(0..10);
            let w2 = (w1 + 1 + rng.gen_range(0..9)) % 10;
            let mut got = index.query_polytope(&q, &[w1, w2]);
            got.sort_unstable();
            assert_eq!(got, brute(&dataset, &q, &[w1, w2]));
        }
    }

    #[test]
    fn kd_strategy_matches_bruteforce_2d() {
        let dataset = random_dataset(300, 2, 8, 11);
        let index = SpKwIndex::build_with_strategy(&dataset, 2, SpStrategy::Kd);
        let mut rng = StdRng::seed_from_u64(12);
        for _ in 0..60 {
            let q = random_halfspaces(&mut rng, 2, 2);
            let w1 = rng.gen_range(0..8);
            let w2 = (w1 + 1 + rng.gen_range(0..7)) % 8;
            let mut got = index.query_polytope(&q, &[w1, w2]);
            got.sort_unstable();
            assert_eq!(got, brute(&dataset, &q, &[w1, w2]));
        }
    }

    #[test]
    fn kd_strategy_3d_simplex() {
        let dataset = random_dataset(250, 3, 8, 21);
        let index = SpKwIndex::build(&dataset, 2);
        assert_eq!(index.strategy(), SpStrategy::Kd);
        let simplex = Simplex::new(vec![
            Point::new3(-30.0, -30.0, -30.0),
            Point::new3(40.0, 0.0, 0.0),
            Point::new3(0.0, 40.0, 0.0),
            Point::new3(0.0, 0.0, 40.0),
        ])
        .unwrap();
        let mut got = index.query_simplex(&simplex, &[0, 1]);
        got.sort_unstable();
        assert_eq!(got, brute(&dataset, &simplex.to_polytope(), &[0, 1]));
    }

    #[test]
    fn triangle_query_2d() {
        let dataset = random_dataset(300, 2, 6, 31);
        let index = SpKwIndex::build(&dataset, 2);
        let tri = Simplex::new(vec![
            Point::new2(-15.0, -15.0),
            Point::new2(15.0, -10.0),
            Point::new2(0.0, 18.0),
        ])
        .unwrap();
        let mut got = index.query_simplex(&tri, &[0, 1]);
        got.sort_unstable();
        assert_eq!(got, brute(&dataset, &tri.to_polytope(), &[0, 1]));
    }

    #[test]
    fn unconstrained_query_is_pure_keyword_search() {
        let dataset = random_dataset(200, 2, 5, 41);
        let index = SpKwIndex::build(&dataset, 2);
        let q = ConvexPolytope::default();
        let mut got = index.query_polytope(&q, &[0, 2]);
        got.sort_unstable();
        assert_eq!(got, brute(&dataset, &q, &[0, 2]));
    }

    #[test]
    fn try_surfaces_match_legacy_and_validate() {
        let dataset = random_dataset(200, 2, 6, 61);
        let index = SpKwIndex::try_build(&dataset, 2).unwrap();
        let legacy = SpKwIndex::build(&dataset, 2);
        let mut rng = StdRng::seed_from_u64(62);
        let q = random_halfspaces(&mut rng, 2, 2);
        let mut out = Vec::new();
        index.try_query_into(&q, &[0, 1], &mut out).unwrap();
        let mut expected = legacy.query_polytope(&q, &[0, 1]);
        out.sort_unstable();
        expected.sort_unstable();
        assert_eq!(out, expected);
        // Invalid surfaces.
        assert!(matches!(
            SpKwIndex::try_build(&dataset, 1),
            Err(SkqError::InvalidQuery(_))
        ));
        let d3 = random_dataset(50, 3, 4, 63);
        assert!(matches!(
            SpKwIndex::try_build_with_strategy(&d3, 2, SpStrategy::Willard),
            Err(SkqError::InvalidDataset(_))
        ));
        let nan = ConvexPolytope::new(vec![Halfspace::new(&[f64::NAN, 0.0], 1.0)]);
        let mut scratch = Vec::new();
        assert!(matches!(
            index.try_query_into(&nan, &[0, 1], &mut scratch),
            Err(SkqError::InvalidQuery(_))
        ));
        assert!(matches!(
            SpKwIndex::try_build_with_budget(&dataset, 2, Some(1)),
            Err(SkqError::BuildBudgetExceeded { budget: 1, .. })
        ));
    }

    #[test]
    fn k3_queries() {
        let dataset = random_dataset(350, 2, 6, 51);
        let index = SpKwIndex::build(&dataset, 3);
        let mut rng = StdRng::seed_from_u64(52);
        for _ in 0..40 {
            let q = random_halfspaces(&mut rng, 2, 2);
            let mut ws: Vec<u32> = Vec::new();
            while ws.len() < 3 {
                let w = rng.gen_range(0..6);
                if !ws.contains(&w) {
                    ws.push(w);
                }
            }
            let mut got = index.query_polytope(&q, &ws);
            got.sort_unstable();
            assert_eq!(got, brute(&dataset, &q, &ws));
        }
    }
}
