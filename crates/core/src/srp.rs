//! Spherical range reporting with keywords (SRP-KW; Corollary 6).
//!
//! Given a Euclidean ball and `k` keywords, report the matching objects
//! inside the ball ("boolean range query with keywords"). Corollary 6
//! lifts each point `p ∈ R^d` to `(p, |p|²) ∈ R^{d+1}`, turning the ball
//! into a single halfspace — a 1-constraint LC-KW query on the lifted
//! set, answered by the partition-tree index.

use std::ops::ControlFlow;

use skq_geom::{lift_point, Ball, ConvexPolytope, Halfspace, Point};
use skq_invidx::Keyword;

use crate::dataset::Dataset;
use crate::error::{validate, SkqError};
use crate::failpoints;
use crate::persist::{self, Persist, SCHEMA_VERSION};
use crate::sink::{CountSink, LimitSink, ResultSink};
use crate::sp::SpKwIndex;
use crate::stats::QueryStats;
use crate::telemetry;

/// The SRP-KW index.
///
/// # Example
///
/// ```
/// use skq_core::dataset::Dataset;
/// use skq_core::srp::SrpKwIndex;
/// use skq_geom::{Ball, Point};
///
/// let data = Dataset::from_parts(vec![
///     (Point::new2(0.0, 0.0), vec![0, 1]),
///     (Point::new2(3.0, 4.0), vec![0, 1]), // distance exactly 5
///     (Point::new2(9.0, 9.0), vec![0, 1]),
/// ]);
/// let index = SrpKwIndex::build(&data, 2);
/// let ball = Ball::new(Point::new2(0.0, 0.0), 5.0);
/// let mut hits = index.query(&ball, &[0, 1]);
/// hits.sort_unstable();
/// assert_eq!(hits, vec![0, 1]);
/// ```
pub struct SrpKwIndex {
    /// SP-KW index over the lifted `(d+1)`-dimensional point set.
    sp: SpKwIndex,
    dim: usize,
}

impl SrpKwIndex {
    /// Builds the index for exactly-`k`-keyword queries.
    ///
    /// # Panics
    ///
    /// Panics if `k < 2` or `d + 1` exceeds the supported 8 dimensions.
    pub fn build(dataset: &Dataset, k: usize) -> Self {
        Self::try_build(dataset, k).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`build`](Self::build).
    ///
    /// # Errors
    ///
    /// `SkqError::InvalidQuery` if `k` is outside `2..=16`;
    /// `SkqError::InvalidDataset` if the lifted dimension `d + 1`
    /// exceeds the supported 8 dimensions.
    pub fn try_build(dataset: &Dataset, k: usize) -> Result<Self, SkqError> {
        validate::build_k(k)?;
        failpoints::check("srp::build")?;
        let _span = skq_obs::Span::enter("srp.build");
        let start = std::time::Instant::now();
        let dim = dataset.dim();
        if dim + 1 > skq_geom::MAX_DIM {
            return Err(SkqError::InvalidDataset(format!(
                "lifted dimension {} exceeds the supported {} dimensions",
                dim + 1,
                skq_geom::MAX_DIM
            )));
        }
        let lifted = dataset.map_points(|_, p| lift_point(p));
        let index = Self {
            sp: SpKwIndex::try_build(&lifted, k)?,
            dim,
        };
        let summaries = index.sp.node_summaries();
        telemetry::record_build(
            "srp_kw",
            start.elapsed(),
            summaries.len() as u64,
            summaries.iter().map(|&(_, _, p, _)| p as u64).sum(),
            (index.space_words() * 8) as u64,
        );
        Ok(index)
    }

    /// The point dimensionality `d` (queries are `d`-dimensional balls).
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The number of query keywords the index was built for.
    pub fn k(&self) -> usize {
        self.sp.k()
    }

    /// Reports objects inside `ball` whose documents contain all
    /// `keywords`.
    pub fn query(&self, ball: &Ball, keywords: &[Keyword]) -> Vec<u32> {
        self.query_with_stats(ball, keywords).0
    }

    /// Like [`query`](Self::query) with statistics.
    pub fn query_with_stats(&self, ball: &Ball, keywords: &[Keyword]) -> (Vec<u32>, QueryStats) {
        assert_eq!(ball.dim(), self.dim, "query dimension mismatch");
        self.query_sq_with_stats(ball.center(), ball.radius() * ball.radius(), keywords)
    }

    /// Queries by *squared* radius — exact for integer coordinates, and
    /// the primitive the L2-NN binary search (Corollary 7) needs.
    pub fn query_sq(&self, center: &Point, radius_sq: f64, keywords: &[Keyword]) -> Vec<u32> {
        self.query_sq_with_stats(center, radius_sq, keywords).0
    }

    /// [`query_sq`](Self::query_sq) with statistics.
    pub fn query_sq_with_stats(
        &self,
        center: &Point,
        radius_sq: f64,
        keywords: &[Keyword],
    ) -> (Vec<u32>, QueryStats) {
        let mut out = Vec::new();
        let mut stats = QueryStats::new();
        self.query_sq_limited(
            center,
            radius_sq,
            keywords,
            usize::MAX,
            &mut out,
            &mut stats,
        );
        (out, stats)
    }

    /// Fallible squared-radius query: validates the center, radius, and
    /// keyword set, then appends matching ids to `out`.
    ///
    /// # Errors
    ///
    /// `SkqError::InvalidQuery` on a dimension mismatch, a non-finite
    /// center or negative/NaN radius, or a keyword set that is not
    /// exactly `k` distinct keywords.
    pub fn try_query_into(
        &self,
        center: &Point,
        radius_sq: f64,
        keywords: &[Keyword],
        out: &mut Vec<u32>,
    ) -> Result<QueryStats, SkqError> {
        validate::point_query(center, self.dim)?;
        if !(radius_sq.is_finite() && radius_sq >= 0.0) {
            return Err(SkqError::InvalidQuery(format!(
                "squared radius must be finite and non-negative, got {radius_sq}"
            )));
        }
        validate::distinct_keywords(keywords, self.k())?;
        let mut stats = QueryStats::new();
        self.query_sq_limited(center, radius_sq, keywords, usize::MAX, out, &mut stats);
        Ok(stats)
    }

    /// Limited-output squared-radius query (threshold queries).
    pub fn query_sq_limited(
        &self,
        center: &Point,
        radius_sq: f64,
        keywords: &[Keyword],
        limit: usize,
        out: &mut Vec<u32>,
        stats: &mut QueryStats,
    ) {
        let mut sink = LimitSink::new(&mut *out, limit);
        let _ = self.query_sq_sink(center, radius_sq, keywords, &mut sink, stats);
        stats.emitted += sink.emitted();
        stats.truncated |= sink.truncated();
    }

    /// Streaming squared-radius query: matching ids are emitted into
    /// `sink` — the primitive behind the allocation-free L2-NN probes.
    pub fn query_sq_sink<S: ResultSink>(
        &self,
        center: &Point,
        radius_sq: f64,
        keywords: &[Keyword],
        sink: &mut S,
        stats: &mut QueryStats,
    ) -> ControlFlow<()> {
        assert_eq!(center.dim(), self.dim, "query dimension mismatch");
        assert!(radius_sq >= 0.0);
        let hs = lifted_halfspace(center, radius_sq);
        self.sp
            .query_sink(&ConvexPolytope::from_halfspace(hs), keywords, sink, stats)
    }

    /// Whether at least `t` objects match, by early termination
    /// (allocation-free on the result side).
    pub fn count_at_least(
        &self,
        center: &Point,
        radius_sq: f64,
        keywords: &[Keyword],
        t: usize,
    ) -> bool {
        if t == 0 {
            return true;
        }
        let mut sink = LimitSink::new(CountSink::new(), t);
        let mut stats = QueryStats::new();
        let _ = self.query_sq_sink(center, radius_sq, keywords, &mut sink, &mut stats);
        sink.emitted() >= t as u64
    }

    /// Index space in 64-bit words.
    pub fn space_words(&self) -> usize {
        self.sp.space_words()
    }

    /// Deep structural validation (`debug-invariants`; DESIGN.md §12):
    /// re-derives the Lemma 10 lifting — every stored point's last
    /// coordinate must equal the squared norm of its first `d` — then
    /// recurses into the inner SP-KW index.
    ///
    /// # Errors
    ///
    /// The first violated invariant, by name.
    #[cfg(feature = "debug-invariants")]
    pub fn validate(&self) -> Result<(), crate::invariants::InvariantViolation> {
        use crate::invariants::InvariantViolation as V;
        if self.sp.dim() != self.dim + 1 {
            return Err(V::new(
                "srp::lifting",
                format!(
                    "inner index is {}D, expected {} for {}D data",
                    self.sp.dim(),
                    self.dim + 1,
                    self.dim
                ),
            ));
        }
        for (i, p) in self.sp.validate_points().iter().enumerate() {
            let norm: f64 = (0..self.dim).map(|j| p.get(j) * p.get(j)).sum();
            let stored = p.get(self.dim);
            if (stored - norm).abs() > 1e-9 * norm.max(1.0) {
                return Err(V::new(
                    "srp::lifting",
                    format!("point {i}: lifted coordinate {stored} ≠ |p|² = {norm}"),
                ));
            }
        }
        self.sp.validate()
    }
}

impl Persist for SrpKwIndex {
    fn to_pages(&self, w: &mut persist::PageWriter) -> Result<(), SkqError> {
        let mut head = Vec::new();
        persist::put_uv(&mut head, self.dim as u64);
        w.page(persist::kind::SRP_HEAD, SCHEMA_VERSION, head);
        self.sp.to_pages(w)
    }

    fn from_pages(r: &mut persist::PageReader<'_>) -> Result<Self, SkqError> {
        let mut head = r.page(persist::kind::SRP_HEAD, SCHEMA_VERSION, "srp")?;
        let dim = head.usizev()?;
        head.end()?;
        let sp = SpKwIndex::from_pages(r)?;
        if sp.dim() != dim + 1 {
            return Err(SkqError::Corrupted {
                section: "srp".into(),
                detail: format!(
                    "inner index is {}D, expected {} for {dim}D data",
                    sp.dim(),
                    dim + 1
                ),
            });
        }
        Ok(Self { sp, dim })
    }
}

/// The lifted halfspace for squared radius `r²`:
/// `(−2c, 1) · p' ≤ r² − |c|²`.
fn lifted_halfspace(center: &Point, radius_sq: f64) -> Halfspace {
    let d = center.dim();
    let mut coeffs = Vec::with_capacity(d + 1);
    for i in 0..d {
        coeffs.push(-2.0 * center.get(i));
    }
    coeffs.push(1.0);
    Halfspace::new(&coeffs, radius_sq - center.norm_sq())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    /// Integer coordinates keep the lifted arithmetic exact, matching
    /// the paper's `N^d` (integer-grid) setting for distance problems.
    fn integer_dataset(n: usize, dim: usize, vocab: u32, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        Dataset::from_parts(
            (0..n)
                .map(|_| {
                    let coords: Vec<f64> =
                        (0..dim).map(|_| rng.gen_range(-40..40) as f64).collect();
                    let doc: Vec<Keyword> = (0..rng.gen_range(1..5))
                        .map(|_| rng.gen_range(0..vocab))
                        .collect();
                    (Point::new(&coords), doc)
                })
                .collect(),
        )
    }

    fn brute(dataset: &Dataset, ball: &Ball, kws: &[Keyword]) -> Vec<u32> {
        (0..dataset.len() as u32)
            .filter(|&i| {
                dataset.doc(i as usize).contains_all(kws)
                    && ball.contains(dataset.point(i as usize))
            })
            .collect()
    }

    #[test]
    fn matches_bruteforce_1d() {
        let dataset = integer_dataset(250, 1, 8, 1);
        let index = SrpKwIndex::build(&dataset, 2);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..60 {
            let ball = Ball::new(
                Point::new1(rng.gen_range(-45..45) as f64),
                rng.gen_range(0..30) as f64,
            );
            let w1 = rng.gen_range(0..8);
            let w2 = (w1 + 1 + rng.gen_range(0..7)) % 8;
            let mut got = index.query(&ball, &[w1, w2]);
            got.sort_unstable();
            assert_eq!(got, brute(&dataset, &ball, &[w1, w2]));
        }
    }

    #[test]
    fn matches_bruteforce_2d() {
        let dataset = integer_dataset(300, 2, 10, 11);
        let index = SrpKwIndex::build(&dataset, 2);
        let mut rng = StdRng::seed_from_u64(12);
        for _ in 0..60 {
            let ball = Ball::new(
                Point::new2(rng.gen_range(-45..45) as f64, rng.gen_range(-45..45) as f64),
                rng.gen_range(0..40) as f64,
            );
            let w1 = rng.gen_range(0..10);
            let w2 = (w1 + 1 + rng.gen_range(0..9)) % 10;
            let mut got = index.query(&ball, &[w1, w2]);
            got.sort_unstable();
            assert_eq!(got, brute(&dataset, &ball, &[w1, w2]));
        }
    }

    #[test]
    fn matches_bruteforce_3d_k3() {
        let dataset = integer_dataset(250, 3, 6, 21);
        let index = SrpKwIndex::build(&dataset, 3);
        let mut rng = StdRng::seed_from_u64(22);
        for _ in 0..40 {
            let ball = Ball::new(
                Point::new3(
                    rng.gen_range(-45..45) as f64,
                    rng.gen_range(-45..45) as f64,
                    rng.gen_range(-45..45) as f64,
                ),
                rng.gen_range(0..50) as f64,
            );
            let mut ws: Vec<u32> = Vec::new();
            while ws.len() < 3 {
                let w = rng.gen_range(0..6);
                if !ws.contains(&w) {
                    ws.push(w);
                }
            }
            let mut got = index.query(&ball, &ws);
            got.sort_unstable();
            assert_eq!(got, brute(&dataset, &ball, &ws));
        }
    }

    #[test]
    fn boundary_points_included() {
        let dataset = Dataset::from_parts(vec![
            (Point::new2(3.0, 4.0), vec![0, 1]), // distance exactly 5
            (Point::new2(3.0, 5.0), vec![0, 1]),
            (Point::new2(0.0, 0.0), vec![0, 1]),
        ]);
        let index = SrpKwIndex::build(&dataset, 2);
        let ball = Ball::new(Point::new2(0.0, 0.0), 5.0);
        let mut got = index.query(&ball, &[0, 1]);
        got.sort_unstable();
        assert_eq!(got, vec![0, 2]);
    }

    #[test]
    fn try_surfaces_round_trip_and_validate() {
        let dataset = integer_dataset(150, 2, 6, 71);
        let index = SrpKwIndex::try_build(&dataset, 2).unwrap();
        let legacy = SrpKwIndex::build(&dataset, 2);
        let center = Point::new2(0.0, 0.0);
        let mut out = Vec::new();
        let stats = index
            .try_query_into(&center, 400.0, &[0, 1], &mut out)
            .unwrap();
        let mut expected = legacy.query_sq(&center, 400.0, &[0, 1]);
        out.sort_unstable();
        expected.sort_unstable();
        assert_eq!(out, expected);
        assert_eq!(stats.emitted, out.len() as u64);
        // Validation surfaces.
        let mut scratch = Vec::new();
        assert!(matches!(
            index.try_query_into(&center, -1.0, &[0, 1], &mut scratch),
            Err(SkqError::InvalidQuery(_))
        ));
        assert!(matches!(
            index.try_query_into(&center, f64::NAN, &[0, 1], &mut scratch),
            Err(SkqError::InvalidQuery(_))
        ));
        assert!(matches!(
            index.try_query_into(&Point::new1(0.0), 1.0, &[0, 1], &mut scratch),
            Err(SkqError::InvalidQuery(_))
        ));
        assert!(matches!(
            SrpKwIndex::try_build(&dataset, 1),
            Err(SkqError::InvalidQuery(_))
        ));
        let d8 = Dataset::from_parts(vec![(Point::new(&[0.0; 8]), vec![0, 1])]);
        assert!(matches!(
            SrpKwIndex::try_build(&d8, 2),
            Err(SkqError::InvalidDataset(_))
        ));
    }

    #[test]
    fn zero_radius_ball() {
        let dataset = Dataset::from_parts(vec![
            (Point::new2(1.0, 1.0), vec![0, 1]),
            (Point::new2(2.0, 2.0), vec![0, 1]),
        ]);
        let index = SrpKwIndex::build(&dataset, 2);
        assert_eq!(
            index.query(&Ball::new(Point::new2(1.0, 1.0), 0.0), &[0, 1]),
            vec![0]
        );
    }
}
