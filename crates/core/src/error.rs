//! Typed errors for the fallible construction and query surfaces.
//!
//! Every `try_build` / `try_query_into` entry point in this crate
//! returns [`SkqError`]. The legacy infallible APIs (`build`, `query`,
//! …) are thin wrappers that panic with the error's `Display` text, so
//! the two surfaces always agree on *what* is invalid — the only
//! difference is how the violation is delivered.

use std::fmt;

/// The error type shared by every fallible surface in `skq-core`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SkqError {
    /// The dataset violates a construction invariant: empty input,
    /// inconsistent dimensions, non-finite coordinates, or an object
    /// with an empty keyword set.
    InvalidDataset(String),
    /// The query is malformed for the target index: wrong
    /// dimensionality, wrong number of distinct keywords, NaN
    /// coordinates, or an out-of-domain parameter.
    InvalidQuery(String),
    /// An index build was rejected because it exceeded its space
    /// budget (see `FrameworkConfig::max_space_words` and the
    /// `try_build_with_budget` constructors).
    BuildBudgetExceeded {
        /// The configured budget, in words.
        budget: usize,
        /// The space the index would have occupied, in words.
        needed: usize,
    },
    /// A guarded query ran past its deadline; the sink holds the
    /// partial results emitted before the guard tripped.
    DeadlineExceeded,
    /// A guarded query observed its `CancelToken` in the cancelled
    /// state; the sink holds the partial results.
    Cancelled,
    /// A batch shard panicked and its bounded retry panicked again.
    ShardPanicked {
        /// Zero-based index of the failed shard.
        shard: usize,
    },
    /// The serving layer's admission control rejected the request:
    /// the job queue was at capacity, so accepting more work would only
    /// grow latency past every deadline.
    Overloaded {
        /// Queue depth observed when the request was rejected.
        queue_depth: usize,
    },
    /// A persistence-tier failure outside the snapshot bytes
    /// themselves: I/O, a missing snapshot name, or an index variant
    /// the paged format does not (yet) encode.
    Store {
        /// The backend or operation that failed (`mem`, `file`,
        /// `save`, …).
        backend: String,
        /// What went wrong, in one line.
        message: String,
    },
    /// A snapshot failed validation while loading: wrong magic, a
    /// future schema version, a checksum mismatch, truncation, or a
    /// decoded structure that violates an index invariant. Loading
    /// never panics on bad bytes — it returns this.
    Corrupted {
        /// The snapshot section being decoded when the damage was
        /// detected (`header`, `page`, `dataset`, `postings`, …).
        section: String,
        /// What the validator saw, in one line.
        detail: String,
    },
    /// An internal invariant violation or an injected fail point.
    Internal(String),
}

impl SkqError {
    /// Short machine-friendly label for the variant (used as a metric
    /// label and in the query log).
    pub fn kind(&self) -> &'static str {
        match self {
            SkqError::InvalidDataset(_) => "invalid_dataset",
            SkqError::InvalidQuery(_) => "invalid_query",
            SkqError::BuildBudgetExceeded { .. } => "build_budget_exceeded",
            SkqError::DeadlineExceeded => "deadline_exceeded",
            SkqError::Cancelled => "cancelled",
            SkqError::ShardPanicked { .. } => "shard_panicked",
            SkqError::Overloaded { .. } => "overloaded",
            SkqError::Store { .. } => "store",
            SkqError::Corrupted { .. } => "corrupted",
            SkqError::Internal(_) => "internal",
        }
    }
}

impl fmt::Display for SkqError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            // The message alone: the infallible wrappers panic with
            // `{self}` and existing callers match on these substrings.
            SkqError::InvalidDataset(msg) => f.write_str(msg),
            SkqError::InvalidQuery(msg) => f.write_str(msg),
            SkqError::BuildBudgetExceeded { budget, needed } => write!(
                f,
                "index build exceeds its space budget: needs {needed} words, budget is {budget}"
            ),
            SkqError::DeadlineExceeded => f.write_str("query deadline exceeded"),
            SkqError::Cancelled => f.write_str("query cancelled"),
            SkqError::ShardPanicked { shard } => {
                write!(f, "batch shard {shard} panicked (retry also failed)")
            }
            SkqError::Overloaded { queue_depth } => {
                write!(
                    f,
                    "server overloaded: job queue full ({queue_depth} pending)"
                )
            }
            SkqError::Store { backend, message } => {
                write!(f, "store error ({backend}): {message}")
            }
            SkqError::Corrupted { section, detail } => {
                write!(f, "snapshot corrupted in section `{section}`: {detail}")
            }
            SkqError::Internal(msg) => write!(f, "internal error: {msg}"),
        }
    }
}

impl std::error::Error for SkqError {}

/// Shared query-validation helpers for the `try_query_into` surfaces
/// (public so service layers can pre-validate before cheaper
/// unvalidated sink paths — e.g. the brownout count-only rung).
pub mod validate {
    use super::SkqError;
    use skq_geom::{ConvexPolytope, Point, Rect};

    /// The build-time `k` range every framework-backed index accepts.
    pub fn build_k(k: usize) -> Result<(), SkqError> {
        if k < 2 {
            return Err(SkqError::InvalidQuery(
                "the framework requires k >= 2 query keywords".into(),
            ));
        }
        if k > 16 {
            return Err(SkqError::InvalidQuery(
                "k > 16 keywords is unsupported (and pointless: the bound degrades to O(N))".into(),
            ));
        }
        Ok(())
    }

    /// Exactly `k` distinct keywords (the framework's query contract).
    pub fn distinct_keywords(keywords: &[u32], k: usize) -> Result<(), SkqError> {
        let mut kws = keywords.to_vec();
        kws.sort_unstable();
        kws.dedup();
        if kws.len() != k {
            return Err(SkqError::InvalidQuery(format!(
                "the index was built for exactly {k} distinct keywords, got {}",
                kws.len()
            )));
        }
        Ok(())
    }

    /// Dimension match and NaN-free bounds (±∞ is a legitimate open
    /// side — `Rect::full` is a common query).
    pub fn rect_query(q: &Rect, dim: usize) -> Result<(), SkqError> {
        if q.dim() != dim {
            return Err(SkqError::InvalidQuery(format!(
                "query dimension mismatch: rect is {}-dimensional, index is {dim}-dimensional",
                q.dim()
            )));
        }
        for i in 0..dim {
            if q.lo(i).is_nan() || q.hi(i).is_nan() {
                return Err(SkqError::InvalidQuery(format!(
                    "query rectangle has a NaN bound in dimension {i}"
                )));
            }
        }
        Ok(())
    }

    /// Dimension match and NaN-free coefficients for a halfspace
    /// conjunction (an empty polytope — no constraints — is valid and
    /// means "unconstrained").
    pub fn polytope_query(q: &ConvexPolytope, dim: usize) -> Result<(), SkqError> {
        if let Some(d) = q.dim() {
            if d != dim {
                return Err(SkqError::InvalidQuery(format!(
                    "query dimension mismatch: constraints are {d}-dimensional, index is {dim}-dimensional"
                )));
            }
        }
        for (i, h) in q.halfspaces().iter().enumerate() {
            if h.bound().is_nan() || h.coeffs().iter().any(|c| c.is_nan()) {
                return Err(SkqError::InvalidQuery(format!(
                    "constraint {i} has a NaN coefficient or bound"
                )));
            }
        }
        Ok(())
    }

    /// Dimension match and fully finite coordinates (query points may
    /// not be at infinity — distances would be meaningless).
    pub fn point_query(p: &Point, dim: usize) -> Result<(), SkqError> {
        if p.dim() != dim {
            return Err(SkqError::InvalidQuery(format!(
                "query dimension mismatch: point is {}-dimensional, index is {dim}-dimensional",
                p.dim()
            )));
        }
        for i in 0..dim {
            if !p.get(i).is_finite() {
                return Err(SkqError::InvalidQuery(format!(
                    "query point has a non-finite coordinate in dimension {i}"
                )));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_preserves_validation_text() {
        let e = SkqError::InvalidDataset("a dataset needs a non-empty set of objects".into());
        assert_eq!(format!("{e}"), "a dataset needs a non-empty set of objects");
        assert_eq!(e.kind(), "invalid_dataset");
    }

    #[test]
    fn budget_display_mentions_both_sides() {
        let e = SkqError::BuildBudgetExceeded {
            budget: 10,
            needed: 25,
        };
        let s = format!("{e}");
        assert!(s.contains("10") && s.contains("25"), "{s}");
    }

    #[test]
    fn error_trait_is_implemented() {
        let e: Box<dyn std::error::Error> = Box::new(SkqError::DeadlineExceeded);
        assert_eq!(e.to_string(), "query deadline exceeded");
    }
}
